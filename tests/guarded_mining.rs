//! Guarded-runtime integration: every miner, driven through every abort
//! path — cancellation, deadlines, operation and pattern budgets, and
//! injected panics — must return in bounded time with a **sound** partial
//! result: every reported pattern frequent, with its exact support.

use disc_miner::core::{support_count, FaultPlan};
use disc_miner::prelude::*;
use std::time::{Duration, Instant};

/// Debug builds are ~30× slower; scale the workloads so `cargo test` stays
/// snappy while `cargo test --release` exercises the full sizes.
fn scaled(n: usize) -> usize {
    if cfg!(debug_assertions) {
        (n / 4).max(20)
    } else {
        n
    }
}

fn quest(seed: u64, ncust: usize, slen: f64) -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(scaled(ncust))
        .with_nitems(80)
        .with_pools(80, 160)
        .with_slen(slen)
        .with_seed(seed)
        .generate()
}

/// The paper's Table 1 database, padded with copies so every miner performs
/// well over a dozen checkpoints before finishing.
fn padded_table1() -> SequenceDatabase {
    let rows = ["(a,e,g)(b)(h)(f)(c)(b,f)", "(b)(d,f)(e)", "(b,f,g)", "(f)(a,g)(b,f,h)(b,f)"];
    let texts: Vec<&str> = rows.iter().cycle().take(16).copied().collect();
    SequenceDatabase::from_parsed(&texts).unwrap()
}

fn every_miner() -> Vec<Box<dyn SequentialMiner>> {
    vec![
        Box::new(DiscAll::default()),
        Box::new(disc_miner::algo::DiscAll::without_bi_level()),
        Box::new(ParallelDiscAll::with_threads(4)),
        Box::new(DynamicDiscAll::default()),
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
        Box::new(Gsp::default()),
        Box::new(Spade::default()),
        Box::new(Spam::default()),
        Box::new(BruteForce::default()),
    ]
}

/// Every pattern in `result` must be genuinely frequent with its exact
/// support — the soundness contract of a partial result.
fn assert_sound_subset(name: &str, db: &SequenceDatabase, result: &MiningResult, delta: u64) {
    for (pattern, support) in result.iter() {
        let actual = support_count(db, pattern);
        assert_eq!(
            support, actual,
            "{name}: partial result reports {pattern} at support {support}, actual {actual}"
        );
        assert!(
            support >= delta,
            "{name}: partial result contains infrequent pattern {pattern} (support {support} < δ={delta})"
        );
    }
}

#[test]
fn pre_cancelled_token_aborts_every_miner_before_any_work() {
    let db = padded_table1();
    for miner in every_miner() {
        let token = CancelToken::new();
        token.cancel();
        let guard = MineGuard::new(token, ResourceBudget::unlimited());
        let run = miner.mine_guarded(&db, MinSupport::Count(4), &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::Cancelled },
            "{}",
            miner.name()
        );
        assert!(run.result.is_empty(), "{} mined past a cancelled token", miner.name());
    }
}

#[test]
fn zero_deadline_aborts_every_miner() {
    let db = padded_table1();
    for miner in every_miner() {
        let guard = MineGuard::new(
            CancelToken::new(),
            ResourceBudget::unlimited().with_deadline(Duration::ZERO),
        )
        .with_checkpoint_interval(1);
        let run = miner.mine_guarded(&db, MinSupport::Count(4), &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::DeadlineExceeded },
            "{}",
            miner.name()
        );
        assert_sound_subset(miner.name(), &db, &run.result, 4);
    }
}

#[test]
fn ops_budget_aborts_every_miner_with_a_sound_partial_result() {
    let db = padded_table1();
    for miner in every_miner() {
        let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_max_ops(5))
            .with_checkpoint_interval(1);
        let run = miner.mine_guarded(&db, MinSupport::Count(4), &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::BudgetExhausted },
            "{}",
            miner.name()
        );
        assert!(run.stats.ops >= 5, "{} under-charged: {:?}", miner.name(), run.stats);
        assert_sound_subset(miner.name(), &db, &run.result, 4);
    }
}

#[test]
fn pattern_budget_caps_every_miner_at_exactly_two_patterns() {
    let db = padded_table1();
    for miner in every_miner() {
        let guard =
            MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_max_patterns(2));
        let run = miner.mine_guarded(&db, MinSupport::Count(4), &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::BudgetExhausted },
            "{} (the workload has far more than 2 frequent patterns)",
            miner.name()
        );
        assert_eq!(run.result.len(), 2, "{} overshot the pattern cap", miner.name());
        assert_eq!(run.stats.patterns, 2, "{}", miner.name());
        assert_sound_subset(miner.name(), &db, &run.result, 4);
    }
}

#[test]
fn injected_panic_is_isolated_for_every_miner() {
    let db = padded_table1();
    for miner in every_miner() {
        let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited())
            .with_checkpoint_interval(1)
            .with_fault(FaultPlan::panic_at(3));
        let run = miner.mine_guarded(&db, MinSupport::Count(4), &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::Panicked },
            "{}",
            miner.name()
        );
        assert_sound_subset(miner.name(), &db, &run.result, 4);
    }
}

#[test]
fn injected_stall_becomes_a_deadline_abort() {
    let db = padded_table1();
    let guard = MineGuard::new(
        CancelToken::new(),
        ResourceBudget::unlimited().with_deadline(Duration::from_millis(5)),
    )
    .with_checkpoint_interval(1)
    .with_fault(FaultPlan::stall_at(3, Duration::from_millis(10)));
    let run = DiscAll::default().mine_guarded(&db, MinSupport::Count(4), &guard);
    assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::DeadlineExceeded });
    assert_sound_subset("DISC-all", &db, &run.result, 4);
}

#[test]
fn deadline_bounds_a_disc_all_run_on_a_generated_workload() {
    // A workload big enough that full mining takes well over 50 ms, even in
    // release mode: the guarded run must come back Partial, quickly, and
    // sound.
    let db = quest(42, 2000, 12.0);
    let delta = MinSupport::Fraction(0.02).resolve(db.len());
    for miner in [
        Box::new(DiscAll::default()) as Box<dyn SequentialMiner>,
        Box::new(DynamicDiscAll::default()),
    ] {
        let guard = MineGuard::new(
            CancelToken::new(),
            ResourceBudget::unlimited().with_deadline(Duration::from_millis(50)),
        );
        let start = Instant::now();
        let run = miner.mine_guarded(&db, MinSupport::Count(delta), &guard);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "{} took {elapsed:?} to notice a 50 ms deadline",
            miner.name()
        );
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::DeadlineExceeded },
            "{} finished a workload meant to overrun 50 ms — grow the workload",
            miner.name()
        );
        assert_sound_subset(miner.name(), &db, &run.result, delta);
    }
}

#[test]
fn cancellation_from_another_thread_stops_a_disc_all_run() {
    let db = quest(43, 2000, 12.0);
    let delta = MinSupport::Fraction(0.02).resolve(db.len());
    let token = CancelToken::new();
    let guard = MineGuard::new(token.clone(), ResourceBudget::unlimited());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
        })
    };
    let start = Instant::now();
    let run = DiscAll::default().mine_guarded(&db, MinSupport::Count(delta), &guard);
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    assert!(elapsed < Duration::from_secs(5), "cancellation ignored for {elapsed:?}");
    // Mining may legitimately win the race on a fast machine; when it does
    // not, the abort must be attributed to the token.
    match run.outcome {
        MineOutcome::Complete => {}
        MineOutcome::Partial { reason } => assert_eq!(reason, AbortReason::Cancelled),
    }
    assert_sound_subset("DISC-all", &db, &run.result, delta);
}

#[test]
fn fallback_chain_survives_a_panicking_first_stage() {
    let db = padded_table1();
    let chain = FallbackMiner::new(vec![
        Box::new(DynamicDiscAll::default()),
        Box::new(PrefixSpan::default()),
    ]);
    assert_eq!(chain.name(), "Dynamic DISC-all -> PrefixSpan");
    // The fault fires once, in stage 1; stage 2 runs clean and completes.
    let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited())
        .with_checkpoint_interval(1)
        .with_fault(FaultPlan::panic_at(3));
    let (run, reports) = chain.run(&db, MinSupport::Count(4), &guard);
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].name, "Dynamic DISC-all");
    assert_eq!(reports[0].outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
    assert_eq!(reports[1].name, "PrefixSpan");
    assert_eq!(reports[1].outcome, MineOutcome::Complete);
    assert!(run.outcome.is_complete());
    let expected = PrefixSpan::default().mine(&db, MinSupport::Count(4));
    assert!(run.result.diff(&expected).is_empty());
}

#[test]
fn fallback_chain_respects_cancellation_without_advancing() {
    let db = padded_table1();
    let chain = FallbackMiner::new(vec![
        Box::new(DynamicDiscAll::default()),
        Box::new(DiscAll::default()),
        Box::new(PrefixSpan::default()),
    ]);
    let token = CancelToken::new();
    token.cancel();
    let guard = MineGuard::new(token, ResourceBudget::unlimited());
    let (run, reports) = chain.run(&db, MinSupport::Count(4), &guard);
    assert_eq!(reports.len(), 1, "cancellation must not trigger fallback");
    assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Cancelled });
}

#[test]
fn fallback_chain_as_a_plain_miner_uses_its_first_healthy_stage() {
    let db = padded_table1();
    let chain = FallbackMiner::new(vec![
        Box::new(DynamicDiscAll::default()),
        Box::new(DiscAll::default()),
        Box::new(PrefixSpan::default()),
    ]);
    let expected = DynamicDiscAll::default().mine(&db, MinSupport::Count(4));
    let got = chain.mine(&db, MinSupport::Count(4));
    assert!(got.diff(&expected).is_empty());
}
