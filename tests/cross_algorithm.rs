//! Workspace integration: every miner — DISC-all (both bi-level settings),
//! Dynamic DISC-all (several γ), and all five baselines — must produce the
//! identical frequent set with identical supports on Quest-generated
//! workloads at several thresholds.

use disc_miner::prelude::*;

/// Debug builds are ~30× slower; scale the workloads so `cargo test` stays
/// snappy while `cargo test --release` exercises the full sizes.
fn scaled(n: usize) -> usize {
    if cfg!(debug_assertions) {
        (n / 4).max(20)
    } else {
        n
    }
}

fn quest(seed: u64, ncust: usize, slen: f64) -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(scaled(ncust))
        .with_nitems(80)
        .with_pools(80, 160)
        .with_slen(slen)
        .with_seed(seed)
        .generate()
}

fn miners_under_test() -> Vec<Box<dyn SequentialMiner>> {
    vec![
        Box::new(DiscAll::default()),
        Box::new(disc_miner::algo::DiscAll::without_bi_level()),
        Box::new(ParallelDiscAll::with_threads(1)),
        Box::new(ParallelDiscAll::with_threads(4)),
        Box::new(DynamicDiscAll::with_gamma(0.0)),
        Box::new(DynamicDiscAll::with_gamma(0.6)),
        Box::new(DynamicDiscAll::with_gamma(2.0)),
        Box::new(DynamicDiscAll::with_fixed_depth(1)),
        Box::new(DynamicDiscAll::with_fixed_depth(3)),
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
        Box::new(Spade::default()),
        Box::new(Spam::default()),
    ]
}

fn assert_agreement(db: &SequenceDatabase, min_support: MinSupport) {
    let reference = PseudoPrefixSpan::default().mine(db, min_support);
    for miner in miners_under_test() {
        let got = miner.mine(db, min_support);
        let diff = got.diff(&reference);
        assert!(
            diff.is_empty(),
            "{} disagrees at {min_support:?} ({} lines):\n{}",
            miner.name(),
            diff.len(),
            diff.join("\n")
        );
    }
}

#[test]
fn agreement_on_short_sequences() {
    let db = quest(1, 200, 4.0);
    for fraction in [0.15, 0.08] {
        assert_agreement(&db, MinSupport::Fraction(fraction));
    }
}

#[test]
fn agreement_on_paper_shaped_workload() {
    // The small 80-item alphabet is dense; keep δ high enough that the
    // frequent set stays in the hundreds (debug builds run this too).
    let db = quest(2, 250, 10.0);
    let probe = PseudoPrefixSpan::default().mine(&db, MinSupport::Fraction(0.15));
    assert!(probe.len() < 50_000, "workload too dense: {} patterns", probe.len());
    assert_agreement(&db, MinSupport::Fraction(0.15));
}

#[test]
fn agreement_with_long_patterns() {
    // One deep planted pattern instead of a dense Quest workload: the
    // frequent set is the subsequence lattice of the planted 8-sequence
    // (bounded at 2⁸ − 1 patterns) so the test exercises the k ≥ 4 DISC
    // iterations and bi-level virtual partitions without a combinatorial
    // frequent-set explosion.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let planted = parse_sequence("(a)(b,c)(d)(e,f)(g)(h)").unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut rows = Vec::new();
    for i in 0..24usize {
        let mut itemsets: Vec<Itemset> = Vec::new();
        if i % 3 != 2 {
            // Supporter: the planted transactions with rare-noise items
            // spliced between (ids 50+ never repeat often enough to be
            // frequent).
            for set in planted.itemsets() {
                itemsets.push(set.clone());
                if rng.gen_bool(0.5) {
                    itemsets.push(Itemset::single(Item(rng.gen_range(50..1000))));
                }
            }
        } else {
            for _ in 0..6 {
                itemsets.push(Itemset::single(Item(rng.gen_range(50..1000))));
            }
        }
        rows.push(Sequence::new(itemsets));
    }
    let db = SequenceDatabase::from_sequences(rows);
    let threshold = MinSupport::Count(16);
    let reference = PseudoPrefixSpan::default().mine(&db, threshold);
    assert_eq!(reference.support_of(&planted), Some(16));
    assert_eq!(reference.max_length(), 8);
    assert_eq!(reference.len(), 255, "exactly the subsequence lattice");
    assert_agreement(&db, threshold);
}

#[test]
fn gsp_agrees_on_a_small_workload() {
    // GSP is quadratic in candidates; give it a small instance of its own.
    let db = quest(4, 80, 5.0);
    let reference = PseudoPrefixSpan::default().mine(&db, MinSupport::Fraction(0.1));
    let got = Gsp::default().mine(&db, MinSupport::Fraction(0.1));
    assert!(got.diff(&reference).is_empty());
}

#[test]
fn unlimited_guard_is_equivalent_to_plain_mining() {
    // mine_guarded with no budget must complete and agree exactly with mine
    // for every miner — the guarded path is the same algorithm, only
    // instrumented.
    let db = quest(7, 80, 4.0);
    let threshold = MinSupport::Fraction(0.12);
    let mut miners = miners_under_test();
    miners.push(Box::new(Gsp::default()));
    miners.push(Box::new(BruteForce::default()));
    for miner in miners {
        let plain = miner.mine(&db, threshold);
        let guard = MineGuard::unlimited();
        let run = miner.mine_guarded(&db, threshold, &guard);
        assert!(
            run.outcome.is_complete(),
            "{} aborted under an unlimited guard: {:?}",
            miner.name(),
            run.outcome
        );
        let diff = run.result.diff(&plain);
        assert!(
            diff.is_empty(),
            "{} guarded result differs from plain mine ({} lines):\n{}",
            miner.name(),
            diff.len(),
            diff.join("\n")
        );
        assert_eq!(run.stats.patterns, plain.len(), "{} pattern stat", miner.name());
        assert!(run.stats.ops > 0, "{} charged no ops", miner.name());
    }
}

#[test]
fn parallel_disc_all_agrees_with_brute_force_and_prefixspan_on_random_workloads() {
    // Randomized (seeded) databases, checked against two independent
    // reference implementations: BruteForce enumerates and counts, and
    // PrefixSpan grows projections — neither shares code with the sharded
    // DISC path, so agreement here is strong evidence the parallel merge
    // reconstructs the exact frequent set.
    for seed in [11, 12, 13] {
        let db = quest(seed, 60, 4.0);
        let threshold = MinSupport::Fraction(0.12);
        let brute = BruteForce::default().mine(&db, threshold);
        let prefix = PrefixSpan::default().mine(&db, threshold);
        assert!(prefix.diff(&brute).is_empty(), "references disagree (seed {seed})");
        for threads in [1, 3, 8] {
            let got = ParallelDiscAll::with_threads(threads).mine(&db, threshold);
            let diff = got.diff(&brute);
            assert!(
                diff.is_empty(),
                "ParallelDiscAll ×{threads} disagrees with BruteForce (seed {seed}, {} lines):\n{}",
                diff.len(),
                diff.join("\n")
            );
        }
    }
}

#[test]
fn nrr_levels_are_consistent_across_miners() {
    let db = quest(5, 200, 8.0);
    let a = nrr_by_level(&DiscAll::default().mine(&db, MinSupport::Fraction(0.15)), &db);
    let b = nrr_by_level(&PseudoPrefixSpan::default().mine(&db, MinSupport::Fraction(0.15)), &db);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        match (x, y) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12),
            (None, None) => {}
            _ => panic!("NRR level mismatch: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn delta_one_and_delta_db_size_edges() {
    // δ = 1 makes every contained subsequence frequent — the frequent set is
    // exponential in sequence length, so this edge runs on the paper's tiny
    // Table 1 database; the δ = |DB| edge runs on a generated workload.
    let tiny = SequenceDatabase::from_parsed(&[
        "(a,e,g)(b)(h)(f)(c)(b,f)",
        "(b)(d,f)(e)",
        "(b,f,g)",
        "(f)(a,g)(b,f,h)(b,f)",
    ])
    .unwrap();
    assert_agreement(&tiny, MinSupport::Count(1));

    let db = quest(6, 40, 3.0);
    assert_agreement(&db, MinSupport::Count(db.len() as u64));
}
