//! The store crash-recovery gate: every injected fault at every WAL append
//! point, and every snapshot fault at compaction, must leave a store that
//! reopens to **exactly** the acknowledged prefix — and mining the
//! recovered database must be bit-identical to mining a never-crashed
//! ingest of the same records.
//!
//! CI runs this suite once per thread count (1, 2, 4) in release mode via
//! `DISC_DETERMINISM_THREADS`. Store directories live under
//! `DISC_STORE_DIR` when set (CI points it at a workspace path so a failing
//! store's segments can be uploaded as an artifact); on success each test
//! removes its directories.

use disc_miner::core::{CustomerSequence, FaultPlan, IoFault, IoWriter, SegmentStatus};
use disc_miner::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

const MINSUP: MinSupport = MinSupport::Fraction(0.15);

/// A workload small enough that mining at every crash point stays cheap,
/// yet wide enough that prefixes differ meaningfully.
fn workload() -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(40)
        .with_nitems(20)
        .with_pools(20, 40)
        .with_slen(3.0)
        .with_seed(77)
        .generate()
}

/// Store directories go under `DISC_STORE_DIR` when set so CI can upload
/// whatever a failing test leaves behind.
fn store_root() -> PathBuf {
    match std::env::var("DISC_STORE_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => std::env::temp_dir(),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = store_root().join(format!("store-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The database a never-crashed ingest of `rows[..k]` produces.
fn prefix_db(rows: &[CustomerSequence], k: usize) -> SequenceDatabase {
    let mut db = SequenceDatabase::new();
    for row in &rows[..k] {
        db.push(row.cid, row.sequence.clone());
    }
    db
}

/// Parallel thread counts under test: `DISC_DETERMINISM_THREADS`
/// (comma-separated) when set — CI's matrix sets one per job — else 1, 2, 4.
fn thread_counts() -> Vec<usize> {
    match std::env::var("DISC_DETERMINISM_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad DISC_DETERMINISM_THREADS entry {s:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn assert_identical(label: &str, got: &MiningResult, reference: &MiningResult) {
    let diff = got.diff(reference);
    assert!(
        diff.is_empty(),
        "{label} differs from the never-crashed run ({} lines):\n{}",
        diff.len(),
        diff.join("\n")
    );
}

/// Appends rows until one fails (the injected crash); the store is then
/// dropped without a clean close, exactly like a killed process. Returns
/// the number of **acknowledged** appends.
fn ingest_until_crash(dir: &Path, rows: &[CustomerSequence], plan: FaultPlan) -> usize {
    let mut store = SequenceStore::open_with_fault(dir, StoreConfig::default(), plan)
        .expect("open on a fresh directory");
    let mut acked = 0;
    for row in rows {
        match store.append(row.cid, row.sequence.clone()) {
            Ok(()) => acked += 1,
            Err(_) => break,
        }
    }
    acked
}

/// The headline matrix: a crash-class fault at **every** append index must
/// lose exactly the unacknowledged suffix, and mining the recovered store
/// must match mining a never-crashed ingest of the acknowledged prefix.
#[test]
fn wal_append_crash_matrix_recovers_the_exact_acked_prefix() {
    let db = workload();
    let rows = db.rows();
    for fault in [IoFault::TornWrite, IoFault::Enospc] {
        for k in 0..rows.len() {
            let label = format!("wal-{fault:?}-a{k}");
            let dir = fresh_dir(&label);
            let plan = FaultPlan::io_fault_at(IoWriter::WalAppend, k as u64, fault);
            let acked = ingest_until_crash(&dir, rows, plan);
            assert_eq!(acked, k, "{label}: the fault must kill append {k} exactly");

            // fsck sees what the crash left: recoverable, with exactly the
            // acknowledged records, and (for a torn write) a torn tail.
            let report = fsck(&dir).expect("fsck reads the directory");
            assert!(report.is_recoverable(), "{label}: must be recoverable\n{report}");
            assert_eq!(report.acked_records, k as u64, "{label}\n{report}");
            if fault == IoFault::TornWrite {
                assert!(
                    report
                        .segments
                        .iter()
                        .any(|s| matches!(s.status, SegmentStatus::TornTail { .. })),
                    "{label}: a torn write must leave a torn tail\n{report}"
                );
            }

            // Recovery restores the acknowledged prefix, bit for bit.
            let store = SequenceStore::open(&dir, StoreConfig::default())
                .unwrap_or_else(|e| panic!("{label}: reopen failed: {e}"));
            let expected = prefix_db(rows, k);
            assert_eq!(*store.view(), expected, "{label}: recovered database");

            // And mining it is indistinguishable from never having crashed.
            let got = DiscAll::default().mine(&store.view(), MINSUP);
            let want = DiscAll::default().mine(&expected, MINSUP);
            assert_identical(&label, &got, &want);

            // A clean close leaves a clean store.
            store.close().expect("close");
            let after = fsck(&dir).expect("fsck after recovery");
            assert!(after.is_clean(), "{label}: recovery must repair\n{after}");
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// A transient interruption mid-append is absorbed by the retry loop: every
/// append acks, nothing is lost, and the store is indistinguishable from an
/// uninterrupted ingest.
#[test]
fn interrupted_appends_are_retried_and_lose_nothing() {
    let db = workload();
    let rows = db.rows();
    for k in [0, rows.len() / 2, rows.len() - 1] {
        let label = format!("wal-eintr-a{k}");
        let dir = fresh_dir(&label);
        let plan = FaultPlan::io_fault_at(IoWriter::WalAppend, k as u64, IoFault::Interrupted);
        let acked = ingest_until_crash(&dir, rows, plan);
        assert_eq!(acked, rows.len(), "{label}: EINTR must be retried, not surfaced");

        let store = SequenceStore::open(&dir, StoreConfig::default()).expect("reopen");
        assert_eq!(*store.view(), db, "{label}: nothing may be lost");
        store.close().expect("close");
        assert!(fsck(&dir).expect("fsck").is_clean(), "{label}");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Every snapshot-write fault mode at compaction: acknowledged records are
/// never lost, the previous state is never destroyed, and the recovered
/// store mines identically to the never-crashed database.
#[test]
fn compaction_fault_matrix_preserves_every_acked_record() {
    let db = workload();
    let rows = db.rows();
    let reference = DiscAll::default().mine(&db, MINSUP);
    // Small segments so a compaction genuinely folds several of them.
    let small = StoreConfig { segment_max_bytes: 256, ..StoreConfig::default() };
    let faults = [
        IoFault::TornWrite,
        IoFault::Enospc,
        IoFault::Interrupted,
        IoFault::CorruptByte,
        IoFault::StaleVersion,
        IoFault::CrashBeforeRename,
        IoFault::CrashAfterRename,
    ];
    for fault in faults {
        let label = format!("compact-{fault:?}");
        let dir = fresh_dir(&label);
        let mut store = SequenceStore::open(&dir, small).expect("open");
        for row in rows {
            store.append(row.cid, row.sequence.clone()).expect("append");
        }
        store.arm_fault(FaultPlan::io_fault_at(IoWriter::StoreSnapshot, 0, fault));
        let res = store.compact();
        if fault == IoFault::Interrupted {
            // Transient: the retry clears it and the compaction completes.
            let report = res.unwrap_or_else(|e| panic!("{label}: must succeed: {e}"));
            assert!(report.folded_segments > 1, "{label}: should fold several segments");
        } else {
            res.expect_err("a crash-class snapshot fault must fail the compaction");
        }
        drop(store); // the "process dies" here

        // Whatever the crash left — a torn temp file, a published snapshot
        // with stale segments, an unpublished one — fsck must call it
        // recoverable with every acknowledged record intact.
        let report = fsck(&dir).expect("fsck");
        assert!(report.is_recoverable(), "{label}\n{report}");
        assert_eq!(report.acked_records, rows.len() as u64, "{label}\n{report}");

        let store = SequenceStore::open(&dir, small).expect("reopen");
        assert_eq!(*store.view(), db, "{label}: recovered database");
        if fault == IoFault::CrashAfterRename {
            // The snapshot was published; recovery finishes the interrupted
            // cleanup by deleting the superseded segments.
            assert!(
                store.recovery_report().stale_segments_removed > 0,
                "{label}: recovery must remove the stale segments"
            );
        }
        let got = DiscAll::default().mine(&store.view(), MINSUP);
        assert_identical(&label, &got, &reference);

        // The next compaction, on the recovered store, must succeed and
        // leave a clean store.
        let mut store = store;
        store.compact().unwrap_or_else(|e| panic!("{label}: recovered compaction: {e}"));
        store.close().expect("close");
        assert!(fsck(&dir).expect("fsck").is_clean(), "{label}");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The parallel miner, at every thread count under test, mines a recovered
/// store bit-identically to the sequential miner on the same prefix.
#[test]
fn parallel_mine_from_a_recovered_store_is_bit_identical() {
    let db = workload();
    let rows = db.rows();
    let k = rows.len() / 2;
    let dir = fresh_dir("parallel");
    let plan = FaultPlan::io_fault_at(IoWriter::WalAppend, k as u64, IoFault::TornWrite);
    let acked = ingest_until_crash(&dir, rows, plan);
    assert_eq!(acked, k);

    let store = SequenceStore::open(&dir, StoreConfig::default()).expect("reopen");
    let expected = prefix_db(rows, k);
    let reference = DiscAll::default().mine(&expected, MINSUP);
    for threads in thread_counts() {
        let got = ParallelDiscAll::with_threads(threads).mine(&store.view(), MINSUP);
        assert_identical(&format!("parallel-{threads} from recovered store"), &got, &reference);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// End to end: crash mid-ingest, recover, finish the ingest, compact, and
/// reopen — the final store holds the full database and mines identically
/// to a run that never crashed.
#[test]
fn resumed_ingest_after_a_crash_completes_to_the_full_database() {
    let db = workload();
    let rows = db.rows();
    let k = rows.len() / 3;
    let dir = fresh_dir("resume-ingest");
    let plan = FaultPlan::io_fault_at(IoWriter::WalAppend, k as u64, IoFault::TornWrite);
    assert_eq!(ingest_until_crash(&dir, rows, plan), k);

    let mut store = SequenceStore::open(&dir, StoreConfig::default()).expect("reopen");
    assert_eq!(store.len(), k);
    for row in &rows[k..] {
        store.append(row.cid, row.sequence.clone()).expect("append after recovery");
    }
    store.compact().expect("compact");
    store.close().expect("close");

    let store = SequenceStore::open(&dir, StoreConfig::default()).expect("final reopen");
    assert_eq!(*store.view(), db, "the completed store holds the full database");
    assert_eq!(
        store.recovery_report().snapshot_rows,
        rows.len(),
        "after compaction every row recovers from the snapshot"
    );
    let got = DiscAll::default().mine(&store.view(), MINSUP);
    let reference = DiscAll::default().mine(&db, MINSUP);
    assert_identical("resumed ingest", &got, &reference);
    assert!(fsck(&dir).expect("fsck").is_clean());
    let _ = fs::remove_dir_all(&dir);
}
