//! The crash-recovery gate: every miner, killed at **every** snapshot-write
//! crash point, must resume to a frequent set **bit-identical** to an
//! uninterrupted run — and a corrupted, truncated, or foreign snapshot must
//! be rejected with a typed error, never partially loaded.
//!
//! CI runs this suite once per thread count (1, 2, 4) in release mode via
//! the `DISC_DETERMINISM_THREADS` environment variable; without it every
//! count is exercised in-process. Checkpoint directories live under
//! `DISC_CKPT_DIR` when set (CI points it at a workspace path so the last
//! failing snapshot can be uploaded as an artifact); on success each test
//! removes its directories.

use disc_miner::core::{read_snapshot, CheckpointCrash, FaultPlan};
use disc_miner::prelude::*;
use std::fs;
use std::path::PathBuf;

/// Every injected crash mode, in write-protocol order.
const CRASHES: [CheckpointCrash; 4] = [
    CheckpointCrash::TornTempWrite,
    CheckpointCrash::CrashBeforeRename,
    CheckpointCrash::CorruptSection,
    CheckpointCrash::StaleVersion,
];

/// A workload with enough first-level partitions that mid-run crash points
/// are plentiful, yet small enough for debug builds.
fn workload() -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(80)
        .with_nitems(24)
        .with_pools(24, 48)
        .with_slen(4.0)
        .with_seed(31)
        .generate()
}

const MINSUP: MinSupport = MinSupport::Fraction(0.15);

/// Checkpoint directories go under `DISC_CKPT_DIR` when set so CI can
/// upload whatever a failing test leaves behind.
fn ckpt_root() -> PathBuf {
    match std::env::var("DISC_CKPT_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => std::env::temp_dir(),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = ckpt_root().join(format!("ckpt-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Parallel thread counts under test: `DISC_DETERMINISM_THREADS`
/// (comma-separated) when set — CI's matrix sets one per job — else 1, 2, 4.
fn thread_counts() -> Vec<usize> {
    match std::env::var("DISC_DETERMINISM_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad DISC_DETERMINISM_THREADS entry {s:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn assert_identical(label: &str, got: &MiningResult, reference: &MiningResult) {
    let diff = got.diff(reference);
    assert!(
        diff.is_empty(),
        "{label} differs from the uninterrupted run ({} lines):\n{}",
        diff.len(),
        diff.join("\n")
    );
}

/// The matrix core: discover how many snapshot writes a clean checkpointed
/// run of `make()` performs, then kill the run at every (crash mode, write
/// index) pair and assert the resumed result is bit-identical.
fn crash_matrix<M: Checkpointable>(tag: &str, make: impl Fn() -> M) {
    let db = workload();
    let reference = make().mine(&db, MINSUP);
    assert!(!reference.is_empty(), "workload must produce patterns");

    // Clean checkpointed run: also the baseline for the write count.
    let dir = fresh_dir(&format!("{tag}-clean"));
    let wrapped = Resumable::new(make(), &dir);
    let clean = wrapped.mine_guarded(&db, MINSUP, &MineGuard::unlimited());
    assert!(clean.outcome.is_complete());
    assert_identical(&format!("{tag} clean checkpointed run"), &clean.result, &reference);
    let writes = wrapped.last_stats().writes;
    assert!(writes >= 2, "{tag}: need ≥ 2 snapshot writes for a meaningful matrix, got {writes}");
    let _ = fs::remove_dir_all(&dir);

    for crash in CRASHES {
        for write_n in 1..=writes {
            let label = format!("{tag}-{crash:?}-w{write_n}");
            let dir = fresh_dir(&label);
            let wrapped = Resumable::new(make(), &dir);
            let guard = MineGuard::unlimited()
                .with_checkpoint_interval(1)
                .with_fault(FaultPlan::crash_at_snapshot_write(write_n, crash));
            let run = wrapped.mine_guarded(&db, MINSUP, &guard);
            assert_eq!(
                run.outcome,
                MineOutcome::Partial { reason: AbortReason::Panicked },
                "{label}: the injected crash must kill the run"
            );
            // Whatever the crash left on disk — an older snapshot, a torn
            // temp file, a corrupted or stale final file — the next guarded
            // run must recover to the exact frequent set.
            let resumed = wrapped.mine_guarded(&db, MINSUP, &MineGuard::unlimited());
            assert!(resumed.outcome.is_complete(), "{label}: resume must complete");
            assert_identical(&label, &resumed.result, &reference);
            // Success: clean up. (A failed assert leaves the directory for
            // CI's artifact upload.)
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn disc_all_resumes_bit_identical_from_every_crash_point() {
    crash_matrix("disc-all", DiscAll::default);
}

#[test]
fn dynamic_resumes_bit_identical_from_every_crash_point() {
    crash_matrix("dynamic", DynamicDiscAll::default);
}

#[test]
fn parallel_resumes_bit_identical_from_every_crash_point() {
    for threads in thread_counts() {
        crash_matrix(&format!("parallel-{threads}"), || ParallelDiscAll::with_threads(threads));
    }
}

#[test]
fn repeated_crashes_converge() {
    // Crash at a later write each attempt; every resume keeps the previous
    // durable boundary and the final unconstrained attempt completes.
    let db = workload();
    let reference = DiscAll::default().mine(&db, MINSUP);
    let dir = fresh_dir("repeated");
    let wrapped = Resumable::new(DiscAll::default(), &dir);
    for write_n in 1..=3u64 {
        let guard = MineGuard::unlimited().with_checkpoint_interval(1).with_fault(
            FaultPlan::crash_at_snapshot_write(write_n, CheckpointCrash::TornTempWrite),
        );
        let run = wrapped.mine_guarded(&db, MINSUP, &guard);
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
    }
    let run = wrapped.mine_guarded(&db, MINSUP, &MineGuard::unlimited());
    assert!(run.outcome.is_complete());
    assert_identical("repeated crash chain", &run.result, &reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn budget_abort_writes_checkpoint_and_resume_completes() {
    let db = workload();
    let reference = DiscAll::default().mine(&db, MINSUP);
    let dir = fresh_dir("budget");
    let wrapped = Resumable::new(DiscAll::default(), &dir);
    let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_max_ops(1_500))
        .with_checkpoint_interval(1);
    let first = wrapped.mine_guarded(&db, MINSUP, &guard);
    assert_eq!(first.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
    // The cooperative abort recorded its durable state in the outcome.
    assert_eq!(first.checkpoint.as_deref(), Some(wrapped.checkpoint_path().as_path()));
    let resumed = wrapped.mine_guarded(&db, MINSUP, &MineGuard::unlimited());
    assert!(resumed.outcome.is_complete());
    assert_identical("budget abort resume", &resumed.result, &reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fallback_chain_records_the_aborted_stage_checkpoint() {
    // A Resumable first stage dies mid-snapshot-write; the fallback stage
    // answers the request, and the stage report carries the checkpoint path
    // so a later run can resume the interrupted DISC mine.
    let db = workload();
    let reference = DiscAll::default().mine(&db, MINSUP);
    let dir = fresh_dir("fallback");
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let chain = FallbackMiner::new(vec![
        Box::new(Resumable::new(DiscAll::default(), &dir)),
        Box::new(PrefixSpan::default()),
    ]);
    let guard = MineGuard::unlimited()
        .with_checkpoint_interval(1)
        .with_fault(FaultPlan::crash_at_snapshot_write(2, CheckpointCrash::TornTempWrite));
    let (run, reports) = chain.run(&db, MINSUP, &guard);
    assert!(run.outcome.is_complete(), "the fallback stage completes the request");
    assert_identical("fallback final result", &run.result, &reference);
    assert_eq!(reports.len(), 2);
    assert_eq!(
        reports[0].checkpoint.as_deref(),
        Some(ckpt_path.as_path()),
        "the aborted stage must report where its durable state lives"
    );
    assert_eq!(reports[1].checkpoint, None, "PrefixSpan does not checkpoint");
    // The recorded checkpoint is genuinely resumable.
    let resumed = Resumable::new(DiscAll::default(), &dir)
        .resume_from(&ckpt_path, &db, MINSUP, &MineGuard::unlimited())
        .expect("the stage's checkpoint is valid");
    assert!(resumed.outcome.is_complete());
    assert_identical("resume from fallback stage checkpoint", &resumed.result, &reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_truncated_checkpoints_are_rejected_not_loaded() {
    let db = workload();
    let dir = fresh_dir("corrupt");
    let wrapped = Resumable::new(DiscAll::default(), &dir);
    let reference = wrapped.mine(&db, MINSUP);
    let path = wrapped.checkpoint_path();
    let pristine = fs::read(&path).expect("clean run leaves a snapshot");
    read_snapshot(&path).expect("pristine snapshot loads");

    // Single-byte corruption at a spread of offsets: typed rejection.
    for offset in [0, 3, 8, pristine.len() / 3, pristine.len() / 2, pristine.len() - 2] {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let err = wrapped
            .resume_from(&path, &db, MINSUP, &MineGuard::unlimited())
            .expect_err("corruption must be rejected");
        let msg = err.to_string();
        assert!(!msg.is_empty());
        // And auto-resume treats it as absent rather than trusting it.
        let run = wrapped.mine_guarded(&db, MINSUP, &MineGuard::unlimited());
        assert!(run.outcome.is_complete());
        assert_identical(
            &format!("fresh run after corruption at {offset}"),
            &run.result,
            &reference,
        );
        fs::write(&path, &pristine).unwrap();
    }

    // Truncation at every prefix length that cuts inside the file.
    for cut in [0, 1, CHECKPOINT_MAGIC_LEN, pristine.len() / 2, pristine.len() - 1] {
        fs::write(&path, &pristine[..cut]).unwrap();
        wrapped
            .resume_from(&path, &db, MINSUP, &MineGuard::unlimited())
            .expect_err("truncation must be rejected");
        fs::write(&path, &pristine).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Length of the `DSCCK1\n` magic prefix.
const CHECKPOINT_MAGIC_LEN: usize = 7;

#[test]
fn foreign_database_and_wrong_delta_are_rejected() {
    let db = workload();
    let other = QuestConfig::paper_table11()
        .with_ncust(80)
        .with_nitems(24)
        .with_pools(24, 48)
        .with_slen(4.0)
        .with_seed(32) // same shape, different data
        .generate();
    let dir = fresh_dir("foreign");
    let wrapped = Resumable::new(DiscAll::default(), &dir);
    wrapped.mine(&db, MINSUP);
    let path = wrapped.checkpoint_path();

    let err = wrapped
        .resume_from(&path, &other, MINSUP, &MineGuard::unlimited())
        .expect_err("foreign database must be rejected");
    assert!(
        matches!(err, CheckpointError::FingerprintMismatch { .. }),
        "expected FingerprintMismatch, got {err:?}"
    );

    let err = wrapped
        .resume_from(&path, &db, MinSupport::Fraction(0.5), &MineGuard::unlimited())
        .expect_err("different δ must be rejected");
    assert!(
        matches!(err, CheckpointError::DeltaMismatch { .. }),
        "expected DeltaMismatch, got {err:?}"
    );

    // Auto-resume on the foreign database ignores the snapshot and mines
    // fresh — atomically replacing it with its own.
    let reference_other = DiscAll::default().mine(&other, MINSUP);
    let run = wrapped.mine_guarded(&other, MINSUP, &MineGuard::unlimited());
    assert!(run.outcome.is_complete());
    assert_identical("fresh run over foreign snapshot", &run.result, &reference_other);
    let snap = read_snapshot(&path).expect("replaced snapshot loads");
    snap.validate(&other, MINSUP.resolve(other.len())).expect("snapshot now belongs to `other`");
    let _ = fs::remove_dir_all(&dir);
}
