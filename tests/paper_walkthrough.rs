//! Replays the paper's worked examples end to end through the public API:
//! the Section 1.2 walkthrough on Table 1, and the Section 3 walkthrough on
//! Table 6 (Examples 3.1–3.5). Each assertion cites the table or example it
//! reproduces.

use disc_miner::core::kmin::{min_k_subsequence_above_naive, min_k_subsequence_naive};
use disc_miner::prelude::*;

fn seq(s: &str) -> Sequence {
    parse_sequence(s).unwrap()
}

fn table1() -> SequenceDatabase {
    SequenceDatabase::from_parsed(&[
        "(a,e,g)(b)(h)(f)(c)(b,f)",
        "(b)(d,f)(e)",
        "(b,f,g)",
        "(f)(a,g)(b,f,h)(b,f)",
    ])
    .unwrap()
}

fn table6() -> SequenceDatabase {
    SequenceDatabase::from_parsed(&[
        "(a,d)(d)(a,g,h)(c)",
        "(b)(a)(f)(a,c,e,g)",
        "(a,f,g)(a,e,g,h)(c,g,h)",
        "(f)(a,c,f)(a,c,e,g,h)",
        "(a,g)",
        "(a,f)(a,e,g,h)",
        "(a,b,g)(a,e,g)(g,h)",
        "(b,f)(b,e)(e,f,h)",
        "(d,f)(d,f,g,h)",
        "(b,f,g)(c,e,h)",
        "(e,g)(f)(e,f)",
    ])
    .unwrap()
}

#[test]
fn table_3_the_3_sorted_database() {
    // Table 3: the 3-minimum subsequences of Table 1, in sorted order.
    let db = table1();
    let mut rows: Vec<(Sequence, u64)> = db
        .rows()
        .iter()
        .map(|r| (min_k_subsequence_naive(&r.sequence, 3).unwrap(), r.cid.0))
        .collect();
    rows.sort();
    let view: Vec<(String, u64)> = rows.iter().map(|(s, c)| (s.to_string(), *c)).collect();
    assert_eq!(
        view,
        vec![
            ("(a)(b)(b)".to_string(), 1),
            ("(a)(b)(b)".to_string(), 4),
            ("(b)(d)(e)".to_string(), 2),
            ("(b, f, g)".to_string(), 3),
        ]
    );
}

#[test]
fn example_1_1_and_1_2_disc_decisions() {
    let db = table1();
    // Example 1.1: with δ = 2, α₁ = <(a)(b)(b)> equals α_δ → frequent with
    // support exactly 2.
    let result = DiscAll::default().mine(&db, MinSupport::Count(2));
    assert_eq!(result.support_of(&seq("(a)(b)(b)")), Some(2));

    // Example 1.2: with δ = 3, <(a)(b)(b)> is not frequent, and neither is
    // any 3-sequence below <(b)(d)(e)>; the conditional minima of CIDs 1
    // and 4 are Table 4's <(b)(f)(b)> and <(b,f)(b)>.
    let result3 = DiscAll::default().mine(&db, MinSupport::Count(3));
    assert!(!result3.contains_pattern(&seq("(a)(b)(b)")));
    assert!(!result3.contains_pattern(&seq("(a)(b)(c)")));
    assert!(!result3.contains_pattern(&seq("(a)(b,f)")));
    let bound = seq("(b)(d)(e)");
    assert_eq!(
        min_k_subsequence_above_naive(db.sequence(0), 3, &bound, false).unwrap(),
        seq("(b)(f)(b)")
    );
    assert_eq!(
        min_k_subsequence_above_naive(db.sequence(3), 3, &bound, false).unwrap(),
        seq("(b,f)(b)")
    );
}

#[test]
fn section_3_walkthrough_on_table_6() {
    // δ = 3 throughout Section 3's examples.
    let db = table6();
    let result = DiscAll::default().mine(&db, MinSupport::Count(3));

    // Example 3.1: all 1-sequences except <(d)> are frequent.
    for c in ['a', 'b', 'c', 'e', 'f', 'g', 'h'] {
        assert!(result.contains_pattern(&seq(&format!("({c})"))), "({c})");
    }
    assert!(!result.contains_pattern(&seq("(d)")));

    // Example 3.1's promised patterns with a as first item.
    assert!(result.contains_pattern(&seq("(a,e)")));
    assert!(result.contains_pattern(&seq("(a)(g,h)")));

    // Example 3.2 / Figure 3: the frequent and non-frequent 2-sequences of
    // the <(a)>-partition.
    for p in ["(a)(a)", "(a)(c)", "(a,e)", "(a)(e)", "(a,f)", "(a,g)", "(a)(g)", "(a,h)", "(a)(h)"]
    {
        assert!(result.contains_pattern(&seq(p)), "{p} should be frequent");
    }
    for p in ["(a)(b)", "(a)(d)", "(a)(f)", "(a,b)", "(a,c)", "(a,d)"] {
        assert!(!result.contains_pattern(&seq(p)), "{p} should not be frequent");
    }

    // Examples 3.3–3.4 / Tables 9–10 culminate in the frequent 4-sequences
    // of the <(a)(a)>-partition…
    assert_eq!(result.support_of(&seq("(a)(a,e,g)")), Some(5));
    assert_eq!(result.support_of(&seq("(a)(a,e,h)")), Some(3));
    assert_eq!(result.support_of(&seq("(a)(a,g,h)")), Some(4));

    // …and Example 3.5: <(a)(a,e,g,h)> is the frequent 5-sequence found by
    // the bi-level counting array (Figure 7), support 3.
    assert_eq!(result.support_of(&seq("(a)(a,e,g,h)")), Some(3));

    // The whole answer matches brute force.
    let brute = BruteForce::default().mine(&db, MinSupport::Count(3));
    assert!(result.diff(&brute).is_empty());
}

#[test]
fn dynamic_disc_all_reproduces_the_same_walkthrough() {
    let db = table6();
    let expected = DiscAll::default().mine(&db, MinSupport::Count(3));
    for gamma in [0.0, 0.6, 2.0] {
        let got = DynamicDiscAll::with_gamma(gamma).mine(&db, MinSupport::Count(3));
        assert!(got.diff(&expected).is_empty(), "γ = {gamma}");
    }
}

#[test]
fn spade_example_from_section_1_1() {
    // "<(a,g)(h)(f)> … has a support count of 2."
    let db = table1();
    let result = Spade::default().mine(&db, MinSupport::Count(2));
    assert_eq!(result.support_of(&seq("(a,g)(h)(f)")), Some(2));
}
