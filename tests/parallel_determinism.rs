//! The parallel determinism gate: `ParallelDiscAll` must be **bit-identical**
//! to sequential `DiscAll` — same patterns, same exact supports — at every
//! thread count, and a cancelled / deadline-bound / budget-bound / shard-
//! poisoned parallel run must still return a sound partial subset.
//!
//! CI runs this suite once per thread count (1, 2, 4, 8) in release mode,
//! selecting the count with the `DISC_DETERMINISM_THREADS` environment
//! variable; without the variable every count is exercised in-process.

use disc_miner::core::support_count;
use disc_miner::prelude::*;
use std::time::{Duration, Instant};

/// Debug builds are ~30× slower; scale the workloads so `cargo test` stays
/// snappy while `cargo test --release` exercises the full sizes.
fn scaled(n: usize) -> usize {
    if cfg!(debug_assertions) {
        (n / 4).max(20)
    } else {
        n
    }
}

fn quest(seed: u64, ncust: usize, slen: f64) -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(scaled(ncust))
        .with_nitems(80)
        .with_pools(80, 160)
        .with_slen(slen)
        .with_seed(seed)
        .generate()
}

/// The thread counts under test: `DISC_DETERMINISM_THREADS` (comma-separated)
/// when set — CI's matrix sets one count per job — otherwise 1, 2, 4, 8.
fn thread_counts() -> Vec<usize> {
    match std::env::var("DISC_DETERMINISM_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad DISC_DETERMINISM_THREADS entry {s:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn assert_identical(label: &str, got: &MiningResult, reference: &MiningResult) {
    let diff = got.diff(reference);
    assert!(
        diff.is_empty(),
        "{label} differs from sequential DISC-all ({} lines):\n{}",
        diff.len(),
        diff.join("\n")
    );
}

/// Every pattern in `result` must be genuinely frequent with its exact
/// support — the soundness contract of a partial result.
fn assert_sound_subset(label: &str, db: &SequenceDatabase, result: &MiningResult, delta: u64) {
    for (pattern, support) in result.iter() {
        let actual = support_count(db, pattern);
        assert_eq!(
            support, actual,
            "{label}: partial result reports {pattern} at support {support}, actual {actual}"
        );
        assert!(
            support >= delta,
            "{label}: partial result contains infrequent pattern {pattern} (support {support} < δ={delta})"
        );
    }
}

#[test]
fn parallel_equals_sequential_at_every_thread_count() {
    // Three seeded workloads of different shapes, two thresholds each.
    let workloads =
        [(quest(21, 200, 4.0), 0.15), (quest(22, 120, 8.0), 0.2), (quest(23, 300, 3.0), 0.1)];
    for (db, fraction) in &workloads {
        let threshold = MinSupport::Fraction(*fraction);
        let reference = DiscAll::default().mine(db, threshold);
        assert!(!reference.is_empty(), "workload mined to an empty frequent set");
        for threads in thread_counts() {
            let got = ParallelDiscAll::with_threads(threads).mine(db, threshold);
            assert_identical(&format!("×{threads}"), &got, &reference);
        }
    }
}

#[test]
fn parallel_equals_sequential_without_bi_level() {
    let db = quest(24, 150, 5.0);
    let threshold = MinSupport::Fraction(0.12);
    let config = DiscConfig { bi_level: false };
    let reference = DiscAll { config }.mine(&db, threshold);
    for threads in thread_counts() {
        let got = ParallelDiscAll::with_threads(threads).with_config(config).mine(&db, threshold);
        assert_identical(&format!("×{threads} (no bi-level)"), &got, &reference);
    }
}

#[test]
fn repeated_runs_are_stable() {
    // Scheduling noise must not leak into results: the same configuration
    // run repeatedly yields the identical frequent set every time.
    let db = quest(25, 150, 6.0);
    let threshold = MinSupport::Fraction(0.15);
    for threads in thread_counts() {
        let miner = ParallelDiscAll::with_threads(threads);
        let first = miner.mine(&db, threshold);
        for round in 1..3 {
            let again = miner.mine(&db, threshold);
            assert_identical(&format!("×{threads} round {round}"), &again, &first);
        }
    }
}

#[test]
fn mine_parallel_entry_point_is_deterministic() {
    // The trait-level entry point: DiscAll::mine_parallel routes through the
    // sharded miner and must honor the identical-result contract.
    let db = quest(26, 120, 5.0);
    let threshold = MinSupport::Fraction(0.15);
    let reference = DiscAll::default().mine(&db, threshold);
    for threads in thread_counts() {
        let got = DiscAll::default().mine_parallel(&db, threshold, threads);
        assert_identical(&format!("mine_parallel ×{threads}"), &got, &reference);
    }
}

#[test]
fn cancelled_parallel_run_returns_a_sound_subset() {
    let db = quest(27, 2000, 12.0);
    let delta = MinSupport::Fraction(0.02).resolve(db.len());
    for threads in thread_counts() {
        let token = CancelToken::new();
        let guard = MineGuard::new(token.clone(), ResourceBudget::unlimited());
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                token.cancel();
            })
        };
        let start = Instant::now();
        let run = ParallelDiscAll::with_threads(threads).mine_guarded(
            &db,
            MinSupport::Count(delta),
            &guard,
        );
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "×{threads}: cancellation ignored for {elapsed:?}"
        );
        // Mining may legitimately win the race on a fast machine; when it
        // does not, the abort must be attributed to the token.
        match run.outcome {
            MineOutcome::Complete => {}
            MineOutcome::Partial { reason } => assert_eq!(reason, AbortReason::Cancelled),
        }
        assert_sound_subset(&format!("×{threads}"), &db, &run.result, delta);
    }
}

#[test]
fn deadline_bounds_a_parallel_run() {
    let db = quest(28, 2000, 12.0);
    let delta = MinSupport::Fraction(0.02).resolve(db.len());
    for threads in thread_counts() {
        let guard = MineGuard::new(
            CancelToken::new(),
            ResourceBudget::unlimited().with_deadline(Duration::from_millis(50)),
        );
        let start = Instant::now();
        let run = ParallelDiscAll::with_threads(threads).mine_guarded(
            &db,
            MinSupport::Count(delta),
            &guard,
        );
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "×{threads} took {elapsed:?} to notice a 50 ms deadline"
        );
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::DeadlineExceeded },
            "×{threads} finished a workload meant to overrun 50 ms — grow the workload"
        );
        assert_sound_subset(&format!("×{threads}"), &db, &run.result, delta);
    }
}

#[test]
fn pattern_budget_is_global_across_workers() {
    // The cap is enforced through run-wide shared counters, so the combined
    // output of all workers lands on exactly the budget — not one budget's
    // worth per worker.
    let db = quest(29, 200, 6.0);
    let threshold = MinSupport::Fraction(0.1);
    let full = DiscAll::default().mine(&db, threshold);
    // Pick a cap past the frequent 1-sequences (found in the sequential
    // prefix) so the cap genuinely trips inside the worker phase, but far
    // below the full frequent set so it must trip.
    let ones = full.iter().filter(|(p, _)| p.length() == 1).count();
    let cap = ones + 5;
    assert!(full.len() > 2 * cap, "workload too sparse to prove the cap is global");
    let delta = threshold.resolve(db.len());
    for threads in thread_counts() {
        let guard =
            MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_max_patterns(cap));
        let run = ParallelDiscAll::with_threads(threads).mine_guarded(&db, threshold, &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::BudgetExhausted },
            "×{threads}"
        );
        assert!(
            run.result.len() <= cap,
            "×{threads}: {} patterns exceed the global cap of {cap}",
            run.result.len()
        );
        assert_sound_subset(&format!("×{threads}"), &db, &run.result, delta);
    }
}

#[test]
fn ops_budget_is_global_across_workers() {
    let db = quest(30, 400, 8.0);
    let threshold = MinSupport::Fraction(0.05);
    let delta = threshold.resolve(db.len());
    for threads in thread_counts() {
        let guard =
            MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_max_ops(500))
                .with_checkpoint_interval(16);
        let run = ParallelDiscAll::with_threads(threads).mine_guarded(&db, threshold, &guard);
        assert_eq!(
            run.outcome,
            MineOutcome::Partial { reason: AbortReason::BudgetExhausted },
            "×{threads}"
        );
        assert!(run.stats.ops >= 500, "×{threads} under-charged: {:?}", run.stats);
        assert_sound_subset(&format!("×{threads}"), &db, &run.result, delta);
    }
}

#[test]
fn poisoned_shard_does_not_tear_down_its_siblings() {
    // Shard 1 (the second frequent item, ascending) panics at its second
    // worker checkpoint. Expected result: the run reports Panicked, the
    // poisoned shard contributes nothing beyond its frequent 1-sequence
    // (found in the sequential prefix), and every sibling shard still
    // delivers its complete pattern set.
    let db = quest(31, 150, 5.0);
    let threshold = MinSupport::Fraction(0.12);
    let delta = threshold.resolve(db.len());
    let reference = DiscAll::default().mine(&db, threshold);
    let ones: Vec<Sequence> =
        reference.iter().filter(|(p, _)| p.length() == 1).map(|(p, _)| p.clone()).collect();
    assert!(ones.len() >= 3, "need at least 3 frequent items to poison shard 1");
    let poisoned_first_item = ones[1].itemsets()[0].as_slice()[0];

    let miner = ParallelDiscAll::with_threads(4).with_shard_panic(1, 2);
    let guard =
        MineGuard::new(CancelToken::new(), ResourceBudget::unlimited()).with_checkpoint_interval(1);
    let run = miner.mine_guarded(&db, threshold, &guard);
    assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
    assert_sound_subset("poisoned shard", &db, &run.result, delta);

    // Every reference pattern that does not start with the poisoned item —
    // plus the poisoned item's own 1-sequence — must have survived.
    let mut missing = Vec::new();
    for (pattern, support) in reference.iter() {
        let first = pattern.itemsets()[0].as_slice()[0];
        if first == poisoned_first_item && pattern.length() > 1 {
            continue;
        }
        if run.result.support_of(pattern) != Some(support) {
            missing.push(pattern.clone());
        }
    }
    assert!(
        missing.is_empty(),
        "sibling shards lost {} patterns after shard 1 panicked: {missing:?}",
        missing.len()
    );
}

/// A deliberately tiny fallback stage: frequent 1-sequences only, found by
/// direct support counting — cheap enough to finish under any ops budget, so
/// the test below isolates whether the stage was *allowed* to run at all.
struct OneSequences;

impl SequentialMiner for OneSequences {
    fn name(&self) -> &str {
        "OneSequences"
    }
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let delta = min_support.resolve(db.len());
        let mut result = MiningResult::new();
        let Some(max_item) = db.max_item() else { return result };
        for id in 0..=max_item.id() {
            let pattern = Sequence::single(Item(id));
            let support = support_count(db, &pattern);
            if support >= delta {
                result.insert(pattern, support);
            }
        }
        result
    }
}

#[test]
fn budget_exhausted_parallel_stage_advances_to_the_fallback_stage() {
    // The ops budget is sized to survive ParallelDiscAll's sequential prefix
    // (two ~db.len()-op scans) and run dry inside the worker phase. The
    // executor's first-error propagation must stop the sibling workers
    // WITHOUT poisoning the caller's token: the fallback stage still runs,
    // and its complete result — not an empty Cancelled echo — decides the
    // chain.
    let db = quest(33, 150, 5.0);
    let threshold = MinSupport::Fraction(0.12);
    let delta = threshold.resolve(db.len());
    let chain = FallbackMiner::new(vec![
        Box::new(ParallelDiscAll::with_threads(4)),
        Box::new(OneSequences),
    ]);
    let budget = ResourceBudget::unlimited().with_max_ops(3 * db.len() as u64);
    let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(16);
    let (run, reports) = chain.run(&db, threshold, &guard);
    assert_eq!(reports.len(), 2, "the chain must reach the fallback stage");
    assert_eq!(reports[0].outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
    assert!(
        reports[1].outcome.is_complete(),
        "fallback stage was poisoned by the aborted parallel stage: {:?}",
        reports[1].outcome
    );
    assert!(run.outcome.is_complete());
    assert!(
        !guard.token().is_cancelled(),
        "the caller's token must survive a budget-aborted parallel run"
    );
    assert!(!run.result.is_empty(), "the deciding result must be the fallback stage's output");
    assert_sound_subset("fallback after budget abort", &db, &run.result, delta);
}

#[test]
fn fallback_chain_recovers_from_a_poisoned_shard() {
    // A production-shaped chain: the parallel miner with a poisoned shard
    // degrades, and the sequential stage behind it completes the job.
    let db = quest(32, 100, 4.0);
    let threshold = MinSupport::Fraction(0.15);
    let chain = FallbackMiner::new(vec![
        Box::new(ParallelDiscAll::with_threads(4).with_shard_panic(0, 2)),
        Box::new(DiscAll::default()),
    ]);
    let guard =
        MineGuard::new(CancelToken::new(), ResourceBudget::unlimited()).with_checkpoint_interval(1);
    let (run, reports) = chain.run(&db, threshold, &guard);
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
    assert_eq!(reports[1].name, "DISC-all");
    assert_eq!(reports[1].outcome, MineOutcome::Complete);
    assert!(run.outcome.is_complete());
    let expected = DiscAll::default().mine(&db, threshold);
    assert!(run.result.diff(&expected).is_empty());
}
