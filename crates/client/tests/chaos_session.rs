//! End-to-end chaos sessions: the retrying client against a live server
//! with deterministic network faults injected on one or both sides.
//!
//! The invariant (ALGORITHM.md §17): under any seeded fault schedule the
//! session either completes with output byte-identical to direct
//! `disc-mine`, or fails with a typed transient error — never a corrupt
//! result, never a hang.

use disc_algo::DiscAll;
use disc_client::{Client, ClientConfig, JobRequest};
use disc_core::{MinSupport, RetryPolicy, SequenceDatabase, SequentialMiner};
use disc_datagen::QuestConfig;
use disc_server::chaos::ChaosConfig;
use disc_server::{QuotaConfig, RateLimit, SchedulerConfig, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("disc-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn start(
    data_dir: &Path,
    chaos: Option<ChaosConfig>,
    quotas: QuotaConfig,
) -> (Server, SocketAddr, std::thread::JoinHandle<Vec<u64>>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.to_path_buf(),
        scheduler: SchedulerConfig {
            threads: 2,
            slice_ops: 50_000,
            quotas,
            ..SchedulerConfig::default()
        },
        cache_entries: 16,
        chaos,
        ..ServerConfig::default()
    };
    let server = Server::new(cfg);
    let runner = server.clone();
    let handle = std::thread::spawn(move || runner.run().expect("server run"));
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Some(a) = server.local_addr() {
            break a;
        }
        assert!(Instant::now() < deadline, "server never bound");
        std::thread::sleep(Duration::from_millis(5));
    };
    (server, addr, handle)
}

fn drain(addr: SocketAddr, handle: std::thread::JoinHandle<Vec<u64>>) {
    let quiet = Client::new(ClientConfig { addr: addr.to_string(), ..ClientConfig::default() });
    let _ = quiet.request("POST", "/admin/drain", b"");
    handle.join().expect("server thread");
}

fn test_db(seed: u64) -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(60)
        .with_nitems(40)
        .with_pools(40, 80)
        .with_slen(8.0)
        .with_seed(seed)
        .generate()
}

fn expected(db: &SequenceDatabase, delta: u64) -> Vec<u8> {
    DiscAll::default()
        .mine(db, MinSupport::Count(delta))
        .iter()
        .map(|(p, s)| format!("{s}\t{p}\n"))
        .collect::<String>()
        .into_bytes()
}

fn chaos_client(addr: SocketAddr, seed: u64) -> Client {
    Client::new(ClientConfig {
        addr: addr.to_string(),
        retry: RetryPolicy {
            max_attempts: 12,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
        },
        chaos: Some(ChaosConfig::moderate(seed)),
        ..ClientConfig::default()
    })
}

#[test]
fn chaotic_client_sessions_are_byte_identical_to_direct_mining() {
    let dir = temp_dir("client-side");
    let (_server, addr, handle) = start(&dir, None, QuotaConfig::default());

    let db = test_db(11);
    let encoded = disc_core::encode_database(&db);
    let want = expected(&db, 8);

    let mut total_faults = 0;
    for seed in [1u64, 42, 0xD15C] {
        let client = chaos_client(addr, seed);
        client.upload_db("chaos", &encoded).expect("upload survives chaos");
        let spec = JobRequest { db: "chaos".into(), delta: 8, ..JobRequest::default() };
        let got = client.mine(&spec, Duration::from_secs(60)).expect("mine survives chaos");
        assert_eq!(got, want, "seed {seed}: result diverged from direct mining");
        total_faults += client.chaos_faults();
    }
    // The harness must actually have interfered — otherwise this test
    // proves nothing about fault recovery.
    assert!(total_faults > 0, "no faults injected across all seeds");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_side_chaos_still_yields_identical_results() {
    let dir = temp_dir("server-side");
    // The server profile: the request parser reads head bytes one at a
    // time, so each byte is a fault roll — `light` keeps the per-request
    // failure rate survivable while still firing every session.
    let (_server, addr, handle) = start(&dir, Some(ChaosConfig::light(7)), QuotaConfig::default());

    let db = test_db(13);
    let want = expected(&db, 8);
    let client = Client::new(ClientConfig {
        addr: addr.to_string(),
        retry: RetryPolicy {
            max_attempts: 16,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
        },
        ..ClientConfig::default()
    });
    client.upload_db("chaos", &disc_core::encode_database(&db)).expect("upload");
    let spec = JobRequest { db: "chaos".into(), delta: 8, ..JobRequest::default() };
    let got = client.mine(&spec, Duration::from_secs(60)).expect("mine");
    assert_eq!(got, want, "server-side faults corrupted the result");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_backs_off_on_rate_429_and_eventually_succeeds() {
    let dir = temp_dir("backoff");
    let quotas = QuotaConfig {
        // One token, fast refill: the second submission draws a 429 with
        // Retry-After and must get through after backing off.
        rate: Some(RateLimit { burst: 1, per_sec: 5.0 }),
        ..QuotaConfig::default()
    };
    let (_server, addr, handle) = start(&dir, None, quotas);

    let db = test_db(17);
    let client = Client::new(ClientConfig { addr: addr.to_string(), ..ClientConfig::default() });
    client.upload_db("q", &disc_core::encode_database(&db)).expect("upload");

    // Burn the burst token, then submit again immediately: the client
    // must see the 429, honor Retry-After, and succeed on a later try.
    let spec = JobRequest { db: "q".into(), delta: 8, ..JobRequest::default() };
    let first = client.submit_job(&spec).expect("first submission admitted");
    let before = client.retries();
    let second = client.submit_job(&spec).expect("client retries through the 429");
    assert!(client.retries() > before, "the 429 must be absorbed by backing off, not surfaced");
    // Identical spec → the result cache may return the same job id; both
    // must reach a terminal state either way.
    let deadline = Duration::from_secs(60);
    assert_eq!(client.wait_terminal(first, deadline).expect("first settles"), "done");
    assert_eq!(client.wait_terminal(second, deadline).expect("second settles"), "done");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
