//! # disc-client
//!
//! A retrying client for the `disc-server` mining API — the userland half
//! of the overload-safety contract. The server sheds, meters, and times
//! out; this client turns every one of those typed refusals, plus any raw
//! network fault, into either a clean retry or a typed error:
//!
//! * **`Retry-After` is honored**: a 503 (shed, transient failure) or a
//!   429 carrying the header sleeps the advertised seconds (capped by
//!   [`ClientConfig::max_retry_after`]) before retrying;
//! * **transient network faults back off**: connect/read/write failures in
//!   the [`disc_core::is_transient_net_kind`] class retry on the guard
//!   layer's jittered [`RetryPolicy`] schedule;
//! * **re-submission is idempotent**: a mining job is keyed server-side by
//!   (database fingerprint, δ, algorithm, mode) in the result cache, and
//!   checkpoints are content-addressed per job — so when a fault lands
//!   *after* the server acted but *before* the response arrived, blindly
//!   submitting again converges on the same bytes instead of duplicating
//!   work. That property is what the chaos harness (`ChaosStream`, CI's
//!   `chaos-smoke` job) actually proves: any injected drop, stall, partial
//!   transfer, or reset ends in a typed [`ClientError`] or a result
//!   byte-identical to direct `disc-mine`.
//!
//! The crate is std-only like the rest of the workspace; the HTTP wire
//! code is shared with the server (`disc_server::http`), so both ends
//! parse exactly what the other writes.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use disc_core::{fresh_retry_salt, is_transient_net_kind, RetryPolicy};
use disc_server::chaos::{ChaosConfig, ChaosLedger, ChaosStream};
use disc_server::http::{read_response, HttpError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Backoff schedule for transient faults and server-advertised
    /// retries. `max_attempts` bounds the whole request, whatever mix of
    /// faults and 429/503s it hits.
    pub retry: RetryPolicy,
    /// Cap on any single `Retry-After` sleep — a hostile or confused
    /// server cannot park the client for minutes.
    pub max_retry_after: Duration,
    /// Socket read/write deadlines (the client-side slow-loris defense).
    pub io_timeout: Duration,
    /// Cap on a response's total bytes (head + body). Exceeding it is a
    /// fatal [`ClientError::Transport`] — retrying would download the
    /// same oversized reply again — so size it above the largest result
    /// you expect to fetch.
    pub max_response_bytes: usize,
    /// When set, every outbound connection is wrapped in a seeded
    /// [`ChaosStream`] — the harness injects faults on the client side of
    /// the wire too.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addr: "127.0.0.1:7031".into(),
            retry: RetryPolicy {
                max_attempts: 8,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(500),
            },
            max_retry_after: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            max_response_bytes: 256 << 20,
            chaos: None,
        }
    }
}

/// Why a request (after all retries) did not produce a usable response.
#[derive(Debug)]
pub enum ClientError {
    /// The retry budget ran out; `last` describes the final failure.
    Exhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
    /// The server answered with a non-retryable error status.
    Http {
        /// The HTTP status.
        status: u16,
        /// The response body (the server's typed JSON error).
        body: String,
    },
    /// The mining job itself ended in a permanent failure or was
    /// cancelled.
    Job {
        /// The job's terminal state (`failed`, `cancelled`).
        state: String,
        /// The server's error message, when present.
        message: String,
    },
    /// A non-transient transport failure (bad address, permission denied)
    /// — retrying cannot help, so it short-circuits the backoff loop.
    Transport(String),
    /// A response field the protocol guarantees was missing — a version
    /// mismatch, not a network fault.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
            ClientError::Http { status, body } => write!(f, "server refused: HTTP {status} {body}"),
            ClientError::Job { state, message } => write!(f, "job {state}: {message}"),
            ClientError::Transport(what) => write!(f, "transport failure: {what}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether retrying the whole operation later could help — mirrors
    /// `DiscError::is_transient` / CLI exit 75.
    pub fn is_transient(&self) -> bool {
        matches!(self, ClientError::Exhausted { .. })
    }
}

/// A decoded server reply.
#[derive(Debug)]
pub struct Reply {
    /// HTTP status.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Reply {
    /// The body as UTF-8 (lossy — error bodies are ASCII JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// The retrying client. Cheap to construct; holds no connection (the
/// server is `Connection: close` per request anyway).
pub struct Client {
    cfg: ClientConfig,
    retries: AtomicU64,
    conn_ordinal: AtomicU64,
    chaos_ledger: ChaosLedger,
}

impl Client {
    /// A client for `cfg.addr`.
    pub fn new(cfg: ClientConfig) -> Client {
        Client {
            cfg,
            retries: AtomicU64::new(0),
            conn_ordinal: AtomicU64::new(0),
            chaos_ledger: ChaosLedger::default(),
        }
    }

    /// Retries performed so far (tests assert the backoff actually ran).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Chaos faults injected on this client's connections so far.
    pub fn chaos_faults(&self) -> u64 {
        self.chaos_ledger.injected()
    }

    /// One request with the full retry discipline. Returns the first
    /// response that is neither a transport fault nor a server
    /// back-off signal (503, or 429 with `Retry-After`); classifying the
    /// final status is the caller's business.
    pub fn request(&self, method: &str, target: &str, body: &[u8]) -> Result<Reply, ClientError> {
        let attempts = self.cfg.retry.max_attempts.max(1);
        let mut last = String::from("never attempted");
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            // No retry follows the last attempt, so sleeping after its
            // failure (server-advertised or backoff) would be pure added
            // latency on the way to Exhausted.
            let final_attempt = attempt + 1 == attempts;
            match self.attempt(method, target, body) {
                Ok((status, retry_after, resp_body)) => {
                    let backoff = match status {
                        503 => Some(retry_after.unwrap_or(1)),
                        429 => retry_after, // no header ⇒ budget spent ⇒ final
                        _ => None,
                    };
                    match backoff {
                        Some(secs) => {
                            last = format!("HTTP {status}, told to retry after {secs}s");
                            if !final_attempt {
                                // The server computed how long to stay
                                // away; honor it, bounded by our own cap.
                                let wait = Duration::from_secs(u64::from(secs))
                                    .min(self.cfg.max_retry_after);
                                std::thread::sleep(wait);
                            }
                        }
                        None => return Ok(Reply { status, body: resp_body }),
                    }
                }
                Err(TransportFault::Transient(what)) => {
                    last = what;
                    if !final_attempt {
                        std::thread::sleep(self.cfg.retry.delay(attempt + 1, fresh_retry_salt()));
                    }
                }
                Err(TransportFault::Fatal(what)) => return Err(ClientError::Transport(what)),
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// One wire attempt: connect, (optionally) wrap in chaos, send, read.
    fn attempt(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(u16, Option<u32>, Vec<u8>), TransportFault> {
        let stream = TcpStream::connect(&self.cfg.addr).map_err(|e| classify("connect", &e))?;
        let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
        let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
        match self.cfg.chaos {
            Some(chaos) => {
                let ordinal = self.conn_ordinal.fetch_add(1, Ordering::Relaxed);
                // Offset the ordinal stream so client-side connections draw
                // different faults than the server's, even under one seed.
                let seed = chaos.connection_seed(ordinal ^ 0x00C1_1E47);
                let mut wrapped =
                    ChaosStream::new(stream, chaos, seed).with_ledger(&self.chaos_ledger);
                self.exchange(&mut wrapped, method, target, body)
            }
            None => {
                let mut stream = stream;
                self.exchange(&mut stream, method, target, body)
            }
        }
    }

    fn exchange<S: Read + Write>(
        &self,
        stream: &mut S,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(u16, Option<u32>, Vec<u8>), TransportFault> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: disc\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).map_err(|e| classify("send head", &e))?;
        stream.write_all(body).map_err(|e| classify("send body", &e))?;
        stream.flush().map_err(|e| classify("flush", &e))?;
        match read_response(stream, self.cfg.max_response_bytes) {
            Ok(reply) => Ok(reply),
            Err(HttpError::Io(e)) => Err(classify("read response", &e)),
            Err(HttpError::Timeout) => Err(TransportFault::Transient("response deadline".into())),
            // Over the configured cap is a protocol disagreement, not a
            // network fault: every retry would fetch the same oversized
            // reply, so burn no attempts on it.
            Err(HttpError::ResponseTooLarge(n)) => Err(TransportFault::Fatal(format!(
                "response of {n}+ bytes exceeds the {} byte cap",
                self.cfg.max_response_bytes
            ))),
            // A garbled or truncated response means the connection died
            // mid-reply (chaos, resets): the request outcome is unknown,
            // and retrying is safe because submissions are idempotent.
            Err(e) => Err(TransportFault::Transient(format!("unreadable response: {e:?}"))),
        }
    }

    // ---------------------------------------------------------------
    // The mining API, typed.

    /// Registers database `name` from `bytes`. Idempotent: a 409 conflict
    /// (already registered — e.g. a retried upload whose first response
    /// was lost) counts as success.
    pub fn upload_db(&self, name: &str, bytes: &[u8]) -> Result<(), ClientError> {
        let reply = self.request("POST", &format!("/dbs?name={name}"), bytes)?;
        match reply.status {
            201 | 409 => Ok(()),
            status => Err(ClientError::Http { status, body: reply.text() }),
        }
    }

    /// Submits a mining job and returns its id (whether freshly queued or
    /// served from cache).
    pub fn submit_job(&self, spec: &JobRequest) -> Result<u64, ClientError> {
        let mut target = format!(
            "/jobs?tenant={}&db={}&delta={}&algo={}&mode={}",
            spec.tenant, spec.db, spec.delta, spec.algo, spec.mode
        );
        if let Some(cap) = spec.max_ops {
            target.push_str(&format!("&max_ops={cap}"));
        }
        let reply = self.request("POST", &target, b"")?;
        if !matches!(reply.status, 200 | 202) {
            return Err(ClientError::Http { status: reply.status, body: reply.text() });
        }
        json_u64(&reply.text(), "id").ok_or(ClientError::Protocol("job response without id"))
    }

    /// Polls job `id` until it reaches a terminal state or `deadline`
    /// passes. Returns the terminal state name.
    pub fn wait_terminal(&self, id: u64, deadline: Duration) -> Result<String, ClientError> {
        let started = Instant::now();
        loop {
            let reply = self.request("GET", &format!("/jobs/{id}"), b"")?;
            if reply.status != 200 {
                return Err(ClientError::Http { status: reply.status, body: reply.text() });
            }
            let text = reply.text();
            let state =
                json_str(&text, "state").ok_or(ClientError::Protocol("job without state"))?;
            if matches!(state.as_str(), "done" | "failed" | "cancelled") {
                return Ok(state);
            }
            if started.elapsed() > deadline {
                return Err(ClientError::Exhausted {
                    attempts: self.cfg.retry.max_attempts,
                    last: format!("job {id} still {state} after {deadline:?}"),
                });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Fetches the full result of a done job.
    pub fn fetch_result(&self, id: u64) -> Result<Vec<u8>, ClientError> {
        let reply = self.request("GET", &format!("/jobs/{id}/result"), b"")?;
        match reply.status {
            200 => Ok(reply.body),
            status => Err(ClientError::Http { status, body: reply.text() }),
        }
    }

    /// End-to-end mining with idempotent re-submission: submit, wait,
    /// fetch; a job that fails *transiently* (or whose terminal status was
    /// lost to the network) is submitted again — the result cache and
    /// per-job checkpoints make the repeat converge on identical bytes.
    pub fn mine(&self, spec: &JobRequest, job_deadline: Duration) -> Result<Vec<u8>, ClientError> {
        let mut last: Option<ClientError> = None;
        for _round in 0..3 {
            let id = self.submit_job(spec)?;
            match self.wait_terminal(id, job_deadline) {
                Ok(state) if state == "done" => return self.fetch_result(id),
                Ok(state) => {
                    let status = self.request("GET", &format!("/jobs/{id}"), b"")?;
                    let text = status.text();
                    let message = json_str(&text, "message").unwrap_or_default();
                    let transient = text.contains("\"transient\":true");
                    if state == "failed" && transient {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        last = Some(ClientError::Job { state, message });
                        continue;
                    }
                    return Err(ClientError::Job { state, message });
                }
                Err(e) if e.is_transient() => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("resubmission loop ended without an error")))
    }
}

/// A job submission, mirroring `POST /jobs` parameters.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Tenant name.
    pub tenant: String,
    /// Registered database name.
    pub db: String,
    /// Absolute support threshold δ.
    pub delta: u64,
    /// Algorithm (`disc-all`, `dynamic`, `parallel`, `auto`).
    pub algo: String,
    /// Result projection (`all`, `closed`, `maximal`).
    pub mode: String,
    /// Optional per-job operations cap.
    pub max_ops: Option<u64>,
}

impl Default for JobRequest {
    fn default() -> JobRequest {
        JobRequest {
            tenant: "default".into(),
            db: String::new(),
            delta: 2,
            algo: "disc-all".into(),
            mode: "all".into(),
            max_ops: None,
        }
    }
}

enum TransportFault {
    /// Worth retrying (connect refused while the server rebinds, resets,
    /// timeouts, truncated responses).
    Transient(String),
    /// Not a network problem (e.g. address parse failure) — stop.
    Fatal(String),
}

fn classify(stage: &str, e: &std::io::Error) -> TransportFault {
    if is_transient_net_kind(e.kind()) {
        TransportFault::Transient(format!("{stage}: {e}"))
    } else {
        TransportFault::Fatal(format!("{stage}: {e}"))
    }
}

/// Extracts the integer value of `"key":<digits>` from a flat JSON body.
/// The server's JSON is machine-written with no whitespace, so scanning
/// for the quoted key is exact — not a general JSON parser, and does not
/// need to be.
pub fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts the string value of `"key":"…"` from a flat JSON body
/// (unescapes nothing — callers only read identifier-like fields).
pub fn json_str(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = body.find(&needle)? + needle.len();
    Some(body[at..].split('"').next()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction_reads_server_shaped_bodies() {
        let body = "{\"id\":42,\"tenant\":\"alice\",\"state\":\"queued\",\"cached\":false}";
        assert_eq!(json_u64(body, "id"), Some(42));
        assert_eq!(json_str(body, "state").as_deref(), Some("queued"));
        assert_eq!(json_str(body, "tenant").as_deref(), Some("alice"));
        assert_eq!(json_u64(body, "missing"), None);
        assert_eq!(json_str(body, "id"), None, "numeric field is not a string");
    }

    #[test]
    fn connection_refused_is_retried_then_exhausted() {
        // Bind-then-drop: the port exists but nothing listens, so connects
        // fail fast with a transient kind.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client = Client::new(ClientConfig {
            addr,
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
            ..ClientConfig::default()
        });
        let err = client.request("GET", "/healthz", b"").unwrap_err();
        assert!(matches!(err, ClientError::Exhausted { attempts: 3, .. }), "{err}");
        assert!(err.is_transient());
        assert_eq!(client.retries(), 2, "two retries after the first attempt");
    }

    /// A stub server answering every connection with the same canned
    /// response, then exiting after `conns` connections.
    fn stub_server(response: Vec<u8>, conns: usize) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming().take(conns) {
                let Ok(mut s) = stream else { continue };
                let mut buf = [0u8; 1024];
                let _ = std::io::Read::read(&mut s, &mut buf);
                let _ = std::io::Write::write_all(&mut s, &response);
            }
        });
        (addr, handle)
    }

    #[test]
    fn final_attempt_skips_the_advertised_retry_after_sleep() {
        // One attempt, a 503 advertising a 5 s Retry-After: before the
        // fix the client slept those 5 s and then returned Exhausted
        // anyway; now Exhausted must come back immediately.
        let resp = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
                     Content-Length: 0\r\nRetry-After: 5\r\nConnection: close\r\n\r\n"
            .to_vec();
        let (addr, handle) = stub_server(resp, 1);
        let client = Client::new(ClientConfig {
            addr,
            retry: RetryPolicy {
                max_attempts: 1,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
            ..ClientConfig::default()
        });
        let begun = Instant::now();
        let err = client.request("GET", "/stats", b"").unwrap_err();
        assert!(matches!(err, ClientError::Exhausted { attempts: 1, .. }), "{err}");
        assert!(
            begun.elapsed() < Duration::from_secs(2),
            "no sleep may follow the final attempt (took {:?})",
            begun.elapsed()
        );
        handle.join().unwrap();
    }

    #[test]
    fn over_cap_response_is_fatal_not_retried_to_exhaustion() {
        let mut resp = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\
                         Content-Length: 4096\r\nConnection: close\r\n\r\n"
            .to_vec();
        resp.extend(std::iter::repeat(b'x').take(4096));
        let (addr, handle) = stub_server(resp, 1);
        let client =
            Client::new(ClientConfig { addr, max_response_bytes: 1024, ..ClientConfig::default() });
        let err = client.request("GET", "/jobs/1/result", b"").unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "over-cap must be fatal, got {err}");
        assert!(!err.is_transient(), "a protocol disagreement is not transient");
        assert_eq!(client.retries(), 0, "no retry may be burned on an oversized response");
        handle.join().unwrap();
    }
}
