//! `disc-client` — scriptable front end for the retrying mining client.
//!
//! The CI `chaos-smoke` job drives this binary with `--chaos-seed` to push
//! a full upload→submit→wait→fetch session through the deterministic
//! network-fault harness and byte-diff the output against direct
//! `disc-mine`. Exit codes mirror the `disc-mine` contract: `0` success,
//! `1` permanent failure, `2` usage error, `75` transient failure (retry
//! budget exhausted — a supervisor may re-run).

use disc_client::{Client, ClientConfig, ClientError, JobRequest};
use disc_core::RetryPolicy;
use disc_server::chaos::ChaosConfig;
use std::time::Duration;

const EX_TEMPFAIL: i32 = 75;

fn usage() -> ! {
    eprintln!(
        "usage: disc-client mine --addr HOST:PORT --db NAME --delta N [options]\n\
         \n\
         Uploads a database (if --file is given), submits a mining job, waits,\n\
         and prints the result lines to stdout. Retries transparently on\n\
         transient network faults and Retry-After responses.\n\
         \n\
         options:\n\
           --file PATH         database file to upload as NAME (.dscdb bytes)\n\
           --tenant NAME       tenant to submit as            [default]\n\
           --algo ALGO         disc-all|dynamic|parallel|auto [disc-all]\n\
           --mode MODE         all|closed|maximal             [all]\n\
           --max-ops N         per-job operations cap\n\
           --attempts N        retry attempts per request     [8]\n\
           --job-timeout-secs N  wait bound per submission    [120]\n\
           --chaos-seed SEED   wrap every connection in the seeded fault\n\
                               harness (testing only)\n\
           --quiet             suppress progress on stderr"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    db: String,
    delta: u64,
    file: Option<String>,
    tenant: String,
    algo: String,
    mode: String,
    max_ops: Option<u64>,
    attempts: u32,
    job_timeout: Duration,
    chaos_seed: Option<u64>,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("mine") {
        usage();
    }
    let mut out = Args {
        addr: String::new(),
        db: String::new(),
        delta: 0,
        file: None,
        tenant: "default".into(),
        algo: "disc-all".into(),
        mode: "all".into(),
        max_ops: None,
        attempts: 8,
        job_timeout: Duration::from_secs(120),
        chaos_seed: None,
        quiet: false,
    };
    let mut have_delta = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| bad(flag, "missing value"));
        match arg.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--db" => out.db = value("--db"),
            "--delta" => {
                out.delta = parse_num(&value("--delta"), "--delta");
                have_delta = true;
            }
            "--file" => out.file = Some(value("--file")),
            "--tenant" => out.tenant = value("--tenant"),
            "--algo" => out.algo = value("--algo"),
            "--mode" => out.mode = value("--mode"),
            "--max-ops" => out.max_ops = Some(parse_num(&value("--max-ops"), "--max-ops")),
            "--attempts" => out.attempts = parse_num(&value("--attempts"), "--attempts") as u32,
            "--job-timeout-secs" => {
                out.job_timeout = Duration::from_secs(parse_num(
                    &value("--job-timeout-secs"),
                    "--job-timeout-secs",
                ))
            }
            "--chaos-seed" => {
                out.chaos_seed = Some(parse_num(&value("--chaos-seed"), "--chaos-seed"))
            }
            "--quiet" => out.quiet = true,
            other => bad(other, "unrecognized flag"),
        }
    }
    if out.addr.is_empty() || out.db.is_empty() || !have_delta {
        usage();
    }
    out
}

fn parse_num(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| bad(flag, "not a number"))
}

fn bad(flag: &str, what: &str) -> ! {
    eprintln!("disc-client: {flag}: {what}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let client = Client::new(ClientConfig {
        addr: args.addr.clone(),
        retry: RetryPolicy {
            max_attempts: args.attempts.max(1),
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(750),
        },
        chaos: args.chaos_seed.map(ChaosConfig::moderate),
        ..ClientConfig::default()
    });

    if let Some(path) = &args.file {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("disc-client: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = client.upload_db(&args.db, &bytes) {
            fail(&client, "upload", &e, args.quiet);
        }
        if !args.quiet {
            eprintln!("disc-client: database {} registered", args.db);
        }
    }

    let spec = JobRequest {
        tenant: args.tenant,
        db: args.db,
        delta: args.delta,
        algo: args.algo,
        mode: args.mode,
        max_ops: args.max_ops,
    };
    match client.mine(&spec, args.job_timeout) {
        Ok(result) => {
            use std::io::Write as _;
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(&result);
            let _ = stdout.flush();
            if !args.quiet {
                eprintln!(
                    "disc-client: done ({} retries, {} chaos faults survived)",
                    client.retries(),
                    client.chaos_faults()
                );
            }
        }
        Err(e) => fail(&client, "mine", &e, args.quiet),
    }
}

fn fail(client: &Client, stage: &str, e: &ClientError, quiet: bool) -> ! {
    if !quiet {
        eprintln!(
            "disc-client: {stage} failed after {} retries, {} chaos faults: {e}",
            client.retries(),
            client.chaos_faults()
        );
    } else {
        eprintln!("disc-client: {stage} failed: {e}");
    }
    let code = match e {
        ClientError::Exhausted { .. } => EX_TEMPFAIL,
        ClientError::Http { status, .. } if *status == 503 => EX_TEMPFAIL,
        _ => 1,
    };
    std::process::exit(code);
}
