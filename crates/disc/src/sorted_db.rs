//! The **k-sorted database** (Section 3.2): partition members keyed by their
//! conditional k-minimum subsequences in a locative AVL tree.
//!
//! Keys are stored as [`FlatKey`]s — the sequence plus its precomputed
//! flattened `(item, transaction-number)` pairs — so every comparison on a
//! tree descent is one slice comparison instead of a fresh walk through the
//! nested representation. The public API stays in terms of [`Sequence`].

use crate::kms::Kms;
use disc_core::{FlatKey, Sequence};
use disc_tree::LocativeAvlTree;

/// One entry of the k-sorted database: which partition member it is, plus
/// its apriori pointer into the (k-1)-sorted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Index of the customer sequence within the partition's member list.
    pub member: usize,
    /// Apriori pointer (Fig. 5/6): index of the current key's (k-1)-prefix
    /// in the (k-1)-sorted list.
    pub ptr: usize,
}

/// The k-sorted database.
#[derive(Debug, Default)]
pub struct KSortedDb {
    tree: LocativeAvlTree<FlatKey, Entry>,
}

impl KSortedDb {
    /// An empty k-sorted database.
    pub fn new() -> KSortedDb {
        KSortedDb { tree: LocativeAvlTree::new() }
    }

    /// Number of customer positions (the paper's "size of SD").
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no customers remain.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a member under its freshly computed k-minimum subsequence.
    pub fn insert(&mut self, member: usize, kms: Kms) {
        self.insert_key(member, FlatKey::new(&kms.key), kms.ptr);
    }

    /// Inserts a member under an already-flattened key — the raw-KMS path,
    /// which never materializes a nested sequence.
    pub fn insert_key(&mut self, member: usize, key: FlatKey, ptr: usize) {
        self.tree.insert(key, Entry { member, ptr });
    }

    /// `α₁`: the minimum key, reconstructed as a sequence.
    pub fn alpha_1(&self) -> Option<Sequence> {
        self.tree.min().map(|(k, _)| k.to_sequence())
    }

    /// `α_δ`: the key at customer position δ (1-based), reconstructed as a
    /// sequence.
    pub fn alpha_delta(&self, delta: u64) -> Option<Sequence> {
        self.alpha_delta_key(delta).map(FlatKey::to_sequence)
    }

    /// `α_δ` as a borrowed flattened key.
    pub fn alpha_delta_key(&self, delta: u64) -> Option<&FlatKey> {
        debug_assert!(delta >= 1);
        self.tree.select(delta as usize - 1)
    }

    /// `α₁ = α_δ`? — the Lemma 2.1 test, on the flattened keys (one slice
    /// comparison, no sequence reconstruction).
    pub fn alpha_1_equals_delta(&self, delta: u64) -> bool {
        debug_assert!(delta >= 1);
        match (self.tree.min(), self.tree.select(delta as usize - 1)) {
            (Some((a, _)), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Detaches the minimum node: `(α₁, its virtual partition)`. The bucket
    /// length is `α₁`'s exact support among the partition members.
    pub fn take_min(&mut self) -> Option<(Sequence, Vec<Entry>)> {
        self.tree.take_min().map(|(k, vs)| (k.into_sequence(), vs))
    }

    /// Detaches every entry keyed strictly below `bound`, ascending.
    pub fn take_less_than(&mut self, bound: &Sequence) -> Vec<(Sequence, Vec<Entry>)> {
        self.tree
            .take_less_than(&FlatKey::new(bound))
            .into_iter()
            .map(|(k, vs)| (k.into_sequence(), vs))
            .collect()
    }

    /// Detaches every bucket keyed strictly below `bound`, ascending. The
    /// keys themselves are dropped without ever being reconstructed — the
    /// Lemma 2.2 skip only re-keys the members.
    pub fn take_buckets_less_than(&mut self, bound: &FlatKey) -> Vec<Vec<Entry>> {
        self.tree.take_less_than(bound).into_iter().map(|(_, vs)| vs).collect()
    }

    /// In-order view of `(key, entries)` — Table 3/9-style dumps for tests
    /// and debugging.
    pub fn snapshot(&self) -> Vec<(Sequence, Vec<Entry>)> {
        self.tree.iter().map(|(k, vs)| (k.to_sequence(), vs.to_vec())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kms::apriori_kms;
    use disc_core::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn table_9_four_sorted_database() {
        // Build the 4-sorted database of the <(a)(a)>-partition (Table 9).
        let mut list: Vec<Sequence> =
            ["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"].iter().map(|t| seq(t)).collect();
        list.sort();
        let customers = [
            "(a)(a,g,h)(c)",           // CID 1
            "(b)(a)(a,c,e,g)",         // CID 2
            "(a,f,g)(a,e,g,h)(c,g,h)", // CID 3
            "(f)(a,f)(a,c,e,g,h)",     // CID 4
            "(a,f)(a,e,g,h)",          // CID 6
            "(a,g)(a,e,g)(g,h)",       // CID 7
        ];
        let mut db = KSortedDb::new();
        for (m, text) in customers.iter().enumerate() {
            let kms = apriori_kms(&seq(text), &list).unwrap();
            db.insert(m, kms);
        }
        assert_eq!(db.len(), 6);
        assert_eq!(db.alpha_1(), Some(seq("(a)(a,e)(c)")));
        // δ = 3: the third customer position holds <(a)(a,e,g)>.
        assert_eq!(db.alpha_delta(3), Some(seq("(a)(a,e,g)")));
        assert_eq!(db.alpha_delta(6), Some(seq("(a)(a,g)(c)")));
        assert_eq!(db.alpha_delta(7), None);
        assert!(db.alpha_1_equals_delta(1));
        assert!(!db.alpha_1_equals_delta(3));

        let snapshot = db.snapshot();
        let keys: Vec<String> = snapshot.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["(a)(a, e)(c)", "(a)(a, e, g)", "(a)(a, g)(c)"]);
        // The <(a)(a,e,g)> bucket holds CIDs 2, 4, 6, 7 (member indices 1, 3, 4, 5).
        let members: Vec<usize> = snapshot[1].1.iter().map(|e| e.member).collect();
        assert_eq!(members, vec![1, 3, 4, 5]);
    }

    #[test]
    fn take_less_than_drains_the_head() {
        let mut db = KSortedDb::new();
        db.insert(0, Kms { key: seq("(a)(b)"), ptr: 0 });
        db.insert(1, Kms { key: seq("(a)(c)"), ptr: 0 });
        db.insert(2, Kms { key: seq("(b)(c)"), ptr: 1 });
        let below = db.take_less_than(&seq("(b)(c)"));
        assert_eq!(below.len(), 2);
        assert_eq!(db.len(), 1);
        assert_eq!(db.alpha_1(), Some(seq("(b)(c)")));
    }
}
