//! The **k-sorted database** (Section 3.2): partition members keyed by their
//! conditional k-minimum subsequences in an ordered bucket map.
//!
//! Keys are stored in a flattened [`SeqKey`] representation — the sequence's
//! `(item, transaction-number)` pairs packed into comparison-ready words — so
//! every comparison on a map descent is one slice comparison instead of a
//! fresh walk through the nested representation. When the database fits the
//! packed-word budget, the discovery loop instantiates this with
//! [`disc_core::PackedKey`] (one `u32` per pair, SIMD-comparable); otherwise
//! the wide [`FlatKey`] default applies. The public API stays in terms of
//! [`Sequence`].
//!
//! The backing store is a `BTreeMap<K, Vec<Entry>>` with an explicitly
//! tracked entry count. The discovery loop only ever asks order statistics
//! about the *head* of the database — `α₁`, `α_δ` for the small rank
//! `δ = ⌈minsup·|D|⌉` within a virtual partition, and head drains — so a
//! short in-order walk over the first few buckets beats maintaining subtree
//! counts on every insert (the former `LocativeAvlTree` backing, still used
//! by [`disc_tree`] for the general rank-select case).

use crate::kms::Kms;
use disc_core::{FlatKey, SeqKey, Sequence};
use std::collections::BTreeMap;

/// One entry of the k-sorted database: which partition member it is, plus
/// its apriori pointer into the (k-1)-sorted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Index of the customer sequence within the partition's member list.
    pub member: usize,
    /// Apriori pointer (Fig. 5/6): index of the current key's (k-1)-prefix
    /// in the (k-1)-sorted list.
    pub ptr: usize,
}

/// The k-sorted database, generic over the flattened key representation.
#[derive(Debug)]
pub struct KSortedDb<K: SeqKey = FlatKey> {
    map: BTreeMap<K, Vec<Entry>>,
    len: usize,
    /// Drained bucket allocations, reused by later inserts: most buckets are
    /// singletons, so without the pool every re-keying would allocate one
    /// small `Vec` per member movement.
    pool: Vec<Vec<Entry>>,
}

impl<K: SeqKey> Default for KSortedDb<K> {
    fn default() -> KSortedDb<K> {
        KSortedDb::new()
    }
}

impl<K: SeqKey> KSortedDb<K> {
    /// An empty k-sorted database.
    pub fn new() -> KSortedDb<K> {
        KSortedDb { map: BTreeMap::new(), len: 0, pool: Vec::new() }
    }

    /// Number of customer positions (the paper's "size of SD").
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no customers remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a member under its freshly computed k-minimum subsequence.
    pub fn insert(&mut self, member: usize, kms: Kms) {
        self.insert_key(member, K::key_of(&kms.key), kms.ptr);
    }

    /// Inserts a member under an already-flattened key — the raw-KMS path,
    /// which never materializes a nested sequence.
    pub fn insert_key(&mut self, member: usize, key: K, ptr: usize) {
        match self.map.entry(key) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().push(Entry { member, ptr });
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                let mut bucket = self.pool.pop().unwrap_or_default();
                bucket.push(Entry { member, ptr });
                v.insert(bucket);
            }
        }
        self.len += 1;
    }

    /// Returns a drained bucket's allocation to the pool for reuse.
    pub fn recycle(&mut self, mut bucket: Vec<Entry>) {
        if bucket.capacity() > 0 && self.pool.len() < 1024 {
            bucket.clear();
            self.pool.push(bucket);
        }
    }

    /// `α₁`: the minimum key, reconstructed as a sequence.
    pub fn alpha_1(&self) -> Option<Sequence> {
        self.map.keys().next().map(SeqKey::to_sequence)
    }

    /// `α_δ`: the key at customer position δ (1-based), reconstructed as a
    /// sequence.
    pub fn alpha_delta(&self, delta: u64) -> Option<Sequence> {
        self.alpha_delta_key(delta).map(SeqKey::to_sequence)
    }

    /// `α_δ` as a borrowed flattened key: an in-order walk accumulating
    /// bucket sizes until the running customer count reaches δ. The rank δ
    /// is the partition's support threshold — a small constant — so this
    /// touches at most a handful of head buckets.
    pub fn alpha_delta_key(&self, delta: u64) -> Option<&K> {
        debug_assert!(delta >= 1);
        let mut seen = 0u64;
        for (k, vs) in &self.map {
            seen += vs.len() as u64;
            if seen >= delta {
                return Some(k);
            }
        }
        None
    }

    /// `α₁ = α_δ`? — the Lemma 2.1 test: the minimum bucket alone holds at
    /// least δ customers.
    pub fn alpha_1_equals_delta(&self, delta: u64) -> bool {
        debug_assert!(delta >= 1);
        match self.map.values().next() {
            Some(vs) => vs.len() as u64 >= delta,
            None => false,
        }
    }

    /// Detaches the minimum bucket: `(α₁, its virtual partition)`. The bucket
    /// length is `α₁`'s exact support among the partition members. The key
    /// stays flattened — the caller materializes a [`Sequence`] only when it
    /// reports the pattern.
    pub fn take_min(&mut self) -> Option<(K, Vec<Entry>)> {
        let (k, vs) = self.map.pop_first()?;
        self.len -= vs.len();
        Some((k, vs))
    }

    /// Detaches every entry keyed strictly below `bound`, ascending.
    pub fn take_less_than(&mut self, bound: &Sequence) -> Vec<(Sequence, Vec<Entry>)> {
        self.split_below(&K::key_of(bound))
            .into_iter()
            .map(|(k, vs)| (k.into_sequence(), vs))
            .collect()
    }

    /// Detaches every bucket keyed strictly below `bound`, ascending. The
    /// keys themselves are dropped without ever being reconstructed — the
    /// Lemma 2.2 skip only re-keys the members.
    pub fn take_buckets_less_than(&mut self, bound: &K) -> Vec<Vec<Entry>> {
        self.split_below(bound).into_values().collect()
    }

    /// Splits off and returns the `< bound` head of the map, adjusting the
    /// tracked length.
    fn split_below(&mut self, bound: &K) -> BTreeMap<K, Vec<Entry>> {
        let rest = self.map.split_off(bound);
        let below = std::mem::replace(&mut self.map, rest);
        self.len -= below.values().map(Vec::len).sum::<usize>();
        below
    }

    /// In-order view of `(key, entries)` — Table 3/9-style dumps for tests
    /// and debugging.
    pub fn snapshot(&self) -> Vec<(Sequence, Vec<Entry>)> {
        self.map.iter().map(|(k, vs)| (k.to_sequence(), vs.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kms::apriori_kms;
    use disc_core::{parse_sequence, PackedKey};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn table_9_database<K: SeqKey>() -> KSortedDb<K> {
        // Build the 4-sorted database of the <(a)(a)>-partition (Table 9).
        let mut list: Vec<Sequence> =
            ["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"].iter().map(|t| seq(t)).collect();
        list.sort();
        let customers = [
            "(a)(a,g,h)(c)",           // CID 1
            "(b)(a)(a,c,e,g)",         // CID 2
            "(a,f,g)(a,e,g,h)(c,g,h)", // CID 3
            "(f)(a,f)(a,c,e,g,h)",     // CID 4
            "(a,f)(a,e,g,h)",          // CID 6
            "(a,g)(a,e,g)(g,h)",       // CID 7
        ];
        let mut db = KSortedDb::new();
        for (m, text) in customers.iter().enumerate() {
            let kms = apriori_kms(&seq(text), &list).unwrap();
            db.insert(m, kms);
        }
        db
    }

    fn assert_table_9_shape<K: SeqKey>(db: &KSortedDb<K>) {
        assert_eq!(db.len(), 6);
        assert_eq!(db.alpha_1(), Some(seq("(a)(a,e)(c)")));
        // δ = 3: the third customer position holds <(a)(a,e,g)>.
        assert_eq!(db.alpha_delta(3), Some(seq("(a)(a,e,g)")));
        assert_eq!(db.alpha_delta(6), Some(seq("(a)(a,g)(c)")));
        assert_eq!(db.alpha_delta(7), None);
        assert!(db.alpha_1_equals_delta(1));
        assert!(!db.alpha_1_equals_delta(3));

        let snapshot = db.snapshot();
        let keys: Vec<String> = snapshot.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["(a)(a, e)(c)", "(a)(a, e, g)", "(a)(a, g)(c)"]);
        // The <(a)(a,e,g)> bucket holds CIDs 2, 4, 6, 7 (member indices 1, 3, 4, 5).
        let members: Vec<usize> = snapshot[1].1.iter().map(|e| e.member).collect();
        assert_eq!(members, vec![1, 3, 4, 5]);
    }

    #[test]
    fn table_9_four_sorted_database() {
        assert_table_9_shape(&table_9_database::<FlatKey>());
    }

    #[test]
    fn table_9_agrees_under_packed_keys() {
        // The same sorted database, keyed by packed u32 words, must produce
        // an identical in-order snapshot — the order-preservation claim of
        // the packing scheme exercised through the whole tree layer.
        assert_table_9_shape(&table_9_database::<PackedKey>());
        let flat = table_9_database::<FlatKey>().snapshot();
        let packed = table_9_database::<PackedKey>().snapshot();
        assert_eq!(flat, packed);
    }

    #[test]
    fn take_less_than_drains_the_head() {
        let mut db: KSortedDb = KSortedDb::new();
        db.insert(0, Kms { key: seq("(a)(b)"), ptr: 0 });
        db.insert(1, Kms { key: seq("(a)(c)"), ptr: 0 });
        db.insert(2, Kms { key: seq("(b)(c)"), ptr: 1 });
        let below = db.take_less_than(&seq("(b)(c)"));
        assert_eq!(below.len(), 2);
        assert_eq!(db.len(), 1);
        assert_eq!(db.alpha_1(), Some(seq("(b)(c)")));
    }
}
