//! **Parallel DISC-all**: first-level partitions sharded across a
//! [`ParallelExecutor`] thread pool, with results bit-identical to
//! sequential [`DiscAll`] at any thread count.
//!
//! ## Why first-level partitions shard cleanly
//!
//! Sequential DISC-all walks first-level partitions in ascending key order
//! and *reassigns* each member to the partition of its next frequent
//! minimum after a partition is processed. The reassignment chain of a row
//! therefore enumerates every frequent item the row contains, in ascending
//! order — so when the `<(λ)>`-partition's turn comes, its member set is
//! exactly **the rows containing λ**. That set can be computed up front
//! with one scan, which makes the partitions mutually independent: each
//! shard is one `<(λ)>`-partition with its full supporter set, and no shard
//! needs anything another shard produced.
//!
//! ## Determinism guarantee
//!
//! Every per-shard quantity is a count or a key derived from the shard's
//! member *multiset* (counting arrays sum, DISC buckets key on k-minimum
//! subsequences), never from member order or scheduling; shard outputs are
//! merged in ascending key order; and [`MiningResult`] orders patterns
//! canonically. The merged result — patterns and exact supports — is
//! therefore identical to sequential [`DiscAll`] at 1, 2, 4, 8, … threads,
//! which `tests/parallel_determinism.rs` and CI enforce.
//!
//! Shard pattern sets are disjoint (every pattern found in the
//! `<(λ)>`-partition starts with its minimum item `λ`), so the merge is a
//! union; [`MiningResult::insert`] still cross-checks supports, so a shard
//! disagreeing on a support is caught loudly rather than silently resolved.

use crate::disc_all::{frequent_one_sequences, DiscAll};
use crate::resume::CheckpointSink;
use crate::DiscConfig;
use disc_core::{
    run_guarded, AbortReason, FlatDb, GuardedResult, Item, MinSupport, MineGuard, MineOutcome,
    MiningResult, ParallelExecutor, SeqView, SequenceDatabase, SequentialMiner,
};

#[cfg(feature = "fault-injection")]
use disc_core::FaultPlan;

/// The parallel DISC-all miner: [`DiscAll`] semantics, executed one
/// first-level partition per pool task.
///
/// Implements [`SequentialMiner`] like every other miner — `mine` and
/// `mine_guarded` fan out internally — so it drops into fallback chains,
/// the bench harness, and cross-algorithm tests unchanged. Cancellation,
/// deadlines, and budgets are honored **globally** across workers: the
/// guard's token and deadline clock are shared, and operation/pattern
/// budgets are enforced through run-wide shared counters. A cancelled or
/// aborted parallel run still returns a sound partial subset — completed
/// shards contribute their full pattern sets, aborted shards whatever they
/// had verified, and every reported support is exact.
#[derive(Debug, Clone)]
pub struct ParallelDiscAll {
    /// DISC tuning knobs, shared with the sequential miner.
    pub config: DiscConfig,
    threads: usize,
    name: String,
    /// Panics the worker of shard `.0` at its `.1`-th full checkpoint, for
    /// per-worker panic-isolation tests.
    #[cfg(feature = "fault-injection")]
    shard_panic: Option<(usize, u64)>,
}

impl Default for ParallelDiscAll {
    fn default() -> ParallelDiscAll {
        ParallelDiscAll::with_threads(ParallelExecutor::new().threads())
    }
}

impl ParallelDiscAll {
    /// A parallel miner sized by [`std::thread::available_parallelism`].
    pub fn new() -> ParallelDiscAll {
        ParallelDiscAll::default()
    }

    /// A parallel miner with an explicit worker count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> ParallelDiscAll {
        let threads = threads.max(1);
        ParallelDiscAll {
            config: DiscConfig::default(),
            threads,
            name: format!("Parallel DISC-all ×{threads}"),
            #[cfg(feature = "fault-injection")]
            shard_panic: None,
        }
    }

    /// Overrides the DISC configuration (bi-level on/off).
    pub fn with_config(mut self, config: DiscConfig) -> ParallelDiscAll {
        self.config = config;
        self
    }

    /// The worker-thread count this miner fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Injects a deterministic panic into the worker guard of shard
    /// `shard` (0-based, ascending partition-key order) at its
    /// `checkpoint`-th full check — the hook behind the poisoned-shard
    /// isolation tests.
    #[cfg(feature = "fault-injection")]
    pub fn with_shard_panic(mut self, shard: usize, checkpoint: u64) -> ParallelDiscAll {
        self.shard_panic = Some((shard, checkpoint));
        self
    }

    /// Mines a [`FlatDb`] directly — see [`crate::DiscAll::mine_flat`] for
    /// the contract. The flat columns (heap or mapped from a `DSCFD1`
    /// file) are shared read-only across every worker thread.
    pub fn mine_flat(&self, flat: &FlatDb, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_flat_inner(flat, min_support.resolve(flat.len()), &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    /// [`ParallelDiscAll::mine_flat`] under a [`MineGuard`].
    pub fn mine_flat_guarded(
        &self,
        flat: &FlatDb,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        let delta = min_support.resolve(flat.len());
        run_guarded(guard, |result| self.mine_flat_inner(flat, delta, guard, result, None))
    }

    /// The cooperative core behind both entry points. Snapshot boundaries:
    /// after the frequent 1-sequences and once at the merge point, marking
    /// every shard whose task completed — so an aborted parallel run
    /// resumes with only the unfinished shards.
    pub(crate) fn mine_inner(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        // One flat copy of the database, shared read-only by every worker.
        let flat = FlatDb::from_database(db);
        self.mine_flat_inner(&flat, min_support.resolve(db.len()), guard, result, sink)
    }

    /// [`ParallelDiscAll::mine_inner`] over the flat columns themselves —
    /// heap or mapped, the kernels cannot tell.
    pub(crate) fn mine_flat_inner(
        &self,
        flat: &FlatDb,
        delta: u64,
        guard: &MineGuard,
        result: &mut MiningResult,
        mut sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        let Some(max_item) = flat.max_item() else {
            return Ok(());
        };
        let n_items = max_item.id() as usize + 1;

        // Step 1 (sequential, one scan): frequent 1-sequences.
        let freq1 = frequent_one_sequences(flat, delta, n_items, guard, result)?;
        if let Some(s) = sink.as_deref_mut() {
            s.level_one(result);
        }

        // Step 2 (sequential, one scan): shard membership — for each
        // frequent λ, every row containing λ, in ascending row order.
        // Shards a resumed snapshot marks done are dropped up front; their
        // patterns were seeded from the snapshot.
        let mut shards = shard_members(flat, &freq1, guard)?;
        if let Some(s) = sink.as_deref() {
            shards.retain(|(lambda, _)| !s.is_done(*lambda));
        }
        let keys: Vec<Item> = shards.iter().map(|(lambda, _)| *lambda).collect();

        // Step 3 (parallel): one first-level partition per pool task.
        let executor = ParallelExecutor::with_threads(self.threads);
        let shard_miner = DiscAll { config: self.config };
        let body = |worker: &MineGuard,
                    (lambda, members): (Item, Vec<usize>),
                    shard_result: &mut MiningResult| {
            shard_miner.process_first_level(
                flat,
                lambda,
                &members,
                delta,
                &freq1,
                worker,
                shard_result,
                &mut crate::counting::CountingArray::new(n_items),
                &mut disc_core::FlatArena::new(),
                &mut crate::partition::RowExtensions::new(),
            )
        };
        #[cfg(feature = "fault-injection")]
        let run = {
            let faults = match self.shard_panic {
                Some((shard, at)) => {
                    let mut faults: Vec<Option<FaultPlan>> =
                        (0..shards.len()).map(|_| None).collect();
                    if let Some(slot) = faults.get_mut(shard) {
                        *slot = Some(FaultPlan::panic_at(at));
                    }
                    faults
                }
                None => Vec::new(),
            };
            executor.run_with_faults(guard, shards, faults, body)
        };
        #[cfg(not(feature = "fault-injection"))]
        let run = executor.run(guard, shards, body);

        // Step 4 (sequential): merge shard results in ascending key order.
        // Shards report disjoint pattern sets keyed on their minimum item;
        // `insert` re-checks supports on overlap, so any reconciliation
        // failure panics instead of corrupting the result. Partial shards
        // contribute too — their outputs are sound subsets by the
        // cooperative mining contract.
        //
        // Completed shards merge first so the boundary snapshot between the
        // two passes is *consistent*: it holds exactly the finished shards'
        // full pattern sets, never a partial shard's fragment.
        let mut completed: Vec<Item> = Vec::new();
        for (i, task) in run.tasks.iter().enumerate() {
            if !task.outcome.is_complete() {
                continue;
            }
            completed.push(keys[i]);
            for (pattern, support) in task.output.iter() {
                guard.note_pattern()?;
                result.insert(pattern.clone(), support);
            }
        }
        if let Some(s) = sink {
            s.partitions_done(&completed, result);
        }
        for task in run.tasks.iter().filter(|t| !t.outcome.is_complete()) {
            for (pattern, support) in task.output.iter() {
                guard.note_pattern()?;
                result.insert(pattern.clone(), support);
            }
        }
        match run.outcome {
            MineOutcome::Complete => Ok(()),
            MineOutcome::Partial { reason } => Err(reason),
        }
    }
}

impl SequentialMiner for ParallelDiscAll {
    fn name(&self) -> &str {
        &self.name
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_inner(db, min_support, &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| self.mine_inner(db, min_support, guard, result, None))
    }

    fn mine_parallel(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        threads: usize,
    ) -> MiningResult {
        ParallelDiscAll::with_threads(threads).with_config(self.config).mine(db, min_support)
    }
}

/// One `(λ, members)` shard per frequent item: `members` lists every row
/// containing `λ`, ascending — the `<(λ)>`-partition's full supporter set
/// (see the module docs for why this equals the sequential membership).
fn shard_members(
    flat: &FlatDb,
    freq1: &[bool],
    guard: &MineGuard,
) -> Result<Vec<(Item, Vec<usize>)>, AbortReason> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); freq1.len()];
    // Per-row generation stamps dedup repeated items without re-allocating.
    let mut last_row = vec![usize::MAX; freq1.len()];
    for (idx, row) in flat.rows().enumerate() {
        guard.checkpoint()?;
        for t in 0..row.n_transactions() {
            for &item in row.itemset_items(t) {
                let id = item.id() as usize;
                if freq1[id] && last_row[id] != idx {
                    last_row[id] = idx;
                    members[id].push(idx);
                }
            }
        }
    }
    Ok(members
        .into_iter()
        .enumerate()
        .filter(|(id, _)| freq1[*id])
        .map(|(id, rows)| (Item(id as u32), rows))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::BruteForce;

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    #[test]
    fn shard_membership_is_every_row_containing_the_key() {
        let db = table6();
        let mut freq1 = vec![true; 8];
        freq1[3] = false; // pretend 'd' is non-frequent
        let guard = MineGuard::unlimited();
        let shards = shard_members(&FlatDb::from_database(&db), &freq1, &guard).unwrap();
        let a = shards.iter().find(|(i, _)| i.as_letter() == Some('a')).unwrap();
        assert_eq!(a.1, vec![0, 1, 2, 3, 4, 5, 6]);
        let c = shards.iter().find(|(i, _)| i.as_letter() == Some('c')).unwrap();
        assert_eq!(c.1, vec![0, 1, 2, 3, 9]);
        assert!(shards.iter().all(|(i, _)| i.as_letter() != Some('d')));
        // Ascending key order — the merge relies on it.
        let keys: Vec<Item> = shards.iter().map(|(i, _)| *i).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn matches_sequential_disc_all_on_table_6_at_every_thread_count() {
        let db = table6();
        for delta in 1..=5 {
            let reference = DiscAll::default().mine(&db, MinSupport::Count(delta));
            for threads in [1, 2, 4, 8] {
                let got =
                    ParallelDiscAll::with_threads(threads).mine(&db, MinSupport::Count(delta));
                let diff = got.diff(&reference);
                assert!(diff.is_empty(), "δ={delta} ×{threads}:\n{}", diff.join("\n"));
            }
        }
    }

    #[test]
    fn matches_brute_force_without_bi_level() {
        let db = table6();
        let expected = BruteForce::default().mine(&db, MinSupport::Count(3));
        let got = ParallelDiscAll::with_threads(4)
            .with_config(DiscConfig { bi_level: false })
            .mine(&db, MinSupport::Count(3));
        assert!(got.diff(&expected).is_empty());
    }

    #[test]
    fn empty_database() {
        let result =
            ParallelDiscAll::with_threads(4).mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(result.is_empty());
    }

    #[test]
    fn mine_parallel_rethreads() {
        let db = table6();
        let reference = DiscAll::default().mine(&db, MinSupport::Count(3));
        let got = ParallelDiscAll::with_threads(1).mine_parallel(&db, MinSupport::Count(3), 8);
        assert!(got.diff(&reference).is_empty());
        let via_disc_all = DiscAll::default().mine_parallel(&db, MinSupport::Count(3), 4);
        assert!(via_disc_all.diff(&reference).is_empty());
    }

    #[test]
    fn names_carry_the_thread_count() {
        assert_eq!(ParallelDiscAll::with_threads(4).name(), "Parallel DISC-all ×4");
        assert_eq!(ParallelDiscAll::with_threads(0).threads(), 1);
    }
}
