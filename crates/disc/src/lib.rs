//! # disc-algo
//!
//! The DISC strategy and the **DISC-all** / **Dynamic DISC-all** miners from
//! *"An Efficient Algorithm for Mining Frequent Sequences by a New Strategy
//! without Support Counting"* (Chiu, Wu, Chen — ICDE 2004).
//!
//! ## The DISC strategy in one paragraph
//!
//! Sort the customer sequences of a partition by their *k-minimum
//! subsequences* (the smallest k-subsequence in the paper's comparative
//! order). Read the key at position 1 (`α₁`) and at position δ (`α_δ`). If
//! they are equal, `α₁` is frequent — at least δ customers have it as their
//! minimum, and every customer containing it keys exactly on it, so the
//! bucket size is its exact support (Lemma 2.1). If they differ, *every*
//! k-sequence in `[α₁, α_δ)` is non-frequent and is skipped wholesale
//! (Lemma 2.2). Either way, the affected customers are re-keyed to their
//! *conditional* k-minimum subsequence (the smallest one past the bound) and
//! the scan repeats. No candidate generation, no support counting for
//! non-frequent sequences.
//!
//! ## Crate layout
//!
//! | module | paper artifact |
//! |---|---|
//! | [`counting`] | the counting array of §3.1 (Figures 3 and 7) |
//! | [`kms`] | Apriori-KMS (Figure 5) |
//! | [`ckms`] | Apriori-CKMS (Figure 6) |
//! | [`sorted_db`] | the k-sorted database on the locative AVL tree (§3.2) |
//! | [`discovery`] | frequent k-sequence discovery (Figure 4) + the bi-level optimization |
//! | [`partition`] | multi-level partitioning, reduction, reassignment chains (§3.1) |
//! | [`disc_all`] | the DISC-all algorithm (Figure 2) |
//! | [`parallel`] | DISC-all with first-level partitions sharded across a thread pool |
//! | [`dynamic`] | the Dynamic DISC-all algorithm (Appendix) |
//! | [`resume`] | durable checkpoint/resume at first-level partition boundaries |
//! | [`stats`] | the NRR metric of §4.2 (Tables 12 and 14) |
//! | [`weighted`] | the §5 future-work extension: weighted sequence mining |
//!
//! ## Quick example
//!
//! ```
//! use disc_core::{SequenceDatabase, MinSupport, SequentialMiner, parse_sequence};
//! use disc_algo::DiscAll;
//!
//! // Table 1 of the paper, δ = 2.
//! let db = SequenceDatabase::from_parsed(&[
//!     "(a,e,g)(b)(h)(f)(c)(b,f)",
//!     "(b)(d,f)(e)",
//!     "(b,f,g)",
//!     "(f)(a,g)(b,f,h)(b,f)",
//! ]).unwrap();
//!
//! let result = DiscAll::default().mine(&db, MinSupport::Count(2));
//! assert_eq!(result.support_of(&parse_sequence("(a,g)(b)(f)").unwrap()), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckms;
pub mod counting;
pub mod disc_all;
pub mod discovery;
pub mod dynamic;
pub mod kms;
pub mod parallel;
pub mod partition;
pub mod resume;
pub mod sorted_db;
pub mod stats;
pub mod weighted;

pub use disc_all::{DiscAll, DiscConfig};
pub use dynamic::{DynamicDiscAll, SplitPolicy};
pub use parallel::ParallelDiscAll;
pub use resume::{CheckpointSink, CheckpointStats, Checkpointable, Resumable, CHECKPOINT_FILE};
pub use stats::nrr_by_level;
pub use weighted::{WeightedDatabase, WeightedDisc};
