//! The **non-reduction rate (NRR)** of Section 4.2 — equation (2) — used by
//! Tables 12 and 14 and by the Dynamic DISC-all policy.
//!
//! For a partition `Q`, `NRR_Q = (1/N_Q) Σ_p size_p / size_Q` over its child
//! partitions `p`. Following §4.2, a child's size is the support count of
//! the frequent (k+1)-sequence that keys it, and — thanks to the
//! reassignment chains — a partition's own lifetime size is the support of
//! *its* key, so the per-level averages can be computed post-hoc from any
//! complete mining result:
//!
//! * level 0 ("Original"): the children of the whole database are the
//!   initial first-level partitions, which are disjoint, so the average
//!   ratio is taken over their actual sizes (this matches the magnitudes of
//!   the paper's "Original" column, which are far below the support
//!   threshold and therefore cannot be support ratios);
//! * level `j ≥ 1`: for every frequent j-sequence `f` with at least one
//!   frequent (j+1)-extension, average `supp(child)/supp(f)` over its
//!   children, then average over such `f`.

use crate::partition::group_by_min_item;
use disc_core::{FlatDb, MiningResult, Sequence, SequenceDatabase};
use std::collections::BTreeMap;

/// Per-level average NRR: index 0 is the paper's "Original" column, index
/// `j` the level-`j` partitions. `None` marks levels with no children (the
/// dashes in Tables 12 and 14).
pub fn nrr_by_level(result: &MiningResult, db: &SequenceDatabase) -> Vec<Option<f64>> {
    let max_len = result.max_length();
    let mut out = Vec::with_capacity(max_len.max(1));

    // Level 0: disjoint initial partitions of the original database.
    out.push(if db.is_empty() {
        None
    } else {
        let groups = group_by_min_item(&FlatDb::from_database(db));
        if groups.is_empty() {
            None
        } else {
            let mean: f64 = groups.values().map(|v| v.len() as f64 / db.len() as f64).sum::<f64>()
                / groups.len() as f64;
            Some(mean)
        }
    });

    // Levels j ≥ 1: support ratios between frequent j- and (j+1)-sequences.
    for j in 1..max_len {
        // Group the (j+1)-sequences by their j-prefix.
        let mut children: BTreeMap<&Sequence, Vec<u64>> = BTreeMap::new();
        let mut child_keys: Vec<(Sequence, u64)> = Vec::new();
        for (p, s) in result.iter() {
            if p.length() == j + 1 {
                child_keys.push((p.k_prefix(j), s));
            }
        }
        let parents: BTreeMap<&Sequence, u64> =
            result.iter().filter(|(p, _)| p.length() == j).collect();
        for (prefix, supp) in &child_keys {
            if let Some((key, _)) = parents.get_key_value(prefix) {
                children.entry(key).or_default().push(*supp);
            }
        }
        if children.is_empty() {
            out.push(None);
            continue;
        }
        let mut level_sum = 0.0;
        for (parent, supps) in &children {
            let parent_supp = parents[*parent] as f64;
            let mean: f64 =
                supps.iter().map(|&s| s as f64 / parent_supp).sum::<f64>() / supps.len() as f64;
            level_sum += mean;
        }
        out.push(Some(level_sum / children.len() as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{BruteForce, MinSupport, SequentialMiner};

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    #[test]
    fn level_zero_uses_disjoint_partitions() {
        let db = table6();
        let result = BruteForce::default().mine(&db, MinSupport::Count(3));
        let nrr = nrr_by_level(&result, &db);
        // Four initial partitions (a: 7, b: 2, d: 1, e: 1) over 11 rows:
        // mean(7/11, 2/11, 1/11, 1/11) = 11/44 = 0.25.
        assert!((nrr[0].unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deeper_levels_are_support_ratios() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)", "(a)(c)", "(a)"]).unwrap();
        let result = BruteForce::default().mine(&db, MinSupport::Count(1));
        let nrr = nrr_by_level(&result, &db);
        // Level 1: parents (a):4 with children (a)(b):2, (a)(c):1 →
        // mean(2/4, 1/4) = 0.375; (b):2 and (c):1 have no children.
        assert!((nrr[1].unwrap() - 0.375).abs() < 1e-12, "{:?}", nrr);
        assert_eq!(nrr.len(), 2);
    }

    #[test]
    fn dashes_for_levels_without_children() {
        let db = SequenceDatabase::from_parsed(&["(a)", "(a)", "(b)"]).unwrap();
        let result = BruteForce::default().mine(&db, MinSupport::Count(2));
        let nrr = nrr_by_level(&result, &db);
        assert_eq!(nrr.len(), 1); // only the Original level exists
        assert!(nrr[0].is_some());
    }

    #[test]
    fn empty_database_has_no_levels() {
        let db = SequenceDatabase::new();
        let result = MiningResult::new();
        let nrr = nrr_by_level(&result, &db);
        assert_eq!(nrr, vec![None]);
    }

    #[test]
    fn nrr_shrinks_with_sharper_thresholds() {
        // Higher δ prunes small children, so level-1 NRR (a mean of ratios
        // ≥ δ/supp(parent)) should not collapse; this is a sanity check that
        // values stay within (0, 1].
        let db = table6();
        for delta in 1..=4 {
            let result = BruteForce::default().mine(&db, MinSupport::Count(delta));
            for (level, value) in nrr_by_level(&result, &db).iter().enumerate() {
                if let Some(v) = value {
                    assert!(*v > 0.0 && *v <= 1.0, "level {level}: {v}");
                }
            }
        }
    }
}
