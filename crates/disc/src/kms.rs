//! **Apriori-KMS** (Figure 5): the k-minimum subsequence of a customer
//! sequence, restricted to k-sequences whose (k-1)-prefix is frequent.
//!
//! The comparative order is lexicographic over the flattened pairs, so the
//! minimum factorizes: first minimize the (k-1)-prefix — walk the sorted
//! list of frequent (k-1)-sequences ascending and take the first one that is
//! contained *and extendable* — then minimize the appended element.
//!
//! ## The extension candidate set
//!
//! For a prefix `F = β + L` (last itemset `L`) embedded in `S`, the
//! realizable one-element extensions are exactly:
//!
//! * **itemset extensions** `(x, same-txn)`: some transaction after the
//!   leftmost embedding of `β` contains `L ∪ {x}` with `x > max(L)`;
//! * **sequence extensions** `(x, next-txn)`: `x` occurs after the leftmost
//!   embedding of the whole `F`.
//!
//! Leftmost embeddings are exact here, not merely greedy: they minimize the
//! end transaction, so their candidate sets are supersets of every other
//! embedding's. Note that the itemset form may require *re-embedding* `L`
//! in a transaction past the leftmost match of `F` — e.g. the 4-minimum of
//! `<(a,e,g)(b)(h)(f)(c)(b,f)>` past the bound `<(a,e)(b)(h)>` under prefix
//! `<(a,e)(b)>` is `<(a,e)(b,f)>`, hosted by the final `(b,f)` transaction
//! even though the leftmost `(b)` match is the second transaction. (The
//! paper's Fig. 5 pseudocode elides this case; Definition 2.5's correctness
//! requirements force it, and the brute-force cross-checks in this module
//! and the property tests confirm the enumeration is exact.)

use disc_core::embed::view_leftmost_end;
use disc_core::{is_sorted_subset, simd, ExtElem, ExtMode, SeqView, Sequence};

/// The minimum extension element of pattern `f` within `s` among candidates
/// accepted by `admits` — the shared core of Apriori-KMS (`admits` ≡ true),
/// Apriori-CKMS (bound filters), and the partition keying helpers (frequency
/// masks).
///
/// Generic over [`SeqView`], and allocation-free: β (the prefix without its
/// last itemset) is a borrowed slice of `f`'s itemsets, never a rebuilt
/// sequence.
///
/// Returns `None` when `f ⊄ s` or no admissible extension exists.
pub fn min_extension_where<'a, S: SeqView<'a>>(
    s: S,
    f: &Sequence,
    mut admits: impl FnMut(ExtElem) -> bool,
) -> Option<ExtElem> {
    debug_assert!(!f.is_empty(), "extensions of the empty pattern are 1-sequences");
    let last = f.last_itemset()?;
    let beta_sets = &f.itemsets()[..f.n_transactions() - 1];
    let beta_end = view_leftmost_end(s, beta_sets)?.next_txn();
    let max_last = last.max_item();

    let mut best: Option<ExtElem> = None;
    let consider = |e: ExtElem, best: &mut Option<ExtElem>| {
        if best.is_none_or(|b| e < b) {
            *best = Some(e);
        }
    };

    // One pass over the transactions past β's embedding: L-containing
    // transactions host itemset extensions; transactions strictly after the
    // first L-containing one (the leftmost end of F) host sequence
    // extensions. Items ascend within a transaction, so the first admissible
    // item dominates the rest of that transaction for either form.
    let mut past_f_end = false;
    for t in beta_end..s.n_transactions() {
        let set = s.itemset_items(t);
        if past_f_end {
            for &item in set {
                let e = ExtElem { item, mode: ExtMode::Sequence };
                if admits(e) {
                    consider(e, &mut best);
                    break;
                }
            }
        }
        if is_sorted_subset(last.as_slice(), set) {
            let from = simd::first_gt_items(set, max_last);
            for &item in &set[from..] {
                let e = ExtElem { item, mode: ExtMode::Itemset };
                if admits(e) {
                    consider(e, &mut best);
                    break;
                }
            }
            past_f_end = true;
        }
    }
    best
}

/// Enumerates *every* realizable one-element extension of `f` in `s` into
/// `out`, encoded order-preservingly (see [`encode_elem`]), ascending and
/// deduplicated. Same walk as [`min_extension_where`], but collecting the
/// whole candidate set instead of the first admissible element — the
/// enumeration in the module docs is exact, so the set is a property of
/// `(s, f)` alone and any up-closed bound query reduces to a binary search
/// over it.
pub(crate) fn all_extensions<'a, S: SeqView<'a>>(s: S, f: &Sequence, out: &mut Vec<u64>) {
    out.clear();
    let Some(last) = f.last_itemset() else { return };
    let beta_sets = &f.itemsets()[..f.n_transactions() - 1];
    let Some(beta_end_r) = view_leftmost_end(s, beta_sets) else { return };
    let beta_end = beta_end_r.next_txn();
    let max_last = last.max_item();

    let mut past_f_end = false;
    for t in beta_end..s.n_transactions() {
        let set = s.itemset_items(t);
        if past_f_end {
            for &item in set {
                out.push(encode_elem(ExtElem { item, mode: ExtMode::Sequence }));
            }
        }
        if is_sorted_subset(last.as_slice(), set) {
            let from = simd::first_gt_items(set, max_last);
            for &item in &set[from..] {
                out.push(encode_elem(ExtElem { item, mode: ExtMode::Itemset }));
            }
            past_f_end = true;
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Order-preserving `u64` encoding of an [`ExtElem`]: item id in the high
/// bits, the mode bit below it (`Itemset < Sequence`, matching the derived
/// order).
#[inline]
pub(crate) fn encode_elem(e: ExtElem) -> u64 {
    ((e.item.0 as u64) << 1) | (e.mode == ExtMode::Sequence) as u64
}

#[inline]
pub(crate) fn decode_elem(w: u64) -> ExtElem {
    ExtElem {
        item: disc_core::Item((w >> 1) as u32),
        mode: if w & 1 != 0 { ExtMode::Sequence } else { ExtMode::Itemset },
    }
}

/// Memo of the *full extension sets* of `(member, prefix-index)` pairs,
/// valid for one discovery call (fixed member views, fixed (k-1)-sorted
/// list).
///
/// The KMS walk and every re-keying of a member probe the same
/// `(member, prefix)` pairs over and over — each probe re-embedding the
/// prefix from scratch — while the realizable extension set never changes
/// within the call. Caching the whole sorted set (not just the minimum)
/// means even the *bounded* CKMS queries, whose answers differ per bound,
/// hit the cache: an up-closed bound query is a `partition_point` over the
/// memoized set. Sets live in one shared arena; a per-pair slot table maps
/// into it. Construction degrades to a disabled (always-recompute) cache
/// when the slot table would exceed [`ExtensionCache::MAX_ENTRIES`].
#[derive(Debug)]
pub struct ExtensionCache {
    width: usize,
    /// `0` = not computed yet; else 1-based index into `spans`.
    slots: Vec<u32>,
    /// `(start, len)` extents in `arena`, one per computed pair.
    spans: Vec<(u32, u32)>,
    /// Encoded extension elements, ascending within each span.
    arena: Vec<u64>,
    /// Compute buffer (and the result home in disabled mode).
    scratch: Vec<u64>,
    /// Per-slot skip pointer: `0` = unknown, else 1 + the first prefix
    /// index worth probing at or past this slot's prefix. Emptiness of an
    /// extension set is permanent within a discovery call, so runs of empty
    /// prefixes collapse to one jump (with path compression) instead of
    /// being re-probed on every re-keying of the member.
    skip: Vec<u32>,
    /// Reusable trail buffer for the path compression of the skip walks.
    trail: Vec<u32>,
}

impl ExtensionCache {
    /// Slot tables above this many entries (4 bytes each) are not worth the
    /// zero-fill; the cache silently disables itself instead.
    pub const MAX_ENTRIES: usize = 1 << 22;

    /// A cache for `members × prefixes` pairs (disabled when oversized).
    pub fn new(members: usize, prefixes: usize) -> ExtensionCache {
        let entries = members.saturating_mul(prefixes);
        if entries == 0 || entries > Self::MAX_ENTRIES {
            ExtensionCache::disabled()
        } else {
            ExtensionCache {
                width: prefixes,
                slots: vec![0; entries],
                spans: Vec::new(),
                arena: Vec::new(),
                scratch: Vec::new(),
                skip: vec![0; entries],
                trail: Vec::new(),
            }
        }
    }

    /// A cache that never remembers anything — for one-shot callers.
    pub fn disabled() -> ExtensionCache {
        ExtensionCache {
            width: 0,
            slots: Vec::new(),
            spans: Vec::new(),
            arena: Vec::new(),
            scratch: Vec::new(),
            skip: Vec::new(),
            trail: Vec::new(),
        }
    }

    /// Whether this cache degraded to the always-recompute mode.
    pub fn is_disabled(&self) -> bool {
        self.width == 0
    }

    /// The extension set of prefix `p` in `member`, computing and memoizing
    /// it on first touch.
    fn ensure<'a, S: SeqView<'a>>(
        &mut self,
        s: S,
        f: &Sequence,
        p: usize,
        member: usize,
    ) -> &[u64] {
        if self.width == 0 {
            let mut buf = std::mem::take(&mut self.scratch);
            all_extensions(s, f, &mut buf);
            self.scratch = buf;
            return &self.scratch;
        }
        let idx = member * self.width + p;
        if self.slots[idx] == 0 {
            let mut buf = std::mem::take(&mut self.scratch);
            all_extensions(s, f, &mut buf);
            let start = self.arena.len() as u32;
            self.arena.extend_from_slice(&buf);
            self.scratch = buf;
            self.spans.push((start, self.arena.len() as u32 - start));
            self.slots[idx] = self.spans.len() as u32;
        }
        let (start, len) = self.spans[(self.slots[idx] - 1) as usize];
        &self.arena[start as usize..(start + len) as usize]
    }

    /// The first prefix index `p ≥ from` whose extension set in `member` is
    /// non-empty, with its minimum element — the shared walk of Apriori-KMS
    /// (step 13 of CKMS included). Skip pointers fast-forward over runs of
    /// prefixes already known to be unextendable in this member.
    pub(crate) fn first_with_extension<'a, S: SeqView<'a>>(
        &mut self,
        s: S,
        freq_prev: &[Sequence],
        member: usize,
        from: usize,
    ) -> Option<RawKms> {
        if self.width == 0 {
            for (p, prefix) in freq_prev.iter().enumerate().skip(from) {
                let mut buf = std::mem::take(&mut self.scratch);
                all_extensions(s, prefix, &mut buf);
                let found = buf.first().map(|&w| decode_elem(w));
                self.scratch = buf;
                if let Some(elem) = found {
                    return Some(RawKms { ptr: p, elem });
                }
            }
            return None;
        }
        let base = member * self.width;
        let mut trail = std::mem::take(&mut self.trail);
        trail.clear();
        let mut p = from;
        let mut found = None;
        while p < freq_prev.len() {
            let idx = base + p;
            let next = self.skip[idx];
            if next != 0 {
                trail.push(idx as u32);
                p = (next - 1) as usize;
                continue;
            }
            if let Some(&w) = self.ensure(s, &freq_prev[p], p, member).first() {
                found = Some(RawKms { ptr: p, elem: decode_elem(w) });
                break;
            }
            trail.push(idx as u32);
            p += 1;
        }
        for &t in &trail {
            self.skip[t as usize] = p as u32 + 1;
        }
        self.trail = trail;
        found
    }
}

/// The minimum extension `> y` (`strict`) or `≥ y` of prefix `p` in
/// `member`, answered from the memoized extension set — the bounded CKMS
/// step-14 query as a binary search.
#[inline]
pub(crate) fn cached_min_extension_above<'a, S: SeqView<'a>>(
    s: S,
    freq_prev: &[Sequence],
    p: usize,
    member: usize,
    cache: &mut ExtensionCache,
    y: ExtElem,
    strict: bool,
) -> Option<ExtElem> {
    let set = cache.ensure(s, &freq_prev[p], p, member);
    let ey = encode_elem(y);
    let i =
        if strict { set.partition_point(|&w| w <= ey) } else { set.partition_point(|&w| w < ey) };
    set.get(i).map(|&w| decode_elem(w))
}

/// The result of a KMS/CKMS computation: the k-minimum subsequence plus the
/// *apriori pointer* — the index of its (k-1)-prefix in the sorted list of
/// frequent (k-1)-sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kms {
    /// The (conditional) k-minimum subsequence.
    pub key: Sequence,
    /// Index into the (k-1)-sorted list of the key's (k-1)-prefix.
    pub ptr: usize,
}

/// A KMS/CKMS result in raw form: the prefix index and the appended
/// extension element. The key sequence is always
/// `freq_prev[ptr].extended(elem)` — callers that only need a flattened
/// tree key (the discovery loop) build it from these two values without
/// materializing any nested sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawKms {
    /// Index into the (k-1)-sorted list of the key's (k-1)-prefix.
    pub ptr: usize,
    /// The extension element appended to that prefix.
    pub elem: ExtElem,
}

impl RawKms {
    /// Materializes the key sequence against the (k-1)-sorted list the raw
    /// result was computed from.
    pub fn into_kms(self, freq_prev: &[Sequence]) -> Kms {
        Kms { key: freq_prev[self.ptr].extended(self.elem), ptr: self.ptr }
    }
}

/// Apriori-KMS (Figure 5) in raw form: the minimum k-subsequence of `s`
/// whose (k-1)-prefix appears in `freq_prev` (the ascending (k-1)-sorted
/// list), as a prefix index plus extension element.
///
/// Returns `None` when no frequent (k-1)-sequence contained in `s` admits an
/// extension.
pub fn apriori_kms_raw<'a, S: SeqView<'a>>(s: S, freq_prev: &[Sequence]) -> Option<RawKms> {
    apriori_kms_cached(s, freq_prev, 0, &mut ExtensionCache::disabled())
}

/// [`apriori_kms_raw`] against a shared [`ExtensionCache`] — the discovery
/// loop's entry point, where the same `(member, prefix)` probes recur across
/// the initial keying and every later re-keying.
pub fn apriori_kms_cached<'a, S: SeqView<'a>>(
    s: S,
    freq_prev: &[Sequence],
    member: usize,
    cache: &mut ExtensionCache,
) -> Option<RawKms> {
    cache.first_with_extension(s, freq_prev, member, 0)
}

/// [`apriori_kms_raw`] with the key sequence materialized.
pub fn apriori_kms<'a, S: SeqView<'a>>(s: S, freq_prev: &[Sequence]) -> Option<Kms> {
    apriori_kms_raw(s, freq_prev).map(|raw| raw.into_kms(freq_prev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::kmin::min_k_subsequence_with_allowed_prefix_naive;
    use disc_core::{parse_sequence, Item};
    use std::collections::BTreeSet;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        let mut v: Vec<Sequence> = texts.iter().map(|t| seq(t)).collect();
        v.sort();
        v
    }

    #[test]
    fn example_3_3_four_minimum_subsequences() {
        // The <(a)(a)>-partition (Table 8) with its 3-sorted list
        // {<(a)(a,e)>, <(a)(a,g)>, <(a)(a,h)>} produces the 4-minimum
        // subsequences of Table 9.
        let list = seqs(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let expected = [
            ("(a)(a,g,h)(c)", "(a)(a,g)(c)", 1),
            ("(b)(a)(a,c,e,g)", "(a)(a,e,g)", 0),
            ("(a,f,g)(a,e,g,h)(c,g,h)", "(a)(a,e)(c)", 0),
            ("(f)(a,f)(a,c,e,g,h)", "(a)(a,e,g)", 0),
            ("(a,f)(a,e,g,h)", "(a)(a,e,g)", 0),
            ("(a,g)(a,e,g)(g,h)", "(a)(a,e,g)", 0),
        ];
        for (customer, kms_text, ptr) in expected {
            let got = apriori_kms(&seq(customer), &list).unwrap();
            assert_eq!(got.key, seq(kms_text), "customer {customer}");
            assert_eq!(got.ptr, ptr, "customer {customer}");
        }
    }

    #[test]
    fn cid3_prefers_earlier_prefix_with_worse_extension() {
        // CID 3 contains both <(a)(a,e)> (extendable by (c)) and <(a)(a,g)>
        // (extendable by items < c). The prefix dominates: <(a)(a,e)(c)>.
        let list = seqs(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let got = apriori_kms(&seq("(a,f,g)(a,e,g,h)(c,g,h)"), &list).unwrap();
        assert_eq!(got.key, seq("(a)(a,e)(c)"));
    }

    #[test]
    fn skips_unextendable_prefixes() {
        // <(a)(b)> matches but ends at the end of the sequence; <(a)(c)>
        // matches with extensions, the smallest appended element being b.
        let list = seqs(&["(a)(b)", "(a)(c)"]);
        let got = apriori_kms(&seq("(a)(c)(d)(b)"), &list).unwrap();
        assert_eq!(got.key, seq("(a)(c)(b)"));
        assert_eq!(got.ptr, 1);
    }

    #[test]
    fn returns_none_when_nothing_extends() {
        let list = seqs(&["(a)(b)"]);
        assert_eq!(apriori_kms(&seq("(a)(b)"), &list), None);
        assert_eq!(apriori_kms(&seq("(x)(y)(z)"), &list), None);
        assert_eq!(apriori_kms(&seq("(a)(b)"), &[]), None);
    }

    #[test]
    fn same_transaction_extension_beats_new_transaction_on_tie() {
        // After matching <(a)>, item b is available both in the same
        // transaction and later; the itemset extension <(a,b)> is smaller.
        let list = seqs(&["(a)"]);
        let got = apriori_kms(&seq("(a,b)(b)"), &list).unwrap();
        assert_eq!(got.key, seq("(a,b)"));
    }

    #[test]
    fn smaller_item_in_later_transaction_beats_same_transaction() {
        let list = seqs(&["(b)"]);
        let got = apriori_kms(&seq("(b,d)(c)"), &list).unwrap();
        assert_eq!(got.key, seq("(b)(c)"));
    }

    #[test]
    fn itemset_extension_via_reembedding_is_found() {
        // F = <(a)(b)>: its leftmost match ends at the bare (b), but when
        // everything smaller is filtered out, the itemset extension through
        // the later (b,f) transaction must surface.
        let list = seqs(&["(a)(b)"]);
        let s = seq("(a)(b)(b,f)");
        // Unconstrained minimum: the sequence extension (b).
        let got = apriori_kms(&s, &list).unwrap();
        assert_eq!(got.key, seq("(a)(b)(b)"));
        // Constrained past every sequence-extension item except f's
        // competitors: (f, itemset) beats (f, sequence).
        let elem = min_extension_where(&s, &seq("(a)(b)"), |e| {
            e > ExtElem { item: Item::from_letter('b').unwrap(), mode: ExtMode::Sequence }
        })
        .unwrap();
        assert_eq!(elem, ExtElem { item: Item::from_letter('f').unwrap(), mode: ExtMode::Itemset });
    }

    #[test]
    fn matches_exhaustive_reference_on_paper_partition() {
        // Cross-check every Table 8 member against the exponential reference.
        let list = seqs(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let allowed: BTreeSet<Sequence> = list.iter().cloned().collect();
        for customer in [
            "(a)(a,g,h)(c)",
            "(b)(a)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,f)(a,c,e,g,h)",
            "(a,f)(a,e,g,h)",
            "(a,g)(a,e,g)(g,h)",
        ] {
            let s = seq(customer);
            let fast = apriori_kms(&s, &list).map(|k| k.key);
            let slow = min_k_subsequence_with_allowed_prefix_naive(&s, 4, &allowed, None);
            assert_eq!(fast, slow, "customer {customer}");
        }
    }

    #[test]
    fn min_extension_considers_both_forms() {
        // Pattern (b) on (b,d)(a)(c): same-txn candidate d, later candidates
        // a, c → minimum is a via a new transaction.
        let s = seq("(b,d)(a)(c)");
        let elem = min_extension_where(&s, &seq("(b)"), |_| true).unwrap();
        assert_eq!(
            elem,
            ExtElem { item: Item::from_letter('a').unwrap(), mode: ExtMode::Sequence }
        );
    }
}
