//! **Apriori-CKMS** (Figure 6): the *conditional* k-minimum subsequence —
//! the smallest k-subsequence with a frequent (k-1)-prefix that is `>` (or
//! `≥`) the condition k-sequence `α_δ` (Definition 2.5).
//!
//! The search mirrors Apriori-KMS with two refinements from the paper:
//!
//! * the walk over the (k-1)-sorted list starts at the customer's **apriori
//!   pointer** (its previous key's prefix can only move forward), advanced to
//!   the first frequent (k-1)-sequence `≥ X`, the (k-1)-prefix of `α_δ`
//!   (steps 4–7);
//! * while the candidate prefix equals `X`, the appended element must itself
//!   satisfy the bound against `α_δ`'s last element `Y` (step 14); any later
//!   prefix `> X` makes the whole k-sequence exceed `α_δ` regardless of the
//!   element, so the plain minimum extension applies (step 13).

use crate::kms::{cached_min_extension_above, ExtensionCache, Kms, RawKms};
use disc_core::{ExtElem, ExtMode, SeqView, Sequence};

/// The bound comparison mode `Ω` of Definition 2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundMode {
    /// `α > α_δ` — used after `α₁` was found frequent (`α₁ = α_δ`).
    Strictly,
    /// `α ≥ α_δ` — used after `α₁` was found non-frequent.
    AtLeast,
}

impl BoundMode {
    fn admits(self, elem: ExtElem, y: ExtElem) -> bool {
        match self {
            BoundMode::Strictly => elem > y,
            BoundMode::AtLeast => elem >= y,
        }
    }
}

/// The condition k-sequence `α_δ`, pre-split into its (k-1)-prefix `X` and
/// last element `Y` so repeated CKMS calls don't re-derive them.
#[derive(Debug, Clone)]
pub struct Condition {
    /// `X`: the (k-1)-prefix of `α_δ`.
    pub prefix: Sequence,
    /// `Y`: the last flattened element of `α_δ`, as an extension of `X`.
    pub last: ExtElem,
    /// `Ω`.
    pub mode: BoundMode,
}

impl Condition {
    /// Splits `α_δ` (a k-sequence, k ≥ 2) into `(X, Y)`.
    pub fn new(alpha_delta: &Sequence, mode: BoundMode) -> Condition {
        let k = alpha_delta.length();
        assert!(k >= 2, "condition sequences have length >= 2");
        let prefix = alpha_delta.k_prefix(k - 1);
        let item = alpha_delta.last_flat_item().expect("k >= 2");
        let ext_mode = if alpha_delta.n_transactions() == prefix.n_transactions() {
            ExtMode::Itemset
        } else {
            ExtMode::Sequence
        };
        Condition { prefix, last: ExtElem { item, mode: ext_mode }, mode }
    }

    /// Binds the condition to a (k-1)-sorted list: one binary search finds
    /// the first entry `≥ X` (and whether it *is* `X`), so per-member CKMS
    /// calls against the same bucket skip the linear advance of steps 4–7 —
    /// and its per-step nested sequence comparisons — entirely.
    pub fn resolve(&self, freq_prev: &[Sequence]) -> ResolvedCondition {
        let start = freq_prev.partition_point(|f| f < &self.prefix);
        let eq_at_start = freq_prev.get(start) == Some(&self.prefix);
        ResolvedCondition { start, eq_at_start, last: self.last, mode: self.mode }
    }
}

/// A condition pre-resolved against a specific (k-1)-sorted list (see
/// [`Condition::resolve`]): everything per-member CKMS calls need, with no
/// reference to the prefix sequence itself. The list is strictly ascending,
/// so `X` can match at most the single index `start` — which is why `start`,
/// `eq_at_start` and the last element fully replace `(X, Y)`. The discovery
/// loop builds these directly from flattened keys without materializing `X`.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedCondition {
    /// The first index `p` with `freq_prev[p] ≥ X`.
    pub start: usize,
    /// Whether `freq_prev[start]` equals `X` exactly.
    pub eq_at_start: bool,
    /// `Y`: the last flattened element of `α_δ`, as an extension of `X`.
    pub last: ExtElem,
    /// `Ω`.
    pub mode: BoundMode,
}

/// Apriori-CKMS (Figure 6) in raw form: the conditional k-minimum
/// subsequence of `s` under `cond`, starting the prefix walk at the apriori
/// pointer `ptr`, as a prefix index plus extension element.
///
/// Returns `None` when the customer sequence supports no k-sequence (with a
/// frequent prefix) past the bound — the customer leaves the k-sorted
/// database.
pub fn apriori_ckms_raw<'a, S: SeqView<'a>>(
    s: S,
    freq_prev: &[Sequence],
    ptr: usize,
    cond: &Condition,
) -> Option<RawKms> {
    apriori_ckms_resolved(
        s,
        freq_prev,
        ptr,
        &cond.resolve(freq_prev),
        0,
        &mut ExtensionCache::disabled(),
    )
}

/// [`apriori_ckms_raw`] against a pre-resolved condition, sharing an
/// [`ExtensionCache`] across the members of a discovery pass.
///
/// The advance of steps 4–7 collapses to `ptr.max(rc.start)`: the linear walk
/// of the figure stops at the first entry `≥ X`, which `resolve` already
/// located by binary search. Because the (k-1)-sorted list is strictly
/// ascending, the bounded step-14 filter can only apply at that single start
/// index; every later prefix is `> X`, where the unconditional minimum
/// extension — the memoizable quantity — is the answer (step 13).
pub fn apriori_ckms_resolved<'a, S: SeqView<'a>>(
    s: S,
    freq_prev: &[Sequence],
    ptr: usize,
    rc: &ResolvedCondition,
    member: usize,
    cache: &mut ExtensionCache,
) -> Option<RawKms> {
    let p = ptr.max(rc.start);
    if p == rc.start && rc.eq_at_start && p < freq_prev.len() {
        // The bound filter `admits` is up-closed (e admissible ⇒ every
        // e' > e admissible), so the bounded query is a partition point
        // of the memoized extension set.
        let strict = rc.mode == BoundMode::Strictly;
        let found = cached_min_extension_above(s, freq_prev, p, member, cache, rc.last, strict);
        debug_assert!(found.is_none_or(|e| rc.mode.admits(e, rc.last)));
        if let Some(elem) = found {
            return Some(RawKms { ptr: p, elem });
        }
        cache.first_with_extension(s, freq_prev, member, p + 1)
    } else {
        cache.first_with_extension(s, freq_prev, member, p)
    }
}

/// [`apriori_ckms_raw`] with the key sequence materialized.
pub fn apriori_ckms<'a, S: SeqView<'a>>(
    s: S,
    freq_prev: &[Sequence],
    ptr: usize,
    cond: &Condition,
) -> Option<Kms> {
    apriori_ckms_raw(s, freq_prev, ptr, cond).map(|raw| raw.into_kms(freq_prev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::kmin::min_k_subsequence_with_allowed_prefix_naive;
    use disc_core::parse_sequence;
    use std::collections::BTreeSet;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        let mut v: Vec<Sequence> = texts.iter().map(|t| seq(t)).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn condition_splits_alpha_delta() {
        let c = Condition::new(&seq("(a)(a,e,g)"), BoundMode::AtLeast);
        assert_eq!(c.prefix, seq("(a)(a,e)"));
        assert_eq!(c.last.mode, ExtMode::Itemset);
        assert_eq!(c.last.item.to_string(), "g");

        let c2 = Condition::new(&seq("(b)(d)(e)"), BoundMode::Strictly);
        assert_eq!(c2.prefix, seq("(b)(d)"));
        assert_eq!(c2.last.mode, ExtMode::Sequence);
        assert_eq!(c2.last.item.to_string(), "e");
    }

    #[test]
    fn example_3_4_resort_of_cid_3() {
        // From Table 9: <(a)(a,e)(c)> (CID 3) is non-frequent; the condition
        // is α_δ = <(a)(a,e,g)> with Ω = '≥'. The apriori pointer refers to
        // <(a)(a,e)> (index 0). The conditional 4-minimum is <(a)(a,e,g)>.
        let list = seqs(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let cond = Condition::new(&seq("(a)(a,e,g)"), BoundMode::AtLeast);
        let got = apriori_ckms(&seq("(a,f,g)(a,e,g,h)(c,g,h)"), &list, 0, &cond).unwrap();
        assert_eq!(got.key, seq("(a)(a,e,g)"));
        assert_eq!(got.ptr, 0);
    }

    #[test]
    fn example_1_2_resort_at_k_3() {
        // Table 3 → Table 4: with α_δ = <(b)(d)(e)> and Ω = '≥' (and every
        // 2-sequence prefix admissible at this stage of the illustration),
        // the conditional 3-minimums of CIDs 1 and 4 are <(b)(f)(b)> and
        // <(b,f)(b)>.
        let all_2seqs = seqs(&[
            "(a)(b)", "(a)(f)", "(b)(b)", "(b)(f)", "(b,f)", "(b)(d)", "(d)(e)", "(b)(h)",
            "(f)(b)", "(f)(f)", "(a,g)", "(b)(c)", "(g)(b)", "(f)(c)", "(a)(c)", "(a)(h)", "(a,e)",
            "(e)(b)", "(h)(f)", "(g)(f)", "(c)(b)", "(h)(c)", "(f,h)", "(b,h)", "(g)(h)", "(a)(e)",
        ]);
        let cond = Condition::new(&seq("(b)(d)(e)"), BoundMode::AtLeast);
        let cid1 = apriori_ckms(&seq("(a,e,g)(b)(h)(f)(c)(b,f)"), &all_2seqs, 0, &cond).unwrap();
        assert_eq!(cid1.key, seq("(b)(f)(b)"));
        let cid4 = apriori_ckms(&seq("(f)(a,g)(b,f,h)(b,f)"), &all_2seqs, 0, &cond).unwrap();
        assert_eq!(cid4.key, seq("(b,f)(b)"));
    }

    #[test]
    fn strict_bound_skips_the_condition_itself() {
        let list = seqs(&["(a)(b)"]);
        let s = seq("(a)(b)(c)(b)(d)");
        let at_least =
            apriori_ckms(&s, &list, 0, &Condition::new(&seq("(a)(b)(c)"), BoundMode::AtLeast))
                .unwrap();
        assert_eq!(at_least.key, seq("(a)(b)(c)"));
        let strictly =
            apriori_ckms(&s, &list, 0, &Condition::new(&seq("(a)(b)(c)"), BoundMode::Strictly))
                .unwrap();
        assert_eq!(strictly.key, seq("(a)(b)(d)"));
    }

    #[test]
    fn reembedded_itemset_extension_respects_bound() {
        // The case the literal Fig. 5/6 pseudocode misses: past the bound
        // <(a)(b)(c)>, the minimum is the itemset extension <(a)(b,f)> —
        // realized by re-embedding the prefix's last itemset in the final
        // (b,f) transaction, not at its leftmost match.
        let list = seqs(&["(a)(b)"]);
        let s = seq("(a)(b)(c)(b,f)");
        let cond = Condition::new(&seq("(a)(b)(c)"), BoundMode::Strictly);
        let got = apriori_ckms(&s, &list, 0, &cond).unwrap();
        assert_eq!(got.key, seq("(a)(b,f)"));
    }

    #[test]
    fn exhausted_sequences_return_none() {
        let list = seqs(&["(a)(b)"]);
        let cond = Condition::new(&seq("(a)(b)(z)"), BoundMode::AtLeast);
        assert_eq!(apriori_ckms(&seq("(a)(b)(c)"), &list, 0, &cond), None);
    }

    #[test]
    fn pointer_past_the_prefix_is_honored() {
        // A pointer beyond X must not look back: with ptr = 1 the list walk
        // starts at <(c)(d)> even though <(a)(b)> would match.
        let list = seqs(&["(a)(b)", "(c)(d)"]);
        let cond = Condition::new(&seq("(a)(b)(c)"), BoundMode::AtLeast);
        let s = seq("(a)(b)(c)(d)(e)");
        let got = apriori_ckms(&s, &list, 1, &cond).unwrap();
        assert_eq!(got.key, seq("(c)(d)(e)"));
    }

    #[test]
    fn bound_applies_to_both_extension_forms() {
        // Prefix X = <(a)>, Y = (b, same-txn). Sequence (a,b)(b): the
        // itemset extension (a,b) equals the bound; strict mode must fall
        // through to the sequence extension <(a)(b)>.
        let list = seqs(&["(a)"]);
        let s = seq("(a,b)(b)");
        let eq =
            apriori_ckms(&s, &list, 0, &Condition::new(&seq("(a,b)"), BoundMode::AtLeast)).unwrap();
        assert_eq!(eq.key, seq("(a,b)"));
        let gt = apriori_ckms(&s, &list, 0, &Condition::new(&seq("(a,b)"), BoundMode::Strictly))
            .unwrap();
        assert_eq!(gt.key, seq("(a)(b)"));
    }

    #[test]
    fn matches_exhaustive_reference() {
        // Conditional minima agree with exhaustive enumeration across bounds
        // and modes on the Table 8 partition.
        let list = seqs(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let allowed: BTreeSet<Sequence> = list.iter().cloned().collect();
        let customers = [
            "(a)(a,g,h)(c)",
            "(b)(a)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,f)(a,c,e,g,h)",
            "(a,f)(a,e,g,h)",
            "(a,g)(a,e,g)(g,h)",
        ];
        let bounds = ["(a)(a,e)(c)", "(a)(a,e,g)", "(a)(a,g)(c)", "(a)(a,h)(c)"];
        for customer in customers {
            let s = seq(customer);
            for bound_text in bounds {
                let bound = seq(bound_text);
                for (mode, strict) in [(BoundMode::AtLeast, false), (BoundMode::Strictly, true)] {
                    let cond = Condition::new(&bound, mode);
                    let fast = apriori_ckms(&s, &list, 0, &cond).map(|k| k.key);
                    let slow = min_k_subsequence_with_allowed_prefix_naive(
                        &s,
                        4,
                        &allowed,
                        Some((&bound, strict)),
                    );
                    assert_eq!(fast, slow, "customer {customer} bound {bound_text} {mode:?}");
                }
            }
        }
    }
}
