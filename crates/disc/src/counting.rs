//! The **counting array** of Section 3.1 (Figures 3 and 7): one scan of a
//! partition computes the support of every one-item extension of the
//! partition's prefix, with a last-member stamp per entry so repetitions
//! inside one customer sequence count once.
//!
//! For a prefix `π` (possibly empty) the extensions are:
//!
//! * **sequence extensions** `<π>(x)`: `x` occurs in a transaction strictly
//!   after the leftmost embedding of `π`;
//! * **itemset extensions** `<π ⊕ᵢ x>`: writing `π = β + L` (last itemset
//!   `L`), some transaction after the leftmost embedding of `β` contains
//!   `L ∪ {x}` with `x > max(L)` (so the extension appends at the end of the
//!   flattened form and `π` stays the k-prefix).
//!
//! Leftmost embeddings are sufficient in both cases: they minimize the end
//! transaction, so they dominate every other embedding's candidate set.

use disc_core::{
    embed::{view_leftmost_end, EmbeddingEnd},
    is_sorted_subset, ExtElem, ExtMode, Item, Itemset, SeqView, Sequence,
};

/// The counting array: per item, the supports of the two extension forms.
///
/// Supports are weighted sums; the unweighted case is weight 1 per member
/// (see [`CountingArray::add_member_weighted`] and the weighted DISC
/// extension in [`crate::weighted`]).
#[derive(Debug, Clone)]
pub struct CountingArray {
    /// `<π>(x)` supports, indexed by item id.
    seq_counts: Vec<u64>,
    /// `<π ⊕ᵢ x>` supports, indexed by item id.
    item_counts: Vec<u64>,
    /// Last member stamp per entry ("Last CID" in Figure 3).
    seq_stamp: Vec<u32>,
    item_stamp: Vec<u32>,
    /// Current member stamp (1-based; 0 = untouched).
    current: u32,
    /// Weight of the member being accumulated.
    current_weight: u64,
}

impl CountingArray {
    /// A zeroed array over items `0..n_items`.
    pub fn new(n_items: usize) -> CountingArray {
        CountingArray {
            seq_counts: vec![0; n_items],
            item_counts: vec![0; n_items],
            seq_stamp: vec![0; n_items],
            item_stamp: vec![0; n_items],
            current: 0,
            current_weight: 1,
        }
    }

    /// Accumulates one member sequence into the array, counting each
    /// extension of `prefix` at most once for this member.
    ///
    /// Members are expected to contain `prefix` (partition membership
    /// guarantees it); a member that does not contributes nothing.
    pub fn add_member<'a, S: SeqView<'a>>(&mut self, member: S, prefix: &Sequence) {
        self.add_member_weighted(member, prefix, 1);
    }

    /// Like [`CountingArray::add_member`], but the member contributes
    /// `weight` units of support to each of its extensions — the weighted
    /// counting used by [`crate::weighted`].
    ///
    /// Generic over [`SeqView`] and allocation-free: β is a borrowed slice
    /// of the prefix's itemsets.
    pub fn add_member_weighted<'a, S: SeqView<'a>>(
        &mut self,
        member: S,
        prefix: &Sequence,
        weight: u64,
    ) {
        self.current += 1;
        self.current_weight = weight;

        if prefix.is_empty() {
            // Root scan: frequent 1-sequences. Every distinct item counts as
            // a sequence extension of the empty prefix.
            for t in 0..member.n_transactions() {
                for &item in member.itemset_items(t) {
                    self.mark_seq(item);
                }
            }
            return;
        }

        // Sequence extensions: items strictly after the leftmost embedding
        // of the whole prefix.
        let Some(EmbeddingEnd::At(end_pi)) = view_leftmost_end(member, prefix.itemsets()) else {
            return; // prefix not contained
        };
        for t in end_pi + 1..member.n_transactions() {
            for &item in member.itemset_items(t) {
                self.mark_seq(item);
            }
        }

        // Itemset extensions: β = prefix minus its last itemset.
        let last = prefix.last_itemset().expect("non-empty prefix");
        let beta_sets = &prefix.itemsets()[..prefix.n_transactions() - 1];
        let beta_end =
            view_leftmost_end(member, beta_sets).expect("prefix contained implies beta contained");
        let max_last = last.max_item();
        for t in beta_end.next_txn()..member.n_transactions() {
            let set = member.itemset_items(t);
            if is_sorted_subset(last.as_slice(), set) {
                let from = set.partition_point(|&i| i <= max_last);
                for &item in &set[from..] {
                    self.mark_item(item);
                }
            }
        }
    }

    fn mark_seq(&mut self, item: Item) {
        let i = item.id() as usize;
        if self.seq_stamp[i] != self.current {
            self.seq_stamp[i] = self.current;
            self.seq_counts[i] += self.current_weight;
        }
    }

    fn mark_item(&mut self, item: Item) {
        let i = item.id() as usize;
        if self.item_stamp[i] != self.current {
            self.item_stamp[i] = self.current;
            self.item_counts[i] += self.current_weight;
        }
    }

    /// Support of the sequence-extension `<π>(x)`.
    pub fn seq_support(&self, item: Item) -> u64 {
        self.seq_counts[item.id() as usize]
    }

    /// Support of the itemset-extension `<π ⊕ᵢ x>`.
    pub fn item_support(&self, item: Item) -> u64 {
        self.item_counts[item.id() as usize]
    }

    /// All extension elements with support ≥ δ, ascending in the comparative
    /// order of the extended sequences (item, then itemset-before-sequence),
    /// with their supports.
    pub fn frequent_extensions(&self, delta: u64) -> Vec<(ExtElem, u64)> {
        let mut out = Vec::new();
        for id in 0..self.seq_counts.len() {
            let item = Item(id as u32);
            let ic = self.item_counts[id];
            if ic >= delta {
                out.push((ExtElem { item, mode: ExtMode::Itemset }, ic));
            }
            let sc = self.seq_counts[id];
            if sc >= delta {
                out.push((ExtElem { item, mode: ExtMode::Sequence }, sc));
            }
        }
        out
    }

    /// Boolean masks `(itemset_frequent, sequence_frequent)` per item id, for
    /// the reduction and reassignment machinery.
    pub fn frequency_masks(&self, delta: u64) -> (Vec<bool>, Vec<bool>) {
        let i_mask = self.item_counts.iter().map(|&c| c >= delta).collect();
        let s_mask = self.seq_counts.iter().map(|&c| c >= delta).collect();
        (i_mask, s_mask)
    }
}

/// Convenience: scans `members` once and returns the counting array for
/// `prefix`.
pub fn count_extensions<'a, S: SeqView<'a>>(
    prefix: &Sequence,
    members: impl IntoIterator<Item = S>,
    n_items: usize,
) -> CountingArray {
    let mut array = CountingArray::new(n_items);
    for m in members {
        array.add_member(m, prefix);
    }
    array
}

/// Verifies that an itemset extension is expressible (used in debug builds
/// by callers composing extended patterns).
#[allow(dead_code)]
fn extension_is_canonical(last: &Itemset, item: Item) -> bool {
    item > last.max_item()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, support_count, SequenceDatabase};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn item(c: char) -> Item {
        Item::from_letter(c).unwrap()
    }

    /// The <(a)>-partition of Table 6 (CIDs 1–7).
    fn a_partition() -> Vec<Sequence> {
        [
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
        ]
        .iter()
        .map(|s| seq(s))
        .collect()
    }

    #[test]
    fn figure_3_counting_array() {
        // Figure 3: the counting array of the <(a)>-partition.
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, a_partition().iter(), 8);

        // Row 1 matches Figure 3 exactly; row 2's (_g)/(_h) cells are
        // illegible in the source scan — the values below are recomputed by
        // hand from Table 6 and cross-checked definitionally in
        // `counting_matches_definitional_support`.
        let seq_expected = [6, 0, 4, 1, 5, 1, 6, 5]; // (a)..(h)
        let item_expected = [0, 1, 2, 1, 5, 3, 7, 4]; // (_a)..(_h)
        for (i, (&s, &it)) in seq_expected.iter().zip(item_expected.iter()).enumerate() {
            let x = Item(i as u32);
            assert_eq!(array.seq_support(x), s, "<(a)({})>", x);
            assert_eq!(array.item_support(x), it, "<(a{})>", x);
        }
    }

    #[test]
    fn figure_3_frequent_extensions_at_delta_3() {
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, a_partition().iter(), 8);
        // Example 3.2: only <(a)(b)>, <(a)(d)>, <(a)(f)>, <(ab)>, <(ac)>,
        // <(ad)> are not frequent (δ = 3) — among items with any support.
        let frequent: Vec<String> = array
            .frequent_extensions(3)
            .into_iter()
            .map(|(e, _)| Sequence::single(item('a')).extended(e).to_string())
            .collect();
        assert_eq!(
            frequent,
            vec![
                "(a)(a)", "(a)(c)", "(a, e)", "(a)(e)", "(a, f)", "(a, g)", "(a)(g)", "(a, h)",
                "(a)(h)",
            ]
        );
    }

    #[test]
    fn counting_matches_definitional_support() {
        // Every count the array produces must equal the definitional support
        // of the extended pattern over the member multiset.
        let members = a_partition();
        let db = SequenceDatabase::from_sequences(members.clone());
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, members.iter(), 8);
        for id in 0..8u32 {
            let x = Item(id);
            let s_pat = prefix.extended(ExtElem { item: x, mode: ExtMode::Sequence });
            assert_eq!(array.seq_support(x), support_count(&db, &s_pat), "pattern {s_pat}");
            if x > item('a') {
                let i_pat = prefix.extended(ExtElem { item: x, mode: ExtMode::Itemset });
                assert_eq!(array.item_support(x), support_count(&db, &i_pat), "pattern {i_pat}");
            }
        }
    }

    #[test]
    fn figure_7_bilevel_counting() {
        // Example 3.5 / Figure 7: counting 5-extensions of <(a)(a,e,g)> over
        // three members of its virtual partition gives (c)=1, (g)=1, (h)=1,
        // (_h)=3. (Those totals pin down WHICH three members of Table 9 were
        // processed: the reduced CIDs 3, 4 and 6 — CID 2 contains no
        // 5-sequence with this prefix and contributes nothing.)
        let members =
            [seq("(a,f,g)(a,e,g,h)(c,g,h)"), seq("(f)(a,f)(a,c,e,g,h)"), seq("(a,f)(a,e,g,h)")];
        let prefix = seq("(a)(a,e,g)");
        let array = count_extensions(&prefix, members.iter(), 8);
        assert_eq!(array.seq_support(item('c')), 1);
        assert_eq!(array.seq_support(item('g')), 1);
        assert_eq!(array.seq_support(item('h')), 1);
        assert_eq!(array.item_support(item('h')), 3);
        for c in ['a', 'b', 'd', 'e', 'f'] {
            assert_eq!(array.seq_support(item(c)), 0, "({c})");
            assert_eq!(array.item_support(item(c)), 0, "(_{c})");
        }
        // <(a)(a,e,g,h)> is the only frequent 5-extension at δ = 3.
        let freq = array.frequent_extensions(3);
        assert_eq!(freq.len(), 1);
        assert_eq!(freq[0].0, ExtElem { item: item('h'), mode: ExtMode::Itemset });
        assert_eq!(freq[0].1, 3);
    }

    #[test]
    fn root_prefix_counts_one_sequences() {
        let members = [seq("(a)(a,b)"), seq("(b)"), seq("(c)(a)")];
        let array = count_extensions(&Sequence::empty(), members.iter(), 3);
        assert_eq!(array.seq_support(item('a')), 2);
        assert_eq!(array.seq_support(item('b')), 2);
        assert_eq!(array.seq_support(item('c')), 1);
    }

    #[test]
    fn members_without_prefix_contribute_nothing() {
        let members = [seq("(b)(c)")];
        let array = count_extensions(&Sequence::single(item('a')), members.iter(), 3);
        for id in 0..3 {
            assert_eq!(array.seq_support(Item(id)), 0);
            assert_eq!(array.item_support(Item(id)), 0);
        }
    }

    #[test]
    fn itemset_extension_needs_full_last_itemset() {
        // Prefix <(a)(b,c)>; member has (b,c,e) later: e is an itemset
        // extension; but a transaction with only (c,e) is not.
        let members = [seq("(a)(b,c,e)(c,e)")];
        let prefix = seq("(a)(b,c)");
        let array = count_extensions(&prefix, members.iter(), 6);
        assert_eq!(array.item_support(item('e')), 1);
        assert_eq!(array.seq_support(item('e')), 1); // (c,e) after the embedding
        assert_eq!(array.seq_support(item('c')), 1);
        assert_eq!(array.item_support(item('d')), 0);
    }

    #[test]
    fn itemset_extension_uses_beta_not_full_prefix() {
        // Prefix <(a)(b)>: the leftmost embedding of the full prefix ends at
        // the FIRST (b), but the itemset extension <(a)(b,d)> lives in the
        // SECOND (b, d) transaction. β = <(a)> ends at txn 0, so txn 2 is
        // still eligible.
        let members = [seq("(a)(b)(b,d)")];
        let prefix = seq("(a)(b)");
        let array = count_extensions(&prefix, members.iter(), 5);
        assert_eq!(array.item_support(item('d')), 1);
        assert_eq!(array.seq_support(item('d')), 1);
        assert_eq!(array.seq_support(item('b')), 1);
    }
}
