//! The **counting array** of Section 3.1 (Figures 3 and 7): one scan of a
//! partition computes the support of every one-item extension of the
//! partition's prefix, with a last-member stamp per entry so repetitions
//! inside one customer sequence count once.
//!
//! For a prefix `π` (possibly empty) the extensions are:
//!
//! * **sequence extensions** `<π>(x)`: `x` occurs in a transaction strictly
//!   after the leftmost embedding of `π`;
//! * **itemset extensions** `<π ⊕ᵢ x>`: writing `π = β + L` (last itemset
//!   `L`), some transaction after the leftmost embedding of `β` contains
//!   `L ∪ {x}` with `x > max(L)` (so the extension appends at the end of the
//!   flattened form and `π` stays the k-prefix).
//!
//! Leftmost embeddings are sufficient in both cases: they minimize the end
//! transaction, so they dominate every other embedding's candidate set.

use disc_core::{
    embed::view_leftmost_end, is_sorted_subset, simd, ExtElem, ExtMode, Item, Itemset, SeqView,
    Sequence,
};

/// The counting array: per item, the supports of the two extension forms.
///
/// Supports are weighted sums; the unweighted case is weight 1 per member
/// (see [`CountingArray::add_member_weighted`] and the weighted DISC
/// extension in [`crate::weighted`]).
///
/// The array is **reusable**: [`CountingArray::reset`] is O(1), counts are
/// lazily zeroed on first touch per epoch, and the marked item ids are
/// tracked so [`CountingArray::frequent_extensions`] walks only the items
/// the current scan actually saw. The discovery loop counts one virtual
/// partition per frequent pattern — re-zeroing (or even re-reading) all
/// `n_items` entries each time would dwarf the counting itself.
#[derive(Debug, Clone)]
pub struct CountingArray {
    /// `<π>(x)` supports, indexed by item id.
    seq_counts: Vec<u64>,
    /// `<π ⊕ᵢ x>` supports, indexed by item id.
    item_counts: Vec<u64>,
    /// Last member stamp per entry ("Last CID" in Figure 3).
    seq_stamp: Vec<u32>,
    item_stamp: Vec<u32>,
    /// Current member stamp (1-based; 0 = untouched; monotone across
    /// resets so stale stamps can never collide with a later member).
    current: u32,
    /// Weight of the member being accumulated.
    current_weight: u64,
    /// Epoch stamp per entry: counts are valid only when it matches
    /// `epoch`; anything older is logically zero.
    touch_epoch: Vec<u32>,
    /// The current epoch (1-based; bumped by [`CountingArray::reset`]).
    epoch: u32,
    /// Item ids touched this epoch, unordered.
    touched: Vec<u32>,
}

impl CountingArray {
    /// A zeroed array over items `0..n_items`.
    pub fn new(n_items: usize) -> CountingArray {
        CountingArray {
            seq_counts: vec![0; n_items],
            item_counts: vec![0; n_items],
            seq_stamp: vec![0; n_items],
            item_stamp: vec![0; n_items],
            current: 0,
            current_weight: 1,
            touch_epoch: vec![0; n_items],
            epoch: 1,
            touched: Vec::new(),
        }
    }

    /// Logically zeroes every count in O(1): bumps the epoch, so all prior
    /// marks become invisible. Member stamps stay monotone, so accumulation
    /// can continue immediately.
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    /// Marks `i` as live this epoch, lazily zeroing its counts on the first
    /// touch after a reset.
    #[inline]
    fn touch(&mut self, i: usize) {
        if self.touch_epoch[i] != self.epoch {
            self.touch_epoch[i] = self.epoch;
            self.seq_counts[i] = 0;
            self.item_counts[i] = 0;
            self.touched.push(i as u32);
        }
    }

    /// Accumulates one member sequence into the array, counting each
    /// extension of `prefix` at most once for this member.
    ///
    /// Members are expected to contain `prefix` (partition membership
    /// guarantees it); a member that does not contributes nothing.
    pub fn add_member<'a, S: SeqView<'a>>(&mut self, member: S, prefix: &Sequence) {
        self.add_member_weighted(member, prefix, 1);
    }

    /// Like [`CountingArray::add_member`], but the member contributes
    /// `weight` units of support to each of its extensions — the weighted
    /// counting used by [`crate::weighted`].
    ///
    /// Generic over [`SeqView`] and allocation-free: β is a borrowed slice
    /// of the prefix's itemsets.
    pub fn add_member_weighted<'a, S: SeqView<'a>>(
        &mut self,
        member: S,
        prefix: &Sequence,
        weight: u64,
    ) {
        self.current += 1;
        self.current_weight = weight;

        if prefix.is_empty() {
            // Root scan: frequent 1-sequences. Every distinct item counts as
            // a sequence extension of the empty prefix.
            for t in 0..member.n_transactions() {
                for &item in member.itemset_items(t) {
                    self.mark_seq(item);
                }
            }
            return;
        }

        // One embedding, one pass: β (the prefix minus its last itemset L)
        // is embedded leftmost, then a single walk over the remaining
        // transactions finds both forms. The first L-containing transaction
        // is the leftmost end of the whole prefix, so transactions strictly
        // after it host sequence extensions; every L-containing transaction
        // hosts itemset extensions. If no transaction past β contains L the
        // prefix is not contained and nothing gets marked — exactly the
        // contribute-nothing contract.
        let last = prefix.last_itemset().expect("non-empty prefix");
        let beta_sets = &prefix.itemsets()[..prefix.n_transactions() - 1];
        let Some(beta_end) = view_leftmost_end(member, beta_sets) else {
            return; // β not contained, so neither is the prefix
        };
        let max_last = last.max_item();
        let mut past_pi = false;
        for t in beta_end.next_txn()..member.n_transactions() {
            let set = member.itemset_items(t);
            if past_pi {
                for &item in set {
                    self.mark_seq(item);
                }
            }
            if is_sorted_subset(last.as_slice(), set) {
                let from = simd::first_gt_items(set, max_last);
                for &item in &set[from..] {
                    debug_assert!(
                        extension_is_canonical(last, item),
                        "first_gt_items must only admit items past max(L)"
                    );
                    self.mark_item(item);
                }
                past_pi = true;
            }
        }
    }

    fn mark_seq(&mut self, item: Item) {
        let i = item.id() as usize;
        self.touch(i);
        if self.seq_stamp[i] != self.current {
            self.seq_stamp[i] = self.current;
            self.seq_counts[i] += self.current_weight;
        }
    }

    fn mark_item(&mut self, item: Item) {
        let i = item.id() as usize;
        self.touch(i);
        if self.item_stamp[i] != self.current {
            self.item_stamp[i] = self.current;
            self.item_counts[i] += self.current_weight;
        }
    }

    /// Support of the sequence-extension `<π>(x)`.
    pub fn seq_support(&self, item: Item) -> u64 {
        let i = item.id() as usize;
        if self.touch_epoch[i] == self.epoch {
            self.seq_counts[i]
        } else {
            0
        }
    }

    /// Support of the itemset-extension `<π ⊕ᵢ x>`.
    pub fn item_support(&self, item: Item) -> u64 {
        let i = item.id() as usize;
        if self.touch_epoch[i] == self.epoch {
            self.item_counts[i]
        } else {
            0
        }
    }

    /// All extension elements with support ≥ δ, ascending in the comparative
    /// order of the extended sequences (item, then itemset-before-sequence),
    /// with their supports. Walks only the items the current epoch marked.
    pub fn frequent_extensions(&mut self, delta: u64) -> Vec<(ExtElem, u64)> {
        let mut out = Vec::new();
        self.frequent_extensions_into(delta, &mut out);
        out
    }

    /// [`CountingArray::frequent_extensions`] into a caller-owned buffer —
    /// the bi-level loop asks once per frequent pattern, and reusing the
    /// buffer keeps those tens of thousands of queries allocation-free.
    pub fn frequent_extensions_into(&mut self, delta: u64, out: &mut Vec<(ExtElem, u64)>) {
        out.clear();
        self.touched.sort_unstable();
        for &id in &self.touched {
            let item = Item(id);
            let ic = self.item_counts[id as usize];
            if ic >= delta {
                out.push((ExtElem { item, mode: ExtMode::Itemset }, ic));
            }
            let sc = self.seq_counts[id as usize];
            if sc >= delta {
                out.push((ExtElem { item, mode: ExtMode::Sequence }, sc));
            }
        }
    }

    /// Boolean masks `(itemset_frequent, sequence_frequent)` per item id, for
    /// the reduction and reassignment machinery.
    pub fn frequency_masks(&self, delta: u64) -> (Vec<bool>, Vec<bool>) {
        let n = self.seq_counts.len();
        let mut i_mask = vec![false; n];
        let mut s_mask = vec![false; n];
        for i in 0..n {
            if self.touch_epoch[i] == self.epoch {
                i_mask[i] = self.item_counts[i] >= delta;
                s_mask[i] = self.seq_counts[i] >= delta;
            }
        }
        (i_mask, s_mask)
    }
}

/// Convenience: scans `members` once and returns the counting array for
/// `prefix`.
pub fn count_extensions<'a, S: SeqView<'a>>(
    prefix: &Sequence,
    members: impl IntoIterator<Item = S>,
    n_items: usize,
) -> CountingArray {
    let mut array = CountingArray::new(n_items);
    for m in members {
        array.add_member(m, prefix);
    }
    array
}

/// [`count_extensions`] into a reusable array: [`CountingArray::reset`] is
/// O(1), so callers looping over partitions pay the `n_items`-sized
/// zero-fill once per run instead of once per partition.
pub fn count_extensions_into<'a, S: SeqView<'a>>(
    array: &mut CountingArray,
    prefix: &Sequence,
    members: impl IntoIterator<Item = S>,
) {
    array.reset();
    for m in members {
        array.add_member(m, prefix);
    }
}

/// Verifies that an itemset extension is expressible: `<π ⊕ᵢ x>` appends at
/// the end of the flattened form only when `x > max(L)`. Backs the debug
/// assertion in [`CountingArray::add_member_weighted`] guarding the items
/// admitted by `first_gt_items`.
fn extension_is_canonical(last: &Itemset, item: Item) -> bool {
    item > last.max_item()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, support_count, SequenceDatabase};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn item(c: char) -> Item {
        Item::from_letter(c).unwrap()
    }

    /// The <(a)>-partition of Table 6 (CIDs 1–7).
    fn a_partition() -> Vec<Sequence> {
        [
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
        ]
        .iter()
        .map(|s| seq(s))
        .collect()
    }

    #[test]
    fn figure_3_counting_array() {
        // Figure 3: the counting array of the <(a)>-partition.
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, a_partition().iter(), 8);

        // Row 1 matches Figure 3 exactly; row 2's (_g)/(_h) cells are
        // illegible in the source scan — the values below are recomputed by
        // hand from Table 6 and cross-checked definitionally in
        // `counting_matches_definitional_support`.
        let seq_expected = [6, 0, 4, 1, 5, 1, 6, 5]; // (a)..(h)
        let item_expected = [0, 1, 2, 1, 5, 3, 7, 4]; // (_a)..(_h)
        for (i, (&s, &it)) in seq_expected.iter().zip(item_expected.iter()).enumerate() {
            let x = Item(i as u32);
            assert_eq!(array.seq_support(x), s, "<(a)({})>", x);
            assert_eq!(array.item_support(x), it, "<(a{})>", x);
        }
    }

    #[test]
    fn figure_3_frequent_extensions_at_delta_3() {
        let prefix = Sequence::single(item('a'));
        let mut array = count_extensions(&prefix, a_partition().iter(), 8);
        // Example 3.2: only <(a)(b)>, <(a)(d)>, <(a)(f)>, <(ab)>, <(ac)>,
        // <(ad)> are not frequent (δ = 3) — among items with any support.
        let frequent: Vec<String> = array
            .frequent_extensions(3)
            .into_iter()
            .map(|(e, _)| Sequence::single(item('a')).extended(e).to_string())
            .collect();
        assert_eq!(
            frequent,
            vec![
                "(a)(a)", "(a)(c)", "(a, e)", "(a)(e)", "(a, f)", "(a, g)", "(a)(g)", "(a, h)",
                "(a)(h)",
            ]
        );
    }

    #[test]
    fn counting_matches_definitional_support() {
        // Every count the array produces must equal the definitional support
        // of the extended pattern over the member multiset.
        let members = a_partition();
        let db = SequenceDatabase::from_sequences(members.clone());
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, members.iter(), 8);
        for id in 0..8u32 {
            let x = Item(id);
            let s_pat = prefix.extended(ExtElem { item: x, mode: ExtMode::Sequence });
            assert_eq!(array.seq_support(x), support_count(&db, &s_pat), "pattern {s_pat}");
            if x > item('a') {
                let i_pat = prefix.extended(ExtElem { item: x, mode: ExtMode::Itemset });
                assert_eq!(array.item_support(x), support_count(&db, &i_pat), "pattern {i_pat}");
            }
        }
    }

    #[test]
    fn figure_7_bilevel_counting() {
        // Example 3.5 / Figure 7: counting 5-extensions of <(a)(a,e,g)> over
        // three members of its virtual partition gives (c)=1, (g)=1, (h)=1,
        // (_h)=3. (Those totals pin down WHICH three members of Table 9 were
        // processed: the reduced CIDs 3, 4 and 6 — CID 2 contains no
        // 5-sequence with this prefix and contributes nothing.)
        let members =
            [seq("(a,f,g)(a,e,g,h)(c,g,h)"), seq("(f)(a,f)(a,c,e,g,h)"), seq("(a,f)(a,e,g,h)")];
        let prefix = seq("(a)(a,e,g)");
        let mut array = count_extensions(&prefix, members.iter(), 8);
        assert_eq!(array.seq_support(item('c')), 1);
        assert_eq!(array.seq_support(item('g')), 1);
        assert_eq!(array.seq_support(item('h')), 1);
        assert_eq!(array.item_support(item('h')), 3);
        for c in ['a', 'b', 'd', 'e', 'f'] {
            assert_eq!(array.seq_support(item(c)), 0, "({c})");
            assert_eq!(array.item_support(item(c)), 0, "(_{c})");
        }
        // <(a)(a,e,g,h)> is the only frequent 5-extension at δ = 3.
        let freq = array.frequent_extensions(3);
        assert_eq!(freq.len(), 1);
        assert_eq!(freq[0].0, ExtElem { item: item('h'), mode: ExtMode::Itemset });
        assert_eq!(freq[0].1, 3);
    }

    #[test]
    fn root_prefix_counts_one_sequences() {
        let members = [seq("(a)(a,b)"), seq("(b)"), seq("(c)(a)")];
        let array = count_extensions(&Sequence::empty(), members.iter(), 3);
        assert_eq!(array.seq_support(item('a')), 2);
        assert_eq!(array.seq_support(item('b')), 2);
        assert_eq!(array.seq_support(item('c')), 1);
    }

    #[test]
    fn members_without_prefix_contribute_nothing() {
        let members = [seq("(b)(c)")];
        let array = count_extensions(&Sequence::single(item('a')), members.iter(), 3);
        for id in 0..3 {
            assert_eq!(array.seq_support(Item(id)), 0);
            assert_eq!(array.item_support(Item(id)), 0);
        }
    }

    #[test]
    fn itemset_extension_needs_full_last_itemset() {
        // Prefix <(a)(b,c)>; member has (b,c,e) later: e is an itemset
        // extension; but a transaction with only (c,e) is not.
        let members = [seq("(a)(b,c,e)(c,e)")];
        let prefix = seq("(a)(b,c)");
        let array = count_extensions(&prefix, members.iter(), 6);
        assert_eq!(array.item_support(item('e')), 1);
        assert_eq!(array.seq_support(item('e')), 1); // (c,e) after the embedding
        assert_eq!(array.seq_support(item('c')), 1);
        assert_eq!(array.item_support(item('d')), 0);
    }

    #[test]
    fn itemset_extension_uses_beta_not_full_prefix() {
        // Prefix <(a)(b)>: the leftmost embedding of the full prefix ends at
        // the FIRST (b), but the itemset extension <(a)(b,d)> lives in the
        // SECOND (b, d) transaction. β = <(a)> ends at txn 0, so txn 2 is
        // still eligible.
        let members = [seq("(a)(b)(b,d)")];
        let prefix = seq("(a)(b)");
        let array = count_extensions(&prefix, members.iter(), 5);
        assert_eq!(array.item_support(item('d')), 1);
        assert_eq!(array.seq_support(item('d')), 1);
        assert_eq!(array.seq_support(item('b')), 1);
    }
}
