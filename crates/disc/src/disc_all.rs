//! The **DISC-all** algorithm (Figure 2): two-level partitioning + counting
//! arrays for lengths 1–3, the DISC strategy for lengths ≥ 4.

use crate::counting::count_extensions;
use crate::discovery::discover_frequent_k_guarded;
use crate::partition::{group_by_min_item_guarded, min_ext_elem, next_frequent_item, reduce_into};
use crate::resume::CheckpointSink;
use disc_core::{
    run_guarded, AbortReason, ExtElem, FlatArena, FlatDb, GuardedResult, Item, MinSupport,
    MineGuard, MiningResult, SeqView, Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::BTreeMap;

/// Tuning knobs for [`DiscAll`] (and the DISC stages of the dynamic
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscConfig {
    /// Use the bi-level optimization of §3.2 (one k-sorted-database pass
    /// yields levels k and k+1). The paper's experiments enable it; an
    /// ablation bench compares both settings.
    pub bi_level: bool,
}

impl Default for DiscConfig {
    fn default() -> Self {
        DiscConfig { bi_level: true }
    }
}

/// The DISC-all miner.
///
/// Step by step (Figure 2):
///
/// 1. one scan finds the frequent 1-sequences and groups customers by their
///    minimum item into **first-level partitions**;
/// 2. each first-level partition (ascending) with a frequent `λ`:
///    * one counting-array scan finds the frequent 2-sequences `<(λ)(x)>` /
///      `<(λ x)>`,
///    * customers are **reduced** (non-frequent 1-/2-sequences removed) and
///      grouped by their 2-minimum subsequence into **second-level
///      partitions**;
/// 3. each second-level partition (ascending): a counting-array scan finds
///    the frequent 3-sequences, then the **DISC strategy** iterates k = 4,
///    5, … (stepping by two under bi-level);
/// 4. after a partition is processed its members are *reassigned* to the
///    partition of their next minimum, so later partitions always see every
///    supporter of their key.
#[derive(Debug, Clone, Default)]
pub struct DiscAll {
    /// Configuration.
    pub config: DiscConfig,
}

impl DiscAll {
    /// A DISC-all miner with the bi-level optimization disabled.
    pub fn without_bi_level() -> DiscAll {
        DiscAll { config: DiscConfig { bi_level: false } }
    }
}

impl SequentialMiner for DiscAll {
    fn name(&self) -> &str {
        if self.config.bi_level {
            "DISC-all"
        } else {
            "DISC-all (no bi-level)"
        }
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_inner(db, min_support, &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| self.mine_inner(db, min_support, guard, result, None))
    }

    fn mine_parallel(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        threads: usize,
    ) -> MiningResult {
        crate::parallel::ParallelDiscAll::with_threads(threads)
            .with_config(self.config)
            .mine(db, min_support)
    }
}

impl DiscAll {
    /// The cooperative core behind both entry points: checkpoints on every
    /// partition-walk step and every per-member scan, notes every pattern.
    /// With a [`CheckpointSink`], snapshots the boundary-consistent state
    /// after the frequent 1-sequences and after every completed first-level
    /// partition, and skips partitions a resumed snapshot marks done (their
    /// reassignment chains still run — later partitions need them).
    pub(crate) fn mine_inner(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        mut sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        let delta = min_support.resolve(db.len());
        let Some(max_item) = db.max_item() else {
            return Ok(());
        };
        let n_items = max_item.id() as usize + 1;

        // Flatten once; every hot scan below walks the contiguous arena.
        let flat = FlatDb::from_database(db);

        // Step 1: frequent 1-sequences + first-level partitions.
        let freq1 = frequent_one_sequences(&flat, delta, n_items, guard, result)?;
        if let Some(s) = sink.as_deref_mut() {
            s.level_one(result);
        }

        // Step 2: walk first-level partitions in ascending key order.
        let mut first_level = group_by_min_item_guarded(db, guard)?;
        while let Some((&lambda, _)) = first_level.iter().next() {
            guard.checkpoint()?;
            let members = first_level.remove(&lambda).expect("key just observed");
            let resumed = sink.as_deref().is_some_and(|s| s.is_done(lambda));
            if freq1[lambda.id() as usize] && !resumed {
                self.process_first_level(
                    &flat, lambda, &members, delta, n_items, &freq1, guard, result,
                )?;
                if let Some(s) = sink.as_deref_mut() {
                    s.partition_done(lambda, result);
                }
            }
            // Step 2.2: reassignment chains.
            for idx in members {
                guard.checkpoint()?;
                if let Some(next) = next_frequent_item(flat.row(idx), lambda, &freq1) {
                    first_level.entry(next).or_default().push(idx);
                }
            }
        }
        Ok(())
    }

    /// Steps 2.1.1–2.1.3 for one `<(λ)>`-partition.
    ///
    /// Crate-visible because this is also the **shard body** of
    /// [`crate::parallel::ParallelDiscAll`]: the member list of the
    /// `<(λ)>`-partition at its processing time is exactly the rows
    /// containing `λ` (the reassignment chains enumerate, per row, every
    /// frequent item it contains), so first-level partitions are mutually
    /// independent and can run concurrently.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_first_level(
        &self,
        flat: &FlatDb,
        lambda: Item,
        members: &[usize],
        delta: u64,
        n_items: usize,
        freq1: &[bool],
        guard: &MineGuard,
        result: &mut MiningResult,
    ) -> Result<(), AbortReason> {
        let prefix1 = Sequence::single(lambda);

        // 2.1.1: frequent 2-sequences by counting array (over the originals —
        // every supporter of a 2-sequence starting with λ is a member now).
        guard.charge(members.len() as u64)?;
        let array = count_extensions(&prefix1, members.iter().map(|&i| flat.row(i)), n_items);
        let (i_mask, s_mask) = array.frequency_masks(delta);
        for (elem, support) in array.frequent_extensions(delta) {
            guard.note_pattern()?;
            result.insert(prefix1.extended(elem), support);
        }

        // 2.1.2: reduce into a partition-local flat arena and group by
        // 2-minimum subsequence. Partition slots are arena row indices;
        // reduced members never exist as nested sequences.
        let mut arena = FlatArena::new();
        let mut second_level: BTreeMap<ExtElem, Vec<usize>> = BTreeMap::new();
        for &idx in members {
            guard.checkpoint()?;
            let seq = flat.row(idx);
            let min_point =
                seq.first_txn_containing(lambda).expect("partition members contain their key item");
            let Some(row) =
                reduce_into(&mut arena, seq, lambda, min_point, freq1, &i_mask, &s_mask)
            else {
                continue;
            };
            if let Some(elem) = min_ext_elem(arena.row(row), &prefix1, &i_mask, &s_mask, None) {
                second_level.entry(elem).or_default().push(row);
            } else {
                arena.pop_row(); // unextendable: the row just appended is dead
            }
        }

        // 2.1.3: walk second-level partitions in ascending key order.
        while let Some((&elem, _)) = second_level.iter().next() {
            guard.checkpoint()?;
            let slots = second_level.remove(&elem).expect("key just observed");
            if slots.len() as u64 >= delta {
                let prefix2 = prefix1.extended(elem);
                let partition: Vec<_> = slots.iter().map(|&s| arena.row(s)).collect();
                self.process_second_level(&prefix2, &partition, delta, n_items, guard, result)?;
            }
            // 2.1.3.3: reassign by the next 2-minimum subsequence.
            for slot in slots {
                guard.checkpoint()?;
                if let Some(next) =
                    min_ext_elem(arena.row(slot), &prefix1, &i_mask, &s_mask, Some(elem))
                {
                    second_level.entry(next).or_default().push(slot);
                }
            }
        }
        Ok(())
    }

    /// Steps 2.1.3.1–2.1.3.2 for one second-level partition.
    fn process_second_level<'a, S: SeqView<'a>>(
        &self,
        prefix2: &Sequence,
        partition: &[S],
        delta: u64,
        n_items: usize,
        guard: &MineGuard,
        result: &mut MiningResult,
    ) -> Result<(), AbortReason> {
        // 2.1.3.1: frequent 3-sequences by counting array.
        guard.charge(partition.len() as u64)?;
        let array = count_extensions(prefix2, partition.iter().copied(), n_items);
        let mut freq3 = Vec::new();
        for (elem, support) in array.frequent_extensions(delta) {
            let pat = prefix2.extended(elem);
            guard.note_pattern()?;
            result.insert(pat.clone(), support);
            freq3.push(pat);
        }

        // 2.1.3.2: DISC iterations for k ≥ 4.
        run_disc_levels(partition, freq3, delta, self.config.bi_level, n_items, guard, result)
    }
}

/// Step 1 of Figure 2, shared by the sequential and parallel miners: one
/// counting-array scan finds the frequent 1-sequences, inserts them into
/// `result`, and returns the `freq1` mask.
pub(crate) fn frequent_one_sequences(
    flat: &FlatDb,
    delta: u64,
    n_items: usize,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<Vec<bool>, AbortReason> {
    guard.charge(flat.len() as u64)?;
    let root = count_extensions(&Sequence::empty(), flat.rows(), n_items);
    let mut freq1 = vec![false; n_items];
    for id in 0..n_items as u32 {
        let support = root.seq_support(Item(id));
        if support >= delta {
            freq1[id as usize] = true;
            guard.note_pattern()?;
            result.insert(Sequence::single(Item(id)), support);
        }
    }
    Ok(freq1)
}

/// The `k = start, start+1, …` (or `start, start+2, …` under bi-level) DISC
/// loop shared by DISC-all and Dynamic DISC-all. `freq_prev` holds the
/// ascending frequent (k-1)-sequences that seed the first iteration.
/// Patterns reach `result` only from *completed* discovery calls, so an
/// abort mid-discovery never records unverified supports.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_disc_levels<'a, S: SeqView<'a>>(
    members: &[S],
    mut freq_prev: Vec<Sequence>,
    delta: u64,
    bi_level: bool,
    n_items: usize,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    while !freq_prev.is_empty() && members.len() as u64 >= delta {
        guard.checkpoint()?;
        let out =
            discover_frequent_k_guarded(members, &freq_prev, delta, bi_level, n_items, guard)?;
        for (p, s) in &out.freq_k {
            guard.note_pattern()?;
            result.insert(p.clone(), *s);
        }
        if bi_level {
            for (p, s) in &out.freq_k1 {
                guard.note_pattern()?;
                result.insert(p.clone(), *s);
            }
            freq_prev = out.freq_k1.into_iter().map(|(p, _)| p).collect();
        } else {
            freq_prev = out.freq_k.into_iter().map(|(p, _)| p).collect();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    fn assert_matches_brute_force(db: &SequenceDatabase, delta: u64) {
        let expected = BruteForce::default().mine(db, MinSupport::Count(delta));
        for miner in [DiscAll::default(), DiscAll::without_bi_level()] {
            let got = miner.mine(db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "{} δ={delta}:\n{}", miner.name(), diff.join("\n"));
        }
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        for delta in 1..=4 {
            assert_matches_brute_force(&table1(), delta);
        }
    }

    #[test]
    fn matches_brute_force_on_table_6() {
        for delta in 1..=5 {
            assert_matches_brute_force(&table6(), delta);
        }
    }

    #[test]
    fn example_3_1_finds_the_promised_patterns() {
        // "<(a)>-partition will be processed first to find all the frequent
        // sequences that contain a as the first item, e.g. <(a, e)> and
        // <(a)(g, h)>" — δ = 3.
        let result = DiscAll::default().mine(&table6(), MinSupport::Count(3));
        assert!(result.contains_pattern(&parse_sequence("(a,e)").unwrap()));
        assert!(result.contains_pattern(&parse_sequence("(a)(g,h)").unwrap()));
        // And the deep ones traced in Examples 3.3–3.5.
        assert_eq!(result.support_of(&parse_sequence("(a)(a,e,g)").unwrap()), Some(5));
        assert_eq!(result.support_of(&parse_sequence("(a)(a,e,g,h)").unwrap()), Some(3));
        // <(d)> is the only non-frequent 1-sequence.
        assert!(!result.contains_pattern(&parse_sequence("(d)").unwrap()));
        assert!(result.contains_pattern(&parse_sequence("(h)").unwrap()));
    }

    #[test]
    fn empty_database() {
        let result = DiscAll::default().mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(result.is_empty());
    }

    #[test]
    fn single_customer_delta_one() {
        let db = SequenceDatabase::from_parsed(&["(a,b)(c)"]).unwrap();
        assert_matches_brute_force(&db, 1);
    }

    #[test]
    fn duplicate_customers_accumulate_support() {
        let db = SequenceDatabase::from_parsed(&[
            "(a)(b)(c)(d)(e)",
            "(a)(b)(c)(d)(e)",
            "(a)(b)(c)(d)(e)",
        ])
        .unwrap();
        let result = DiscAll::default().mine(&db, MinSupport::Count(3));
        // The full 5-sequence and every subsequence of it are frequent: 2^5-1.
        assert_eq!(result.len(), 31);
        assert_eq!(result.support_of(&parse_sequence("(a)(b)(c)(d)(e)").unwrap()), Some(3));
        assert_matches_brute_force(&db, 3);
    }

    #[test]
    fn deep_itemset_patterns() {
        let db = SequenceDatabase::from_parsed(&[
            "(a,b,c,d,e)(a,b)",
            "(a,b,c,d,e)(c)",
            "(x)(a,b,c,d,e)",
        ])
        .unwrap();
        let result = DiscAll::default().mine(&db, MinSupport::Count(3));
        assert_eq!(result.support_of(&parse_sequence("(a,b,c,d,e)").unwrap()), Some(3));
        assert_matches_brute_force(&db, 3);
        assert_matches_brute_force(&db, 2);
    }

    #[test]
    fn fraction_threshold_resolution() {
        let db = table6();
        let by_count = DiscAll::default().mine(&db, MinSupport::Count(3));
        let by_fraction = DiscAll::default().mine(&db, MinSupport::Fraction(3.0 / 11.0));
        assert!(by_count.diff(&by_fraction).is_empty());
    }
}
