//! The **DISC-all** algorithm (Figure 2): two-level partitioning + counting
//! arrays for lengths 1–3, the DISC strategy for lengths ≥ 4.

use crate::counting::{count_extensions, count_extensions_into, CountingArray};
use crate::discovery::discover_frequent_k_into;
use crate::partition::{group_by_min_item_guarded, reduce_into, RowExtensions};
use crate::resume::CheckpointSink;
use disc_core::{
    run_guarded, AbortReason, ExtElem, FlatArena, FlatDb, GuardedResult, Item, MinSupport,
    MineGuard, MiningResult, SeqView, Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::BTreeMap;

/// Tuning knobs for [`DiscAll`] (and the DISC stages of the dynamic
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscConfig {
    /// Use the bi-level optimization of §3.2 (one k-sorted-database pass
    /// yields levels k and k+1). The paper's experiments enable it; an
    /// ablation bench compares both settings.
    pub bi_level: bool,
}

impl Default for DiscConfig {
    fn default() -> Self {
        DiscConfig { bi_level: true }
    }
}

/// The DISC-all miner.
///
/// Step by step (Figure 2):
///
/// 1. one scan finds the frequent 1-sequences and groups customers by their
///    minimum item into **first-level partitions**;
/// 2. each first-level partition (ascending) with a frequent `λ`:
///    * one counting-array scan finds the frequent 2-sequences `<(λ)(x)>` /
///      `<(λ x)>`,
///    * customers are **reduced** (non-frequent 1-/2-sequences removed) and
///      grouped by their 2-minimum subsequence into **second-level
///      partitions**;
/// 3. each second-level partition (ascending): a counting-array scan finds
///    the frequent 3-sequences, then the **DISC strategy** iterates k = 4,
///    5, … (stepping by two under bi-level);
/// 4. after a partition is processed its members are *reassigned* to the
///    partition of their next minimum, so later partitions always see every
///    supporter of their key.
#[derive(Debug, Clone, Default)]
pub struct DiscAll {
    /// Configuration.
    pub config: DiscConfig,
}

impl DiscAll {
    /// A DISC-all miner with the bi-level optimization disabled.
    pub fn without_bi_level() -> DiscAll {
        DiscAll { config: DiscConfig { bi_level: false } }
    }
}

impl SequentialMiner for DiscAll {
    fn name(&self) -> &str {
        if self.config.bi_level {
            "DISC-all"
        } else {
            "DISC-all (no bi-level)"
        }
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_inner(db, min_support, &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| self.mine_inner(db, min_support, guard, result, None))
    }

    fn mine_parallel(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        threads: usize,
    ) -> MiningResult {
        crate::parallel::ParallelDiscAll::with_threads(threads)
            .with_config(self.config)
            .mine(db, min_support)
    }
}

impl DiscAll {
    /// Mines a [`FlatDb`] directly — the entry point for columns mapped
    /// zero-copy from a `DSCFD1` flat file, where no nested
    /// [`SequenceDatabase`] ever exists. Identical output to
    /// [`SequentialMiner::mine`] on the database the columns came from
    /// (item ids as stored: a mapped file yields compact-id patterns until
    /// the caller restores them through the file's dictionary).
    pub fn mine_flat(&self, flat: &FlatDb, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_flat_inner(flat, min_support.resolve(flat.len()), &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    /// [`DiscAll::mine_flat`] under a [`MineGuard`].
    pub fn mine_flat_guarded(
        &self,
        flat: &FlatDb,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        let delta = min_support.resolve(flat.len());
        run_guarded(guard, |result| self.mine_flat_inner(flat, delta, guard, result, None))
    }

    /// The cooperative core behind both entry points: checkpoints on every
    /// partition-walk step and every per-member scan, notes every pattern.
    /// With a [`CheckpointSink`], snapshots the boundary-consistent state
    /// after the frequent 1-sequences and after every completed first-level
    /// partition, and skips partitions a resumed snapshot marks done (their
    /// reassignment chains still run — later partitions need them).
    pub(crate) fn mine_inner(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        // Flatten once; every hot scan below walks the contiguous arena.
        let flat = FlatDb::from_database(db);
        self.mine_flat_inner(&flat, min_support.resolve(db.len()), guard, result, sink)
    }

    /// [`DiscAll::mine_inner`] over the flat columns themselves — heap or
    /// mapped, the kernels cannot tell.
    pub(crate) fn mine_flat_inner(
        &self,
        flat: &FlatDb,
        delta: u64,
        guard: &MineGuard,
        result: &mut MiningResult,
        mut sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        let Some(max_item) = flat.max_item() else {
            return Ok(());
        };
        let n_items = max_item.id() as usize + 1;

        // One counting array, reduction arena and extension table for the
        // whole run: partitions reset them instead of re-allocating (the
        // arena and table stabilize at the largest partition's footprint).
        let mut carray = CountingArray::new(n_items);
        let mut arena = FlatArena::new();
        let mut exts = RowExtensions::new();

        // Step 1: frequent 1-sequences + first-level partitions.
        let freq1 = frequent_one_sequences(flat, delta, n_items, guard, result)?;
        if let Some(s) = sink.as_deref_mut() {
            s.level_one(result);
        }

        // Step 2: walk first-level partitions in ascending key order. The
        // reassignment chain of a row visits, ascending, exactly the
        // distinct frequent items it contains — precompute those lists once
        // so every chain turn is a binary search instead of a row walk.
        let row_items = frequent_items_per_row(flat, &freq1, guard)?;
        let mut first_level = group_by_min_item_guarded(flat, guard)?;
        while let Some((&lambda, _)) = first_level.iter().next() {
            guard.checkpoint()?;
            let members = first_level.remove(&lambda).expect("key just observed");
            let resumed = sink.as_deref().is_some_and(|s| s.is_done(lambda));
            if freq1[lambda.id() as usize] && !resumed {
                self.process_first_level(
                    flat,
                    lambda,
                    &members,
                    delta,
                    &freq1,
                    guard,
                    result,
                    &mut carray,
                    &mut arena,
                    &mut exts,
                )?;
                if let Some(s) = sink.as_deref_mut() {
                    s.partition_done(lambda, result);
                }
            }
            // Step 2.2: reassignment chains.
            for idx in members {
                guard.checkpoint()?;
                let items = &row_items[idx];
                let from = items.partition_point(|&x| x <= lambda);
                if let Some(&next) = items.get(from) {
                    first_level.entry(next).or_default().push(idx);
                }
            }
        }
        Ok(())
    }

    /// Steps 2.1.1–2.1.3 for one `<(λ)>`-partition.
    ///
    /// Crate-visible because this is also the **shard body** of
    /// [`crate::parallel::ParallelDiscAll`]: the member list of the
    /// `<(λ)>`-partition at its processing time is exactly the rows
    /// containing `λ` (the reassignment chains enumerate, per row, every
    /// frequent item it contains), so first-level partitions are mutually
    /// independent and can run concurrently.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_first_level(
        &self,
        flat: &FlatDb,
        lambda: Item,
        members: &[usize],
        delta: u64,
        freq1: &[bool],
        guard: &MineGuard,
        result: &mut MiningResult,
        carray: &mut CountingArray,
        arena: &mut FlatArena,
        exts: &mut RowExtensions,
    ) -> Result<(), AbortReason> {
        let prefix1 = Sequence::single(lambda);

        // 2.1.1: frequent 2-sequences by counting array (over the originals —
        // every supporter of a 2-sequence starting with λ is a member now).
        guard.charge(members.len() as u64)?;
        count_extensions_into(carray, &prefix1, members.iter().map(|&i| flat.row(i)));
        let (i_mask, s_mask) = carray.frequency_masks(delta);
        for (elem, support) in carray.frequent_extensions(delta) {
            guard.note_pattern()?;
            result.insert(prefix1.extended(elem), support);
        }

        // 2.1.2: reduce into a partition-local flat arena and group by
        // 2-minimum subsequence. Partition slots are arena row indices;
        // reduced members never exist as nested sequences. Each row's
        // extension set is computed once here; the keying below and every
        // 2.1.3.3 reassignment turn are lookups into it.
        arena.clear();
        exts.clear();
        let mut second_level: BTreeMap<ExtElem, Vec<usize>> = BTreeMap::new();
        for &idx in members {
            guard.checkpoint()?;
            let seq = flat.row(idx);
            let min_point =
                seq.first_txn_containing(lambda).expect("partition members contain their key item");
            let Some(row) = reduce_into(arena, seq, lambda, min_point, freq1, &i_mask, &s_mask)
            else {
                continue;
            };
            let ext_row = exts.push_row(arena.row(row), &prefix1);
            debug_assert_eq!(ext_row, row);
            if let Some(elem) = exts.min_masked(row, &i_mask, &s_mask, None) {
                second_level.entry(elem).or_default().push(row);
            } else {
                // Unextendable: the row just appended is dead.
                arena.pop_row();
                exts.pop_row();
            }
        }

        // 2.1.3: walk second-level partitions in ascending key order.
        while let Some((&elem, _)) = second_level.iter().next() {
            guard.checkpoint()?;
            let slots = second_level.remove(&elem).expect("key just observed");
            if slots.len() as u64 >= delta {
                let prefix2 = prefix1.extended(elem);
                let partition: Vec<_> = slots.iter().map(|&s| arena.row(s)).collect();
                self.process_second_level(&prefix2, &partition, delta, guard, result, carray)?;
            }
            // 2.1.3.3: reassign by the next 2-minimum subsequence.
            for slot in slots {
                guard.checkpoint()?;
                if let Some(next) = exts.min_masked(slot, &i_mask, &s_mask, Some(elem)) {
                    second_level.entry(next).or_default().push(slot);
                }
            }
        }
        Ok(())
    }

    /// Steps 2.1.3.1–2.1.3.2 for one second-level partition.
    fn process_second_level<'a, S: SeqView<'a>>(
        &self,
        prefix2: &Sequence,
        partition: &[S],
        delta: u64,
        guard: &MineGuard,
        result: &mut MiningResult,
        carray: &mut CountingArray,
    ) -> Result<(), AbortReason> {
        // 2.1.3.1: frequent 3-sequences by counting array.
        guard.charge(partition.len() as u64)?;
        count_extensions_into(carray, prefix2, partition.iter().copied());
        let mut freq3 = Vec::new();
        for (elem, support) in carray.frequent_extensions(delta) {
            let pat = prefix2.extended(elem);
            guard.note_pattern()?;
            result.insert(pat.clone(), support);
            freq3.push(pat);
        }

        // 2.1.3.2: DISC iterations for k ≥ 4.
        run_disc_levels(partition, freq3, delta, self.config.bi_level, guard, result, carray)
    }
}

/// Per database row, the ascending distinct *frequent* items it contains —
/// the full itinerary of the row's first-level reassignment chain, computed
/// in one pass per row.
fn frequent_items_per_row(
    flat: &FlatDb,
    freq1: &[bool],
    guard: &MineGuard,
) -> Result<Vec<Vec<Item>>, AbortReason> {
    let mut out = Vec::with_capacity(flat.len());
    let mut items: Vec<Item> = Vec::new();
    for row in flat.rows() {
        guard.checkpoint()?;
        items.clear();
        for t in 0..row.n_transactions() {
            items.extend(row.itemset_items(t).iter().copied().filter(|x| freq1[x.id() as usize]));
        }
        items.sort_unstable();
        items.dedup();
        out.push(items.clone());
    }
    Ok(out)
}

/// Step 1 of Figure 2, shared by the sequential and parallel miners: one
/// counting-array scan finds the frequent 1-sequences, inserts them into
/// `result`, and returns the `freq1` mask.
pub(crate) fn frequent_one_sequences(
    flat: &FlatDb,
    delta: u64,
    n_items: usize,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<Vec<bool>, AbortReason> {
    guard.charge(flat.len() as u64)?;
    let root = count_extensions(&Sequence::empty(), flat.rows(), n_items);
    let mut freq1 = vec![false; n_items];
    for id in 0..n_items as u32 {
        let support = root.seq_support(Item(id));
        if support >= delta {
            freq1[id as usize] = true;
            guard.note_pattern()?;
            result.insert(Sequence::single(Item(id)), support);
        }
    }
    Ok(freq1)
}

/// The `k = start, start+1, …` (or `start, start+2, …` under bi-level) DISC
/// loop shared by DISC-all and Dynamic DISC-all. `freq_prev` holds the
/// ascending frequent (k-1)-sequences that seed the first iteration.
/// Patterns reach `result` only from *completed* discovery calls, so an
/// abort mid-discovery never records unverified supports.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_disc_levels<'a, S: SeqView<'a>>(
    members: &[S],
    mut freq_prev: Vec<Sequence>,
    delta: u64,
    bi_level: bool,
    guard: &MineGuard,
    result: &mut MiningResult,
    carray: &mut CountingArray,
) -> Result<(), AbortReason> {
    while !freq_prev.is_empty() && members.len() as u64 >= delta {
        guard.checkpoint()?;
        let out = discover_frequent_k_into(members, &freq_prev, delta, bi_level, guard, carray)?;
        // Patterns that don't seed the next level are *moved* into the
        // result; only the seeding level clones (its sequences live on as
        // the next (k-1)-sorted list).
        if bi_level {
            for (p, s) in out.freq_k {
                guard.note_pattern()?;
                result.insert(p, s);
            }
            freq_prev = Vec::with_capacity(out.freq_k1.len());
            for (p, s) in out.freq_k1 {
                guard.note_pattern()?;
                freq_prev.push(p.clone());
                result.insert(p, s);
            }
        } else {
            freq_prev = Vec::with_capacity(out.freq_k.len());
            for (p, s) in out.freq_k {
                guard.note_pattern()?;
                freq_prev.push(p.clone());
                result.insert(p, s);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    fn assert_matches_brute_force(db: &SequenceDatabase, delta: u64) {
        let expected = BruteForce::default().mine(db, MinSupport::Count(delta));
        for miner in [DiscAll::default(), DiscAll::without_bi_level()] {
            let got = miner.mine(db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "{} δ={delta}:\n{}", miner.name(), diff.join("\n"));
        }
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        for delta in 1..=4 {
            assert_matches_brute_force(&table1(), delta);
        }
    }

    #[test]
    fn matches_brute_force_on_table_6() {
        for delta in 1..=5 {
            assert_matches_brute_force(&table6(), delta);
        }
    }

    #[test]
    fn example_3_1_finds_the_promised_patterns() {
        // "<(a)>-partition will be processed first to find all the frequent
        // sequences that contain a as the first item, e.g. <(a, e)> and
        // <(a)(g, h)>" — δ = 3.
        let result = DiscAll::default().mine(&table6(), MinSupport::Count(3));
        assert!(result.contains_pattern(&parse_sequence("(a,e)").unwrap()));
        assert!(result.contains_pattern(&parse_sequence("(a)(g,h)").unwrap()));
        // And the deep ones traced in Examples 3.3–3.5.
        assert_eq!(result.support_of(&parse_sequence("(a)(a,e,g)").unwrap()), Some(5));
        assert_eq!(result.support_of(&parse_sequence("(a)(a,e,g,h)").unwrap()), Some(3));
        // <(d)> is the only non-frequent 1-sequence.
        assert!(!result.contains_pattern(&parse_sequence("(d)").unwrap()));
        assert!(result.contains_pattern(&parse_sequence("(h)").unwrap()));
    }

    #[test]
    fn empty_database() {
        let result = DiscAll::default().mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(result.is_empty());
    }

    #[test]
    fn single_customer_delta_one() {
        let db = SequenceDatabase::from_parsed(&["(a,b)(c)"]).unwrap();
        assert_matches_brute_force(&db, 1);
    }

    #[test]
    fn duplicate_customers_accumulate_support() {
        let db = SequenceDatabase::from_parsed(&[
            "(a)(b)(c)(d)(e)",
            "(a)(b)(c)(d)(e)",
            "(a)(b)(c)(d)(e)",
        ])
        .unwrap();
        let result = DiscAll::default().mine(&db, MinSupport::Count(3));
        // The full 5-sequence and every subsequence of it are frequent: 2^5-1.
        assert_eq!(result.len(), 31);
        assert_eq!(result.support_of(&parse_sequence("(a)(b)(c)(d)(e)").unwrap()), Some(3));
        assert_matches_brute_force(&db, 3);
    }

    #[test]
    fn deep_itemset_patterns() {
        let db = SequenceDatabase::from_parsed(&[
            "(a,b,c,d,e)(a,b)",
            "(a,b,c,d,e)(c)",
            "(x)(a,b,c,d,e)",
        ])
        .unwrap();
        let result = DiscAll::default().mine(&db, MinSupport::Count(3));
        assert_eq!(result.support_of(&parse_sequence("(a,b,c,d,e)").unwrap()), Some(3));
        assert_matches_brute_force(&db, 3);
        assert_matches_brute_force(&db, 2);
    }

    #[test]
    fn fraction_threshold_resolution() {
        let db = table6();
        let by_count = DiscAll::default().mine(&db, MinSupport::Count(3));
        let by_fraction = DiscAll::default().mine(&db, MinSupport::Fraction(3.0 / 11.0));
        assert!(by_count.diff(&by_fraction).is_empty());
    }
}
