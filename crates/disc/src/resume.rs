//! **Resumable guarded mining**: durable checkpoints at first-level
//! partition boundaries, and a wrapper that continues an interrupted run to
//! a result bit-identical to an uninterrupted one.
//!
//! ## Boundary-consistent snapshots
//!
//! A [`CheckpointSink`] rides along a mining run and observes every
//! **first-level partition boundary** — after the frequent 1-sequences, and
//! after each `<(λ)>`-partition completes. At those points the accumulated
//! [`MiningResult`] is exactly the union of the finished partitions'
//! disjoint pattern sets (see `parallel.rs` for why first-level partitions
//! are independent), and the scheduled snapshots (every `n`-th boundary)
//! are taken exactly there. Snapshots are built lazily, only when one is
//! actually persisted — observing a skipped boundary costs a counter
//! update, not a pattern-set clone. A cooperative abort (budget, deadline,
//! cancellation) flushes the *current* state: the completed partitions'
//! full sets plus whatever sound prefix the in-flight partition had emitted
//! (every reported pattern is genuinely frequent with its exact support).
//! The done-list never includes the in-flight partition, so resume re-mines
//! it in full and re-inserts those patterns idempotently. A hard kill
//! simply leaves the last snapshot that reached disk.
//!
//! ## Resume invariants
//!
//! Resume validates the snapshot's database fingerprint and resolved δ,
//! seeds the saved patterns and guard spend, skips the completed partitions
//! (their reassignment chains are re-derived from the shard/partition
//! structure itself, which depends only on the database), and re-mines the
//! interrupted partition from scratch. Because partition pattern sets are
//! disjoint and [`MiningResult::insert`] cross-checks supports on overlap,
//! the completed result is **bit-identical** to an uninterrupted run — the
//! recovery matrix in `tests/checkpoint_recovery.rs` asserts this for every
//! miner at every injected crash point.

use disc_core::checkpoint::{
    self, database_fingerprint, peek_progress, read_snapshot, CheckpointError, MiningSnapshot,
    SnapshotProgress, SnapshotView,
};
use disc_core::{
    run_guarded, AbortReason, GuardedResult, Item, MinSupport, MineGuard, MiningResult,
    SequenceDatabase, SequentialMiner,
};
use std::cell::Cell;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// File name a [`Resumable`] miner uses inside its checkpoint directory.
pub const CHECKPOINT_FILE: &str = "mine.dscck";

/// Write-side counters of one checkpointed run, for overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Durable snapshot writes performed.
    pub writes: u64,
    /// Partition boundaries observed (writes ≤ boundaries when snapshotting
    /// every n-th boundary).
    pub boundaries: u64,
    /// Total bytes written across all snapshots.
    pub bytes: u64,
    /// Wall-clock time spent encoding + fsyncing + renaming.
    pub write_time: Duration,
    /// Whether a write failed; the sink stops writing after the first
    /// failure (mining continues, durability degrades — never the reverse).
    pub failed: bool,
}

/// Snapshot provenance a miner reports to its sink.
#[derive(Debug, Clone, Copy)]
struct SnapshotMeta {
    fingerprint: u64,
    rows: u64,
    delta: u64,
    miner: u8,
    bi_level: bool,
    threads: u32,
}

/// The per-run checkpoint writer. Miners call it at partition boundaries;
/// it decides when to persist, performs the atomic write protocol, and
/// consults the guard's `FaultPlan` (fault-injection builds) for injected
/// crashes.
pub struct CheckpointSink<'g> {
    guard: &'g MineGuard,
    path: PathBuf,
    every: u64,
    meta: SnapshotMeta,
    /// Completed first-level partition keys, ascending.
    done: Vec<u32>,
    /// Whether a boundary has been observed since the last persisted
    /// snapshot — i.e. whether a flush would write anything new.
    dirty: bool,
    stats: CheckpointStats,
}

impl<'g> CheckpointSink<'g> {
    fn new(
        path: PathBuf,
        every: u64,
        guard: &'g MineGuard,
        meta: SnapshotMeta,
        resume: Option<&MiningSnapshot>,
    ) -> CheckpointSink<'g> {
        if let Some(dir) = path.parent() {
            // A missing directory surfaces at the first write, not here.
            let _ = fs::create_dir_all(dir);
        }
        CheckpointSink {
            guard,
            path,
            every: every.max(1),
            meta,
            done: resume.map(|s| s.done.clone()).unwrap_or_default(),
            dirty: false,
            stats: CheckpointStats::default(),
        }
    }

    /// Whether the `<(λ)>`-partition completed in a previous (resumed) run
    /// and must be skipped.
    pub(crate) fn is_done(&self, lambda: Item) -> bool {
        self.done.binary_search(&lambda.id()).is_ok()
    }

    /// The level-1 boundary: the frequent 1-sequences are in `result`.
    pub(crate) fn level_one(&mut self, result: &MiningResult) {
        self.boundary(&[], result);
    }

    /// One `<(λ)>`-partition completed with `result` holding every pattern
    /// of the finished partitions.
    pub(crate) fn partition_done(&mut self, lambda: Item, result: &MiningResult) {
        self.boundary(&[lambda], result);
    }

    /// Several partitions completed at once (the parallel miner's merge
    /// point). Always persists — this is the run's last boundary.
    pub(crate) fn partitions_done(&mut self, lambdas: &[Item], result: &MiningResult) {
        self.boundary(lambdas, result);
        self.flush(result);
    }

    /// Persists the current state if any boundary passed since the last
    /// write. Called on abort (so the freshest durable state survives a
    /// cooperative stop) and at the end of a complete run (so the final
    /// snapshot marks every partition done). Mid-partition, `result` may
    /// hold a sound prefix of the in-flight partition on top of the last
    /// boundary — see the module docs for why resume stays bit-identical.
    pub(crate) fn flush(&mut self, result: &MiningResult) {
        if self.dirty {
            self.persist_now(result);
        }
    }

    fn boundary(&mut self, newly_done: &[Item], result: &MiningResult) {
        for lambda in newly_done {
            let id = lambda.id();
            if let Err(at) = self.done.binary_search(&id) {
                self.done.insert(at, id);
            }
        }
        self.stats.boundaries += 1;
        self.dirty = true;
        if self.stats.boundaries.is_multiple_of(self.every) {
            self.persist_now(result);
        }
    }

    /// Persists the current state. Encoding streams straight out of the
    /// live result via a borrowed [`SnapshotView`] — an actual write costs
    /// one encode plus the durable IO, never a deep clone of the pattern
    /// set, and a skipped boundary costs only a counter update.
    fn persist_now(&mut self, result: &MiningResult) {
        let stats = self.guard.stats();
        let view = SnapshotView {
            fingerprint: self.meta.fingerprint,
            rows: self.meta.rows,
            delta: self.meta.delta,
            miner: self.meta.miner,
            bi_level: self.meta.bi_level,
            threads: self.meta.threads,
            done: &self.done,
            patterns: result,
            ops: stats.ops,
            noted_patterns: stats.patterns as u64,
        };
        self.dirty = false;

        if self.stats.failed {
            return;
        }
        let write_n = self.stats.writes + 1;
        #[cfg(feature = "fault-injection")]
        if let Some(fault) = self.guard.io_write_fault(disc_core::IoWriter::Checkpoint, write_n) {
            if let Some(crash) = fault.as_checkpoint_crash() {
                // Crash injection is test-only; materializing the owned
                // snapshot here keeps the clone off the production write path.
                checkpoint::write_snapshot_crashing(&self.path, &view.to_snapshot(), crash);
                panic!("injected crash at snapshot write {write_n}: {crash:?}");
            }
            match fault {
                // A transient interruption is what the retry loop inside
                // the atomic writer absorbs — proceed with the real write.
                disc_core::IoFault::Interrupted => {}
                // Permanent error-class faults (ENOSPC and friends) take
                // the same path a real write failure would: durability
                // degrades, mining does not.
                _ => {
                    self.stats.failed = true;
                    return;
                }
            }
        }
        let start = Instant::now();
        match checkpoint::write_snapshot_view(&self.path, &view) {
            Ok(bytes) => {
                self.stats.writes = write_n;
                self.stats.bytes += bytes as u64;
                self.stats.write_time += start.elapsed();
            }
            Err(_) => {
                // Durability degrades, mining does not: stop writing and
                // report through the stats, never corrupt or abort the run.
                self.stats.failed = true;
            }
        }
    }
}

/// A miner that can run with a [`CheckpointSink`] riding along. Implemented
/// by [`DiscAll`](crate::DiscAll), [`DynamicDiscAll`](crate::DynamicDiscAll)
/// and [`ParallelDiscAll`](crate::ParallelDiscAll).
pub trait Checkpointable: SequentialMiner {
    /// `(miner code, bi_level, threads)` recorded in snapshot headers.
    fn provenance(&self) -> (u8, bool, u32);

    /// The cooperative mining core with boundary hooks into `sink`.
    fn mine_with_sink(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: &mut CheckpointSink<'_>,
    ) -> Result<(), AbortReason>;
}

impl Checkpointable for crate::DiscAll {
    fn provenance(&self) -> (u8, bool, u32) {
        (checkpoint::MINER_DISC_ALL, self.config.bi_level, 1)
    }

    fn mine_with_sink(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: &mut CheckpointSink<'_>,
    ) -> Result<(), AbortReason> {
        self.mine_inner(db, min_support, guard, result, Some(sink))
    }
}

impl Checkpointable for crate::DynamicDiscAll {
    fn provenance(&self) -> (u8, bool, u32) {
        (checkpoint::MINER_DYNAMIC, self.bi_level, 1)
    }

    fn mine_with_sink(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: &mut CheckpointSink<'_>,
    ) -> Result<(), AbortReason> {
        self.mine_inner(db, min_support, guard, result, Some(sink))
    }
}

impl Checkpointable for crate::ParallelDiscAll {
    fn provenance(&self) -> (u8, bool, u32) {
        (checkpoint::MINER_PARALLEL, self.config.bi_level, self.threads() as u32)
    }

    fn mine_with_sink(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: &mut CheckpointSink<'_>,
    ) -> Result<(), AbortReason> {
        self.mine_inner(db, min_support, guard, result, Some(sink))
    }
}

/// A checkpointing wrapper around a [`Checkpointable`] miner.
///
/// Every guarded run writes durable snapshots of its progress into the
/// configured directory, and **auto-resumes**: when the directory already
/// holds a valid snapshot for the same database and δ, completed partitions
/// are skipped and their patterns seeded. An invalid, torn, or foreign
/// snapshot is ignored (mining starts fresh and atomically replaces it);
/// the explicit [`Resumable::resume_from`] entry point instead surfaces the
/// typed rejection.
pub struct Resumable<M> {
    miner: M,
    dir: PathBuf,
    every: u64,
    name: String,
    last_stats: Cell<CheckpointStats>,
}

impl<M: Checkpointable> Resumable<M> {
    /// Wraps `miner`, checkpointing into `dir` (created on first write).
    pub fn new(miner: M, dir: impl Into<PathBuf>) -> Resumable<M> {
        let name = format!("{} +checkpoint", miner.name());
        Resumable {
            miner,
            dir: dir.into(),
            every: 1,
            name,
            last_stats: Cell::new(Default::default()),
        }
    }

    /// Persists only every `every`-th boundary (default 1 — every boundary).
    /// Lower durability, lower overhead; an abort still flushes the freshest
    /// boundary.
    pub fn with_every(mut self, every: u64) -> Resumable<M> {
        self.every = every.max(1);
        self
    }

    /// The snapshot file this wrapper reads and writes.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// The wrapped miner.
    pub fn inner(&self) -> &M {
        &self.miner
    }

    /// Write-side counters of the most recent run.
    pub fn last_stats(&self) -> CheckpointStats {
        self.last_stats.get()
    }

    /// Cheap progress summary from the snapshot on disk: completed
    /// partitions, pattern count, and guard spend, without decoding the
    /// pattern payload. Safe to poll from another thread while a run is in
    /// flight — snapshot writes are atomic renames, so a concurrent peek
    /// sees either the previous boundary or the new one, never a torn file.
    /// A missing snapshot (no boundary reached yet) returns
    /// [`CheckpointError::Missing`].
    pub fn progress(&self) -> Result<SnapshotProgress, CheckpointError> {
        peek_progress(&self.checkpoint_path())
    }

    /// Resumes explicitly from a snapshot file, validating it against `db`
    /// and the run's resolved δ. Typed rejection on a missing, torn,
    /// corrupted, stale-version, or foreign snapshot — a damaged file is
    /// never partially loaded.
    pub fn resume_from(
        &self,
        path: &Path,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> Result<GuardedResult, CheckpointError> {
        let snap = read_snapshot(path)?;
        snap.validate(db, min_support.resolve(db.len()))?;
        Ok(self.run_with(db, min_support, guard, Some(snap)))
    }

    fn run_with(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        resume: Option<MiningSnapshot>,
    ) -> GuardedResult {
        let (miner, bi_level, threads) = self.miner.provenance();
        let meta = SnapshotMeta {
            fingerprint: resume
                .as_ref()
                .map_or_else(|| database_fingerprint(db), |s| s.fingerprint),
            rows: db.len() as u64,
            delta: min_support.resolve(db.len()),
            miner,
            bi_level,
            threads,
        };
        let path = self.checkpoint_path();
        let mut sink = CheckpointSink::new(path.clone(), self.every, guard, meta, resume.as_ref());
        let sink_ref = &mut sink;
        let mut run = run_guarded(guard, |result| {
            if let Some(snap) = &resume {
                // Restore the boundary's spend and patterns. Conservative:
                // work the resumed run re-derives (frequent 1-sequences, the
                // interrupted partition) is charged again, so budgets are
                // never under-counted across a crash.
                guard.charge(snap.ops)?;
                for (pattern, support) in &snap.patterns {
                    guard.note_pattern()?;
                    result.insert(pattern.clone(), *support);
                }
            }
            let mined = self.miner.mine_with_sink(db, min_support, guard, result, sink_ref);
            // Cooperative abort: make the freshest state durable so a later
            // resume (or a fallback stage) picks it up. Completion: make the
            // final all-done snapshot durable even when `every` skipped it.
            sink_ref.flush(result);
            mined
        });
        self.last_stats.set(sink.stats);
        if path.exists() {
            run.checkpoint = Some(path);
        }
        run
    }
}

impl<M: Checkpointable> SequentialMiner for Resumable<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        self.mine_guarded(db, min_support, &MineGuard::unlimited()).result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        // Auto-resume: a valid snapshot for this (database, δ) continues;
        // anything else — missing, torn, stale, foreign — starts fresh and
        // is atomically replaced at the first boundary.
        let resume = match read_snapshot(&self.checkpoint_path()) {
            Ok(snap) if snap.validate(db, min_support.resolve(db.len())).is_ok() => Some(snap),
            _ => None,
        };
        self.run_with(db, min_support, guard, resume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscAll, DynamicDiscAll, ParallelDiscAll};
    use disc_core::{CancelToken, MineOutcome, ResourceBudget};

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("disc-resume-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_complete_run_matches_plain() {
        let db = table6();
        let dir = fresh_dir("complete");
        let wrapped = Resumable::new(DiscAll::default(), &dir);
        let plain = DiscAll::default().mine(&db, MinSupport::Count(3));
        let got = wrapped.mine(&db, MinSupport::Count(3));
        assert!(got.diff(&plain).is_empty());
        let stats = wrapped.last_stats();
        assert!(stats.writes > 0, "a checkpointed run must persist boundaries");
        assert!(!stats.failed);
        // The final snapshot on disk marks every frequent partition done and
        // carries the full pattern set.
        let snap = read_snapshot(&wrapped.checkpoint_path()).unwrap();
        assert_eq!(snap.patterns.len(), plain.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_abort_then_auto_resume_is_bit_identical() {
        let db = table6();
        let dir = fresh_dir("budget");
        let reference = DiscAll::default().mine(&db, MinSupport::Count(2));
        let wrapped = Resumable::new(DiscAll::default(), &dir);

        // Starve the first attempt so it aborts somewhere mid-run.
        let budget = ResourceBudget::unlimited().with_max_ops(60);
        let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let first = wrapped.mine_guarded(&db, MinSupport::Count(2), &guard);
        assert_eq!(first.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        assert_eq!(first.checkpoint, Some(wrapped.checkpoint_path()));

        // Auto-resume with room to finish: bit-identical to uninterrupted.
        let second = wrapped.mine_guarded(&db, MinSupport::Count(2), &MineGuard::unlimited());
        assert!(second.outcome.is_complete());
        assert!(second.result.diff(&reference).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_peek_tracks_boundaries_without_decoding_patterns() {
        let db = table6();
        let dir = fresh_dir("progress");
        let wrapped = Resumable::new(DiscAll::default(), &dir);
        assert!(
            matches!(wrapped.progress(), Err(CheckpointError::Missing { .. })),
            "no boundary reached yet — progress must be a typed miss"
        );

        // Starve a run so it checkpoints partway, then peek.
        let budget = ResourceBudget::unlimited().with_max_ops(60);
        let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let first = wrapped.mine_guarded(&db, MinSupport::Count(2), &guard);
        assert_eq!(first.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        let partial = wrapped.progress().unwrap();
        let full = read_snapshot(&wrapped.checkpoint_path()).unwrap();
        assert_eq!(partial.fingerprint, full.fingerprint);
        assert_eq!(partial.delta, full.delta);
        assert_eq!(partial.done_partitions, full.done.len() as u64);
        assert_eq!(partial.patterns, full.patterns.len() as u64);
        assert_eq!(partial.ops, full.ops);

        // Finishing the run advances the peeked progress monotonically.
        let run = wrapped.mine_guarded(&db, MinSupport::Count(2), &MineGuard::unlimited());
        assert!(run.outcome.is_complete());
        let done = wrapped.progress().unwrap();
        assert!(done.done_partitions >= partial.done_partitions);
        assert!(done.patterns >= partial.patterns);
        assert_eq!(done.patterns, run.result.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_cancellation_chains_converge() {
        // Cancel harder and harder; each resumed attempt keeps the previous
        // boundary. A final unconstrained attempt completes identically.
        let db = table6();
        let dir = fresh_dir("chain");
        let reference = ParallelDiscAll::with_threads(2).mine(&db, MinSupport::Count(2));
        let wrapped = Resumable::new(ParallelDiscAll::with_threads(2), &dir);
        for max_ops in [40u64, 80, 120] {
            let budget = ResourceBudget::unlimited().with_max_ops(max_ops);
            let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
            let _ = wrapped.mine_guarded(&db, MinSupport::Count(2), &guard);
        }
        let run = wrapped.mine_guarded(&db, MinSupport::Count(2), &MineGuard::unlimited());
        assert!(run.outcome.is_complete());
        assert!(run.result.diff(&reference).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_snapshot_is_ignored_by_auto_resume() {
        let other = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let db = table6();
        let dir = fresh_dir("foreign");

        // Write a snapshot for a different database into the directory.
        let wrapped_other = Resumable::new(DiscAll::default(), &dir);
        wrapped_other.mine(&other, MinSupport::Count(2));

        // Mining table 6 in the same directory starts fresh and replaces it.
        let wrapped = Resumable::new(DiscAll::default(), &dir);
        let reference = DiscAll::default().mine(&db, MinSupport::Count(3));
        let got = wrapped.mine(&db, MinSupport::Count(3));
        assert!(got.diff(&reference).is_empty());
        let snap = read_snapshot(&wrapped.checkpoint_path()).unwrap();
        snap.validate(&db, 3).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_resume_rejects_a_foreign_snapshot() {
        let other = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let db = table6();
        let dir = fresh_dir("reject");
        let wrapped = Resumable::new(DiscAll::default(), &dir);
        wrapped.mine(&other, MinSupport::Count(2));
        let err = wrapped
            .resume_from(
                &wrapped.checkpoint_path(),
                &db,
                MinSupport::Count(3),
                &MineGuard::unlimited(),
            )
            .unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }));
        // And a wrong δ for the right database.
        wrapped.mine(&db, MinSupport::Count(3));
        let err = wrapped
            .resume_from(
                &wrapped.checkpoint_path(),
                &db,
                MinSupport::Count(2),
                &MineGuard::unlimited(),
            )
            .unwrap_err();
        assert!(matches!(err, CheckpointError::DeltaMismatch { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_reduces_writes_but_not_correctness() {
        let db = table6();
        let dir = fresh_dir("every");
        let reference = DynamicDiscAll::default().mine(&db, MinSupport::Count(2));
        let wrapped = Resumable::new(DynamicDiscAll::default(), &dir).with_every(4);
        let got = wrapped.mine(&db, MinSupport::Count(2));
        assert!(got.diff(&reference).is_empty());
        let stats = wrapped.last_stats();
        assert!(stats.writes < stats.boundaries, "every=4 must skip boundaries");
        let _ = fs::remove_dir_all(&dir);
    }
}
