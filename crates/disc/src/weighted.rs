//! **Weighted sequence mining** — the paper's §5 future-work direction
//! ("weighting applications": page weights in WWW traversal, gene importance
//! in DNA analysis).
//!
//! Each customer sequence carries a weight; the *weighted support* of a
//! pattern is the total weight of the customers containing it, and a pattern
//! is frequent when its weighted support reaches a threshold `δ_w`. The DISC
//! strategy transfers directly because its two lemmas never count anything —
//! they only compare positions in a sorted database:
//!
//! * sort customers by (conditional) k-minimum subsequence, with weights;
//! * let `α_δ` be the key at the position where **cumulative weight**
//!   reaches `δ_w` ([`disc_tree::WeightedLocativeTree::select_by_weight`]);
//! * `α₁ = α_δ` ⇒ the bucket of `α₁` carries weight ≥ `δ_w`, and — by the
//!   same invariant as the unweighted case — every customer containing `α₁`
//!   keys on it, so the bucket weight is the exact weighted support;
//! * `α₁ < α_δ` ⇒ any `α ∈ [α₁, α_δ)` is supported only by customers keyed
//!   below `α_δ`, whose total weight is < `δ_w` — non-frequent, skipped.
//!
//! Uniform weight 1 recovers ordinary mining exactly (property-tested).
//!
//! The miner here runs the DISC strategy directly from k = 2 (weighted
//! counting arrays for level 1, weighted k-sorted databases above); the
//! multi-level partitioning of DISC-all is orthogonal and omitted for
//! clarity.

use crate::ckms::{apriori_ckms, BoundMode, Condition};
use crate::counting::CountingArray;
use crate::kms::apriori_kms;
use disc_core::{contains, CustomerId, Item, MiningResult, Sequence, SequenceDatabase};
use disc_tree::WeightedLocativeTree;

/// A sequence database whose customers carry weights.
#[derive(Debug, Clone, Default)]
pub struct WeightedDatabase {
    db: SequenceDatabase,
    weights: Vec<u64>,
}

impl WeightedDatabase {
    /// Builds from `(sequence, weight)` pairs, assigning CIDs 1, 2, ….
    pub fn from_weighted(rows: impl IntoIterator<Item = (Sequence, u64)>) -> WeightedDatabase {
        let mut db = SequenceDatabase::new();
        let mut weights = Vec::new();
        for (i, (seq, w)) in rows.into_iter().enumerate() {
            db.push(CustomerId(i as u64 + 1), seq);
            weights.push(w);
        }
        WeightedDatabase { db, weights }
    }

    /// Wraps an unweighted database with uniform weight 1.
    pub fn uniform(db: SequenceDatabase) -> WeightedDatabase {
        let weights = vec![1; db.len()];
        WeightedDatabase { db, weights }
    }

    /// The underlying sequences.
    pub fn database(&self) -> &SequenceDatabase {
        &self.db
    }

    /// The weight of customer `i`.
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// Total weight of all customers.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Definitional weighted support: total weight of the customers
    /// containing `pattern`. The reference the miner is tested against.
    pub fn weighted_support(&self, pattern: &Sequence) -> u64 {
        self.db
            .sequences()
            .zip(&self.weights)
            .filter(|(s, _)| contains(s, pattern))
            .map(|(_, &w)| w)
            .sum()
    }
}

/// The weighted DISC miner.
#[derive(Debug, Clone)]
pub struct WeightedDisc {
    /// Use the bi-level optimization (weighted counting arrays over the
    /// virtual partitions).
    pub bi_level: bool,
}

impl Default for WeightedDisc {
    fn default() -> Self {
        WeightedDisc { bi_level: true }
    }
}

impl WeightedDisc {
    /// Mines every pattern with weighted support ≥ `delta_w`. Supports in
    /// the result are weighted supports.
    pub fn mine(&self, wdb: &WeightedDatabase, delta_w: u64) -> MiningResult {
        let delta_w = delta_w.max(1);
        let mut result = MiningResult::new();
        let Some(max_item) = wdb.db.max_item() else {
            return result;
        };
        let n_items = max_item.id() as usize + 1;

        // Level 1: weighted counting array over the whole database.
        let mut array = CountingArray::new(n_items);
        for (i, s) in wdb.db.sequences().enumerate() {
            array.add_member_weighted(s, &Sequence::empty(), wdb.weights[i]);
        }
        let mut freq_prev: Vec<Sequence> = Vec::new();
        for id in 0..n_items as u32 {
            let support = array.seq_support(Item(id));
            if support >= delta_w {
                let pat = Sequence::single(Item(id));
                result.insert(pat.clone(), support);
                freq_prev.push(pat);
            }
        }

        // Levels k ≥ 2 by weighted DISC discovery.
        while !freq_prev.is_empty() && wdb.total_weight() >= delta_w {
            let out = self.discover(wdb, &freq_prev, delta_w, n_items, &mut result);
            freq_prev = out;
        }
        result
    }

    /// One weighted frequent-k-sequence discovery pass; returns the list
    /// seeding the next pass ((k+1)-sequences under bi-level, k-sequences
    /// otherwise).
    fn discover(
        &self,
        wdb: &WeightedDatabase,
        freq_prev: &[Sequence],
        delta_w: u64,
        n_items: usize,
        result: &mut MiningResult,
    ) -> Vec<Sequence> {
        #[derive(Clone, Copy)]
        struct Entry {
            member: usize,
            ptr: usize,
        }

        let mut tree: WeightedLocativeTree<Sequence, Entry> = WeightedLocativeTree::new();
        for (m, s) in wdb.db.sequences().enumerate() {
            if let Some(kms) = apriori_kms(s, freq_prev) {
                tree.insert(kms.key, Entry { member: m, ptr: kms.ptr }, wdb.weights[m]);
            }
        }

        let mut freq_k: Vec<Sequence> = Vec::new();
        let mut freq_k1: Vec<(Sequence, u64)> = Vec::new();
        while tree.total_weight() >= delta_w {
            let alpha_1 = tree.min().expect("non-empty").0.clone();
            let alpha_delta =
                tree.select_by_weight(delta_w).expect("total weight >= delta_w").clone();

            if alpha_1 == alpha_delta {
                let (key, bucket, bucket_weight) = tree.take_min().expect("non-empty");
                result.insert(key.clone(), bucket_weight);
                freq_k.push(key.clone());

                if self.bi_level {
                    let mut array = CountingArray::new(n_items);
                    for (e, w) in &bucket {
                        array.add_member_weighted(wdb.db.sequence(e.member), &key, *w);
                    }
                    for (elem, support) in array.frequent_extensions(delta_w) {
                        freq_k1.push((key.extended(elem), support));
                    }
                }

                let cond = Condition::new(&key, BoundMode::Strictly);
                for (e, w) in bucket {
                    if let Some(kms) =
                        apriori_ckms(wdb.db.sequence(e.member), freq_prev, e.ptr, &cond)
                    {
                        tree.insert(kms.key, Entry { member: e.member, ptr: kms.ptr }, w);
                    }
                }
            } else {
                let cond = Condition::new(&alpha_delta, BoundMode::AtLeast);
                for (_, bucket, _) in tree.take_less_than(&alpha_delta) {
                    for (e, w) in bucket {
                        if let Some(kms) =
                            apriori_ckms(wdb.db.sequence(e.member), freq_prev, e.ptr, &cond)
                        {
                            tree.insert(kms.key, Entry { member: e.member, ptr: kms.ptr }, w);
                        }
                    }
                }
            }
        }

        if self.bi_level {
            for (p, s) in &freq_k1 {
                result.insert(p.clone(), *s);
            }
            freq_k1.into_iter().map(|(p, _)| p).collect()
        } else {
            freq_k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiscAll;
    use disc_core::{parse_sequence, MinSupport, SequentialMiner};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn weighted_brute_force(wdb: &WeightedDatabase, delta_w: u64) -> MiningResult {
        // Level-wise prefix growth with definitional weighted counting.
        use disc_core::{ExtElem, ExtMode};
        let mut result = MiningResult::new();
        let mut items: Vec<Item> =
            wdb.database().sequences().flat_map(|s| s.distinct_items()).collect();
        items.sort_unstable();
        items.dedup();
        let mut frontier = Vec::new();
        for item in items {
            let pat = Sequence::single(item);
            let w = wdb.weighted_support(&pat);
            if w >= delta_w {
                result.insert(pat.clone(), w);
                frontier.push(pat);
            }
        }
        let freq_items: Vec<Item> =
            frontier.iter().map(|p| p.last_flat_item().expect("non-empty")).collect();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for base in &frontier {
                let last = base.last_flat_item().expect("non-empty");
                for &item in &freq_items {
                    let mut candidates =
                        vec![base.extended(ExtElem { item, mode: ExtMode::Sequence })];
                    if item > last {
                        candidates.push(base.extended(ExtElem { item, mode: ExtMode::Itemset }));
                    }
                    for cand in candidates {
                        let w = wdb.weighted_support(&cand);
                        if w >= delta_w {
                            result.insert(cand.clone(), w);
                            next.push(cand);
                        }
                    }
                }
            }
            frontier = next;
        }
        result
    }

    fn table1_weighted() -> WeightedDatabase {
        WeightedDatabase::from_weighted([
            (seq("(a,e,g)(b)(h)(f)(c)(b,f)"), 5),
            (seq("(b)(d,f)(e)"), 1),
            (seq("(b,f,g)"), 2),
            (seq("(f)(a,g)(b,f,h)(b,f)"), 3),
        ])
    }

    #[test]
    fn weighted_support_is_definitional() {
        let wdb = table1_weighted();
        assert_eq!(wdb.total_weight(), 11);
        assert_eq!(wdb.weighted_support(&seq("(b)")), 11);
        assert_eq!(wdb.weighted_support(&seq("(a)(b)(b)")), 8); // customers 1 and 4
        assert_eq!(wdb.weighted_support(&seq("(d)")), 1);
    }

    #[test]
    fn matches_weighted_brute_force() {
        let wdb = table1_weighted();
        for delta_w in [1u64, 3, 5, 8, 11] {
            let expected = weighted_brute_force(&wdb, delta_w);
            for miner in [WeightedDisc::default(), WeightedDisc { bi_level: false }] {
                let got = miner.mine(&wdb, delta_w);
                let diff = got.diff(&expected);
                assert!(diff.is_empty(), "δw={delta_w}:\n{}", diff.join("\n"));
            }
        }
    }

    #[test]
    fn weight_skew_changes_the_answer() {
        // With heavy weight on customer 1, its private patterns become
        // "frequent" even at high thresholds.
        let wdb = table1_weighted();
        let result = WeightedDisc::default().mine(&wdb, 5);
        assert!(result.contains_pattern(&seq("(a,e,g)"))); // only customer 1, weight 5
                                                           // Unweighted, the same pattern has support 1 of 4.
        let unweighted = DiscAll::default().mine(wdb.database(), MinSupport::Count(2));
        assert!(!unweighted.contains_pattern(&seq("(a,e,g)")));
    }

    #[test]
    fn uniform_weights_recover_ordinary_mining() {
        let db = SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap();
        let wdb = WeightedDatabase::uniform(db.clone());
        for delta in 1..=4u64 {
            let expected = DiscAll::default().mine(&db, MinSupport::Count(delta));
            let got = WeightedDisc::default().mine(&wdb, delta);
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "δ={delta}:\n{}", diff.join("\n"));
        }
    }

    #[test]
    fn empty_database() {
        let wdb = WeightedDatabase::default();
        assert!(WeightedDisc::default().mine(&wdb, 1).is_empty());
    }
}
