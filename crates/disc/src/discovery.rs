//! **Frequent k-sequence discovery** (Figure 4): the DISC strategy proper.
//!
//! Given a partition and the ascending list of frequent (k-1)-sequences, the
//! procedure
//!
//! 1. keys every member by its Apriori-KMS k-minimum subsequence in a
//!    k-sorted database;
//! 2. compares `α₁` (the minimum key) with `α_δ` (the key at customer
//!    position δ):
//!    * `α₁ = α_δ` → `α₁` is frequent (Lemma 2.1) and its bucket is its
//!      exact support — every member containing `α₁` provably keys on it;
//!      the bucket is re-keyed past `α₁` (Ω = `>`), and — under the
//!      **bi-level** optimization of §3.2 — doubles as the *virtual
//!      partition* whose counting array yields the frequent
//!      (k+1)-sequences prefixed by `α₁`;
//!    * `α₁ < α_δ` → every k-sequence in `[α₁, α_δ)` is non-frequent
//!      (Lemma 2.2); all members keyed below `α_δ` are re-keyed to their
//!      conditional minimum `≥ α_δ` (Ω = `≥`) without touching them;
//! 3. repeats until fewer than δ members remain.
//!
//! ### Why bucket size is exact support
//!
//! Invariant: a member's key is its minimum k-subsequence (with frequent
//! prefix) satisfying its last bound, and bounds never exceed the minimum
//! key at the time they are applied. So when the loop reaches minimum `α₁`,
//! any member containing `α₁` has a bound `b` with `b ≤ α₁` (`≥`-bounds are
//! below every current key; `>`-bounds are below every future minimum),
//! hence a key `≤ α₁` — i.e. exactly `α₁`. Members evicted earlier had *no*
//! k-subsequence past their bound, so they cannot contain `α₁` either.

use crate::ckms::{apriori_ckms_resolved, BoundMode, ResolvedCondition};
use crate::counting::CountingArray;
use crate::kms::{apriori_kms_cached, ExtensionCache};
use crate::sorted_db::{Entry, KSortedDb};
use disc_core::packed::fits_packed_budget;
use disc_core::{AbortReason, ExtElem, FlatKey, MineGuard, PackedKey, SeqKey, SeqView, Sequence};

/// The output of one discovery call.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryOutput {
    /// Frequent k-sequences with exact supports, ascending.
    pub freq_k: Vec<(Sequence, u64)>,
    /// Frequent (k+1)-sequences (bi-level only), ascending.
    pub freq_k1: Vec<(Sequence, u64)>,
}

/// Runs frequent k-sequence discovery over `members`.
///
/// * `freq_prev` — the (k-1)-sorted list: ascending frequent
///   (k-1)-sequences, all sharing the partition prefix.
/// * `delta` — the minimum support count δ.
/// * `bi_level` — also derive the frequent (k+1)-sequences from the virtual
///   partitions (one k-sorted-database pass finds two levels, §3.2).
/// * `n_items` — item-id bound for the bi-level counting arrays.
pub fn discover_frequent_k<M: AsRef<Sequence>>(
    members: &[M],
    freq_prev: &[Sequence],
    delta: u64,
    bi_level: bool,
    n_items: usize,
) -> DiscoveryOutput {
    let views: Vec<&Sequence> = members.iter().map(AsRef::as_ref).collect();
    discover_frequent_k_guarded(
        &views,
        freq_prev,
        delta,
        bi_level,
        n_items,
        &MineGuard::unlimited(),
    )
    .expect("unlimited guard never aborts")
}

/// [`discover_frequent_k`] under a [`MineGuard`]: charges one operation per
/// k-minimum-subsequence computation and per compare/re-key step, so a
/// cancelled or over-budget run aborts between steps. The partial
/// [`DiscoveryOutput`] accumulated so far is discarded by the `Err` return —
/// callers record patterns into their [`disc_core::MiningResult`] only from
/// completed discovery calls, keeping partial results sound without
/// re-checking supports.
pub fn discover_frequent_k_guarded<'a, S: SeqView<'a>>(
    members: &[S],
    freq_prev: &[Sequence],
    delta: u64,
    bi_level: bool,
    n_items: usize,
    guard: &MineGuard,
) -> Result<DiscoveryOutput, AbortReason> {
    debug_assert!(freq_prev.windows(2).all(|w| w[0] < w[1]), "(k-1)-sorted list not sorted");
    if freq_prev.is_empty() || (members.len() as u64) < delta {
        return Ok(DiscoveryOutput::default());
    }
    // Every key the loop builds is a subsequence of some member (KMS/CKMS
    // minima) or a flattened (k-1)-list entry plus one appended pair, so the
    // maxima below bound every item id and transaction index that could ever
    // be packed. When they fit the packed-word budget, run the whole loop on
    // one-word-per-pair keys; otherwise fall back to the wide 64-bit keys.
    let mut array = CountingArray::new(n_items);
    discover_frequent_k_into(members, freq_prev, delta, bi_level, guard, &mut array)
}

/// [`discover_frequent_k_guarded`] against a caller-owned counting array
/// (sized to the item universe): the DISC-all walk calls discovery once per
/// second-level partition, and reusing one array across all of them turns
/// thousands of `n_items`-sized allocations into O(1) epoch resets.
pub(crate) fn discover_frequent_k_into<'a, S: SeqView<'a>>(
    members: &[S],
    freq_prev: &[Sequence],
    delta: u64,
    bi_level: bool,
    guard: &MineGuard,
    array: &mut CountingArray,
) -> Result<DiscoveryOutput, AbortReason> {
    debug_assert!(freq_prev.windows(2).all(|w| w[0] < w[1]), "(k-1)-sorted list not sorted");
    if freq_prev.is_empty() || (members.len() as u64) < delta {
        return Ok(DiscoveryOutput::default());
    }
    let fits =
        fits_packed_budget(max_item_id(members, freq_prev), max_txn_count(members, freq_prev))
            .is_ok();
    if fits {
        discover_impl::<S, PackedKey>(members, freq_prev, delta, bi_level, guard, array)
    } else {
        discover_impl::<S, FlatKey>(members, freq_prev, delta, bi_level, guard, array)
    }
}

/// Largest item id appearing in any member or (k-1)-list entry. Itemsets
/// are sorted, so only each transaction's last item is inspected.
fn max_item_id<'a, S: SeqView<'a>>(members: &[S], freq_prev: &[Sequence]) -> u64 {
    fn of_view<'b>(s: impl SeqView<'b>) -> u64 {
        (0..s.n_transactions())
            .filter_map(|t| s.itemset_items(t).last())
            .map(|i| i.0 as u64)
            .max()
            .unwrap_or(0)
    }
    let members_max = members.iter().map(|&s| of_view(s)).max().unwrap_or(0);
    let prev_max = freq_prev.iter().map(of_view).max().unwrap_or(0);
    members_max.max(prev_max)
}

/// Largest transaction count any constructed key can reach: member
/// transaction counts bound the KMS/CKMS minima, and a (k-1)-list entry can
/// grow by at most one appended transaction.
fn max_txn_count<'a, S: SeqView<'a>>(members: &[S], freq_prev: &[Sequence]) -> u64 {
    let members_max = members.iter().map(|s| s.n_transactions() as u64).max().unwrap_or(0);
    let prev_max = freq_prev.iter().map(|p| p.n_transactions() as u64 + 1).max().unwrap_or(0);
    members_max.max(prev_max)
}

/// The discovery loop, generic over the flattened key representation.
fn discover_impl<'a, S: SeqView<'a>, K: SeqKey>(
    members: &[S],
    freq_prev: &[Sequence],
    delta: u64,
    bi_level: bool,
    guard: &MineGuard,
    array: &mut CountingArray,
) -> Result<DiscoveryOutput, AbortReason> {
    let mut out = DiscoveryOutput::default();

    // Step 1: build the k-sorted database. The (k-1)-sorted list is
    // flattened once; every key is then prefix-pairs + one appended pair,
    // with no nested sequence built per insert.
    let prev_keys: Vec<K> = freq_prev.iter().map(|p| K::key_of(p)).collect();
    // Extension sets depend only on (member, prefix), so they are memoized
    // across the whole compare/re-key loop: re-keys past a bound repeatedly
    // re-ask extension questions the initial keying already answered.
    let mut cache = ExtensionCache::new(members.len(), freq_prev.len());
    // The caller-owned counting array serves every virtual partition
    // (reset is O(1); allocating per frequent pattern would memset
    // 4·n_items words tens of thousands of times per run).
    let mut db: KSortedDb<K> = KSortedDb::new();
    let mut ext_buf: Vec<(ExtElem, u64)> = Vec::new();
    for (m, &seq) in members.iter().enumerate() {
        guard.checkpoint()?;
        if let Some(raw) = apriori_kms_cached(seq, freq_prev, m, &mut cache) {
            db.insert_key(m, prev_keys[raw.ptr].extended_key(raw.elem), raw.ptr);
        }
    }

    // Step 2: compare / re-key until fewer than δ members remain.
    while db.len() as u64 >= delta {
        guard.checkpoint()?;
        if db.alpha_1_equals_delta(delta) {
            // Lemma 2.1: frequent; the whole bucket keys on α₁.
            let (min_key, bucket) = db.take_min().expect("non-empty");
            let key = min_key.to_sequence();
            let support = bucket.len() as u64;

            if bi_level {
                // §3.2: the bucket is the virtual partition of α₁.
                guard.charge(support)?;
                array.reset();
                for e in &bucket {
                    array.add_member(members[e.member], &key);
                }
                array.frequent_extensions_into(delta, &mut ext_buf);
                for &(elem, support_k1) in &ext_buf {
                    out.freq_k1.push((key.extended(elem), support_k1));
                }
            }

            let rcond = resolve_key_condition(&min_key, &prev_keys, BoundMode::Strictly);
            guard.charge(support)?;
            rekey(&mut db, members, freq_prev, &prev_keys, &rcond, bucket, &mut cache);
            out.freq_k.push((key, support));
        } else {
            // Lemma 2.2: everything in [α₁, α_δ) is non-frequent; skip it.
            let bound = db.alpha_delta_key(delta).expect("len >= delta").clone();
            let rcond = resolve_key_condition(&bound, &prev_keys, BoundMode::AtLeast);
            let buckets = db.take_buckets_less_than(&bound);
            for bucket in buckets {
                guard.charge(bucket.len() as u64)?;
                rekey(&mut db, members, freq_prev, &prev_keys, &rcond, bucket, &mut cache);
            }
        }
    }
    Ok(out)
}

/// [`Condition::resolve`](crate::ckms::Condition::resolve) computed directly
/// on flattened keys: `prev_keys` is the (k-1)-sorted list in the same order
/// as `freq_prev` (flattening is an order isomorphism), and a condition's
/// prefix `X` is its key minus the last pair — so the binary search and the
/// equality probe are word-slice comparisons, with no nested sequence (or
/// `k_prefix` allocation) in sight.
fn resolve_key_condition<K: SeqKey>(
    bound: &K,
    prev_keys: &[K],
    mode: BoundMode,
) -> ResolvedCondition {
    use std::cmp::Ordering;
    let start = prev_keys.partition_point(|k| k.cmp_to_bound_prefix(bound) == Ordering::Less);
    let eq_at_start =
        prev_keys.get(start).is_some_and(|k| k.cmp_to_bound_prefix(bound) == Ordering::Equal);
    ResolvedCondition { start, eq_at_start, last: bound.last_ext(), mode }
}

/// Re-keys a drained bucket by Apriori-CKMS; members without a conditional
/// minimum leave the k-sorted database. The bucket allocation is recycled
/// into the database's pool.
fn rekey<'a, S: SeqView<'a>, K: SeqKey>(
    db: &mut KSortedDb<K>,
    members: &[S],
    freq_prev: &[Sequence],
    prev_keys: &[K],
    rcond: &ResolvedCondition,
    bucket: Vec<Entry>,
    cache: &mut ExtensionCache,
) {
    for &e in &bucket {
        let raw =
            apriori_ckms_resolved(members[e.member], freq_prev, e.ptr, rcond, e.member, cache);
        if let Some(raw) = raw {
            db.insert_key(e.member, prev_keys[raw.ptr].extended_key(raw.elem), raw.ptr);
        }
    }
    db.recycle(bucket);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, support_count, MinSupport, SequenceDatabase};
    use disc_core::{BruteForce, SequentialMiner};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn sorted(texts: &[&str]) -> Vec<Sequence> {
        let mut v: Vec<Sequence> = texts.iter().map(|t| seq(t)).collect();
        v.sort();
        v
    }

    /// The <(a)(a)>-partition of Table 8.
    fn table8_members() -> Vec<Sequence> {
        [
            "(a)(a,g,h)(c)",
            "(b)(a)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,f)(a,c,e,g,h)",
            "(a,f)(a,e,g,h)",
            "(a,g)(a,e,g)(g,h)",
        ]
        .iter()
        .map(|t| seq(t))
        .collect()
    }

    #[test]
    fn discovers_table8_frequent_four_sequences() {
        let list = sorted(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let out = discover_frequent_k(&table8_members(), &list, 3, false, 8);
        let got: Vec<(String, u64)> = out.freq_k.iter().map(|(p, s)| (p.to_string(), *s)).collect();
        assert_eq!(
            got,
            vec![
                ("(a)(a, e, g)".to_string(), 5),
                ("(a)(a, e, h)".to_string(), 3),
                ("(a)(a, g, h)".to_string(), 4),
            ]
        );
        assert!(out.freq_k1.is_empty());
    }

    #[test]
    fn bi_level_also_finds_level_five() {
        // Example 3.5: <(a)(a,e,g,h)> is the only frequent 5-sequence.
        let list = sorted(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let out = discover_frequent_k(&table8_members(), &list, 3, true, 8);
        assert_eq!(out.freq_k.len(), 3);
        let got: Vec<(String, u64)> =
            out.freq_k1.iter().map(|(p, s)| (p.to_string(), *s)).collect();
        assert_eq!(got, vec![("(a)(a, e, g, h)".to_string(), 3)]);
    }

    #[test]
    fn supports_are_definitional() {
        let members = table8_members();
        let db = SequenceDatabase::from_sequences(members.clone());
        let list = sorted(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let out = discover_frequent_k(&members, &list, 3, true, 8);
        for (p, s) in out.freq_k.iter().chain(out.freq_k1.iter()) {
            assert_eq!(*s, support_count(&db, p), "pattern {p}");
        }
    }

    #[test]
    fn agrees_with_brute_force_on_the_partition() {
        // Every frequent 4-sequence with a frequent 3-prefix from the list
        // must be found — cross-check against brute force restricted to the
        // same prefixes.
        let members = table8_members();
        let db = SequenceDatabase::from_sequences(members.clone());
        let list = sorted(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let brute = BruteForce::default().mine(&db, MinSupport::Count(3));
        let expected: Vec<(Sequence, u64)> = brute
            .iter()
            .filter(|(p, _)| p.length() == 4 && list.contains(&p.k_prefix(3)))
            .map(|(p, s)| (p.clone(), s))
            .collect();
        let out = discover_frequent_k(&members, &list, 3, false, 8);
        assert_eq!(out.freq_k, expected);
    }

    #[test]
    fn empty_inputs_yield_nothing() {
        let members = table8_members();
        assert!(discover_frequent_k(&members, &[], 3, true, 8).freq_k.is_empty());
        let list = sorted(&["(a)(a,e)"]);
        // δ larger than the partition: nothing can be frequent.
        assert!(discover_frequent_k(&members, &list, 7, true, 8).freq_k.is_empty());
    }

    #[test]
    fn members_without_any_listed_prefix_are_ignored() {
        // A member that contains none of the frequent (k-1)-sequences never
        // enters the k-sorted database and cannot perturb supports.
        let mut members = table8_members();
        members.push(seq("(x)(y)(z)"));
        members.push(seq("(b)(c)"));
        let list = sorted(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let out = discover_frequent_k(&members, &list, 3, false, 26);
        let got: Vec<(String, u64)> = out.freq_k.iter().map(|(p, s)| (p.to_string(), *s)).collect();
        assert_eq!(
            got,
            vec![
                ("(a)(a, e, g)".to_string(), 5),
                ("(a)(a, e, h)".to_string(), 3),
                ("(a)(a, g, h)".to_string(), 4),
            ]
        );
    }

    #[test]
    fn bucket_sizes_equal_supports_even_with_duplicate_members() {
        // Two identical members both key on the same minima and both count.
        let members = vec![seq("(a)(a,e)(b)"), seq("(a)(a,e)(b)"), seq("(a)(a,e)(c)")];
        let list = sorted(&["(a)(a,e)"]);
        let out = discover_frequent_k(&members, &list, 2, false, 8);
        let got: Vec<(String, u64)> = out.freq_k.iter().map(|(p, s)| (p.to_string(), *s)).collect();
        assert_eq!(got, vec![("(a)(a, e)(b)".to_string(), 2)]);
    }

    #[test]
    fn delta_one_reports_every_distinct_minimum_chain() {
        // With δ = 1 every α₁ is frequent immediately; discovery enumerates
        // every 4-sequence with a frequent prefix that some member supports.
        let members = table8_members();
        let db = SequenceDatabase::from_sequences(members.clone());
        let list = sorted(&["(a)(a,e)", "(a)(a,g)", "(a)(a,h)"]);
        let out = discover_frequent_k(&members, &list, 1, false, 8);
        let brute = BruteForce::default().mine(&db, MinSupport::Count(1));
        let expected: Vec<(Sequence, u64)> = brute
            .iter()
            .filter(|(p, _)| p.length() == 4 && list.contains(&p.k_prefix(3)))
            .map(|(p, s)| (p.clone(), s))
            .collect();
        assert_eq!(out.freq_k, expected);
    }
}
