//! Multi-level partitioning (Section 3.1): grouping customer sequences by
//! their minimum prefixes, reducing them, and walking partitions in
//! ascending key order with **reassignment chains**.
//!
//! The load-bearing property is *lifetime completeness*: partitions are
//! processed in ascending key order, and after a partition is processed each
//! member moves to the partition of its **next** frequent minimum. A
//! sequence's chain therefore enumerates, in ascending order, exactly the
//! frequent keys it contains — so when a partition's turn comes, *every*
//! supporter of its key is present, which is why counting arrays and DISC
//! buckets inside a partition produce exact global supports.

use crate::counting::CountingArray;
use crate::kms::{all_extensions, decode_elem, encode_elem, min_extension_where};
use disc_core::{
    AbortReason, ExtElem, ExtMode, FlatArena, FlatDb, Item, MineGuard, SeqView, Sequence,
};
use std::collections::BTreeMap;

/// Groups database rows by their minimum 1-sequence (Step 1(b) of Figure 2).
/// Keys include non-frequent items; mining skips those partitions but the
/// reassignment chains still flow through them.
///
/// Operates on the flat columns directly, so it works identically on a
/// heap-built database and one mapped from a `DSCFD1` file.
pub fn group_by_min_item(db: &FlatDb) -> BTreeMap<Item, Vec<usize>> {
    group_by_min_item_guarded(db, &MineGuard::unlimited()).expect("unlimited guard never aborts")
}

/// [`group_by_min_item`] under a [`MineGuard`]: one checkpoint per row, so
/// the initial grouping scan of a huge database stays abortable.
pub fn group_by_min_item_guarded(
    db: &FlatDb,
    guard: &MineGuard,
) -> Result<BTreeMap<Item, Vec<usize>>, AbortReason> {
    let mut groups: BTreeMap<Item, Vec<usize>> = BTreeMap::new();
    for (idx, row) in db.rows().enumerate() {
        guard.checkpoint()?;
        // Itemsets are sorted, so a row's minimum item is the smallest
        // first element across its transactions.
        let min = (0..row.n_transactions()).filter_map(|t| row.itemset_items(t).first()).min();
        if let Some(&item) = min {
            groups.entry(item).or_default().push(idx);
        }
    }
    Ok(groups)
}

/// The smallest *frequent* item strictly greater than `after` occurring in
/// `seq` (Step 2.2 of Figure 2, restricted to keys worth visiting).
pub fn next_frequent_item<'a, S: SeqView<'a>>(
    seq: S,
    after: Item,
    frequent: &[bool],
) -> Option<Item> {
    let mut best: Option<Item> = None;
    for t in 0..seq.n_transactions() {
        let set = seq.itemset_items(t);
        let from = disc_core::simd::first_gt_items(set, after);
        for &item in &set[from..] {
            if best.is_some_and(|b| item >= b) {
                break; // items are sorted; nothing better in this transaction
            }
            if frequent[item.id() as usize] {
                best = Some(item);
                break;
            }
        }
    }
    best
}

/// Customer sequence reduction (Step 2.1.2 of Figure 2).
///
/// Within the `<(λ)>`-partition, an item occurrence `x` to the right of the
/// minimum point is removed unless some frequent pattern starting with `λ`
/// could still use it:
///
/// 1. if `x`'s transaction contains `λ` *and* lies at the minimum point, `x`
///    survives iff `<(λ x)>` is frequent;
/// 2. if `x`'s transaction does not contain `λ`, `x` survives iff
///    `<(λ)(x)>` is frequent;
/// 3. if both conditions hold (a later transaction containing `λ`), either
///    form suffices.
///
/// Occurrences of `λ` itself and everything left of the minimum point are
/// kept. Returns `None` when fewer than 3 items survive — such sequences
/// cannot support any 3-sequence and leave the reduced partition.
pub fn reduce_sequence(
    seq: &Sequence,
    lambda: Item,
    min_point: usize,
    freq1: &[bool],
    i_mask: &[bool],
    s_mask: &[bool],
) -> Option<Sequence> {
    let reduced = seq.filtered(|t, x| {
        if x == lambda || t < min_point {
            return true;
        }
        if t == min_point && x < lambda {
            return true; // left of the minimum point within its transaction
        }
        if !freq1[x.id() as usize] {
            return false;
        }
        let cond1 = seq.itemset(t).contains(lambda);
        let cond2 = t > min_point;
        let i_ok = x > lambda && i_mask[x.id() as usize];
        let s_ok = s_mask[x.id() as usize];
        match (cond1, cond2) {
            (false, _) => s_ok,
            (true, false) => i_ok,
            (true, true) => i_ok || s_ok,
        }
    });
    if reduced.length() >= 3 {
        Some(reduced)
    } else {
        None
    }
}

/// [`reduce_sequence`] into flat storage: appends the reduced copy of `seq`
/// to `arena` and returns its row index, or rolls the row back and returns
/// `None` when fewer than 3 items survive. The keep-predicate is identical
/// to [`reduce_sequence`]'s; the reduced member never exists as a nested
/// [`Sequence`], so the hot reduction loop allocates only arena growth.
pub fn reduce_into<'a, S: SeqView<'a>>(
    arena: &mut FlatArena,
    seq: S,
    lambda: Item,
    min_point: usize,
    freq1: &[bool],
    i_mask: &[bool],
    s_mask: &[bool],
) -> Option<usize> {
    // λ-containment is a property of the transaction, not the item — memoize
    // it across the items of the transaction being filtered.
    let mut memo_t = usize::MAX;
    let mut memo_cond1 = false;
    let row = arena.push_filtered(seq, |t, x| {
        if x == lambda || t < min_point {
            return true;
        }
        if t == min_point && x < lambda {
            return true; // left of the minimum point within its transaction
        }
        if !freq1[x.id() as usize] {
            return false;
        }
        if t != memo_t {
            memo_t = t;
            memo_cond1 = seq.itemset_items(t).binary_search(&lambda).is_ok();
        }
        let cond1 = memo_cond1;
        let cond2 = t > min_point;
        let i_ok = x > lambda && i_mask[x.id() as usize];
        let s_ok = s_mask[x.id() as usize];
        match (cond1, cond2) {
            (false, _) => s_ok,
            (true, false) => i_ok,
            (true, true) => i_ok || s_ok,
        }
    });
    if arena.row(row).length() >= 3 {
        Some(row)
    } else {
        arena.pop_row();
        None
    }
}

/// The minimum *frequent* extension element of `prefix` contained in `seq`,
/// strictly greater than `bound` when given — the generalized
/// "(conditional) (j+1)-minimum subsequence" that keys next-level partitions
/// and drives their reassignment chains.
///
/// `i_mask`/`s_mask` flag the frequent itemset-/sequence-extension items of
/// this partition's counting array.
pub fn min_ext_elem<'a, S: SeqView<'a>>(
    seq: S,
    prefix: &Sequence,
    i_mask: &[bool],
    s_mask: &[bool],
    bound: Option<ExtElem>,
) -> Option<ExtElem> {
    min_extension_where(seq, prefix, |e| {
        let mask = match e.mode {
            ExtMode::Itemset => &i_mask[e.item.id() as usize],
            ExtMode::Sequence => &s_mask[e.item.id() as usize],
        };
        *mask && bound.is_none_or(|b| e > b)
    })
}

/// The precomputed extension sets of a partition's reduced rows: per arena
/// row, every realizable one-element extension of the partition prefix,
/// ascending in the order-preserving encoding of [`crate::kms`].
///
/// The second-level keying and reassignment chains ask "smallest masked
/// extension (strictly past a bound)" once per chain turn — a fresh
/// embedding walk each time through [`min_ext_elem`]. The extension set of
/// a (row, prefix) pair never changes, so one walk per row at reduction
/// time turns every later turn into a binary search plus a short masked
/// scan. Sets live in one shared arena, indexed in lockstep with the
/// partition's [`FlatArena`] rows.
#[derive(Debug, Default)]
pub struct RowExtensions {
    /// Per row, its `(start, end)` span in `arena`.
    spans: Vec<(u32, u32)>,
    /// All encoded extension sets, back to back.
    arena: Vec<u64>,
    /// Reused per-row staging buffer.
    scratch: Vec<u64>,
}

impl RowExtensions {
    /// An empty table.
    pub fn new() -> RowExtensions {
        RowExtensions::default()
    }

    /// Empties the table, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.arena.clear();
    }

    /// Computes and appends the extension set of `s` (one embedding walk);
    /// returns the new row index, which matches the caller's arena row.
    pub fn push_row<'a, S: SeqView<'a>>(&mut self, s: S, prefix: &Sequence) -> usize {
        let mut scratch = std::mem::take(&mut self.scratch);
        all_extensions(s, prefix, &mut scratch);
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(&scratch);
        self.scratch = scratch;
        self.spans.push((start, self.arena.len() as u32));
        self.spans.len() - 1
    }

    /// Rolls back the most recently pushed row (mirrors
    /// [`FlatArena::pop_row`] for rejected members).
    pub fn pop_row(&mut self) {
        let (start, _) = self.spans.pop().expect("pop_row on empty table");
        self.arena.truncate(start as usize);
    }

    /// The smallest extension of `row` passing the masks, strictly greater
    /// than `bound` when given — identical to [`min_ext_elem`] over the same
    /// row, without re-walking the member.
    pub fn min_masked(
        &self,
        row: usize,
        i_mask: &[bool],
        s_mask: &[bool],
        bound: Option<ExtElem>,
    ) -> Option<ExtElem> {
        let (start, end) = self.spans[row];
        let list = &self.arena[start as usize..end as usize];
        let from = match bound {
            Some(b) => list.partition_point(|&w| w <= encode_elem(b)),
            None => 0,
        };
        list[from..].iter().map(|&w| decode_elem(w)).find(|e| match e.mode {
            ExtMode::Itemset => i_mask[e.item.id() as usize],
            ExtMode::Sequence => s_mask[e.item.id() as usize],
        })
    }
}

/// Builds `(i_mask, s_mask)` plus the ascending frequent extensions of a
/// partition in one step.
pub fn frequent_extension_masks(
    array: &mut CountingArray,
    delta: u64,
) -> (Vec<bool>, Vec<bool>, Vec<(ExtElem, u64)>) {
    let (i_mask, s_mask) = array.frequency_masks(delta);
    let exts = array.frequent_extensions(delta);
    (i_mask, s_mask, exts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::count_extensions;
    use disc_core::{parse_sequence, SequenceDatabase};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn item(c: char) -> Item {
        Item::from_letter(c).unwrap()
    }

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    #[test]
    fn table_6_initial_partitions() {
        // CIDs 1–7 fall in the <(a)>-partition, 8 and 10 in <(b)>, 9 in
        // <(d)>, 11 in <(e)>.
        let groups = group_by_min_item(&FlatDb::from_database(&table6()));
        let view: Vec<(char, Vec<usize>)> =
            groups.iter().map(|(i, v)| (i.as_letter().unwrap(), v.clone())).collect();
        assert_eq!(
            view,
            vec![
                ('a', vec![0, 1, 2, 3, 4, 5, 6]),
                ('b', vec![7, 9]),
                ('d', vec![8]),
                ('e', vec![10]),
            ]
        );
    }

    #[test]
    fn table_6_reassignment_after_processing_a() {
        // Example 3.1: after <(a)>-partition, CIDs 1 and 2 go to <(c)> and
        // <(b)>; CID 5 is removed. All 1-sequences except <(d)> are frequent.
        let db = table6();
        let mut frequent = vec![true; 8];
        frequent[item('d').id() as usize] = false;
        let expected = [
            Some('c'), // CID 1: (a,d)(d)(a,g,h)(c) — d is non-frequent
            Some('b'),
            Some('c'),
            Some('c'),
            None, // CID 5: (a,g) — minimum point at its end? g is next
            Some('e'),
            Some('b'),
        ];
        for (idx, want) in expected.iter().enumerate() {
            let got = next_frequent_item(db.sequence(idx), item('a'), &frequent)
                .map(|i| i.as_letter().unwrap());
            if idx == 4 {
                // CID 5 = (a,g): the paper removes it ("minimum point at its
                // end" — nothing frequent follows in a useful way); its next
                // minimum 1-sequence is g, and the partition of <(g)> simply
                // finds nothing of length ≥ 2 in it.
                assert_eq!(got, Some('g'));
            } else {
                assert_eq!(got, *want, "CID {}", idx + 1);
            }
        }
    }

    #[test]
    fn table_7_reduction_of_the_a_partition() {
        let db = table6();
        let members: Vec<&Sequence> = (0..7).map(|i| db.sequence(i)).collect();
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, members.iter().copied(), 8);
        let (i_mask, s_mask) = array.frequency_masks(3);
        let freq1 = vec![true, true, true, false, true, true, true, true]; // all but d

        let expected = [
            Some("(a)(a, g, h)(c)"),
            Some("(b)(a)(a, c, e, g)"),
            Some("(a, f, g)(a, e, g, h)(c, g, h)"),
            Some("(f)(a, f)(a, c, e, g, h)"),
            None, // CID 5 shrinks below length 3
            Some("(a, f)(a, e, g, h)"),
            Some("(a, g)(a, e, g)(g, h)"),
        ];
        for (idx, want) in expected.iter().enumerate() {
            let s = db.sequence(idx);
            let (_, min_point) = s.min_item_with_point().unwrap();
            let got = reduce_sequence(s, item('a'), min_point, &freq1, &i_mask, &s_mask)
                .map(|r| r.to_string());
            assert_eq!(got.as_deref(), *want, "CID {}", idx + 1);
        }
    }

    #[test]
    fn reduce_into_matches_reduce_sequence() {
        let db = table6();
        let members: Vec<&Sequence> = (0..7).map(|i| db.sequence(i)).collect();
        let prefix = Sequence::single(item('a'));
        let array = count_extensions(&prefix, members.iter().copied(), 8);
        let (i_mask, s_mask) = array.frequency_masks(3);
        let freq1 = vec![true, true, true, false, true, true, true, true];
        let mut arena = FlatArena::new();
        for idx in 0..7 {
            let s = db.sequence(idx);
            let (_, min_point) = s.min_item_with_point().unwrap();
            let nested = reduce_sequence(s, item('a'), min_point, &freq1, &i_mask, &s_mask);
            let flat = reduce_into(&mut arena, s, item('a'), min_point, &freq1, &i_mask, &s_mask);
            assert_eq!(flat.map(|r| arena.row(r).to_sequence()), nested, "CID {}", idx + 1);
        }
        // Rejected rows were rolled back: only the survivors occupy the arena.
        assert_eq!(arena.len(), 6);
    }

    #[test]
    fn reduction_keeps_items_left_of_the_minimum_point() {
        // CID 2 keeps its leading (b) even though <(a)...> patterns cannot
        // use it — the paper's Table 7 does the same.
        let db = table6();
        let s = db.sequence(1);
        let (_, min_point) = s.min_item_with_point().unwrap();
        assert_eq!(min_point, 1);
        let freq1 = vec![true; 8];
        let i_mask = vec![false; 8];
        let mut s_mask = vec![false; 8];
        s_mask[item('c').id() as usize] = true;
        let got = reduce_sequence(s, item('a'), min_point, &freq1, &i_mask, &s_mask).unwrap();
        assert_eq!(got.to_string(), "(b)(a)(a, c)");
    }

    #[test]
    fn min_ext_elem_basic_and_bounded() {
        // Table 7 CID 1 = (a)(a,g,h)(c): the 2-minimum with prefix <(a)> is
        // <(a)(a)>; bounded past (a, Sequence) it is <(a)(c)> when only c, g
        // remain frequent.
        let red = seq("(a)(a,g,h)(c)");
        let prefix = Sequence::single(item('a'));
        let all = vec![true; 8];
        let none = vec![false; 8];
        let got = min_ext_elem(&red, &prefix, &all, &all, None).unwrap();
        assert_eq!(got, ExtElem { item: item('a'), mode: ExtMode::Sequence });

        let mut s_mask = none.clone();
        s_mask[item('c').id() as usize] = true;
        s_mask[item('g').id() as usize] = true;
        let bound = ExtElem { item: item('a'), mode: ExtMode::Sequence };
        let got = min_ext_elem(&red, &prefix, &none, &s_mask, Some(bound)).unwrap();
        assert_eq!(got, ExtElem { item: item('c'), mode: ExtMode::Sequence });
    }

    #[test]
    fn min_ext_elem_prefers_itemset_form() {
        // With prefix <(a)>, member (a,g)(g): the itemset form (a,g) beats
        // the sequence form (a)(g).
        let s = seq("(a,g)(g)");
        let prefix = Sequence::single(item('a'));
        let all = vec![true; 8];
        let got = min_ext_elem(&s, &prefix, &all, &all, None).unwrap();
        assert_eq!(got, ExtElem { item: item('g'), mode: ExtMode::Itemset });
        // Strictly past it, the sequence form remains.
        let got2 = min_ext_elem(&s, &prefix, &all, &all, Some(got)).unwrap();
        assert_eq!(got2, ExtElem { item: item('g'), mode: ExtMode::Sequence });
        assert_eq!(min_ext_elem(&s, &prefix, &all, &all, Some(got2)), None);
    }

    #[test]
    fn min_ext_elem_with_longer_prefix_uses_beta_embedding() {
        // Prefix <(a)(b)>: the leftmost full embedding ends at the first (b),
        // but the itemset extension (b, d) in the second (b, d) transaction
        // must still be found (β = <(a)> ends at txn 0).
        let s = seq("(a)(b)(b,d)");
        let prefix = seq("(a)(b)");
        let all = vec![true; 8];
        let got = min_ext_elem(&s, &prefix, &all, &all, None).unwrap();
        assert_eq!(got, ExtElem { item: item('b'), mode: ExtMode::Sequence });
        let got2 = min_ext_elem(&s, &prefix, &all, &all, Some(got)).unwrap();
        assert_eq!(got2, ExtElem { item: item('d'), mode: ExtMode::Itemset });
    }

    #[test]
    fn min_ext_elem_none_when_prefix_absent_or_unextendable() {
        let all = vec![true; 8];
        assert_eq!(
            min_ext_elem(&seq("(b)(c)"), &Sequence::single(item('a')), &all, &all, None),
            None
        );
        assert_eq!(min_ext_elem(&seq("(a)"), &Sequence::single(item('a')), &all, &all, None), None);
    }

    #[test]
    fn chain_enumerates_frequent_extensions_in_order() {
        // The chain of bounds must walk every frequent extension exactly once,
        // ascending.
        let s = seq("(a,c)(b)(c)");
        let prefix = Sequence::single(item('a'));
        let all = vec![true; 8];
        let mut chain = Vec::new();
        let mut bound = None;
        while let Some(e) = min_ext_elem(&s, &prefix, &all, &all, bound) {
            chain.push(prefix.extended(e).to_string());
            bound = Some(e);
        }
        assert_eq!(chain, vec!["(a)(b)", "(a, c)", "(a)(c)"]);
    }
}
