//! The **Dynamic DISC-all** algorithm (paper appendix): recursive
//! partitioning that keeps splitting while partitioning pays off (NRR below
//! the threshold γ) and hands over to the DISC strategy as soon as child
//! partitions stop shrinking.
//!
//! Section 4.2's observation: database partitioning is profitable for
//! partitions with a *low* non-reduction rate (children much smaller than
//! the parent) and pure overhead when the NRR approaches 1 — in the extreme,
//! every child is as large as its parent. The static DISC-all always stops
//! partitioning at level 2; the dynamic variant measures the NRR of each
//! partition from its counting-array scan and decides per partition.

use crate::counting::{count_extensions, CountingArray};
use crate::disc_all::run_disc_levels;
use crate::partition::{group_by_min_item_guarded, min_ext_elem, next_frequent_item, reduce_into};
use crate::resume::CheckpointSink;
use disc_core::{
    run_guarded, AbortReason, ExtElem, FlatArena, FlatDb, GuardedResult, Item, MinSupport,
    MineGuard, MiningResult, SeqView, Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::BTreeMap;

/// When does a partition get split into next-level partitions instead of
/// being handed to the DISC strategy?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitPolicy {
    /// The appendix algorithm: split while `NRR < γ`.
    NrrThreshold(f64),
    /// The generalized static scheme the paper's §3 gestures at ("the
    /// number of levels should be adaptive"): split to a fixed prefix
    /// depth, regardless of NRR. Depth 2 mirrors the static DISC-all's
    /// two-level partitioning inside this machinery.
    FixedDepth(usize),
}

impl SplitPolicy {
    /// Should the partition at prefix length `level` with the given NRR be
    /// split further?
    fn split(self, level: usize, nrr: f64) -> bool {
        match self {
            SplitPolicy::NrrThreshold(gamma) => nrr < gamma,
            SplitPolicy::FixedDepth(depth) => level < depth,
        }
    }
}

/// The Dynamic DISC-all miner.
#[derive(Debug, Clone)]
pub struct DynamicDiscAll {
    /// The split policy (γ-threshold per the appendix, or fixed depth).
    pub policy: SplitPolicy,
    /// Use the bi-level optimization inside the DISC stages.
    pub bi_level: bool,
}

impl Default for DynamicDiscAll {
    /// γ = 0.6 sits between the observed "partitioning pays" (≤ ~0.2) and
    /// "partitioning is overhead" (≥ ~0.8) regimes of Tables 12/14.
    fn default() -> Self {
        DynamicDiscAll { policy: SplitPolicy::NrrThreshold(0.6), bi_level: true }
    }
}

impl DynamicDiscAll {
    /// A dynamic miner with an explicit γ.
    pub fn with_gamma(gamma: f64) -> DynamicDiscAll {
        DynamicDiscAll { policy: SplitPolicy::NrrThreshold(gamma), ..DynamicDiscAll::default() }
    }

    /// A miner that always partitions to a fixed prefix depth.
    pub fn with_fixed_depth(depth: usize) -> DynamicDiscAll {
        DynamicDiscAll { policy: SplitPolicy::FixedDepth(depth), ..DynamicDiscAll::default() }
    }
}

/// The NRR of a partition, from its counting-array scan: the mean ratio of
/// child-partition size (= the support of each frequent one-item extension)
/// to the partition's own size.
fn nrr(ext_supports: &[u64], partition_size: usize) -> f64 {
    debug_assert!(!ext_supports.is_empty() && partition_size > 0);
    let sum: f64 = ext_supports.iter().map(|&s| s as f64 / partition_size as f64).sum();
    sum / ext_supports.len() as f64
}

impl SequentialMiner for DynamicDiscAll {
    fn name(&self) -> &str {
        "Dynamic DISC-all"
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_inner(db, min_support, &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| self.mine_inner(db, min_support, guard, result, None))
    }
}

impl DynamicDiscAll {
    /// Mines a [`FlatDb`] directly — see [`crate::DiscAll::mine_flat`] for
    /// the contract (identical patterns, item ids as stored).
    pub fn mine_flat(&self, flat: &FlatDb, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_flat_inner(flat, min_support.resolve(flat.len()), &guard, &mut result, None)
            .expect("unlimited guard never aborts");
        result
    }

    /// [`DynamicDiscAll::mine_flat`] under a [`MineGuard`].
    pub fn mine_flat_guarded(
        &self,
        flat: &FlatDb,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        let delta = min_support.resolve(flat.len());
        run_guarded(guard, |result| self.mine_flat_inner(flat, delta, guard, result, None))
    }

    /// The cooperative core behind both entry points. Snapshot hooks mirror
    /// [`crate::DiscAll::mine_inner`]: boundaries at the frequent
    /// 1-sequences and per completed first-level partition. The degenerate
    /// no-split path has no partition boundaries — only the level-1
    /// snapshot applies there.
    pub(crate) fn mine_inner(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
        sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        // Flatten once; all scans below walk the contiguous arena.
        let flat = FlatDb::from_database(db);
        self.mine_flat_inner(&flat, min_support.resolve(db.len()), guard, result, sink)
    }

    /// [`DynamicDiscAll::mine_inner`] over the flat columns themselves —
    /// heap or mapped, the kernels cannot tell.
    pub(crate) fn mine_flat_inner(
        &self,
        flat: &FlatDb,
        delta: u64,
        guard: &MineGuard,
        result: &mut MiningResult,
        mut sink: Option<&mut CheckpointSink<'_>>,
    ) -> Result<(), AbortReason> {
        let Some(max_item) = flat.max_item() else {
            return Ok(());
        };
        let n_items = max_item.id() as usize + 1;

        // Root (λ = NULL, k = 0): scan for frequent 1-sequences.
        guard.charge(flat.len() as u64)?;
        let root = count_extensions(&Sequence::empty(), flat.rows(), n_items);
        let mut freq1 = vec![false; n_items];
        let mut supports1 = Vec::new();
        for id in 0..n_items as u32 {
            let support = root.seq_support(Item(id));
            if support >= delta {
                freq1[id as usize] = true;
                supports1.push(support);
                guard.note_pattern()?;
                result.insert(Sequence::single(Item(id)), support);
            }
        }
        if supports1.is_empty() {
            return Ok(());
        }
        if let Some(s) = sink.as_deref_mut() {
            s.level_one(result);
        }

        if !self.policy.split(0, nrr(&supports1, flat.len())) {
            // Degenerate but well-defined: DISC over the whole database from
            // k = 2, seeded by the 1-sorted list.
            let members: Vec<_> = flat.rows().collect();
            let list: Vec<Sequence> = (0..n_items as u32)
                .filter(|&id| freq1[id as usize])
                .map(|id| Sequence::single(Item(id)))
                .collect();
            let mut carray = CountingArray::new(n_items);
            return run_disc_levels(
                &members,
                list,
                delta,
                self.bi_level,
                guard,
                result,
                &mut carray,
            );
        }

        // First-level partitions with reassignment chains.
        let mut first_level = group_by_min_item_guarded(flat, guard)?;
        while let Some((&lambda, _)) = first_level.iter().next() {
            guard.checkpoint()?;
            let members = first_level.remove(&lambda).expect("key just observed");
            let resumed = sink.as_deref().is_some_and(|s| s.is_done(lambda));
            if freq1[lambda.id() as usize] && !resumed {
                self.process_first_level(
                    flat, lambda, &members, delta, n_items, &freq1, guard, result,
                )?;
                if let Some(s) = sink.as_deref_mut() {
                    s.partition_done(lambda, result);
                }
            }
            for idx in members {
                guard.checkpoint()?;
                if let Some(next) = next_frequent_item(flat.row(idx), lambda, &freq1) {
                    first_level.entry(next).or_default().push(idx);
                }
            }
        }
        Ok(())
    }

    /// One `<(λ)>`-partition: count 2-extensions, decide by NRR, then either
    /// reduce + split into second-level partitions or run DISC from k = 3.
    #[allow(clippy::too_many_arguments)]
    fn process_first_level(
        &self,
        flat: &FlatDb,
        lambda: Item,
        members: &[usize],
        delta: u64,
        n_items: usize,
        freq1: &[bool],
        guard: &MineGuard,
        result: &mut MiningResult,
    ) -> Result<(), AbortReason> {
        let prefix1 = Sequence::single(lambda);
        guard.charge(members.len() as u64)?;
        let mut array = count_extensions(&prefix1, members.iter().map(|&i| flat.row(i)), n_items);
        let (i_mask, s_mask) = array.frequency_masks(delta);
        let exts = array.frequent_extensions(delta);
        if exts.is_empty() {
            return Ok(());
        }
        let mut freq2 = Vec::with_capacity(exts.len());
        let mut supports = Vec::with_capacity(exts.len());
        for &(elem, support) in &exts {
            let pat = prefix1.extended(elem);
            guard.note_pattern()?;
            result.insert(pat.clone(), support);
            freq2.push(pat);
            supports.push(support);
        }

        if !self.policy.split(1, nrr(&supports, members.len())) {
            // DISC from k = 3 over the (unreduced) partition members.
            let views: Vec<_> = members.iter().map(|&i| flat.row(i)).collect();
            let mut carray = CountingArray::new(n_items);
            return run_disc_levels(
                &views,
                freq2,
                delta,
                self.bi_level,
                guard,
                result,
                &mut carray,
            );
        }

        // Reduce into a partition-local flat arena, split by 2-minimum
        // subsequence, recurse. Slots are arena row indices.
        let mut arena = FlatArena::new();
        let mut second: BTreeMap<ExtElem, Vec<usize>> = BTreeMap::new();
        for &idx in members {
            guard.checkpoint()?;
            let seq = flat.row(idx);
            let min_point =
                seq.first_txn_containing(lambda).expect("partition members contain their key item");
            let Some(row) =
                reduce_into(&mut arena, seq, lambda, min_point, freq1, &i_mask, &s_mask)
            else {
                continue;
            };
            if let Some(elem) = min_ext_elem(arena.row(row), &prefix1, &i_mask, &s_mask, None) {
                second.entry(elem).or_default().push(row);
            } else {
                arena.pop_row(); // unextendable: the row just appended is dead
            }
        }
        while let Some((&elem, _)) = second.iter().next() {
            guard.checkpoint()?;
            let slots = second.remove(&elem).expect("key just observed");
            if slots.len() as u64 >= delta {
                let prefix2 = prefix1.extended(elem);
                let partition: Vec<_> = slots.iter().map(|&s| arena.row(s)).collect();
                self.process_deeper(&prefix2, &partition, delta, n_items, guard, result)?;
            }
            for slot in slots {
                guard.checkpoint()?;
                if let Some(next) =
                    min_ext_elem(arena.row(slot), &prefix1, &i_mask, &s_mask, Some(elem))
                {
                    second.entry(next).or_default().push(slot);
                }
            }
        }
        Ok(())
    }

    /// A `<π>`-partition with `|π| = j ≥ 2`: count (j+1)-extensions, decide
    /// by policy, then recurse or run DISC from k = j + 2. Partitions are
    /// slices of `Copy` views, so recursion copies 32-byte handles, not
    /// sequences.
    fn process_deeper<'a, S: SeqView<'a>>(
        &self,
        prefix: &Sequence,
        partition: &[S],
        delta: u64,
        n_items: usize,
        guard: &MineGuard,
        result: &mut MiningResult,
    ) -> Result<(), AbortReason> {
        guard.charge(partition.len() as u64)?;
        let mut array = count_extensions(prefix, partition.iter().copied(), n_items);
        let (i_mask, s_mask) = array.frequency_masks(delta);
        let exts = array.frequent_extensions(delta);
        if exts.is_empty() {
            return Ok(());
        }
        let mut freq_next = Vec::with_capacity(exts.len());
        let mut supports = Vec::with_capacity(exts.len());
        for &(elem, support) in &exts {
            let pat = prefix.extended(elem);
            guard.note_pattern()?;
            result.insert(pat.clone(), support);
            freq_next.push(pat);
            supports.push(support);
        }

        if !self.policy.split(prefix.length(), nrr(&supports, partition.len())) {
            let mut carray = CountingArray::new(n_items);
            return run_disc_levels(
                partition,
                freq_next,
                delta,
                self.bi_level,
                guard,
                result,
                &mut carray,
            );
        }

        let mut children: BTreeMap<ExtElem, Vec<usize>> = BTreeMap::new();
        for (slot, &seq) in partition.iter().enumerate() {
            guard.checkpoint()?;
            if let Some(elem) = min_ext_elem(seq, prefix, &i_mask, &s_mask, None) {
                children.entry(elem).or_default().push(slot);
            }
        }
        while let Some((&elem, _)) = children.iter().next() {
            guard.checkpoint()?;
            let slots = children.remove(&elem).expect("key just observed");
            if slots.len() as u64 >= delta {
                let child_prefix = prefix.extended(elem);
                let child: Vec<S> = slots.iter().map(|&s| partition[s]).collect();
                self.process_deeper(&child_prefix, &child, delta, n_items, guard, result)?;
            }
            for slot in slots {
                guard.checkpoint()?;
                if let Some(next) =
                    min_ext_elem(partition[slot], prefix, &i_mask, &s_mask, Some(elem))
                {
                    children.entry(next).or_default().push(slot);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::BruteForce;

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    fn table6() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,d)(d)(a,g,h)(c)",
            "(b)(a)(f)(a,c,e,g)",
            "(a,f,g)(a,e,g,h)(c,g,h)",
            "(f)(a,c,f)(a,c,e,g,h)",
            "(a,g)",
            "(a,f)(a,e,g,h)",
            "(a,b,g)(a,e,g)(g,h)",
            "(b,f)(b,e)(e,f,h)",
            "(d,f)(d,f,g,h)",
            "(b,f,g)(c,e,h)",
            "(e,g)(f)(e,f)",
        ])
        .unwrap()
    }

    #[test]
    fn every_gamma_matches_brute_force() {
        // γ = 0.0 never partitions (pure DISC from the root); γ = 2.0 always
        // partitions (pure counting-array recursion); the default mixes.
        for db in [table1(), table6()] {
            for delta in 1..=4u64 {
                let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
                for gamma in [0.0, 0.3, 0.6, 2.0] {
                    let got = DynamicDiscAll::with_gamma(gamma).mine(&db, MinSupport::Count(delta));
                    let diff = got.diff(&expected);
                    assert!(diff.is_empty(), "γ={gamma} δ={delta}:\n{}", diff.join("\n"));
                }
            }
        }
    }

    #[test]
    fn bi_level_toggle_matches_too() {
        let db = table6();
        let expected = BruteForce::default().mine(&db, MinSupport::Count(3));
        let miner = DynamicDiscAll { policy: SplitPolicy::NrrThreshold(0.5), bi_level: false };
        let got = miner.mine(&db, MinSupport::Count(3));
        assert!(got.diff(&expected).is_empty());
    }

    #[test]
    fn fixed_depth_policies_match_brute_force() {
        for db in [table1(), table6()] {
            for delta in 1..=4u64 {
                let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
                for depth in [0usize, 1, 2, 3, 8] {
                    let got =
                        DynamicDiscAll::with_fixed_depth(depth).mine(&db, MinSupport::Count(delta));
                    let diff = got.diff(&expected);
                    assert!(diff.is_empty(), "depth={depth} δ={delta}:\n{}", diff.join("\n"));
                }
            }
        }
    }

    #[test]
    fn nrr_formula() {
        assert!((nrr(&[5, 3, 4], 6) - (5.0 / 6.0 + 3.0 / 6.0 + 4.0 / 6.0) / 3.0).abs() < 1e-12);
        assert!((nrr(&[10], 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_database() {
        let result = DynamicDiscAll::default().mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(result.is_empty());
    }
}
