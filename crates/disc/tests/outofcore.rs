//! Out-of-core differential tests: the heap path (store view → nested
//! database → miner) and the mmap path (store's `store.dscfd` mirror →
//! zero-copy [`FlatDb`] → `mine_flat` → dictionary restore) must agree
//! bit-for-bit on the acked prefix, for every miner, across thread counts
//! and support thresholds — including after further appends make the mirror
//! stale (it then still represents exactly the compacted prefix, and the
//! fingerprint mismatch is detectable).

use disc_algo::{DiscAll, DynamicDiscAll, ParallelDiscAll};
use disc_core::{
    open_flat_file, peek_flat_file_fingerprint, CustomerId, MinSupport, MiningResult,
    SequenceDatabase, SequenceStore, SequentialMiner, StoreConfig, Verify,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_N: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("outofcore-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Table 6 of the paper plus a few extra rows, as store ingests.
fn rows() -> Vec<&'static str> {
    vec![
        "(a,d)(d)(a,g,h)(c)",
        "(b)(a)(f)(a,c,e,g)",
        "(a,f,g)(a,e,g,h)(c,g,h)",
        "(f)(a,c,f)(a,c,e,g,h)",
        "(a,g)",
        "(a,f)(a,e,g,h)",
        "(a,b,g)(a,e,g)(g,h)",
        "(b)(d,f)(e)",
        "(b,f,g)",
        "(f)(a,g)(b,f,h)(b,f)",
    ]
}

/// Mines the mapped mirror with every miner and checks each against the
/// same miner's heap run over `db`.
fn assert_paths_agree(flat_path: &std::path::Path, db: &SequenceDatabase, minsup: MinSupport) {
    let contents = open_flat_file(flat_path, Verify::Full).expect("open mirror");
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    assert!(contents.is_mapped(), "mirror must load zero-copy on this platform");

    let runs: Vec<(&str, MiningResult, MiningResult)> = vec![
        (
            "disc-all",
            DiscAll::default().mine(db, minsup),
            contents.mapping.restore_result(&DiscAll::default().mine_flat(&contents.flat, minsup)),
        ),
        (
            "dynamic",
            DynamicDiscAll::default().mine(db, minsup),
            contents
                .mapping
                .restore_result(&DynamicDiscAll::default().mine_flat(&contents.flat, minsup)),
        ),
        (
            "parallel x2",
            ParallelDiscAll::with_threads(2).mine(db, minsup),
            contents.mapping.restore_result(
                &ParallelDiscAll::with_threads(2).mine_flat(&contents.flat, minsup),
            ),
        ),
        (
            "parallel x4",
            ParallelDiscAll::with_threads(4).mine(db, minsup),
            contents.mapping.restore_result(
                &ParallelDiscAll::with_threads(4).mine_flat(&contents.flat, minsup),
            ),
        ),
    ];
    for (name, heap, mapped) in &runs {
        let diff = mapped.diff(heap);
        assert!(
            diff.is_empty(),
            "{name} @ {minsup:?}: mapped result diverges from heap ({} lines):\n{}",
            diff.len(),
            diff.join("\n")
        );
        assert!(!heap.is_empty(), "{name} @ {minsup:?}: degenerate test, no patterns");
    }
}

/// Ingest → compact → mine both paths: bit-identical at several thresholds.
#[test]
fn mapped_mirror_mines_identically_to_the_heap_path() {
    let dir = fresh_dir("agree");
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).expect("open");
    for (i, text) in rows().iter().enumerate() {
        store.append(CustomerId(i as u64), disc_core::parse_sequence(text).unwrap()).unwrap();
    }
    store.compact().expect("compact");
    let flat_path = store.flat_file_path();
    assert!(flat_path.exists(), "compaction publishes the mirror");
    assert_eq!(
        peek_flat_file_fingerprint(&flat_path).unwrap(),
        store.fingerprint(),
        "fresh mirror matches the live store"
    );

    let db = store.view();
    for minsup in [MinSupport::Count(2), MinSupport::Count(3), MinSupport::Fraction(0.5)] {
        assert_paths_agree(&flat_path, &db, minsup);
    }
    drop(store);
    let _ = fs::remove_dir_all(&dir);
}

/// Appends after compaction leave the mirror representing exactly the acked
/// prefix at the time of compaction: its mine equals a heap mine of that
/// prefix, not of the live store — and the staleness is detectable by
/// fingerprint before any mining happens.
#[test]
fn stale_mirror_still_mines_the_exact_compacted_prefix() {
    let dir = fresh_dir("stale");
    let all = rows();
    let prefix_len = 6;
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).expect("open");
    for (i, text) in all[..prefix_len].iter().enumerate() {
        store.append(CustomerId(i as u64), disc_core::parse_sequence(text).unwrap()).unwrap();
    }
    store.compact().expect("compact");
    let prefix_db: SequenceDatabase = (*store.view()).clone();

    for (i, text) in all[prefix_len..].iter().enumerate() {
        let cid = CustomerId((prefix_len + i) as u64);
        store.append(cid, disc_core::parse_sequence(text).unwrap()).unwrap();
    }
    let flat_path = store.flat_file_path();
    assert_ne!(
        peek_flat_file_fingerprint(&flat_path).unwrap(),
        store.fingerprint(),
        "mirror must be detectably stale after further appends"
    );

    // The stale mirror is still internally consistent: it mines to exactly
    // the compacted prefix's result.
    assert_paths_agree(&flat_path, &prefix_db, MinSupport::Count(2));

    // Re-compacting refreshes the mirror to cover the live store again.
    store.compact().expect("recompact");
    assert_eq!(peek_flat_file_fingerprint(&flat_path).unwrap(), store.fingerprint());
    let live_db: SequenceDatabase = (*store.view()).clone();
    assert_paths_agree(&flat_path, &live_db, MinSupport::Count(2));
    drop(store);
    let _ = fs::remove_dir_all(&dir);
}
