//! Property tests for the DISC machinery:
//!
//! * Apriori-KMS / Apriori-CKMS equal the exhaustive-enumeration references
//!   on random sequences and random frequent-prefix lists;
//! * DISC-all (bi-level on and off) and Dynamic DISC-all (several γ) return
//!   exactly the brute-force frequent set with exact supports on random
//!   databases.

use disc_algo::ckms::{apriori_ckms, BoundMode, Condition};
use disc_algo::kms::apriori_kms;
use disc_algo::{DiscAll, DynamicDiscAll};
use disc_core::kmin::{all_k_subsequences, min_k_subsequence_with_allowed_prefix_naive};
use disc_core::{
    BruteForce, Item, Itemset, MinSupport, Sequence, SequenceDatabase, SequentialMiner,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_itemset(max_item: u32) -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(0..max_item, 1..=3)
        .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

fn arb_sequence(max_item: u32, max_txns: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(max_item), 1..=max_txns).prop_map(Sequence::new)
}

fn arb_db(max_item: u32, max_rows: usize) -> impl Strategy<Value = SequenceDatabase> {
    prop::collection::vec(arb_sequence(max_item, 4), 1..=max_rows)
        .prop_map(SequenceDatabase::from_sequences)
}

/// A random subset of the (k-1)-subsequences of a random sequence, to act as
/// the "frequent" list.
fn arb_prefix_scenario(k: usize) -> impl Strategy<Value = (Sequence, Vec<Sequence>)> {
    (arb_sequence(5, 4), any::<u64>()).prop_map(move |(s, seed)| {
        let all: Vec<Sequence> = all_k_subsequences(&s, k - 1).into_iter().collect();
        // Deterministic pseudo-random subset from the seed.
        let mut picked: Vec<Sequence> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| (seed >> (i % 64)) & 1 == 1)
            .map(|(_, p)| p)
            .collect();
        picked.sort();
        (s, picked)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn kms_matches_reference((s, list) in arb_prefix_scenario(3)) {
        let allowed: BTreeSet<Sequence> = list.iter().cloned().collect();
        let fast = apriori_kms(&s, &list).map(|k| k.key);
        let slow = min_k_subsequence_with_allowed_prefix_naive(&s, 3, &allowed, None);
        prop_assert_eq!(fast, slow, "sequence {} list {:?}", s,
            list.iter().map(|p| p.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn ckms_matches_reference(
        (s, list) in arb_prefix_scenario(3),
        bound in arb_sequence(5, 3),
        strict in any::<bool>(),
    ) {
        // Condition sequences must be k-sequences with a prefix in some list;
        // synthesize one from the bound's own 3-prefix when long enough.
        prop_assume!(bound.length() >= 3);
        let alpha_delta = bound.k_prefix(3);
        prop_assume!(!list.is_empty());
        let mode = if strict { BoundMode::Strictly } else { BoundMode::AtLeast };
        let cond = Condition::new(&alpha_delta, mode);
        let allowed: BTreeSet<Sequence> = list.iter().cloned().collect();
        let fast = apriori_ckms(&s, &list, 0, &cond).map(|k| k.key);
        let slow = min_k_subsequence_with_allowed_prefix_naive(
            &s, 3, &allowed, Some((&alpha_delta, strict)));
        prop_assert_eq!(fast, slow, "sequence {} bound {}", s, alpha_delta);
    }

    #[test]
    fn ckms_pointer_is_an_optimization_not_a_filter(
        (s, list) in arb_prefix_scenario(3),
        bound in arb_sequence(5, 3),
    ) {
        // Starting from the key's true prefix pointer must give the same
        // answer as starting from 0.
        prop_assume!(bound.length() >= 3 && !list.is_empty());
        let alpha_delta = bound.k_prefix(3);
        let cond = Condition::new(&alpha_delta, BoundMode::AtLeast);
        let from_zero = apriori_ckms(&s, &list, 0, &cond);
        if let Some(kms) = &from_zero {
            // Re-run starting from any pointer up to the answer's pointer.
            for p in 0..=kms.ptr {
                let again = apriori_ckms(&s, &list, p, &cond);
                prop_assert_eq!(again.as_ref(), Some(kms));
            }
        }
    }

    #[test]
    fn disc_all_matches_brute_force(db in arb_db(5, 8), delta in 1u64..=4) {
        let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
        for miner in [DiscAll::default(), DiscAll::without_bi_level()] {
            let got = miner.mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            prop_assert!(diff.is_empty(), "{} δ={}:\n{}\ndb:\n{}",
                miner.name(), delta, diff.join("\n"), db.to_text());
        }
    }

    #[test]
    fn dynamic_matches_brute_force(db in arb_db(5, 8), delta in 1u64..=4) {
        let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
        for gamma in [0.0, 0.5, 2.0] {
            let got = DynamicDiscAll::with_gamma(gamma).mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            prop_assert!(diff.is_empty(), "γ={} δ={}:\n{}\ndb:\n{}",
                gamma, delta, diff.join("\n"), db.to_text());
        }
    }

    #[test]
    fn wider_alphabet_smoke(db in arb_db(12, 10), delta in 2u64..=3) {
        let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
        let got = DiscAll::default().mine(&db, MinSupport::Count(delta));
        prop_assert!(got.diff(&expected).is_empty());
    }
}
