//! Property tests for the weighted extension: weighted DISC equals the
//! weighted brute force on random weighted databases, and degenerates to
//! ordinary mining under uniform weights.

use disc_algo::weighted::{WeightedDatabase, WeightedDisc};
use disc_algo::DiscAll;
use disc_core::{
    BruteForce, ExtElem, ExtMode, Item, Itemset, MinSupport, MiningResult, Sequence,
    SequenceDatabase, SequentialMiner,
};
use proptest::prelude::*;

fn arb_itemset(max_item: u32) -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(0..max_item, 1..=3)
        .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

fn arb_sequence(max_item: u32) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(max_item), 1..=4).prop_map(Sequence::new)
}

fn arb_weighted_db() -> impl Strategy<Value = WeightedDatabase> {
    prop::collection::vec((arb_sequence(5), 1u64..=5), 1..=8)
        .prop_map(WeightedDatabase::from_weighted)
}

/// Weighted level-wise brute force (definitional).
fn weighted_brute(wdb: &WeightedDatabase, delta_w: u64) -> MiningResult {
    let mut result = MiningResult::new();
    let mut items: Vec<Item> =
        wdb.database().sequences().flat_map(|s| s.distinct_items()).collect();
    items.sort_unstable();
    items.dedup();
    let mut frontier = Vec::new();
    for item in items.iter().copied() {
        let pat = Sequence::single(item);
        let w = wdb.weighted_support(&pat);
        if w >= delta_w {
            result.insert(pat.clone(), w);
            frontier.push(pat);
        }
    }
    let freq_items: Vec<Item> =
        frontier.iter().map(|p| p.last_flat_item().expect("non-empty")).collect();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for base in &frontier {
            let last = base.last_flat_item().expect("non-empty");
            for &item in &freq_items {
                let mut cands = vec![base.extended(ExtElem { item, mode: ExtMode::Sequence })];
                if item > last {
                    cands.push(base.extended(ExtElem { item, mode: ExtMode::Itemset }));
                }
                for cand in cands {
                    let w = wdb.weighted_support(&cand);
                    if w >= delta_w {
                        result.insert(cand.clone(), w);
                        next.push(cand);
                    }
                }
            }
        }
        frontier = next;
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn weighted_disc_matches_weighted_brute_force(
        wdb in arb_weighted_db(),
        frac in 1u64..=10,
    ) {
        let delta_w = (wdb.total_weight() * frac / 10).max(1);
        let expected = weighted_brute(&wdb, delta_w);
        for miner in [WeightedDisc::default(), WeightedDisc { bi_level: false }] {
            let got = miner.mine(&wdb, delta_w);
            let diff = got.diff(&expected);
            prop_assert!(diff.is_empty(), "δw={}:\n{}", delta_w, diff.join("\n"));
        }
    }

    #[test]
    fn uniform_weights_equal_ordinary_mining(
        rows in prop::collection::vec(arb_sequence(5), 1..=8),
        delta in 1u64..=4,
    ) {
        let db = SequenceDatabase::from_sequences(rows);
        let wdb = WeightedDatabase::uniform(db.clone());
        let ordinary = DiscAll::default().mine(&db, MinSupport::Count(delta));
        let weighted = WeightedDisc::default().mine(&wdb, delta);
        prop_assert!(weighted.diff(&ordinary).is_empty());
    }

    #[test]
    fn scaling_weights_scales_supports(wdb in arb_weighted_db(), factor in 2u64..=4) {
        // Multiplying every weight by c multiplies every weighted support
        // by c; mining at c·δw returns the same patterns.
        let delta_w = (wdb.total_weight() / 2).max(1);
        let scaled = WeightedDatabase::from_weighted(
            wdb.database()
                .sequences()
                .enumerate()
                .map(|(i, s)| (s.clone(), wdb.weight(i) * factor)),
        );
        let a = WeightedDisc::default().mine(&wdb, delta_w);
        let b = WeightedDisc::default().mine(&scaled, delta_w * factor);
        prop_assert_eq!(a.len(), b.len());
        for (p, s) in a.iter() {
            prop_assert_eq!(b.support_of(p), Some(s * factor), "{}", p);
        }
    }

    #[test]
    fn zero_weight_customers_do_not_contribute(rows in prop::collection::vec(arb_sequence(5), 2..=6)) {
        // Weight-0 rows are allowed and must be invisible in supports.
        let n = rows.len();
        let half = n / 2;
        let wdb = WeightedDatabase::from_weighted(
            rows.iter().cloned().enumerate().map(|(i, s)| (s, if i < half { 1 } else { 0 })),
        );
        let kept = SequenceDatabase::from_sequences(rows[..half].to_vec());
        let expected = if kept.is_empty() {
            MiningResult::new()
        } else {
            BruteForce::default().mine(&kept, MinSupport::Count(1))
        };
        let got = WeightedDisc::default().mine(&wdb, 1);
        prop_assert!(got.diff(&expected).is_empty());
    }
}
