//! Model-based property tests: a [`LocativeAvlTree`] must behave exactly
//! like a `BTreeMap<K, Vec<V>>` under arbitrary operation sequences, while
//! maintaining its AVL/count invariants at every step.

use disc_tree::LocativeAvlTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    TakeMin,
    TakeLessThan(u16),
    Remove(u16),
    Select(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..50, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => Just(Op::TakeMin),
        1 => (0u16..50).prop_map(Op::TakeLessThan),
        1 => (0u16..50).prop_map(Op::Remove),
        1 => (0usize..60).prop_map(Op::Select),
    ]
}

/// The reference model.
#[derive(Default)]
struct Model {
    map: BTreeMap<u16, Vec<u32>>,
}

impl Model {
    fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    fn insert(&mut self, k: u16, v: u32) {
        self.map.entry(k).or_default().push(v);
    }

    fn take_min(&mut self) -> Option<(u16, Vec<u32>)> {
        let k = *self.map.keys().next()?;
        Some((k, self.map.remove(&k).expect("present")))
    }

    fn take_less_than(&mut self, bound: u16) -> Vec<(u16, Vec<u32>)> {
        let keys: Vec<u16> = self.map.range(..bound).map(|(k, _)| *k).collect();
        keys.into_iter().map(|k| (k, self.map.remove(&k).expect("present"))).collect()
    }

    fn remove(&mut self, k: u16) -> Option<Vec<u32>> {
        self.map.remove(&k)
    }

    fn select(&self, mut rank: usize) -> Option<u16> {
        for (k, vs) in &self.map {
            if rank < vs.len() {
                return Some(*k);
            }
            rank -= vs.len();
        }
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_matches_btreemap_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut tree: LocativeAvlTree<u16, u32> = LocativeAvlTree::new();
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(k, v);
                    model.insert(k, v);
                }
                Op::TakeMin => {
                    prop_assert_eq!(tree.take_min(), model.take_min());
                }
                Op::TakeLessThan(bound) => {
                    prop_assert_eq!(tree.take_less_than(&bound), model.take_less_than(bound));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(k));
                }
                Op::Select(rank) => {
                    prop_assert_eq!(tree.select(rank).copied(), model.select(rank));
                }
            }
            tree.check_invariants();
            prop_assert_eq!(tree.len(), model.len());
            prop_assert_eq!(tree.n_keys(), model.map.len());
            prop_assert_eq!(
                tree.min().map(|(k, vs)| (*k, vs.to_vec())),
                model.map.iter().next().map(|(k, vs)| (*k, vs.clone()))
            );
        }

        // Final full-order check.
        let tree_pairs: Vec<(u16, Vec<u32>)> =
            tree.iter().map(|(k, vs)| (*k, vs.to_vec())).collect();
        let model_pairs: Vec<(u16, Vec<u32>)> =
            model.map.iter().map(|(k, vs)| (*k, vs.clone())).collect();
        prop_assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn select_scans_every_rank(keys in prop::collection::vec(0u16..20, 1..60)) {
        let tree: LocativeAvlTree<u16, usize> =
            keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        tree.check_invariants();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        for (rank, k) in sorted.iter().enumerate() {
            prop_assert_eq!(tree.select(rank), Some(k));
        }
        prop_assert_eq!(tree.select(sorted.len()), None);
    }
}
