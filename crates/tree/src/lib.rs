//! # disc-tree
//!
//! The **locative AVL tree** of Section 3.2 of the DISC paper: the data
//! structure backing the *k-sorted database*.
//!
//! DISC keeps every customer sequence keyed by its current conditional
//! k-minimum subsequence and repeatedly needs three operations:
//!
//! 1. read the minimum key `α₁` and the key at *position δ* (`α_δ`) — where
//!    positions count **customer sequences**, not distinct keys (Table 3 of
//!    the paper: equal k-minimum subsequences occupy consecutive positions);
//! 2. extract every customer below a key (the re-sort step of Fig. 4);
//! 3. re-insert customers under new keys.
//!
//! [`LocativeAvlTree`] is an AVL tree with one node per distinct key, a
//! bucket of values per node, and each subtree augmented with its **total
//! value count**, so `select(rank)` finds the key at a given customer
//! position in `O(log n)`. The paper calls the rank bookkeeping the "access
//! key"; the balance maintenance is the textbook AVL rotation set (Weiss,
//! *Data Structures and Algorithm Analysis in C*, §4.4 — the paper's
//! reference \[14\]).
//!
//! [`WeightedLocativeTree`] generalizes the augmentation from counts to
//! per-value weights (`select_by_weight` finds the key at a cumulative
//! weight), which is what the weighted-mining extension of the paper's §5
//! future work runs on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avl;
mod weighted;

pub use avl::LocativeAvlTree;
pub use weighted::WeightedLocativeTree;
