//! A weighted locative AVL tree: like [`crate::LocativeAvlTree`], but every
//! value carries a weight and order statistics run over **cumulative
//! weight** instead of value count.
//!
//! This powers the weighted extension of the DISC strategy (the paper's
//! §5 "weighting applications"): with customer weights, the condition
//! sequence `α_δ` lives at the position where the cumulative weight reaches
//! the weighted support threshold, and Lemmas 2.1/2.2 carry over verbatim
//! with weights in place of counts. The unweighted tree is the special case
//! of weight 1 everywhere.

use std::cmp::Ordering;

/// One tree node: a distinct key with its bucket of weighted values.
#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    values: Vec<(V, u64)>,
    /// Total weight of this node's own bucket.
    bucket_weight: u64,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
    height: i32,
    /// Total weight in this subtree.
    weight: u64,
}

impl<K, V> Node<K, V> {
    fn new(key: K, value: V, w: u64) -> Box<Node<K, V>> {
        Box::new(Node {
            key,
            values: vec![(value, w)],
            bucket_weight: w,
            left: None,
            right: None,
            height: 1,
            weight: w,
        })
    }

    fn update(&mut self) {
        self.height = 1 + height(&self.left).max(height(&self.right));
        self.weight = self.bucket_weight + weight(&self.left) + weight(&self.right);
    }

    fn balance_factor(&self) -> i32 {
        height(&self.left) - height(&self.right)
    }
}

fn height<K, V>(n: &Option<Box<Node<K, V>>>) -> i32 {
    n.as_ref().map_or(0, |n| n.height)
}

fn weight<K, V>(n: &Option<Box<Node<K, V>>>) -> u64 {
    n.as_ref().map_or(0, |n| n.weight)
}

fn rotate_right<K, V>(mut root: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut new_root = root.left.take().expect("rotate_right requires a left child");
    root.left = new_root.right.take();
    root.update();
    new_root.right = Some(root);
    new_root.update();
    new_root
}

fn rotate_left<K, V>(mut root: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut new_root = root.right.take().expect("rotate_left requires a right child");
    root.right = new_root.left.take();
    root.update();
    new_root.left = Some(root);
    new_root.update();
    new_root
}

fn rebalance<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    node.update();
    let bf = node.balance_factor();
    if bf > 1 {
        if node.left.as_ref().expect("bf > 1 implies left").balance_factor() < 0 {
            node.left = Some(rotate_left(node.left.take().expect("checked")));
        }
        rotate_right(node)
    } else if bf < -1 {
        if node.right.as_ref().expect("bf < -1 implies right").balance_factor() > 0 {
            node.right = Some(rotate_right(node.right.take().expect("checked")));
        }
        rotate_left(node)
    } else {
        node
    }
}

fn insert_node<K: Ord, V>(
    node: Option<Box<Node<K, V>>>,
    key: K,
    value: V,
    w: u64,
) -> Box<Node<K, V>> {
    match node {
        None => Node::new(key, value, w),
        Some(mut n) => match key.cmp(&n.key) {
            Ordering::Equal => {
                n.values.push((value, w));
                n.bucket_weight += w;
                n.update();
                n
            }
            Ordering::Less => {
                n.left = Some(insert_node(n.left.take(), key, value, w));
                rebalance(n)
            }
            Ordering::Greater => {
                n.right = Some(insert_node(n.right.take(), key, value, w));
                rebalance(n)
            }
        },
    }
}

#[allow(clippy::type_complexity)]
fn take_min_node<K, V>(mut node: Box<Node<K, V>>) -> (Option<Box<Node<K, V>>>, Box<Node<K, V>>) {
    match node.left.take() {
        None => {
            let right = node.right.take();
            node.update();
            (right, node)
        }
        Some(left) => {
            let (remaining, min) = take_min_node(left);
            node.left = remaining;
            (Some(rebalance(node)), min)
        }
    }
}

/// The weighted locative AVL tree — see the module docs.
#[derive(Debug, Clone)]
pub struct WeightedLocativeTree<K, V> {
    root: Option<Box<Node<K, V>>>,
}

impl<K: Ord, V> Default for WeightedLocativeTree<K, V> {
    fn default() -> Self {
        WeightedLocativeTree::new()
    }
}

impl<K: Ord, V> WeightedLocativeTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        WeightedLocativeTree { root: None }
    }

    /// Total weight stored in the tree.
    pub fn total_weight(&self) -> u64 {
        weight(&self.root)
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts a value with its weight.
    pub fn insert(&mut self, key: K, value: V, w: u64) {
        self.root = Some(insert_node(self.root.take(), key, value, w));
    }

    /// The minimum key with its bucket (values and weights).
    pub fn min(&self) -> Option<(&K, &[(V, u64)])> {
        let mut cur = self.root.as_ref()?;
        while let Some(left) = cur.left.as_ref() {
            cur = left;
        }
        Some((&cur.key, &cur.values))
    }

    /// The key whose bucket contains the `w`-th unit of cumulative weight
    /// (1-based): the smallest key with cumulative weight ≥ `w`. `None` when
    /// `w` exceeds the total weight or is 0.
    pub fn select_by_weight(&self, w: u64) -> Option<&K> {
        if w == 0 {
            return None;
        }
        let mut remaining = w;
        let mut cur = self.root.as_ref()?;
        loop {
            let left_w = weight(&cur.left);
            if remaining <= left_w {
                cur = cur.left.as_ref().expect("remaining <= left weight > 0");
            } else if remaining <= left_w + cur.bucket_weight {
                return Some(&cur.key);
            } else {
                remaining -= left_w + cur.bucket_weight;
                cur = cur.right.as_ref()?;
            }
        }
    }

    /// Detaches the minimum node: `(key, bucket, bucket weight)`.
    #[allow(clippy::type_complexity)]
    pub fn take_min(&mut self) -> Option<(K, Vec<(V, u64)>, u64)> {
        let root = self.root.take()?;
        let (rest, min) = take_min_node(root);
        self.root = rest;
        let node = *min;
        Some((node.key, node.values, node.bucket_weight))
    }

    /// Detaches every node with `key < bound`, ascending.
    #[allow(clippy::type_complexity)]
    pub fn take_less_than(&mut self, bound: &K) -> Vec<(K, Vec<(V, u64)>, u64)> {
        let mut out = Vec::new();
        loop {
            match self.min() {
                Some((k, _)) if k < bound => {
                    out.push(self.take_min().expect("min exists"));
                }
                _ => return out,
            }
        }
    }

    /// Verifies AVL and weight invariants; for tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn rec<K: Ord, V>(n: &Option<Box<Node<K, V>>>) -> (i32, u64) {
            let Some(n) = n else { return (0, 0) };
            assert!(!n.values.is_empty());
            assert_eq!(n.bucket_weight, n.values.iter().map(|(_, w)| w).sum::<u64>());
            let (lh, lw) = rec(&n.left);
            let (rh, rw) = rec(&n.right);
            assert!((lh - rh).abs() <= 1, "AVL balance violated");
            assert_eq!(n.height, 1 + lh.max(rh));
            assert_eq!(n.weight, n.bucket_weight + lw + rw);
            if let Some(l) = &n.left {
                assert!(l.key < n.key);
            }
            if let Some(r) = &n.right {
                assert!(r.key > n.key);
            }
            (n.height, n.weight)
        }
        rec(&self.root);
    }
}

impl<K: Ord, V> FromIterator<(K, V, u64)> for WeightedLocativeTree<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V, u64)>>(iter: T) -> Self {
        let mut t = WeightedLocativeTree::new();
        for (k, v, w) in iter {
            t.insert(k, v, w);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_by_cumulative_weight() {
        // keys: 1 (weight 3), 2 (weight 2), 3 (weight 5)
        let t: WeightedLocativeTree<i32, char> =
            [(1, 'a', 2), (1, 'b', 1), (2, 'c', 2), (3, 'd', 5)].into_iter().collect();
        t.check_invariants();
        assert_eq!(t.total_weight(), 10);
        for w in 1..=3 {
            assert_eq!(t.select_by_weight(w), Some(&1), "w={w}");
        }
        for w in 4..=5 {
            assert_eq!(t.select_by_weight(w), Some(&2), "w={w}");
        }
        for w in 6..=10 {
            assert_eq!(t.select_by_weight(w), Some(&3), "w={w}");
        }
        assert_eq!(t.select_by_weight(11), None);
        assert_eq!(t.select_by_weight(0), None);
    }

    #[test]
    fn take_min_returns_bucket_weight() {
        let mut t: WeightedLocativeTree<i32, char> =
            [(2, 'a', 4), (1, 'b', 3), (1, 'c', 2)].into_iter().collect();
        let (k, vs, w) = t.take_min().unwrap();
        assert_eq!(k, 1);
        assert_eq!(vs, vec![('b', 3), ('c', 2)]);
        assert_eq!(w, 5);
        t.check_invariants();
        assert_eq!(t.total_weight(), 4);
    }

    #[test]
    fn take_less_than_drains_prefix() {
        let mut t: WeightedLocativeTree<i32, char> =
            [(1, 'a', 1), (3, 'b', 2), (5, 'c', 3)].into_iter().collect();
        let below = t.take_less_than(&5);
        assert_eq!(below.len(), 2);
        assert_eq!(t.total_weight(), 3);
        t.check_invariants();
    }

    #[test]
    fn unit_weights_match_rank_semantics() {
        let mut t: WeightedLocativeTree<i32, usize> = WeightedLocativeTree::new();
        for (i, k) in [5, 3, 8, 3, 5, 1].into_iter().enumerate() {
            t.insert(k, i, 1);
        }
        t.check_invariants();
        // sorted: 1, 3, 3, 5, 5, 8 — select_by_weight(w) = w-th element.
        let expected = [1, 3, 3, 5, 5, 8];
        for (i, e) in expected.iter().enumerate() {
            assert_eq!(t.select_by_weight(i as u64 + 1), Some(e));
        }
    }

    #[test]
    fn large_randomish_tree_stays_balanced() {
        let mut t: WeightedLocativeTree<u32, u32> = WeightedLocativeTree::new();
        let mut total = 0u64;
        for i in 0..2000u32 {
            let w = u64::from(i % 7 + 1);
            t.insert(i.wrapping_mul(2654435761) % 500, i, w);
            total += w;
        }
        t.check_invariants();
        assert_eq!(t.total_weight(), total);
        // Walk every weight unit; keys must be non-decreasing.
        let mut last = 0u32;
        for w in 1..=total {
            let k = *t.select_by_weight(w).expect("within range");
            assert!(k >= last);
            last = k;
        }
    }
}
