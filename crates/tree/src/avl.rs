//! The [`LocativeAvlTree`] implementation: a height-balanced BST with
//! duplicate buckets and order statistics over total value count.

use std::cmp::Ordering;

/// A detached subtree paired with whatever was removed from it.
type Detached<K, V> = (Option<Box<Node<K, V>>>, Option<(K, Vec<V>)>);

/// One tree node: a distinct key with its bucket of values.
#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    values: Vec<V>,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
    /// AVL height of this subtree (leaf = 1).
    height: i32,
    /// Total number of values stored in this subtree (including buckets).
    count: usize,
}

impl<K, V> Node<K, V> {
    fn new(key: K, value: V) -> Box<Node<K, V>> {
        Box::new(Node { key, values: vec![value], left: None, right: None, height: 1, count: 1 })
    }

    fn update(&mut self) {
        self.height = 1 + height(&self.left).max(height(&self.right));
        self.count = self.values.len() + count(&self.left) + count(&self.right);
    }

    fn balance_factor(&self) -> i32 {
        height(&self.left) - height(&self.right)
    }
}

fn height<K, V>(n: &Option<Box<Node<K, V>>>) -> i32 {
    n.as_ref().map_or(0, |n| n.height)
}

fn count<K, V>(n: &Option<Box<Node<K, V>>>) -> usize {
    n.as_ref().map_or(0, |n| n.count)
}

fn rotate_right<K, V>(mut root: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut new_root = root.left.take().expect("rotate_right requires a left child");
    root.left = new_root.right.take();
    root.update();
    new_root.right = Some(root);
    new_root.update();
    new_root
}

fn rotate_left<K, V>(mut root: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut new_root = root.right.take().expect("rotate_left requires a right child");
    root.right = new_root.left.take();
    root.update();
    new_root.left = Some(root);
    new_root.update();
    new_root
}

/// Rebalances a node whose children are already balanced AVL subtrees and
/// whose own balance factor may be off by at most the usual ±2.
fn rebalance<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    node.update();
    let bf = node.balance_factor();
    if bf > 1 {
        if node.left.as_ref().expect("bf > 1 implies left").balance_factor() < 0 {
            node.left = Some(rotate_left(node.left.take().expect("checked")));
        }
        rotate_right(node)
    } else if bf < -1 {
        if node.right.as_ref().expect("bf < -1 implies right").balance_factor() > 0 {
            node.right = Some(rotate_right(node.right.take().expect("checked")));
        }
        rotate_left(node)
    } else {
        node
    }
}

fn insert_node<K: Ord, V>(node: Option<Box<Node<K, V>>>, key: K, value: V) -> Box<Node<K, V>> {
    match node {
        None => Node::new(key, value),
        Some(mut n) => match key.cmp(&n.key) {
            Ordering::Equal => {
                n.values.push(value);
                n.update();
                n
            }
            Ordering::Less => {
                n.left = Some(insert_node(n.left.take(), key, value));
                rebalance(n)
            }
            Ordering::Greater => {
                n.right = Some(insert_node(n.right.take(), key, value));
                rebalance(n)
            }
        },
    }
}

/// Removes the minimum node of the subtree, returning the remaining subtree
/// and the detached node (children cleared).
#[allow(clippy::type_complexity)]
fn take_min_node<K, V>(mut node: Box<Node<K, V>>) -> (Option<Box<Node<K, V>>>, Box<Node<K, V>>) {
    match node.left.take() {
        None => {
            let right = node.right.take();
            node.update();
            (right, node)
        }
        Some(left) => {
            let (remaining, min) = take_min_node(left);
            node.left = remaining;
            (Some(rebalance(node)), min)
        }
    }
}

/// Removes the node with the given key, if present, returning the remaining
/// subtree and the detached `(key, bucket)`. A node with both children is
/// spliced out by promoting its in-order successor.
fn remove_key<K: Ord, V>(node: Option<Box<Node<K, V>>>, key: &K) -> Detached<K, V> {
    let Some(mut n) = node else {
        return (None, None);
    };
    match key.cmp(&n.key) {
        Ordering::Less => {
            let (left, removed) = remove_key(n.left.take(), key);
            n.left = left;
            (Some(rebalance(n)), removed)
        }
        Ordering::Greater => {
            let (right, removed) = remove_key(n.right.take(), key);
            n.right = right;
            (Some(rebalance(n)), removed)
        }
        Ordering::Equal => {
            let Node { key: k, values, left, right, .. } = *n;
            let removed = Some((k, values));
            match (left, right) {
                (None, r) => (r, removed),
                (l, None) => (l, removed),
                (l, Some(r)) => {
                    let (right_rest, mut succ) = take_min_node(r);
                    succ.left = l;
                    succ.right = right_rest;
                    (Some(rebalance(succ)), removed)
                }
            }
        }
    }
}

impl<K: Ord, V> LocativeAvlTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        LocativeAvlTree { root: None }
    }

    /// Total number of **values** (customer positions) in the tree — the
    /// "size of the k-sorted database" in Fig. 4.
    pub fn len(&self) -> usize {
        count(&self.root)
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        fn rec<K, V>(n: &Option<Box<Node<K, V>>>) -> usize {
            n.as_ref().map_or(0, |n| 1 + rec(&n.left) + rec(&n.right))
        }
        rec(&self.root)
    }

    /// Inserts a value under a key (creating or extending the bucket).
    pub fn insert(&mut self, key: K, value: V) {
        self.root = Some(insert_node(self.root.take(), key, value));
    }

    /// The minimum key and its bucket, if any — `α₁` and its virtual
    /// partition.
    pub fn min(&self) -> Option<(&K, &[V])> {
        let mut cur = self.root.as_ref()?;
        while let Some(left) = cur.left.as_ref() {
            cur = left;
        }
        Some((&cur.key, &cur.values))
    }

    /// The key at value-position `rank` (0-based): with `rank = δ - 1` this
    /// is the paper's `α_δ`. `None` when `rank ≥ len()`.
    pub fn select(&self, mut rank: usize) -> Option<&K> {
        let mut cur = self.root.as_ref()?;
        loop {
            let left_count = count(&cur.left);
            if rank < left_count {
                cur = cur.left.as_ref().expect("rank < left count");
            } else if rank < left_count + cur.values.len() {
                return Some(&cur.key);
            } else {
                rank -= left_count + cur.values.len();
                cur = cur.right.as_ref()?;
            }
        }
    }

    /// Detaches and returns the minimum node: `(α₁, its bucket)`.
    pub fn take_min(&mut self) -> Option<(K, Vec<V>)> {
        let root = self.root.take()?;
        let (rest, min) = take_min_node(root);
        self.root = rest;
        let node = *min;
        Some((node.key, node.values))
    }

    /// Detaches every node with `key < bound`, returning the `(key, bucket)`
    /// pairs in ascending key order — the re-sort set of Fig. 4 step 2.2 in
    /// the non-frequent case.
    pub fn take_less_than(&mut self, bound: &K) -> Vec<(K, Vec<V>)> {
        let mut out = Vec::new();
        while let Some((key, _)) = self.min_key_value_check(bound) {
            debug_assert!(key < bound);
            let (k, vs) = self.take_min().expect("min exists");
            out.push((k, vs));
        }
        out
    }

    /// Helper: returns `Some(())`-style marker when the minimum key is below
    /// the bound. Split out to satisfy borrow scopes.
    fn min_key_value_check<'a>(&'a self, bound: &K) -> Option<(&'a K, ())> {
        match self.min() {
            Some((k, _)) if k < bound => Some((k, ())),
            _ => None,
        }
    }

    /// Removes the bucket stored under `key`, if present.
    pub fn remove(&mut self, key: &K) -> Option<Vec<V>> {
        let (root, removed) = remove_key(self.root.take(), key);
        self.root = root;
        removed.map(|(_, vs)| vs)
    }

    /// In-order iteration over `(key, bucket)`.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        push_left_spine(&self.root, &mut stack);
        Iter { stack }
    }

    /// Consumes the tree, yielding `(key, bucket)` pairs in ascending order.
    pub fn into_sorted_vec(mut self) -> Vec<(K, Vec<V>)> {
        let mut out = Vec::new();
        while let Some(pair) = self.take_min() {
            out.push(pair);
        }
        out
    }

    /// Verifies the AVL and count invariants; for tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn rec<K: Ord, V>(n: &Option<Box<Node<K, V>>>) -> (i32, usize) {
            let Some(n) = n else { return (0, 0) };
            assert!(!n.values.is_empty(), "empty bucket left in tree");
            let (lh, lc) = rec(&n.left);
            let (rh, rc) = rec(&n.right);
            assert!((lh - rh).abs() <= 1, "AVL balance violated");
            assert_eq!(n.height, 1 + lh.max(rh), "stale height");
            assert_eq!(n.count, n.values.len() + lc + rc, "stale count");
            if let Some(l) = &n.left {
                assert!(l.key < n.key, "BST order violated on the left");
            }
            if let Some(r) = &n.right {
                assert!(r.key > n.key, "BST order violated on the right");
            }
            (n.height, n.count)
        }
        rec(&self.root);
    }
}

fn push_left_spine<'a, K, V>(
    mut node: &'a Option<Box<Node<K, V>>>,
    stack: &mut Vec<&'a Node<K, V>>,
) {
    while let Some(n) = node {
        stack.push(n);
        node = &n.left;
    }
}

/// In-order iterator over a [`LocativeAvlTree`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a [V]);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        push_left_spine(&node.right, &mut self.stack);
        Some((&node.key, node.values.as_slice()))
    }
}

/// The locative AVL tree — see the crate docs.
#[derive(Debug, Clone)]
pub struct LocativeAvlTree<K, V> {
    root: Option<Box<Node<K, V>>>,
}

impl<K: Ord, V> Default for LocativeAvlTree<K, V> {
    fn default() -> Self {
        LocativeAvlTree::new()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for LocativeAvlTree<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut tree = LocativeAvlTree::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(pairs: &[(i32, char)]) -> LocativeAvlTree<i32, char> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn insert_groups_duplicates() {
        let t = tree_of(&[(2, 'a'), (1, 'b'), (2, 'c'), (3, 'd')]);
        t.check_invariants();
        assert_eq!(t.len(), 4);
        assert_eq!(t.n_keys(), 3);
        let pairs: Vec<(i32, usize)> = t.iter().map(|(k, vs)| (*k, vs.len())).collect();
        assert_eq!(pairs, vec![(1, 1), (2, 2), (3, 1)]);
    }

    #[test]
    fn min_and_select_count_values() {
        // Table 3 analogue: keys with duplicates occupy consecutive positions.
        let t = tree_of(&[(10, 'a'), (10, 'b'), (20, 'c'), (30, 'd')]);
        assert_eq!(t.min().map(|(k, vs)| (*k, vs.len())), Some((10, 2)));
        assert_eq!(t.select(0), Some(&10));
        assert_eq!(t.select(1), Some(&10)); // δ = 2: α_δ still the duplicate
        assert_eq!(t.select(2), Some(&20));
        assert_eq!(t.select(3), Some(&30));
        assert_eq!(t.select(4), None);
    }

    #[test]
    fn take_min_detaches_whole_bucket() {
        let mut t = tree_of(&[(2, 'a'), (1, 'b'), (1, 'c'), (3, 'd')]);
        let (k, vs) = t.take_min().unwrap();
        assert_eq!(k, 1);
        assert_eq!(vs, vec!['b', 'c']);
        t.check_invariants();
        assert_eq!(t.len(), 2);
        assert_eq!(t.min().map(|(k, _)| *k), Some(2));
    }

    #[test]
    fn take_less_than_drains_prefix() {
        let mut t = tree_of(&[(5, 'a'), (1, 'b'), (3, 'c'), (3, 'd'), (7, 'e')]);
        let below = t.take_less_than(&5);
        let keys: Vec<i32> = below.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3]);
        assert_eq!(below[1].1, vec!['c', 'd']);
        t.check_invariants();
        assert_eq!(t.len(), 2);
        assert_eq!(t.min().map(|(k, _)| *k), Some(5));
        assert!(t.take_less_than(&0).is_empty());
    }

    #[test]
    fn remove_by_key() {
        let mut t = tree_of(&[(2, 'a'), (1, 'b'), (3, 'c'), (2, 'd')]);
        assert_eq!(t.remove(&2), Some(vec!['a', 'd']));
        assert_eq!(t.remove(&2), None);
        t.check_invariants();
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(&99), None);
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let mut t = LocativeAvlTree::new();
        for i in 0..1000 {
            t.insert(i, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.select(i), Some(&(i as i32)));
        }
    }

    #[test]
    fn into_sorted_vec_orders_keys() {
        let t = tree_of(&[(3, 'a'), (1, 'b'), (2, 'c'), (1, 'd')]);
        let v = t.into_sorted_vec();
        assert_eq!(v, vec![(1, vec!['b', 'd']), (2, vec!['c']), (3, vec!['a'])]);
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut t: LocativeAvlTree<i32, ()> = LocativeAvlTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.min(), None);
        assert_eq!(t.select(0), None);
        assert_eq!(t.take_min(), None);
        assert!(t.take_less_than(&10).is_empty());
    }
}
