//! The two sampling pools of the Quest model: potentially frequent itemsets
//! and potentially frequent sequential patterns.

use crate::config::QuestConfig;
use crate::dist::{exponential, gaussian, poisson_at_least_one, WeightedIndex};
use disc_core::{Item, Itemset};
use rand::Rng;

/// The pool of potentially frequent itemsets ("potentially large itemsets"
/// in the original description).
#[derive(Debug, Clone)]
pub struct ItemsetPool {
    itemsets: Vec<Itemset>,
    weights: WeightedIndex,
}

impl ItemsetPool {
    /// Builds the pool: `nlits` itemsets with Poisson(`litlen`) sizes; a
    /// fraction `corr` of each entry's items is drawn from the previous
    /// entry, the rest uniformly; weights are Exp(1), used normalized.
    pub fn build(cfg: &QuestConfig, rng: &mut impl Rng) -> ItemsetPool {
        let mut itemsets: Vec<Itemset> = Vec::with_capacity(cfg.nlits);
        let mut weights = Vec::with_capacity(cfg.nlits);
        let mut prev: Vec<Item> = Vec::new();
        for _ in 0..cfg.nlits {
            let size = poisson_at_least_one(rng, cfg.litlen).min(cfg.nitems as usize);
            let mut items: Vec<Item> = Vec::with_capacity(size);
            while items.len() < size {
                let item = if !prev.is_empty() && rng.gen::<f64>() < cfg.corr {
                    prev[rng.gen_range(0..prev.len())]
                } else {
                    Item(rng.gen_range(0..cfg.nitems))
                };
                if !items.contains(&item) {
                    items.push(item);
                }
            }
            prev = items.clone();
            itemsets.push(Itemset::new(items).expect("size >= 1"));
            weights.push(exponential(rng));
        }
        let pool = ItemsetPool { itemsets, weights: WeightedIndex::new(&weights) };
        debug_assert_eq!(pool.weights.len(), pool.itemsets.len(), "one weight per itemset");
        pool
    }

    /// Samples an itemset index by weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        self.weights.sample(rng)
    }

    /// The itemset at an index.
    pub fn get(&self, i: usize) -> &Itemset {
        &self.itemsets[i]
    }

    /// Number of pool entries.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// Pools are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One potentially frequent sequential pattern: a list of itemset-pool
/// indices plus its corruption level.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Indices into the [`ItemsetPool`], in temporal order.
    pub elements: Vec<usize>,
    /// Probability that each pattern item *survives* embedding (the Quest
    /// corruption machinery, mean `conf`).
    pub keep_prob: f64,
}

/// The pool of potentially frequent sequential patterns.
#[derive(Debug, Clone)]
pub struct PatternPool {
    patterns: Vec<Pattern>,
    weights: WeightedIndex,
}

impl PatternPool {
    /// Builds the pool: `npats` patterns of Poisson(`patlen`) itemsets drawn
    /// from `itemsets` by weight; Exp(1) pattern weights; per-pattern
    /// corruption levels from N(`conf`, 0.1) clamped to [0, 1].
    pub fn build(cfg: &QuestConfig, itemsets: &ItemsetPool, rng: &mut impl Rng) -> PatternPool {
        let mut patterns = Vec::with_capacity(cfg.npats);
        let mut weights = Vec::with_capacity(cfg.npats);
        for _ in 0..cfg.npats {
            let len = poisson_at_least_one(rng, cfg.patlen);
            let elements: Vec<usize> = (0..len).map(|_| itemsets.sample(rng)).collect();
            let keep_prob = gaussian(rng, cfg.conf, 0.1).clamp(0.0, 1.0);
            patterns.push(Pattern { elements, keep_prob });
            weights.push(exponential(rng));
        }
        let pool = PatternPool { patterns, weights: WeightedIndex::new(&weights) };
        debug_assert_eq!(pool.weights.len(), pool.patterns.len(), "one weight per pattern");
        pool
    }

    /// Samples a pattern by weight.
    pub fn sample(&self, rng: &mut impl Rng) -> &Pattern {
        &self.patterns[self.weights.sample(rng)]
    }

    /// Number of pool entries.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Pools are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mean pattern length (for tests).
    pub fn mean_len(&self) -> f64 {
        self.patterns.iter().map(|p| p.elements.len()).sum::<usize>() as f64
            / self.patterns.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> QuestConfig {
        QuestConfig::paper_table11().with_pools(500, 1000).with_nitems(200)
    }

    #[test]
    fn itemset_pool_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let pool = ItemsetPool::build(&cfg(), &mut rng);
        assert_eq!(pool.len(), 1000);
        let mean: f64 =
            (0..pool.len()).map(|i| pool.get(i).len()).sum::<usize>() as f64 / pool.len() as f64;
        // litlen = 1.25, floored at 1: expected mean ≈ 1.45.
        assert!((1.0..2.2).contains(&mean), "mean itemset size {mean}");
        for i in 0..pool.len() {
            assert!(pool.get(i).max_item().id() < 200);
        }
    }

    #[test]
    fn pattern_pool_shape() {
        let mut rng = StdRng::seed_from_u64(12);
        let items = ItemsetPool::build(&cfg(), &mut rng);
        let pats = PatternPool::build(&cfg(), &items, &mut rng);
        assert_eq!(pats.len(), 500);
        let mean = pats.mean_len();
        assert!((mean - 4.0).abs() < 0.5, "mean pattern length {mean}");
        for _ in 0..100 {
            let p = pats.sample(&mut rng);
            assert!(!p.elements.is_empty());
            assert!((0.0..=1.0).contains(&p.keep_prob));
        }
    }

    #[test]
    fn sampling_is_skewed_by_weight() {
        // With exponential weights some entries should be sampled far more
        // often than uniform.
        let mut rng = StdRng::seed_from_u64(13);
        let pool = ItemsetPool::build(&cfg(), &mut rng);
        let mut counts = vec![0usize; pool.len()];
        for _ in 0..50_000 {
            counts[pool.sample(&mut rng)] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let uniform = 50_000 / pool.len();
        assert!(max > uniform * 3, "max count {max} vs uniform {uniform}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pool = ItemsetPool::build(&cfg(), &mut rng);
            (0..pool.len()).map(|i| pool.get(i).clone()).collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }
}
