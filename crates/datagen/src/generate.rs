//! Customer-sequence assembly: embedding weighted, corrupted patterns into
//! Poisson-sized transaction skeletons.

use crate::config::QuestConfig;
use crate::dist::poisson_at_least_one;
use crate::pools::{ItemsetPool, PatternPool};
use disc_core::{CustomerId, Item, Itemset, Sequence, SequenceDatabase};
use rand::Rng;

/// Generates the whole database for a configuration.
pub(crate) fn generate_database(cfg: &QuestConfig, rng: &mut impl Rng) -> SequenceDatabase {
    let itemsets = ItemsetPool::build(cfg, rng);
    let patterns = PatternPool::build(cfg, &itemsets, rng);
    let mut db = SequenceDatabase::new();
    for cid in 0..cfg.ncust {
        let seq = generate_customer(cfg, &itemsets, &patterns, rng);
        db.push(CustomerId(cid as u64 + 1), seq);
    }
    db
}

/// Generates one customer sequence.
///
/// A skeleton of `Poisson(slen)` transactions with `Poisson(tlen)` capacities
/// is filled by sampling patterns by weight, applying the pattern's
/// corruption (each item survives with `keep_prob`), and placing the
/// surviving itemsets into an ascending random subset of the transactions.
/// Placement stops once total capacity is consumed; transactions left empty
/// by corruption receive one uniform noise item so the skeleton's transaction
/// count is honored.
fn generate_customer(
    cfg: &QuestConfig,
    itemsets: &ItemsetPool,
    patterns: &PatternPool,
    rng: &mut impl Rng,
) -> Sequence {
    let n_txns = poisson_at_least_one(rng, cfg.slen);
    let capacities: Vec<usize> = (0..n_txns).map(|_| poisson_at_least_one(rng, cfg.tlen)).collect();
    let capacity_total: usize = capacities.iter().sum();

    // Item buffers per transaction (deduplicated on insert).
    let mut txns: Vec<Vec<Item>> = vec![Vec::new(); n_txns];
    let mut placed = 0usize;
    // A generous attempt budget bounds pathological corruption draws.
    let mut attempts = 0usize;
    let max_attempts = 8 * n_txns + 32;

    while placed < capacity_total && attempts < max_attempts {
        attempts += 1;
        let pattern = patterns.sample(rng);

        // Corrupt: drop each item with probability 1 - keep_prob.
        let mut surviving: Vec<Vec<Item>> = Vec::with_capacity(pattern.elements.len());
        for &idx in &pattern.elements {
            let kept: Vec<Item> =
                itemsets.get(idx).iter().filter(|_| rng.gen::<f64>() < pattern.keep_prob).collect();
            if !kept.is_empty() {
                surviving.push(kept);
            }
        }
        if surviving.is_empty() {
            continue;
        }
        // A pattern longer than the customer's history is truncated, as in
        // the original generator.
        surviving.truncate(n_txns);

        // Choose an ascending random subset of transactions to host the
        // pattern's itemsets (reservoir-style selection of k out of n).
        let k = surviving.len();
        let mut hosts: Vec<usize> = Vec::with_capacity(k);
        let mut needed = k;
        for t in 0..n_txns {
            let remaining = n_txns - t;
            if needed > 0 && rng.gen_range(0..remaining) < needed {
                hosts.push(t);
                needed -= 1;
            }
        }
        debug_assert_eq!(hosts.len(), k);

        for (items, &t) in surviving.iter().zip(hosts.iter()) {
            for &item in items {
                if !txns[t].contains(&item) {
                    txns[t].push(item);
                    placed += 1;
                }
            }
        }
    }

    // Transactions that ended up empty get one uniform noise item, so the
    // Poisson transaction count survives corruption.
    let itemsets_out: Vec<Itemset> = txns
        .into_iter()
        .map(|mut items| {
            if items.is_empty() {
                items.push(Item(rng.gen_range(0..cfg.nitems)));
            }
            Itemset::new(items).expect("non-empty ensured above")
        })
        .collect();
    Sequence::new(itemsets_out)
}

#[cfg(test)]
mod tests {
    use crate::QuestConfig;

    fn small() -> QuestConfig {
        QuestConfig::paper_table11()
            .with_ncust(400)
            .with_nitems(200)
            .with_pools(200, 500)
            .with_seed(99)
    }

    #[test]
    fn shape_matches_configuration() {
        let cfg = small();
        let db = cfg.generate();
        assert_eq!(db.len(), 400);
        let stats = db.stats();
        assert!(
            (stats.avg_transactions - cfg.slen).abs() < 1.0,
            "avg transactions {}",
            stats.avg_transactions
        );
        assert!(
            stats.avg_items_per_transaction > 1.0
                && stats.avg_items_per_transaction < cfg.tlen + 1.5,
            "avg items/transaction {}",
            stats.avg_items_per_transaction
        );
        assert!(stats.distinct_items <= 200);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
        let c = small().with_seed(100).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn contains_planted_structure() {
        // Patterns are shared across customers, so *some* 2-sequence must be
        // markedly more frequent than the uniform-noise baseline.
        let db = small().generate();
        use disc_core::{BruteForce, MinSupport, SequentialMiner};
        let result = BruteForce::with_max_length(2).mine(&db, MinSupport::Fraction(0.05));
        assert!(
            result.iter().any(|(p, _)| p.length() == 2),
            "expected at least one frequent 2-sequence at 5% support"
        );
    }

    #[test]
    fn theta_knob_scales_transactions() {
        let db10 = small().with_slen(10.0).generate();
        let db30 = small().with_slen(30.0).generate();
        let t10 = db10.stats().avg_transactions;
        let t30 = db30.stats().avg_transactions;
        assert!((t10 - 10.0).abs() < 1.0, "theta 10 -> {t10}");
        assert!((t30 - 30.0).abs() < 2.0, "theta 30 -> {t30}");
    }
}
