//! # disc-datagen
//!
//! A from-scratch reimplementation of the **IBM Quest synthetic
//! customer-sequence generator** used by the DISC paper's evaluation
//! (Agrawal & Srikant, *Mining Sequential Patterns*, ICDE 1995 — the paper's
//! reference \[1\]; the original binary "version dated July 22, 1997" is not
//! available).
//!
//! The generative model follows the published description:
//!
//! 1. a pool of `nlits` *potentially frequent itemsets* — sizes
//!    Poisson-distributed around `litlen`, items partially shared with the
//!    previous pool entry (correlation `corr`), with exponentially
//!    distributed weights normalized to sum 1;
//! 2. a pool of `npats` *potentially frequent sequential patterns* — lengths
//!    Poisson-distributed around `patlen` (the paper's `seq.patlen`),
//!    elements drawn from the itemset pool by weight, again with normalized
//!    exponential weights and a per-pattern *corruption level* around `conf`;
//! 3. customer sequences: a Poisson(`slen`) number of transactions of
//!    Poisson(`tlen`) items each, filled by repeatedly sampling patterns by
//!    weight, dropping items per the corruption level, and embedding the
//!    surviving itemsets into an ordered random subset of the transactions,
//!    until the transaction capacity is used up.
//!
//! The exact RNG stream of the 1997 C program is lost; what the DISC paper's
//! conclusions depend on are the aggregate workload shapes (`ncust`, `slen`,
//! `tlen`, `nitems`, `seq.patlen`, skew), which this generator honors — and
//! which the tests verify empirically.
//!
//! ```
//! use disc_datagen::QuestConfig;
//!
//! let db = QuestConfig::paper_table11()
//!     .with_ncust(500)
//!     .with_seed(42)
//!     .generate();
//! assert_eq!(db.len(), 500);
//! let stats = db.stats();
//! assert!((stats.avg_transactions - 10.0).abs() < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dist;
mod generate;
mod pools;

pub use config::QuestConfig;
pub use pools::{ItemsetPool, PatternPool};
