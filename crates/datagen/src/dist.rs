//! Small sampling helpers: Poisson, exponential, Gaussian, and weighted
//! choice. Implemented locally (Knuth/Box–Muller/inverse-CDF) so the crate
//! depends only on `rand`'s uniform source.

use rand::Rng;

/// A Poisson sample with the given mean, via Knuth's product method.
/// Suitable for the small means the generator uses (≤ ~40).
pub fn poisson(rng: &mut impl Rng, mean: f64) -> usize {
    debug_assert!(mean > 0.0 && mean < 100.0, "Knuth's method needs a small mean");
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A Poisson sample clamped to at least 1 — transaction and pattern sizes
/// are never zero.
pub fn poisson_at_least_one(rng: &mut impl Rng, mean: f64) -> usize {
    poisson(rng, mean).max(1)
}

/// An Exp(1) sample by inversion.
pub fn exponential(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln()
}

/// A Gaussian sample via Box–Muller.
pub fn gaussian(rng: &mut impl Rng, mean: f64, stddev: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + stddev * z
}

/// Cumulative-weight table for O(log n) weighted sampling.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds from positive weights (need not be normalized).
    pub fn new(weights: &[f64]) -> WeightedIndex {
        assert!(!weights.is_empty(), "weighted choice over nothing");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        WeightedIndex { cumulative }
    }

    /// Samples an index proportionally to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite")) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        for mean in [1.25f64, 2.5, 8.0, 25.0] {
            let sum: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let empirical = sum as f64 / n as f64;
            assert!(
                (empirical - mean).abs() < mean * 0.05 + 0.05,
                "mean {mean}: empirical {empirical}"
            );
        }
    }

    #[test]
    fn poisson_at_least_one_floors() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            assert!(poisson_at_least_one(&mut rng, 0.5) >= 1);
        }
    }

    #[test]
    fn exponential_mean_is_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng)).sum();
        assert!((sum / n as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 0.75, 0.1)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.75).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "sd {}", var.sqrt());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightedIndex::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight index sampled");
        let total = 20_000f64;
        assert!((counts[0] as f64 / total - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / total - 0.3).abs() < 0.02);
        assert!((counts[3] as f64 / total - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "weighted choice over nothing")]
    fn weighted_index_rejects_empty() {
        WeightedIndex::new(&[]);
    }
}
