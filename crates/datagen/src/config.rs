//! Generator configuration, mirroring the Quest command-line options.

use crate::generate::generate_database;
use disc_core::SequenceDatabase;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the Quest-style generator.
///
/// Field names follow the command options listed in Table 11 of the DISC
/// paper; defaults follow the generator's documented defaults with the
/// paper's self-tuned overrides available via [`QuestConfig::paper_table11`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuestConfig {
    /// `ncust` — number of customers (the paper sweeps 50K–500K).
    pub ncust: usize,
    /// `slen` — average number of transactions per customer (|C|, the θ of
    /// Section 4.3).
    pub slen: f64,
    /// `tlen` — average number of items per transaction (|T|).
    pub tlen: f64,
    /// `nitems` — number of different items (N).
    pub nitems: u32,
    /// `seq.npats` — number of potentially frequent sequential patterns
    /// (NS; generator default 5000).
    pub npats: usize,
    /// `seq.patlen` — average length (in itemsets) of the maximal patterns
    /// (|S|).
    pub patlen: f64,
    /// `lit.npats` — number of potentially frequent itemsets (NI; generator
    /// default 25000).
    pub nlits: usize,
    /// `lit.patlen` — average size of the potentially frequent itemsets
    /// (|I|; generator default 1.25).
    pub litlen: f64,
    /// `lit.corr` — correlation between consecutive pool entries (default
    /// 0.25).
    pub corr: f64,
    /// `lit.conf` — average corruption/confidence level (default 0.75): the
    /// mean probability that a pattern item survives embedding.
    pub conf: f64,
    /// RNG seed; a given `(config, seed)` pair is fully deterministic.
    pub seed: u64,
}

impl Default for QuestConfig {
    /// Generator defaults (small `ncust` so accidental use stays cheap;
    /// pools sized down proportionally to `nitems` as the original does for
    /// small alphabets).
    fn default() -> Self {
        QuestConfig {
            ncust: 1000,
            slen: 10.0,
            tlen: 2.5,
            nitems: 10_000,
            npats: 5000,
            patlen: 4.0,
            nlits: 25_000,
            litlen: 1.25,
            corr: 0.25,
            conf: 0.75,
            seed: 0,
        }
    }
}

impl QuestConfig {
    /// The paper's Table 11 setting: `slen = 10`, `tlen = 2.5`,
    /// `nitems = 1000`, `seq.patlen = 4`, other options at generator
    /// defaults. `ncust` defaults to 10 000 (the Section 4.2 database);
    /// the Figure 8 sweep overrides it.
    pub fn paper_table11() -> QuestConfig {
        QuestConfig {
            ncust: 10_000,
            slen: 10.0,
            tlen: 2.5,
            nitems: 1000,
            npats: 5000,
            patlen: 4.0,
            nlits: 25_000,
            litlen: 1.25,
            corr: 0.25,
            conf: 0.75,
            seed: 1,
        }
    }

    /// The Figure 9 / Tables 12–13 setting from Lesh–Zaki–Ogihara \[8\]:
    /// `slen = tlen = seq.patlen = 8`, 10K customers.
    pub fn paper_fig9() -> QuestConfig {
        QuestConfig {
            ncust: 10_000,
            slen: 8.0,
            tlen: 8.0,
            patlen: 8.0,
            ..QuestConfig::paper_table11()
        }
    }

    /// The Section 4.3 setting: 50K customers, 1000 items, θ = `slen`
    /// varying from 10 to 40.
    pub fn paper_fig10(theta: f64) -> QuestConfig {
        QuestConfig { ncust: 50_000, slen: theta, ..QuestConfig::paper_table11() }
    }

    /// Sets the number of customers.
    pub fn with_ncust(mut self, ncust: usize) -> Self {
        self.ncust = ncust;
        self
    }

    /// Sets the average transactions per customer (θ).
    pub fn with_slen(mut self, slen: f64) -> Self {
        self.slen = slen;
        self
    }

    /// Sets the average items per transaction.
    pub fn with_tlen(mut self, tlen: f64) -> Self {
        self.tlen = tlen;
        self
    }

    /// Sets the number of distinct items.
    pub fn with_nitems(mut self, nitems: u32) -> Self {
        self.nitems = nitems;
        self
    }

    /// Sets the average pattern length.
    pub fn with_patlen(mut self, patlen: f64) -> Self {
        self.patlen = patlen;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the pool sizes down for small experiments (e.g. property
    /// tests): keeps proportions but caps `npats`/`nlits`.
    pub fn with_pools(mut self, npats: usize, nlits: usize) -> Self {
        self.npats = npats;
        self.nlits = nlits;
        self
    }

    /// Runs the generator, deterministically for the configured seed.
    pub fn generate(&self) -> SequenceDatabase {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        generate_database(self, &mut rng)
    }

    fn validate(&self) {
        assert!(self.nitems >= 1, "need at least one item");
        assert!(self.slen > 0.0 && self.tlen > 0.0, "slen/tlen must be positive");
        assert!(self.patlen > 0.0 && self.litlen > 0.0, "pattern sizes must be positive");
        assert!((0.0..=1.0).contains(&self.corr), "corr must be a probability");
        assert!((0.0..=1.0).contains(&self.conf), "conf must be a probability");
        assert!(self.npats >= 1 && self.nlits >= 1, "pools must be non-empty");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table_11() {
        let c = QuestConfig::paper_table11();
        assert_eq!(c.slen, 10.0);
        assert_eq!(c.tlen, 2.5);
        assert_eq!(c.nitems, 1000);
        assert_eq!(c.patlen, 4.0);

        let f9 = QuestConfig::paper_fig9();
        assert_eq!((f9.slen, f9.tlen, f9.patlen), (8.0, 8.0, 8.0));
        assert_eq!(f9.ncust, 10_000);

        let f10 = QuestConfig::paper_fig10(25.0);
        assert_eq!(f10.ncust, 50_000);
        assert_eq!(f10.slen, 25.0);
    }

    #[test]
    fn builders_compose() {
        let c = QuestConfig::paper_table11()
            .with_ncust(100)
            .with_seed(7)
            .with_nitems(50)
            .with_pools(20, 40);
        assert_eq!(c.ncust, 100);
        assert_eq!(c.seed, 7);
        assert_eq!(c.nitems, 50);
        assert_eq!((c.npats, c.nlits), (20, 40));
    }

    #[test]
    #[should_panic(expected = "corr must be a probability")]
    fn validation_rejects_bad_corr() {
        let mut c = QuestConfig::paper_table11().with_ncust(1);
        c.corr = 2.0;
        c.generate();
    }
}
