//! Read-only auditing of a store directory: what recovery *would* do.
//!
//! [`fsck`] never mutates anything — it classifies the snapshot and every
//! segment, so an operator (or CI) can distinguish a store that is clean,
//! one that recovery will repair (a torn tail from a crash, stale segments
//! from an interrupted compaction), and one that is genuinely corrupt
//! (mid-file damage recovery refuses to guess past).

use super::snapshot::{decode_store_snapshot, SNAPSHOT_FILE};
use super::wal::{decode_segment_header, scan_frames, ScanOutcome, SEGMENT_HEADER_LEN};
use super::{list_segments, StoreError};
use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The snapshot's state, as fsck found it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// No snapshot file — every record lives in WAL segments.
    Absent,
    /// The snapshot decoded and self-verified.
    Valid {
        /// Rows in the folded database.
        rows: usize,
        /// FNV-1a fingerprint of the folded database.
        fingerprint: u64,
        /// The lowest segment id the snapshot does *not* supersede.
        first_live_segment: u64,
    },
    /// The snapshot failed its strict verification; recovery will refuse
    /// to open this store.
    Corrupt {
        /// What was wrong.
        what: &'static str,
    },
}

/// One segment's state, as fsck found it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentStatus {
    /// Superseded by the snapshot; recovery deletes it.
    Stale,
    /// Every frame valid to EOF.
    Clean {
        /// Decoded frames.
        frames: u64,
    },
    /// A valid prefix then a torn tail. Recovery repairs this by
    /// truncation — but only on the final segment.
    TornTail {
        /// Frames in the valid prefix.
        frames: u64,
        /// Torn bytes past the last valid frame.
        lost_bytes: u64,
    },
    /// Damage strictly inside the file; recovery refuses to open.
    Corrupt {
        /// Byte offset of the damage within the file.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// The fixed header is torn or damaged. Recovery drops the file — but
    /// only when it is the final segment.
    BadHeader,
}

/// One audited segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCheck {
    /// The id from the file name.
    pub id: u64,
    /// The file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// What fsck found.
    pub status: SegmentStatus,
}

/// The full audit of a store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The audited directory.
    pub dir: PathBuf,
    /// The snapshot's state.
    pub snapshot: SnapshotStatus,
    /// Every segment file, in id order.
    pub segments: Vec<SegmentCheck>,
    /// Whether a stray snapshot temp file (interrupted compaction) exists.
    pub stray_tmp: bool,
    /// Records recovery would restore: snapshot rows plus valid frames in
    /// live segments.
    pub acked_records: u64,
}

impl FsckReport {
    /// Nothing to repair and nothing damaged: a clean shutdown's store.
    pub fn is_clean(&self) -> bool {
        self.is_recoverable()
            && !self.stray_tmp
            && self.segments.iter().all(|s| matches!(s.status, SegmentStatus::Clean { .. }))
    }

    /// Whether [`super::SequenceStore::open`] would succeed — possibly
    /// repairing a torn tail, dropping a torn final segment, and deleting
    /// stale segments — without losing an acknowledged record.
    pub fn is_recoverable(&self) -> bool {
        if matches!(self.snapshot, SnapshotStatus::Corrupt { .. }) {
            return false;
        }
        let live: Vec<&SegmentCheck> =
            self.segments.iter().filter(|s| !matches!(s.status, SegmentStatus::Stale)).collect();
        live.iter().enumerate().all(|(i, s)| {
            let last = i + 1 == live.len();
            match s.status {
                SegmentStatus::Clean { .. } | SegmentStatus::Stale => true,
                SegmentStatus::TornTail { .. } | SegmentStatus::BadHeader => last,
                SegmentStatus::Corrupt { .. } => false,
            }
        })
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "store {}", self.dir.display())?;
        match &self.snapshot {
            SnapshotStatus::Absent => writeln!(f, "  snapshot: absent")?,
            SnapshotStatus::Valid { rows, fingerprint, first_live_segment } => writeln!(
                f,
                "  snapshot: {rows} rows, fingerprint {fingerprint:#018x}, \
                 supersedes segments below {first_live_segment}"
            )?,
            SnapshotStatus::Corrupt { what } => writeln!(f, "  snapshot: CORRUPT — {what}")?,
        }
        if self.stray_tmp {
            writeln!(f, "  stray snapshot temp file (interrupted compaction; removable)")?;
        }
        for seg in &self.segments {
            write!(f, "  segment {:08} ({} bytes): ", seg.id, seg.bytes)?;
            match &seg.status {
                SegmentStatus::Stale => writeln!(f, "stale (superseded by snapshot; removable)")?,
                SegmentStatus::Clean { frames } => writeln!(f, "clean, {frames} frames")?,
                SegmentStatus::TornTail { frames, lost_bytes } => writeln!(
                    f,
                    "torn tail — {frames} valid frames, {lost_bytes} torn bytes (repairable)"
                )?,
                SegmentStatus::Corrupt { offset, what } => {
                    writeln!(f, "CORRUPT at byte {offset} — {what}")?
                }
                SegmentStatus::BadHeader => writeln!(f, "torn or damaged header")?,
            }
        }
        let verdict = if self.is_clean() {
            "clean"
        } else if self.is_recoverable() {
            "recoverable (open() will repair)"
        } else {
            "CORRUPT (open() will refuse)"
        };
        write!(f, "  {} acknowledged records; verdict: {verdict}", self.acked_records)
    }
}

/// Audits a store directory without mutating it. Only real IO failures
/// return `Err`; damage is reported inside the [`FsckReport`].
pub fn fsck(dir: &Path) -> Result<FsckReport, StoreError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut cids: HashSet<u64> = HashSet::new();
    let mut acked = 0u64;
    let mut first_live = 1u64;
    let snapshot = if snap_path.exists() {
        let bytes = fs::read(&snap_path).map_err(|e| StoreError::io(&snap_path, e))?;
        match decode_store_snapshot(&snap_path, &bytes) {
            Ok(snap) => {
                first_live = snap.first_live_segment;
                acked += snap.db.len() as u64;
                cids.extend(snap.db.rows().iter().map(|r| r.cid.0));
                SnapshotStatus::Valid {
                    rows: snap.db.len(),
                    fingerprint: snap.fingerprint,
                    first_live_segment: snap.first_live_segment,
                }
            }
            Err(StoreError::CorruptSnapshot { what, .. }) => SnapshotStatus::Corrupt { what },
            Err(e) => return Err(e),
        }
    } else {
        SnapshotStatus::Absent
    };
    let stray_tmp = crate::checkpoint::tmp_path(&snap_path).exists();

    let mut segments = Vec::new();
    for (id, path) in list_segments(dir)? {
        let bytes = fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
        let total = bytes.len() as u64;
        let status = if id < first_live {
            SegmentStatus::Stale
        } else {
            match decode_segment_header(&bytes) {
                Err(_) => SegmentStatus::BadHeader,
                Ok(hid) if hid != id => SegmentStatus::Corrupt {
                    offset: 0,
                    what: "segment id disagrees with file name",
                },
                Ok(_) => match scan_frames(&bytes[SEGMENT_HEADER_LEN..]) {
                    ScanOutcome::Clean { records } => {
                        let mut status = SegmentStatus::Clean { frames: records.len() as u64 };
                        for r in &records {
                            if !cids.insert(r.cid.0) {
                                status = SegmentStatus::Corrupt {
                                    offset: SEGMENT_HEADER_LEN as u64,
                                    what: "duplicate customer id",
                                };
                            }
                        }
                        if matches!(status, SegmentStatus::Clean { .. }) {
                            acked += records.len() as u64;
                        }
                        status
                    }
                    ScanOutcome::TornTail { records, valid_bytes } => {
                        acked += records.len() as u64;
                        for r in &records {
                            cids.insert(r.cid.0);
                        }
                        SegmentStatus::TornTail {
                            frames: records.len() as u64,
                            lost_bytes: total - SEGMENT_HEADER_LEN as u64 - valid_bytes,
                        }
                    }
                    ScanOutcome::Corrupt { offset, what, .. } => {
                        SegmentStatus::Corrupt { offset: SEGMENT_HEADER_LEN as u64 + offset, what }
                    }
                },
            }
        };
        segments.push(SegmentCheck { id, path, bytes: total, status });
    }
    Ok(FsckReport { dir: dir.to_path_buf(), snapshot, segments, stray_tmp, acked_records: acked })
}
