//! The immutable compacted snapshot: `store.dscsn`.
//!
//! A snapshot folds the base snapshot plus every sealed WAL segment into
//! one self-verifying file, published atomically (temp → fsync → rename).
//! Format, following the DSCCK1 section discipline:
//!
//! ```text
//! magic "DSCSN1\n"
//! varint  format version (1)
//! sections, each: u8 tag | varint payload length | payload | u32le CRC-32
//!   HEADER (1):   u64le FNV-1a database fingerprint
//!                 varint row count
//!                 varint first live segment id (the lowest id NOT folded)
//!   DATABASE (2): the folded database, in the DSCDB1 encoding
//!   END (0xFF):   empty
//! ```
//!
//! Decoding is strict and never returns partial state: bad magic, an
//! unsupported version, a failed CRC, trailing bytes, or a header that
//! disagrees with the decoded database (fingerprint or row count) all
//! reject the whole file. The fingerprint is the same FNV-1a over the
//! canonical DSCDB1 bytes that checkpoints use, so a store snapshot can
//! serve as a result-cache key later.

use super::StoreError;
use crate::checkpoint::{crc32, database_fingerprint};
use crate::codec;
use crate::database::SequenceDatabase;
use std::path::Path;

/// Magic bytes opening a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8] = b"DSCSN1\n";
/// Snapshot format version written by this build.
pub const SNAPSHOT_VERSION: u64 = 1;
/// File name of the snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "store.dscsn";

const SEC_HEADER: u8 = 1;
const SEC_DATABASE: u8 = 2;
const SEC_END: u8 = 0xFF;

/// A decoded, verified snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// The folded database.
    pub db: SequenceDatabase,
    /// FNV-1a fingerprint of `db` (recomputed and verified on load).
    pub fingerprint: u64,
    /// The lowest WAL segment id *not* folded into this snapshot: recovery
    /// replays segments `>= first_live_segment` and deletes the rest.
    pub first_live_segment: u64,
}

fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    codec::put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Encodes a snapshot folding `db`, with segments below `first_live_segment`
/// superseded.
pub fn encode_store_snapshot(db: &SequenceDatabase, first_live_segment: u64) -> Vec<u8> {
    let db_bytes = codec::encode_database(db);
    let mut header = Vec::with_capacity(8 + 10 + 10);
    header.extend_from_slice(&database_fingerprint(db).to_le_bytes());
    codec::put_varint(&mut header, db.len() as u64);
    codec::put_varint(&mut header, first_live_segment);
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + db_bytes.len() + 64);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    codec::put_varint(&mut out, SNAPSHOT_VERSION);
    put_section(&mut out, SEC_HEADER, &header);
    put_section(&mut out, SEC_DATABASE, &db_bytes);
    put_section(&mut out, SEC_END, &[]);
    out
}

fn corrupt(path: &Path, what: &'static str) -> StoreError {
    StoreError::CorruptSnapshot { path: path.to_path_buf(), what }
}

fn get_section<'a>(
    path: &Path,
    input: &'a [u8],
    pos: &mut usize,
) -> Result<(u8, &'a [u8]), StoreError> {
    let &tag = input.get(*pos).ok_or_else(|| corrupt(path, "ended between sections"))?;
    *pos += 1;
    let len =
        codec::get_varint(input, pos).map_err(|_| corrupt(path, "bad section length"))? as usize;
    let end = pos
        .checked_add(len)
        .filter(|e| e.checked_add(4).is_some_and(|c| c <= input.len()))
        .ok_or_else(|| corrupt(path, "section extends past EOF"))?;
    let payload = &input[*pos..end];
    let crc_stored = u32::from_le_bytes(input[end..end + 4].try_into().expect("4 CRC bytes"));
    if crc32(payload) != crc_stored {
        return Err(corrupt(path, "section CRC mismatch"));
    }
    *pos = end + 4;
    Ok((tag, payload))
}

/// Decodes and fully verifies a snapshot file's bytes. `path` is only used
/// in error values.
pub fn decode_store_snapshot(path: &Path, input: &[u8]) -> Result<StoreSnapshot, StoreError> {
    if input.len() < SNAPSHOT_MAGIC.len() || &input[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, "not a DSCSN1 snapshot file"));
    }
    let mut pos = SNAPSHOT_MAGIC.len();
    let version = codec::get_varint(input, &mut pos).map_err(|_| corrupt(path, "bad version"))?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(path, "unsupported snapshot format version"));
    }
    let mut header: Option<&[u8]> = None;
    let mut database: Option<&[u8]> = None;
    loop {
        let (tag, payload) = get_section(path, input, &mut pos)?;
        let slot = match tag {
            SEC_HEADER => &mut header,
            SEC_DATABASE => &mut database,
            SEC_END => {
                if !payload.is_empty() {
                    return Err(corrupt(path, "end marker carries payload"));
                }
                break;
            }
            _ => return Err(corrupt(path, "unknown section tag")),
        };
        if slot.replace(payload).is_some() {
            return Err(corrupt(path, "duplicate section"));
        }
    }
    if pos != input.len() {
        return Err(corrupt(path, "trailing bytes after end marker"));
    }
    let header = header.ok_or_else(|| corrupt(path, "missing header section"))?;
    let database = database.ok_or_else(|| corrupt(path, "missing database section"))?;

    if header.len() < 8 {
        return Err(corrupt(path, "header section too short"));
    }
    let fingerprint = u64::from_le_bytes(header[..8].try_into().expect("8 fingerprint bytes"));
    let mut p = 8usize;
    let rows = codec::get_varint(header, &mut p).map_err(|_| corrupt(path, "bad row count"))?;
    let first_live_segment =
        codec::get_varint(header, &mut p).map_err(|_| corrupt(path, "bad first live segment"))?;
    if p != header.len() {
        return Err(corrupt(path, "trailing bytes in header section"));
    }

    let db = codec::decode_database(database)
        .map_err(|_| corrupt(path, "database section does not decode"))?;
    if db.len() as u64 != rows {
        return Err(corrupt(path, "row count disagrees with database section"));
    }
    if database_fingerprint(&db) != fingerprint {
        return Err(corrupt(path, "fingerprint disagrees with database section"));
    }
    Ok(StoreSnapshot { db, fingerprint, first_live_segment })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn snapshot_roundtrip() {
        let db = table1();
        let bytes = encode_store_snapshot(&db, 5);
        let snap = decode_store_snapshot(Path::new("t"), &bytes).unwrap();
        assert_eq!(snap.db, db);
        assert_eq!(snap.first_live_segment, 5);
        assert_eq!(snap.fingerprint, database_fingerprint(&db));
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let db = SequenceDatabase::new();
        let bytes = encode_store_snapshot(&db, 1);
        let snap = decode_store_snapshot(Path::new("t"), &bytes).unwrap();
        assert!(snap.db.is_empty());
        assert_eq!(snap.first_live_segment, 1);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_store_snapshot(&table1(), 3);
        for cut in 0..bytes.len() {
            assert!(
                decode_store_snapshot(Path::new("t"), &bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = encode_store_snapshot(&table1(), 3);
        let original = decode_store_snapshot(Path::new("t"), &bytes).unwrap();
        for i in 0..bytes.len() {
            let mut dam = bytes.clone();
            dam[i] ^= 0x01;
            match decode_store_snapshot(Path::new("t"), &dam) {
                Err(_) => {}
                // A flipped bit inside a varint length can, in principle,
                // re-frame to something valid — but it must then still
                // describe the identical snapshot to pass the CRCs.
                Ok(snap) => assert_eq!(snap, original, "byte {i}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_store_snapshot(&table1(), 3);
        bytes.push(0);
        assert!(decode_store_snapshot(Path::new("t"), &bytes).is_err());
    }
}
