//! The durable ingest store: a crash-safe write-ahead log for sequence
//! arrivals, folded into immutable snapshots by compaction.
//!
//! Every run of the workspace previously started from an in-memory database
//! parsed from a flat file; this module gives arrivals a durable write path
//! so mining can sit behind ingestion. The shape is WAL-then-compact:
//!
//! * [`SequenceStore::append`] frames each record (length prefix + CRC-32,
//!   the [`wal`] format) into numbered segment files, fsyncing on the
//!   configured [`SyncPolicy`] and rotating segments at a size threshold;
//! * [`SequenceStore::compact`] folds the base snapshot plus every sealed
//!   segment into one immutable, self-verifying [`snapshot`] file,
//!   published atomically (temp → fsync → read-back verify → rename) and
//!   only then deletes the superseded segments;
//! * [`SequenceStore::open`] recovers: it loads the snapshot, deletes
//!   segments the snapshot supersedes, replays the live segments, and
//!   truncates a torn tail at the last valid frame — so **every append
//!   acknowledged under [`SyncPolicy::Always`] survives a crash**, and no
//!   unacknowledged append is ever resurrected;
//! * [`SequenceStore::view`] publishes a consistent point-in-time
//!   [`SequenceDatabase`] to miners (copy-on-write: appends never mutate a
//!   view already handed out);
//! * [`fsck::fsck`] audits a store directory read-only and reports exactly
//!   what recovery would do.
//!
//! All file IO retries transient (`EINTR`-class) failures with the bounded
//! jittered backoff of [`crate::guard::retry_transient`]; permanent
//! failures surface immediately and mark the writer [`StoreError::Poisoned`]
//! (the on-disk tail is then in an unknown state — reopening recovers).
//! Under `cfg(test)` / the `fault-injection` feature, a
//! `FaultPlan` (`crate::guard`) can inject a deterministic fault
//! (torn write, crash around the snapshot rename, flipped byte, `ENOSPC`,
//! `EINTR`, short read) at any numbered write or read, which is how the
//! crash-recovery matrix drives every failure path.

pub mod fsck;
pub mod snapshot;
pub mod wal;

use crate::database::{CustomerId, SequenceDatabase};
use crate::guard::{retry_transient, RetryPolicy};
use crate::sequence::Sequence;
use snapshot::{decode_store_snapshot, encode_store_snapshot, SNAPSHOT_FILE};
use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wal::{
    decode_segment_header, encode_frame, encode_segment_header, parse_segment_file_name,
    scan_frames, segment_file_name, ScanOutcome, WalRecord, SEGMENT_HEADER_LEN,
};

// -------------------------------------------------------------------------
// Errors.

/// Why the store failed to append, recover, or compact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An IO operation failed (after transient retries, if applicable).
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        message: String,
        /// Whether the failure is transient (`EINTR`/`EAGAIN`-class) and
        /// worth a coarser retry by a supervisor.
        transient: bool,
    },
    /// Damage strictly inside a WAL segment — not the torn tail an honest
    /// crash produces, so recovery refuses to guess past it.
    Corrupt {
        /// The damaged segment file.
        path: PathBuf,
        /// Byte offset of the damage within the file.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// The snapshot file failed its strict self-verification.
    CorruptSnapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong.
        what: &'static str,
    },
    /// A segment's embedded id disagrees with its file name — the file was
    /// renamed or swapped, so its frames cannot be trusted in replay order.
    SegmentIdMismatch {
        /// The segment file.
        path: PathBuf,
        /// The id its file name claims.
        expected: u64,
        /// The id embedded in its header.
        found: u64,
    },
    /// The customer id was already ingested; accepting it again would
    /// double-count the customer's support.
    DuplicateCustomer {
        /// The repeated customer id.
        cid: u64,
    },
    /// The freshly written snapshot failed its pre-publication read-back
    /// verification; the old snapshot and all segments were left untouched.
    SnapshotVerify {
        /// The temp file that failed verification (already removed).
        path: PathBuf,
    },
    /// A previous write failed, leaving the segment tail in an unknown
    /// state; further appends are refused. Reopen the store to recover.
    Poisoned,
    /// A deterministic injected crash. Only ever produced under
    /// `cfg(test)` / the `fault-injection` feature; the variant itself is
    /// unconditional so recovery code matches on it uniformly.
    Injected {
        /// Which staged crash fired.
        what: &'static str,
    },
}

impl StoreError {
    /// Whether the failure is transient and worth retrying, per
    /// [`crate::guard::is_transient_io_kind`].
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { transient: true, .. })
    }

    fn io(path: &Path, e: std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
            transient: crate::guard::is_transient_io_kind(e.kind()),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message, transient } => {
                let class = if *transient { "transient" } else { "permanent" };
                write!(f, "store io error ({class}) at {}: {message}", path.display())
            }
            StoreError::Corrupt { path, offset, what } => {
                write!(f, "corrupt WAL segment {} at byte {offset}: {what}", path.display())
            }
            StoreError::CorruptSnapshot { path, what } => {
                write!(f, "corrupt store snapshot {}: {what}", path.display())
            }
            StoreError::SegmentIdMismatch { path, expected, found } => write!(
                f,
                "segment {} embeds id {found} but its name claims {expected}",
                path.display()
            ),
            StoreError::DuplicateCustomer { cid } => {
                write!(f, "customer id {cid} was already ingested")
            }
            StoreError::SnapshotVerify { path } => write!(
                f,
                "snapshot read-back verification failed at {}; nothing was published",
                path.display()
            ),
            StoreError::Poisoned => write!(
                f,
                "a previous write failed and the segment tail is in an unknown state; \
                 reopen the store to recover"
            ),
            StoreError::Injected { what } => write!(f, "injected crash: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

// -------------------------------------------------------------------------
// Configuration.

/// When appends are fsynced — the store's acknowledgement contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append: an `Ok` from [`SequenceStore::append`]
    /// means the record is durable. The safest and slowest cadence.
    Always,
    /// fsync after every `n` appends (and on segment seal). A crash loses
    /// at most the unsynced suffix — never a synced record.
    EveryN(u64),
    /// Never fsync on append; only segment seals, [`SequenceStore::sync`],
    /// and compaction flush. Durability rides on the OS cache.
    Never,
}

/// Tuning knobs for a [`SequenceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// The fsync cadence (default: [`SyncPolicy::Always`]).
    pub sync: SyncPolicy,
    /// Rotate to a new segment once the current one exceeds this size
    /// (default 8 MiB). Rotation bounds both recovery replay-from-tail
    /// work and the granularity of compaction.
    pub segment_max_bytes: u64,
    /// Retry schedule for transient IO failures (default
    /// [`RetryPolicy::io_default`]).
    pub retry: RetryPolicy,
    /// Whether compaction also publishes the columnar `DSCFD1` mirror
    /// (`store.dscfd`, see [`crate::flatfile`]) next to the snapshot, so
    /// miners can map the acknowledged prefix zero-copy (default: true).
    /// The mirror is always exactly as fresh as the snapshot: recovery
    /// deletes one whose fingerprint disagrees.
    pub emit_flat_file: bool,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            sync: SyncPolicy::Always,
            segment_max_bytes: 8 << 20,
            retry: RetryPolicy::io_default(),
            emit_flat_file: true,
        }
    }
}

// -------------------------------------------------------------------------
// Reports.

/// What [`SequenceStore::open`] found and did while recovering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rows restored from the snapshot.
    pub snapshot_rows: usize,
    /// Records replayed out of live WAL segments.
    pub replayed_records: usize,
    /// Live segments replayed.
    pub segments_replayed: usize,
    /// Bytes of torn tail dropped (never containing an acknowledged,
    /// synced record).
    pub truncated_bytes: u64,
    /// Superseded segments deleted (a compaction had published their fold
    /// but crashed before cleaning up).
    pub stale_segments_removed: usize,
    /// Whether a stray snapshot temp file from an interrupted compaction
    /// was removed.
    pub removed_tmp: bool,
    /// Whether a stray flat-file temp from an interrupted publication was
    /// removed.
    pub removed_flat_tmp: bool,
    /// Whether a `store.dscfd` mirror was removed because its fingerprint
    /// disagreed with the snapshot (or there was no snapshot at all) — an
    /// interrupted compaction left it behind.
    pub stale_flat_file_removed: bool,
}

/// What a successful [`SequenceStore::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// WAL segments folded into the snapshot and deleted.
    pub folded_segments: usize,
    /// Rows in the published snapshot.
    pub rows: usize,
    /// Size of the published snapshot file.
    pub snapshot_bytes: u64,
    /// FNV-1a fingerprint of the folded database — stable across encode /
    /// decode, and the designated key for a future result cache.
    pub fingerprint: u64,
    /// Size of the published `DSCFD1` columnar mirror, or 0 when
    /// [`StoreConfig::emit_flat_file`] is off.
    pub flat_file_bytes: u64,
}

// -------------------------------------------------------------------------
// The store.

struct OpenSegment {
    path: PathBuf,
    file: fs::File,
    bytes: u64,
}

/// Internal classification of an injected append/compaction fault, kept
/// un-gated so the hot path compiles identically without `fault-injection`.
#[cfg_attr(not(any(test, feature = "fault-injection")), allow(dead_code))]
enum InjectedFault {
    None,
    /// One `EINTR` on the next syscall; the retry helper must clear it.
    Eintr,
    /// The bytes were already written with one payload byte flipped
    /// (bit-rot): proceed as if the write succeeded.
    CorruptByteWritten,
    /// A staged crash: fail with this error after any on-disk effects.
    Crash(StoreError),
    /// Crash between snapshot fsync and rename (compaction only).
    BeforeRename,
    /// Crash after snapshot rename, before segment cleanup (compaction
    /// only).
    AfterRename,
}

/// A durable, crash-recoverable sequence store rooted at one directory.
///
/// The directory holds numbered WAL segments (`wal-00000001.dscwl`, …) and
/// at most one snapshot (`store.dscsn`). One `SequenceStore` owns the
/// directory for writing; [`view`](SequenceStore::view) hands out immutable
/// point-in-time databases that stay valid while appends continue.
pub struct SequenceStore {
    dir: PathBuf,
    cfg: StoreConfig,
    db: Arc<SequenceDatabase>,
    cids: HashSet<u64>,
    seg: Option<OpenSegment>,
    next_seg_id: u64,
    first_live_segment: u64,
    appends_since_sync: u64,
    poisoned: bool,
    recovery: RecoveryReport,
    append_n: u64,
    snapshot_n: u64,
    read_n: u64,
    flatfile_n: u64,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<crate::guard::FaultPlan>,
}

impl SequenceStore {
    /// Opens (creating the directory if needed) and recovers a store:
    /// loads the snapshot, deletes superseded segments, replays live
    /// segments in order, and truncates a torn tail at the last valid
    /// frame. Appends after recovery go to a fresh segment — a repaired
    /// tail is never appended to.
    pub fn open(dir: impl Into<PathBuf>, cfg: StoreConfig) -> Result<SequenceStore, StoreError> {
        let mut store = SequenceStore::empty(dir.into(), cfg);
        store.recover()?;
        Ok(store)
    }

    /// [`open`](SequenceStore::open) with a [`FaultPlan`] armed *before*
    /// recovery, so read-path faults (short read, `EINTR`) can target the
    /// recovery scan itself. The plan stays armed for later writes.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn open_with_fault(
        dir: impl Into<PathBuf>,
        cfg: StoreConfig,
        plan: crate::guard::FaultPlan,
    ) -> Result<SequenceStore, StoreError> {
        let mut store = SequenceStore::empty(dir.into(), cfg);
        store.fault = Some(plan);
        store.recover()?;
        Ok(store)
    }

    /// Arms a [`FaultPlan`] against this store's numbered writes (appends
    /// count per [`crate::guard::IoWriter::WalAppend`], compactions per
    /// [`crate::guard::IoWriter::StoreSnapshot`]).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn arm_fault(&mut self, plan: crate::guard::FaultPlan) {
        self.fault = Some(plan);
    }

    fn empty(dir: PathBuf, cfg: StoreConfig) -> SequenceStore {
        SequenceStore {
            dir,
            cfg,
            db: Arc::new(SequenceDatabase::new()),
            cids: HashSet::new(),
            seg: None,
            next_seg_id: 1,
            first_live_segment: 1,
            appends_since_sync: 0,
            poisoned: false,
            recovery: RecoveryReport::default(),
            append_n: 0,
            snapshot_n: 0,
            read_n: 0,
            flatfile_n: 0,
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    // -- accessors --------------------------------------------------------

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of ingested customers.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the store holds no customers.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// A consistent point-in-time view for miners. The view is immutable:
    /// appends after this call copy-on-write and never mutate it, so a
    /// long mining run and continued ingestion can share the store.
    pub fn view(&self) -> Arc<SequenceDatabase> {
        Arc::clone(&self.db)
    }

    /// FNV-1a fingerprint of the current contents — identical to the
    /// checkpoint cache key for the same database, and the designated key
    /// for a future result cache.
    pub fn fingerprint(&self) -> u64 {
        crate::checkpoint::database_fingerprint(&self.db)
    }

    /// What recovery found and did when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    // -- recovery ---------------------------------------------------------

    fn recover(&mut self) -> Result<(), StoreError> {
        let retry = self.cfg.retry;
        retry_transient(retry, || fs::create_dir_all(&self.dir))
            .map_err(|e| StoreError::io(&self.dir, e))?;

        // A stray temp file is an interrupted compaction; its contents are
        // still fully covered by the old snapshot + segments. Remove it.
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let tmp = crate::checkpoint::tmp_path(&snap_path);
        if tmp.exists() {
            retry_transient(retry, || fs::remove_file(&tmp))
                .map_err(|e| StoreError::io(&tmp, e))?;
            self.recovery.removed_tmp = true;
        }

        let mut snapshot_fp = None;
        if snap_path.exists() {
            let bytes = self.read_file(&snap_path)?;
            let snap = decode_store_snapshot(&snap_path, &bytes)?;
            self.first_live_segment = snap.first_live_segment;
            self.recovery.snapshot_rows = snap.db.len();
            self.cids = snap.db.rows().iter().map(|r| r.cid.0).collect();
            snapshot_fp = Some(snap.fingerprint);
            self.db = Arc::new(snap.db);
        }

        // The columnar mirror is derived state: keep it only when its header
        // fingerprint matches the snapshot it claims to mirror. Anything
        // else — a stray temp, a mirror without a snapshot, a fingerprint
        // mismatch from an interrupted compaction — is deleted; the next
        // compaction re-publishes it.
        let flat = self.dir.join(crate::flatfile::FLAT_FILE_NAME);
        let flat_tmp = crate::checkpoint::tmp_path(&flat);
        if flat_tmp.exists() {
            retry_transient(retry, || fs::remove_file(&flat_tmp))
                .map_err(|e| StoreError::io(&flat_tmp, e))?;
            self.recovery.removed_flat_tmp = true;
        }
        if flat.exists() {
            let fresh = match snapshot_fp {
                Some(fp) => crate::flatfile::peek_flat_file_fingerprint(&flat) == Ok(fp),
                None => false,
            };
            if !fresh {
                retry_transient(retry, || fs::remove_file(&flat))
                    .map_err(|e| StoreError::io(&flat, e))?;
                self.recovery.stale_flat_file_removed = true;
            }
        }

        let segments = list_segments(&self.dir)?;
        let mut live: Vec<(u64, PathBuf)> = Vec::new();
        for (id, path) in segments {
            if id < self.first_live_segment {
                // Superseded by the snapshot: a compaction published its
                // fold but died before cleanup. Replaying it would
                // double-ingest, so delete it.
                retry_transient(retry, || fs::remove_file(&path))
                    .map_err(|e| StoreError::io(&path, e))?;
                self.recovery.stale_segments_removed += 1;
            } else {
                live.push((id, path));
            }
        }

        for (i, (id, path)) in live.iter().enumerate() {
            let last = i + 1 == live.len();
            let bytes = self.read_file(path)?;
            match decode_segment_header(&bytes) {
                Ok(hid) if hid == *id => {}
                Ok(hid) => {
                    return Err(StoreError::SegmentIdMismatch {
                        path: path.clone(),
                        expected: *id,
                        found: hid,
                    })
                }
                Err(_) if last => {
                    // The final segment's header never made it to disk
                    // whole — its creation was torn, so no frame in it can
                    // have been acknowledged as synced. Drop the file.
                    retry_transient(retry, || fs::remove_file(path))
                        .map_err(|e| StoreError::io(path, e))?;
                    self.recovery.truncated_bytes += bytes.len() as u64;
                    continue;
                }
                Err(_) => {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        offset: 0,
                        what: "bad segment header before the final segment",
                    })
                }
            }
            let (records, keep) = match scan_frames(&bytes[SEGMENT_HEADER_LEN..]) {
                ScanOutcome::Clean { records } => (records, None),
                ScanOutcome::TornTail { records, valid_bytes } if last => {
                    (records, Some(SEGMENT_HEADER_LEN as u64 + valid_bytes))
                }
                ScanOutcome::TornTail { valid_bytes, .. } => {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        offset: SEGMENT_HEADER_LEN as u64 + valid_bytes,
                        what: "torn tail in a non-final segment",
                    })
                }
                ScanOutcome::Corrupt { offset, what, .. } => {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        offset: SEGMENT_HEADER_LEN as u64 + offset,
                        what,
                    })
                }
            };
            if let Some(keep) = keep {
                // Repair: drop the torn tail so the segment scans clean
                // from now on. Acknowledged synced records all precede it.
                self.recovery.truncated_bytes += bytes.len() as u64 - keep;
                let file = retry_transient(retry, || fs::OpenOptions::new().write(true).open(path))
                    .map_err(|e| StoreError::io(path, e))?;
                retry_transient(retry, || file.set_len(keep))
                    .map_err(|e| StoreError::io(path, e))?;
                retry_transient(retry, || file.sync_all()).map_err(|e| StoreError::io(path, e))?;
            }
            let db = Arc::make_mut(&mut self.db);
            for record in records {
                if !self.cids.insert(record.cid.0) {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        offset: SEGMENT_HEADER_LEN as u64,
                        what: "duplicate customer id in replay",
                    });
                }
                db.push(record.cid, record.sequence);
                self.recovery.replayed_records += 1;
            }
            self.recovery.segments_replayed += 1;
        }

        self.next_seg_id =
            live.last().map(|(id, _)| id + 1).unwrap_or(self.first_live_segment).max(1);
        Ok(())
    }

    /// Reads a whole file with an `EINTR`-safe, short-read-safe loop. The
    /// n-th call is the [`crate::guard::IoWriter::StoreRead`] injection
    /// point: a short read only caps one `read(2)`'s count (the loop keeps
    /// going — which is the point), an injected `EINTR` is cleared by the
    /// retry helper.
    fn read_file(&mut self, path: &Path) -> Result<Vec<u8>, StoreError> {
        let _n = self.read_n;
        self.read_n += 1;
        let mut short_read = false;
        let mut eintr = false;
        #[cfg(any(test, feature = "fault-injection"))]
        {
            use crate::guard::{IoFault, IoWriter};
            match self.fault.as_ref().and_then(|f| f.fire_io(IoWriter::StoreRead, _n)) {
                Some(IoFault::ShortRead) => short_read = true,
                Some(IoFault::Interrupted) => eintr = true,
                Some(_) | None => {}
            }
        }
        let retry = self.cfg.retry;
        let mut file =
            retry_transient(retry, || fs::File::open(path)).map_err(|e| StoreError::io(path, e))?;
        let mut out = Vec::new();
        let mut buf = vec![0u8; 64 << 10];
        loop {
            let n = retry_transient(retry, || {
                if eintr {
                    eintr = false;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected EINTR",
                    ));
                }
                let cap = if short_read {
                    short_read = false;
                    1
                } else {
                    buf.len()
                };
                file.read(&mut buf[..cap])
            })
            .map_err(|e| StoreError::io(path, e))?;
            if n == 0 {
                return Ok(out);
            }
            out.extend_from_slice(&buf[..n]);
        }
    }

    // -- appending --------------------------------------------------------

    /// Appends one customer's sequence. On `Ok`, the record is framed in
    /// the WAL (and durable, under [`SyncPolicy::Always`]) and visible to
    /// subsequent [`view`](SequenceStore::view)s. Customer ids must be
    /// unique; a failed append poisons the writer (reopen to recover) and
    /// is **not** acknowledged.
    pub fn append(&mut self, cid: CustomerId, sequence: Sequence) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        if self.cids.contains(&cid.0) {
            return Err(StoreError::DuplicateCustomer { cid: cid.0 });
        }
        let record = WalRecord { cid, sequence };
        let frame = encode_frame(&record);
        self.ensure_segment(frame.len() as u64)?;

        let _n = self.append_n;
        self.append_n += 1;
        #[cfg_attr(not(any(test, feature = "fault-injection")), allow(unused_mut))]
        let mut injected = InjectedFault::None;
        #[cfg(any(test, feature = "fault-injection"))]
        {
            use crate::guard::{IoFault, IoWriter};
            let fired = self.fault.as_ref().and_then(|f| f.fire_io(IoWriter::WalAppend, _n));
            if let Some(fault) = fired {
                let seg_path = self.seg.as_ref().expect("segment opened").path.clone();
                injected = match fault {
                    IoFault::Interrupted => InjectedFault::Eintr,
                    IoFault::Enospc => InjectedFault::Crash(StoreError::io(
                        &seg_path,
                        fault.as_io_error().expect("ENOSPC maps to an io error"),
                    )),
                    IoFault::TornWrite => {
                        // Half the frame reaches the file, then the
                        // "process dies": recovery must drop the tail.
                        let _ = self.write_raw(&frame[..frame.len() / 2], false);
                        InjectedFault::Crash(StoreError::Injected { what: "torn frame write" })
                    }
                    IoFault::CorruptByte => {
                        // Bit-rot: the frame lands whole with one payload
                        // byte flipped and the append is acknowledged.
                        // Only the frame CRC can catch this later.
                        let mut damaged = frame.clone();
                        let flip = damaged.len() - 5; // last payload byte
                        damaged[flip] ^= 0x55;
                        self.write_raw(&damaged, false)?;
                        InjectedFault::CorruptByteWritten
                    }
                    IoFault::CrashBeforeRename
                    | IoFault::CrashAfterRename
                    | IoFault::StaleVersion
                    | IoFault::ShortRead => {
                        // Not meaningful for an append: die before writing.
                        InjectedFault::Crash(StoreError::Injected { what: "crash before append" })
                    }
                };
            }
        }

        match injected {
            InjectedFault::Crash(e) => {
                self.poisoned = true;
                return Err(e);
            }
            InjectedFault::CorruptByteWritten => {}
            InjectedFault::None | InjectedFault::Eintr => {
                let eintr = matches!(injected, InjectedFault::Eintr);
                self.write_raw(&frame, eintr)?;
            }
            InjectedFault::BeforeRename | InjectedFault::AfterRename => {
                unreachable!("rename faults only target compaction")
            }
        }
        self.maybe_sync()?;
        self.cids.insert(record.cid.0);
        Arc::make_mut(&mut self.db).push(record.cid, record.sequence);
        Ok(())
    }

    /// Forces an fsync of the current segment, making every acknowledged
    /// append durable regardless of the [`SyncPolicy`].
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(seg) = self.seg.as_mut() {
            if let Err(e) = retry_transient(self.cfg.retry, || seg.file.sync_all()) {
                self.poisoned = true;
                return Err(StoreError::io(&seg.path, e));
            }
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    fn maybe_sync(&mut self) -> Result<(), StoreError> {
        match self.cfg.sync {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if n > 0 && self.appends_since_sync >= n {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }

    /// Writes raw bytes at the current segment tail, retrying transient
    /// failures idempotently (a retry rewinds and truncates back to the
    /// pre-write offset first, so a partial first attempt never leaves
    /// duplicate bytes).
    fn write_raw(&mut self, bytes: &[u8], mut inject_eintr: bool) -> Result<(), StoreError> {
        let seg = self.seg.as_mut().expect("segment opened before write");
        let start = seg.bytes;
        let mut first = true;
        let res = retry_transient(self.cfg.retry, || {
            if !first {
                seg.file.seek(SeekFrom::Start(start))?;
                seg.file.set_len(start)?;
            }
            first = false;
            if inject_eintr {
                inject_eintr = false;
                return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "injected EINTR"));
            }
            seg.file.write_all(bytes)
        });
        match res {
            Ok(()) => {
                seg.bytes += bytes.len() as u64;
                Ok(())
            }
            Err(e) => {
                let path = seg.path.clone();
                self.poisoned = true;
                Err(StoreError::io(&path, e))
            }
        }
    }

    /// Opens the segment an `incoming`-byte frame should land in, sealing
    /// and rotating the current one if it would overflow the size budget.
    fn ensure_segment(&mut self, incoming: u64) -> Result<(), StoreError> {
        let rotate = self.seg.as_ref().is_some_and(|s| {
            s.bytes > SEGMENT_HEADER_LEN as u64
                && s.bytes + incoming > self.cfg.segment_max_bytes.max(1)
        });
        if rotate {
            self.seal_current()?;
        }
        if self.seg.is_some() {
            return Ok(());
        }
        let id = self.next_seg_id;
        let path = self.dir.join(segment_file_name(id));
        let header = encode_segment_header(id);
        let retry = self.cfg.retry;
        // Create-new: colliding with an existing segment file means the
        // directory is shared or recovery went wrong — refuse to clobber.
        let mut file = retry_transient(retry, || {
            fs::OpenOptions::new().write(true).create_new(true).open(&path)
        })
        .map_err(|e| StoreError::io(&path, e))?;
        let mut first = true;
        retry_transient(retry, || {
            if !first {
                file.seek(SeekFrom::Start(0))?;
                file.set_len(0)?;
            }
            first = false;
            file.write_all(&header)
        })
        .map_err(|e| StoreError::io(&path, e))?;
        if matches!(self.cfg.sync, SyncPolicy::Always) {
            retry_transient(retry, || file.sync_all()).map_err(|e| StoreError::io(&path, e))?;
            crate::checkpoint::sync_parent_dir(&path);
        }
        self.next_seg_id = id + 1;
        self.seg = Some(OpenSegment { path, file, bytes: header.len() as u64 });
        Ok(())
    }

    /// Seals the current segment: fsync (whatever the policy — a sealed
    /// segment is final) and close.
    fn seal_current(&mut self) -> Result<(), StoreError> {
        if let Some(seg) = self.seg.take() {
            retry_transient(self.cfg.retry, || seg.file.sync_all()).map_err(|e| {
                self.poisoned = true;
                StoreError::io(&seg.path, e)
            })?;
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Seals the current segment and consumes the store. Call this for a
    /// clean shutdown under [`SyncPolicy::EveryN`] / [`SyncPolicy::Never`];
    /// dropping without it is exactly a crash (recovery handles it).
    pub fn close(mut self) -> Result<(), StoreError> {
        self.seal_current()
    }

    // -- compaction -------------------------------------------------------

    /// Folds the snapshot plus every segment into a new immutable snapshot,
    /// published atomically, then deletes the superseded segments.
    ///
    /// Publication order is crash-safe at every step: temp write → fsync →
    /// **read-back verification** (a snapshot that does not decode back to
    /// the exact live database is never published, and the segments it
    /// would have replaced are never deleted) → atomic rename → directory
    /// fsync → segment deletion. A crash anywhere leaves a store that
    /// recovers to the identical database.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        self.seal_current()?;
        let first_live = self.next_seg_id;
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let tmp = crate::checkpoint::tmp_path(&snap_path);
        let retry = self.cfg.retry;

        let _n = self.snapshot_n;
        self.snapshot_n += 1;
        #[cfg_attr(not(any(test, feature = "fault-injection")), allow(unused_mut))]
        let mut bytes = encode_store_snapshot(&self.db, first_live);
        #[cfg_attr(not(any(test, feature = "fault-injection")), allow(unused_mut))]
        let mut injected = InjectedFault::None;
        #[cfg(any(test, feature = "fault-injection"))]
        {
            use crate::guard::{IoFault, IoWriter};
            let fired = self.fault.as_ref().and_then(|f| f.fire_io(IoWriter::StoreSnapshot, _n));
            if let Some(fault) = fired {
                injected = match fault {
                    IoFault::Interrupted => InjectedFault::Eintr,
                    IoFault::Enospc => InjectedFault::Crash(StoreError::io(
                        &tmp,
                        fault.as_io_error().expect("ENOSPC maps to an io error"),
                    )),
                    IoFault::TornWrite => {
                        let half = bytes.len() / 2;
                        let _ = fs::write(&tmp, &bytes[..half]);
                        InjectedFault::Crash(StoreError::Injected { what: "torn snapshot write" })
                    }
                    IoFault::CorruptByte | IoFault::StaleVersion => {
                        // Flip a byte in the encoding: the pre-publication
                        // read-back must refuse to publish it.
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0x55;
                        InjectedFault::CorruptByteWritten
                    }
                    IoFault::CrashBeforeRename => InjectedFault::BeforeRename,
                    IoFault::CrashAfterRename => InjectedFault::AfterRename,
                    IoFault::ShortRead => {
                        InjectedFault::Crash(StoreError::Injected { what: "crash before snapshot" })
                    }
                };
            }
        }
        if let InjectedFault::Crash(e) = injected {
            return Err(e);
        }

        // Temp write: create + write + fsync retried as one idempotent unit.
        let mut eintr = matches!(injected, InjectedFault::Eintr);
        retry_transient(retry, || {
            if eintr {
                eintr = false;
                return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "injected EINTR"));
            }
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()
        })
        .map_err(|e| StoreError::io(&tmp, e))?;

        // Read-back verification before publication: the file must decode
        // to exactly the live database. This is what keeps a corrupting
        // writer (or injected bit-rot) from ever destroying the previous
        // snapshot — the segments stay until a verified fold replaces them.
        let back = self.read_file(&tmp)?;
        let verified = decode_store_snapshot(&tmp, &back)
            .ok()
            .filter(|s| {
                s.first_live_segment == first_live
                    && s.db.len() == self.db.len()
                    && s.fingerprint == crate::checkpoint::database_fingerprint(&self.db)
            })
            .is_some();
        if !verified {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::SnapshotVerify { path: tmp });
        }

        if matches!(injected, InjectedFault::BeforeRename) {
            return Err(StoreError::Injected { what: "crash before snapshot rename" });
        }

        retry_transient(retry, || fs::rename(&tmp, &snap_path))
            .map_err(|e| StoreError::io(&snap_path, e))?;
        crate::checkpoint::sync_parent_dir(&snap_path);
        self.first_live_segment = first_live;

        if matches!(injected, InjectedFault::AfterRename) {
            // The snapshot IS published; only cleanup was skipped. Recovery
            // (or the next compaction) deletes the stale segments.
            return Err(StoreError::Injected { what: "crash after snapshot rename" });
        }

        let mut folded = 0usize;
        for (id, path) in list_segments(&self.dir)? {
            if id < first_live {
                retry_transient(retry, || fs::remove_file(&path))
                    .map_err(|e| StoreError::io(&path, e))?;
                folded += 1;
            }
        }

        // Publish the columnar mirror, stamped with the snapshot's
        // fingerprint, with the same temp-write → verify → rename
        // discipline. The snapshot is already durable at this point: an
        // error here leaves (at worst) a stale or absent mirror, which
        // recovery and `open_flat_file` callers detect by fingerprint.
        let mut flat_file_bytes = 0u64;
        if self.cfg.emit_flat_file {
            let flat = self.flat_file_path();
            let encoded = crate::flatfile::encode_database_flat_file(&self.db);
            let _fd_n = self.flatfile_n;
            self.flatfile_n += 1;
            #[cfg(any(test, feature = "fault-injection"))]
            let written = crate::flatfile::write_flat_file_faulted(
                &flat,
                &encoded,
                self.fault.as_ref(),
                _fd_n,
            );
            #[cfg(not(any(test, feature = "fault-injection")))]
            let written = crate::flatfile::write_flat_file(&flat, &encoded);
            flat_file_bytes = written.map_err(|e| StoreError::Io {
                path: flat,
                message: e.to_string(),
                transient: e.is_transient(),
            })?;
        }

        Ok(CompactionReport {
            folded_segments: folded,
            rows: self.db.len(),
            snapshot_bytes: bytes.len() as u64,
            fingerprint: crate::checkpoint::database_fingerprint(&self.db),
            flat_file_bytes,
        })
    }

    /// Where this store's `DSCFD1` columnar mirror lives (the file exists
    /// only after a compaction with [`StoreConfig::emit_flat_file`] on).
    pub fn flat_file_path(&self) -> PathBuf {
        self.dir.join(crate::flatfile::FLAT_FILE_NAME)
    }
}

/// Lists the WAL segments in a store directory, sorted by id. Foreign
/// files are ignored.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        if let Some(id) = name.to_str().and_then(parse_segment_file_name) {
            segments.push((id, entry.path()));
        }
    }
    segments.sort_unstable();
    Ok(segments)
}

#[cfg(test)]
mod tests;
