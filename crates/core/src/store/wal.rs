//! WAL segment format and frame codec.
//!
//! A segment file is a fixed header followed by a run of frames:
//!
//! ```text
//! magic "DSCWL1\n"
//! u64le   segment id (must match the id in the file name)
//! u32le   CRC-32 of the 8 id bytes
//! frames:
//!   varint  payload length
//!   payload bytes
//!   u32le   CRC-32 of the payload
//! payload:
//!   u8      record kind (1 = APPEND)
//!   varint  customer id
//!   one sequence, in the DSCDB1 encoding
//! ```
//!
//! The CRC covers the payload, not the length prefix: a damaged length
//! varint misaligns framing and the very next CRC check catches it. Frames
//! carry no sync markers — the store is append-only, so the only damage an
//! honest crash can produce is a *torn tail*: the last frame cut short by a
//! partial `write(2)` or a partially flushed page. [`scan_frames`]
//! classifies exactly that case as recoverable and everything else —
//! damage strictly inside the file — as corruption.

use crate::codec::{self, CodecError};
use crate::database::CustomerId;
use crate::sequence::Sequence;

/// Magic bytes opening every WAL segment file.
pub const SEGMENT_MAGIC: &[u8] = b"DSCWL1\n";
/// Total size of the fixed segment header (magic, id, id CRC).
pub const SEGMENT_HEADER_LEN: usize = SEGMENT_MAGIC.len() + 8 + 4;
/// File-name prefix and extension of segment files: `wal-00000001.dscwl`.
pub const SEGMENT_PREFIX: &str = "wal-";
/// File-name extension of segment files.
pub const SEGMENT_EXT: &str = ".dscwl";

const KIND_APPEND: u8 = 1;

/// One acknowledged ingest record: a customer and their sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The customer id.
    pub cid: CustomerId,
    /// The customer's transaction history.
    pub sequence: Sequence,
}

/// The file name of segment `id`, e.g. `wal-00000007.dscwl`.
pub fn segment_file_name(id: u64) -> String {
    format!("{SEGMENT_PREFIX}{id:08}{SEGMENT_EXT}")
}

/// Parses a segment id back out of a file name; `None` for foreign files.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(SEGMENT_EXT)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Encodes the fixed segment header for segment `id`.
pub fn encode_segment_header(id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
    out.extend_from_slice(SEGMENT_MAGIC);
    let id_bytes = id.to_le_bytes();
    out.extend_from_slice(&id_bytes);
    out.extend_from_slice(&crate::checkpoint::crc32(&id_bytes).to_le_bytes());
    out
}

/// Why a segment header was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The file is shorter than the fixed header.
    Truncated,
    /// The file does not start with the segment magic.
    BadMagic,
    /// The id's CRC does not match — a torn or damaged header.
    BadCrc,
}

/// Decodes and verifies the fixed segment header, returning the segment id.
pub fn decode_segment_header(bytes: &[u8]) -> Result<u64, HeaderError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(HeaderError::Truncated);
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(HeaderError::BadMagic);
    }
    let id_bytes = &bytes[SEGMENT_MAGIC.len()..SEGMENT_MAGIC.len() + 8];
    let crc_bytes = &bytes[SEGMENT_MAGIC.len() + 8..SEGMENT_HEADER_LEN];
    if crate::checkpoint::crc32(id_bytes).to_le_bytes() != *crc_bytes {
        return Err(HeaderError::BadCrc);
    }
    Ok(u64::from_le_bytes(id_bytes.try_into().expect("8 id bytes")))
}

/// Encodes one record as a complete frame (length prefix, payload, CRC).
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + record.sequence.length() * 2);
    payload.push(KIND_APPEND);
    codec::put_varint(&mut payload, record.cid.0);
    codec::put_sequence(&mut payload, &record.sequence);
    let mut out = Vec::with_capacity(payload.len() + 9);
    codec::put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crate::checkpoint::crc32(&payload).to_le_bytes());
    out
}

/// Decodes one CRC-verified frame payload into a record.
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let (&kind, rest) = payload.split_first().ok_or(CodecError::Truncated)?;
    if kind != KIND_APPEND {
        return Err(CodecError::Invalid("unknown WAL record kind"));
    }
    let mut pos = 0usize;
    let cid = codec::get_varint(rest, &mut pos)?;
    let sequence = codec::get_sequence(rest, &mut pos)?;
    if pos != rest.len() {
        return Err(CodecError::Invalid("trailing bytes in WAL payload"));
    }
    Ok(WalRecord { cid: CustomerId(cid), sequence })
}

/// The outcome of scanning a segment's frame region (everything after the
/// fixed header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Every frame decoded and the last one ends exactly at EOF.
    Clean {
        /// The decoded records, in append order.
        records: Vec<WalRecord>,
    },
    /// A valid prefix of frames, then a tail cut short by a crash. Only
    /// this is repairable: truncating to `valid_bytes` restores a clean
    /// segment without touching any complete frame.
    TornTail {
        /// The records of the valid prefix, in append order.
        records: Vec<WalRecord>,
        /// Bytes of valid frames (relative to the start of the frame
        /// region); everything past this offset is the torn tail.
        valid_bytes: u64,
    },
    /// Damage strictly inside the file — a frame that fails its CRC or
    /// decodes to garbage *with more data after it*. A crash in an
    /// append-only file cannot produce this; refuse to guess.
    Corrupt {
        /// Frames decoded before the damage.
        valid_frames: usize,
        /// Offset of the damaged frame, relative to the frame region.
        offset: u64,
        /// What was wrong with it.
        what: &'static str,
    },
}

/// Scans the frame region of a segment, classifying its state.
///
/// Torn-tail policy: damage is recoverable if and only if it is confined
/// to a final frame that reaches EOF — an incomplete length prefix, a
/// frame whose declared extent runs past EOF, or a CRC failure on a frame
/// ending exactly at EOF (a partially flushed page). Any frame that fails
/// *with bytes after it* is mid-file corruption.
pub fn scan_frames(frames: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == frames.len() {
            return ScanOutcome::Clean { records };
        }
        let frame_start = pos;
        let len = match codec::get_varint(frames, &mut pos) {
            Ok(len) => len,
            Err(CodecError::Truncated) => {
                // The length prefix itself ran off EOF: torn.
                return ScanOutcome::TornTail { records, valid_bytes: frame_start as u64 };
            }
            Err(_) => {
                return ScanOutcome::Corrupt {
                    valid_frames: records.len(),
                    offset: frame_start as u64,
                    what: "frame length varint overflowed",
                };
            }
        };
        let payload_end = match (pos as u64).checked_add(len) {
            Some(end) if end <= usize::MAX as u64 => end as usize,
            _ => {
                // An absurd length claim can only reach past EOF: torn if
                // this is the tail, otherwise unreachable (checked below).
                return ScanOutcome::TornTail { records, valid_bytes: frame_start as u64 };
            }
        };
        let frame_end = payload_end.saturating_add(4);
        if frame_end > frames.len() {
            // The frame's declared extent reaches past EOF: torn.
            return ScanOutcome::TornTail { records, valid_bytes: frame_start as u64 };
        }
        let payload = &frames[pos..payload_end];
        let crc_stored = u32::from_le_bytes(frames[payload_end..frame_end].try_into().expect("4"));
        if crate::checkpoint::crc32(payload) != crc_stored {
            if frame_end == frames.len() {
                // Final frame, all bytes present but wrong: a partially
                // flushed page at the tail. Recoverable.
                return ScanOutcome::TornTail { records, valid_bytes: frame_start as u64 };
            }
            return ScanOutcome::Corrupt {
                valid_frames: records.len(),
                offset: frame_start as u64,
                what: "frame CRC mismatch before EOF",
            };
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                // The CRC matched, so these bytes are what the writer wrote
                // — and the writer never writes an undecodable payload.
                return ScanOutcome::Corrupt {
                    valid_frames: records.len(),
                    offset: frame_start as u64,
                    what: "frame payload does not decode",
                };
            }
        }
        pos = frame_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;
    use proptest::prelude::*;

    fn record(cid: u64, text: &str) -> WalRecord {
        WalRecord { cid: CustomerId(cid), sequence: parse_sequence(text).unwrap() }
    }

    #[test]
    fn segment_file_names_roundtrip() {
        for id in [0u64, 1, 7, 99_999_999, 100_000_000] {
            assert_eq!(parse_segment_file_name(&segment_file_name(id)), Some(id));
        }
        for name in ["wal-.dscwl", "wal-1x.dscwl", "store.dscsn", "wal-1.tmp", "wal-1"] {
            assert_eq!(parse_segment_file_name(name), None);
        }
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let header = encode_segment_header(42);
        assert_eq!(header.len(), SEGMENT_HEADER_LEN);
        assert_eq!(decode_segment_header(&header), Ok(42));
        assert_eq!(decode_segment_header(&header[..10]), Err(HeaderError::Truncated));
        let mut bad_magic = header.clone();
        bad_magic[0] ^= 1;
        assert_eq!(decode_segment_header(&bad_magic), Err(HeaderError::BadMagic));
        let mut bad_id = header;
        bad_id[SEGMENT_MAGIC.len()] ^= 1;
        assert_eq!(decode_segment_header(&bad_id), Err(HeaderError::BadCrc));
    }

    #[test]
    fn frame_roundtrip() {
        let rec = record(7, "(a,e,g)(b)(h)(f)(c)(b,f)");
        let frame = encode_frame(&rec);
        match scan_frames(&frame) {
            ScanOutcome::Clean { records } => assert_eq!(records, vec![rec]),
            other => panic!("expected clean scan, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_of_a_frame_run_is_a_torn_tail() {
        let mut frames = Vec::new();
        let recs = [record(1, "(a)(b,c)"), record(2, "(d)"), record(3, "(a,b,c)(d)(e,f)")];
        let mut ends = vec![0usize];
        for r in &recs {
            frames.extend_from_slice(&encode_frame(r));
            ends.push(frames.len());
        }
        for cut in 0..frames.len() {
            let expect_records = ends.iter().filter(|&&e| e <= cut).count() - 1;
            match scan_frames(&frames[..cut]) {
                ScanOutcome::Clean { records } => {
                    assert_eq!(records.len(), expect_records, "cut at {cut}");
                    assert!(ends.contains(&cut), "clean scan only at a frame boundary");
                }
                ScanOutcome::TornTail { records, valid_bytes } => {
                    assert_eq!(records.len(), expect_records, "cut at {cut}");
                    assert_eq!(valid_bytes as usize, ends[expect_records], "cut at {cut}");
                }
                ScanOutcome::Corrupt { .. } => panic!("truncation at {cut} is never corruption"),
            }
        }
    }

    #[test]
    fn mid_file_damage_is_corruption_not_a_torn_tail() {
        let mut frames = encode_frame(&record(1, "(a)(b)"));
        let first_len = frames.len();
        frames.extend_from_slice(&encode_frame(&record(2, "(c,d)")));
        // Flip a payload byte of the *first* frame: CRC fails with data after.
        let mut damaged = frames.clone();
        damaged[2] ^= 0x55;
        match scan_frames(&damaged) {
            ScanOutcome::Corrupt { valid_frames, offset, .. } => {
                assert_eq!((valid_frames, offset), (0, 0));
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        // The same flip in the *last* frame is a torn tail.
        let mut tail_damaged = frames.clone();
        let n = tail_damaged.len();
        tail_damaged[n - 5] ^= 0x55; // inside the second payload
        match scan_frames(&tail_damaged) {
            ScanOutcome::TornTail { records, valid_bytes } => {
                assert_eq!(records.len(), 1);
                assert_eq!(valid_bytes as usize, first_len);
            }
            other => panic!("expected torn tail, got {other:?}"),
        }
    }

    // ---------------------------------------------------------------------
    // Property tests (satellite: frame codec under arbitrary records).

    fn arb_record() -> impl Strategy<Value = WalRecord> {
        let items = proptest::collection::btree_set(0u32..50, 1..4);
        let itemset = items.prop_map(|set| {
            crate::itemset::Itemset::from_sorted(set.into_iter().map(crate::item::Item).collect())
        });
        let seq = proptest::collection::vec(itemset, 1..6).prop_map(Sequence::new);
        (0u64..1_000_000, seq)
            .prop_map(|(cid, sequence)| WalRecord { cid: CustomerId(cid), sequence })
    }

    proptest! {
        #[test]
        fn frame_runs_roundtrip_under_arbitrary_records(
            recs in proptest::collection::vec(arb_record(), 0..12)
        ) {
            let mut frames = Vec::new();
            for r in &recs {
                frames.extend_from_slice(&encode_frame(r));
            }
            match scan_frames(&frames) {
                ScanOutcome::Clean { records } => prop_assert_eq!(records, recs),
                other => {
                    return Err(proptest::test_runner::TestCaseError::fail(
                        format!("expected clean scan, got {other:?}"),
                    ))
                }
            }
        }

        #[test]
        fn truncated_frame_runs_never_lose_a_complete_frame(
            recs in proptest::collection::vec(arb_record(), 1..8),
            cut_seed in 0usize..10_000
        ) {
            let mut frames = Vec::new();
            let mut ends = vec![0usize];
            for r in &recs {
                frames.extend_from_slice(&encode_frame(r));
                ends.push(frames.len());
            }
            let cut = cut_seed % frames.len();
            let expect = ends.iter().filter(|&&e| e <= cut).count() - 1;
            match scan_frames(&frames[..cut]) {
                ScanOutcome::Clean { records } | ScanOutcome::TornTail { records, .. } => {
                    prop_assert_eq!(records.len(), expect);
                    prop_assert_eq!(&records[..], &recs[..expect]);
                }
                ScanOutcome::Corrupt { .. } => prop_assert!(false, "truncation is never corruption"),
            }
        }
    }
}
