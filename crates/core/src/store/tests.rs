use super::fsck::{fsck, SegmentStatus};
use super::*;
use crate::guard::{FaultPlan, IoFault, IoWriter};
use crate::parse::parse_sequence;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("disc-store-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seq(text: &str) -> Sequence {
    parse_sequence(text).unwrap()
}

fn sample_rows() -> Vec<(CustomerId, Sequence)> {
    ["(a,e,g)(b)(h)(f)(c)(b,f)", "(b)(d,f)(e)", "(b,f,g)", "(f)(a,g)(b,f,h)(b,f)", "(a)(b)(c)"]
        .iter()
        .enumerate()
        .map(|(i, t)| (CustomerId(i as u64 + 1), seq(t)))
        .collect()
}

fn ingest(store: &mut SequenceStore, rows: &[(CustomerId, Sequence)]) {
    for (cid, s) in rows {
        store.append(*cid, s.clone()).unwrap();
    }
}

#[test]
fn append_reopen_roundtrip() {
    let dir = fresh_dir("roundtrip");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(store.is_empty());
    ingest(&mut store, &rows);
    let before = store.view();
    let fp = store.fingerprint();
    drop(store); // no clean close: exactly a crash after the last fsync

    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(*store.view(), *before);
    assert_eq!(store.fingerprint(), fp);
    assert_eq!(store.recovery_report().replayed_records, rows.len());
    assert_eq!(store.recovery_report().snapshot_rows, 0);
}

#[test]
fn views_are_point_in_time() {
    let dir = fresh_dir("views");
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.append(CustomerId(1), seq("(a)(b)")).unwrap();
    let early = store.view();
    store.append(CustomerId(2), seq("(c)")).unwrap();
    let late = store.view();
    assert_eq!(early.len(), 1, "a handed-out view never sees later appends");
    assert_eq!(late.len(), 2);
}

#[test]
fn duplicate_customers_are_rejected_without_side_effects() {
    let dir = fresh_dir("dup");
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.append(CustomerId(7), seq("(a)")).unwrap();
    assert_eq!(
        store.append(CustomerId(7), seq("(b)")),
        Err(StoreError::DuplicateCustomer { cid: 7 })
    );
    // The rejection poisons nothing; the store stays usable.
    store.append(CustomerId(8), seq("(b)")).unwrap();
    drop(store);
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), 2);
}

#[test]
fn segments_rotate_at_the_size_budget() {
    let dir = fresh_dir("rotate");
    let cfg = StoreConfig { segment_max_bytes: 64, ..StoreConfig::default() };
    let mut store = SequenceStore::open(&dir, cfg).unwrap();
    let rows = sample_rows();
    ingest(&mut store, &rows);
    drop(store);
    let report = fsck(&dir).unwrap();
    assert!(report.segments.len() > 1, "64-byte budget must force rotation");
    assert!(report.is_clean(), "{report}");
    let store = SequenceStore::open(&dir, cfg).unwrap();
    assert_eq!(store.len(), rows.len());
    assert!(store.recovery_report().segments_replayed > 1);
}

#[test]
fn compaction_folds_segments_into_a_verified_snapshot() {
    let dir = fresh_dir("compact");
    let cfg = StoreConfig { segment_max_bytes: 64, ..StoreConfig::default() };
    let mut store = SequenceStore::open(&dir, cfg).unwrap();
    let rows = sample_rows();
    ingest(&mut store, &rows);
    let fp = store.fingerprint();
    let report = store.compact().unwrap();
    assert!(report.folded_segments > 1);
    assert_eq!(report.rows, rows.len());
    assert_eq!(report.fingerprint, fp);

    let audit = fsck(&dir).unwrap();
    assert!(audit.is_clean(), "{audit}");
    assert!(audit.segments.is_empty(), "folded segments must be deleted");
    assert_eq!(audit.acked_records, rows.len() as u64);

    // Appends continue after compaction, into fresh segments.
    store.append(CustomerId(99), seq("(a,b)")).unwrap();
    drop(store);
    let store = SequenceStore::open(&dir, cfg).unwrap();
    assert_eq!(store.len(), rows.len() + 1);
    assert_eq!(store.recovery_report().snapshot_rows, rows.len());
    assert_eq!(store.recovery_report().replayed_records, 1);
}

#[test]
fn empty_store_compacts_and_reopens() {
    let dir = fresh_dir("empty");
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    let report = store.compact().unwrap();
    assert_eq!(report.rows, 0);
    drop(store);
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(store.is_empty());
}

#[test]
fn torn_frame_write_loses_only_the_unacknowledged_record() {
    let dir = fresh_dir("torn");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::WalAppend, 3, IoFault::TornWrite));
    for (i, (cid, s)) in rows.iter().enumerate() {
        let res = store.append(*cid, s.clone());
        if i < 3 {
            res.unwrap();
        } else if i == 3 {
            assert_eq!(res, Err(StoreError::Injected { what: "torn frame write" }));
        } else {
            assert_eq!(res, Err(StoreError::Poisoned), "a failed write poisons the store");
        }
    }
    drop(store);

    let audit = fsck(&dir).unwrap();
    assert!(audit.is_recoverable() && !audit.is_clean(), "{audit}");
    assert_eq!(audit.acked_records, 3);

    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), 3, "exactly the acknowledged records survive");
    assert!(store.recovery_report().truncated_bytes > 0);
    for (i, row) in store.view().rows().iter().enumerate() {
        assert_eq!((row.cid, &row.sequence), (rows[i].0, &rows[i].1));
    }
    // After repair the store is clean again.
    drop(store);
    assert!(fsck(&dir).unwrap().is_clean());
}

#[test]
fn enospc_is_permanent_and_poisons_the_writer() {
    let dir = fresh_dir("enospc");
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.append(CustomerId(1), seq("(a)")).unwrap();
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::WalAppend, 1, IoFault::Enospc));
    let err = store.append(CustomerId(2), seq("(b)")).unwrap_err();
    assert!(!err.is_transient(), "ENOSPC must classify as permanent: {err}");
    assert_eq!(store.append(CustomerId(3), seq("(c)")), Err(StoreError::Poisoned));
    drop(store);
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), 1);
}

#[test]
fn a_single_eintr_is_retried_and_the_append_succeeds() {
    let dir = fresh_dir("eintr");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::WalAppend, 2, IoFault::Interrupted));
    ingest(&mut store, &rows); // every append unwraps: the EINTR was absorbed
    drop(store);
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), rows.len());
}

#[test]
fn injected_bit_rot_is_caught_by_fsck_and_refused_by_recovery() {
    let dir = fresh_dir("bitrot");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::WalAppend, 1, IoFault::CorruptByte));
    ingest(&mut store, &rows); // the damaged append is (wrongly) acknowledged
    drop(store);

    let audit = fsck(&dir).unwrap();
    assert!(!audit.is_recoverable(), "mid-file bit-rot is not recoverable: {audit}");
    assert!(audit.segments.iter().any(|s| matches!(s.status, SegmentStatus::Corrupt { .. })));
    assert!(matches!(
        SequenceStore::open(&dir, StoreConfig::default()),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn compaction_crash_before_rename_preserves_the_old_state() {
    let dir = fresh_dir("prerename");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    ingest(&mut store, &rows);
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::StoreSnapshot, 0, IoFault::CrashBeforeRename));
    assert!(store.compact().is_err());
    drop(store);

    let audit = fsck(&dir).unwrap();
    assert!(audit.stray_tmp, "the verified-but-unrenamed temp file is left behind");
    assert!(audit.is_recoverable());
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), rows.len());
    assert!(store.recovery_report().removed_tmp);
}

#[test]
fn compaction_crash_after_rename_leaves_stale_segments_for_recovery() {
    let dir = fresh_dir("postrename");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    ingest(&mut store, &rows);
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::StoreSnapshot, 0, IoFault::CrashAfterRename));
    assert!(store.compact().is_err());
    drop(store);

    let audit = fsck(&dir).unwrap();
    assert!(audit.segments.iter().any(|s| matches!(s.status, SegmentStatus::Stale)), "{audit}");
    assert!(audit.is_recoverable());
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), rows.len(), "stale segments must not double-ingest");
    assert!(store.recovery_report().stale_segments_removed > 0);
    drop(store);
    assert!(fsck(&dir).unwrap().is_clean());
}

#[test]
fn corrupted_snapshot_bytes_are_never_published() {
    let dir = fresh_dir("snapverify");
    let rows = sample_rows();
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    ingest(&mut store, &rows);
    store.arm_fault(FaultPlan::io_fault_at(IoWriter::StoreSnapshot, 0, IoFault::CorruptByte));
    assert!(matches!(store.compact(), Err(StoreError::SnapshotVerify { .. })));
    // Nothing was published or deleted: a second compact succeeds...
    store.compact().unwrap();
    drop(store);
    // ...and recovery sees the full database.
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), rows.len());
}

#[test]
fn short_reads_and_eintr_during_recovery_change_nothing() {
    let dir = fresh_dir("shortread");
    let rows = sample_rows();
    let cfg = StoreConfig { segment_max_bytes: 64, ..StoreConfig::default() };
    let mut store = SequenceStore::open(&dir, cfg).unwrap();
    ingest(&mut store, &rows);
    let fp = store.fingerprint();
    drop(store);
    for fault in [IoFault::ShortRead, IoFault::Interrupted] {
        for read_n in 0..4 {
            let plan = FaultPlan::io_fault_at(IoWriter::StoreRead, read_n, fault);
            let store = SequenceStore::open_with_fault(&dir, cfg, plan).unwrap();
            assert_eq!(store.fingerprint(), fp, "{fault:?} at read {read_n}");
        }
    }
}

#[test]
fn sync_policies_accept_appends() {
    for sync in [SyncPolicy::Always, SyncPolicy::EveryN(2), SyncPolicy::Never] {
        let dir = fresh_dir("sync");
        let cfg = StoreConfig { sync, ..StoreConfig::default() };
        let mut store = SequenceStore::open(&dir, cfg).unwrap();
        ingest(&mut store, &sample_rows());
        store.close().unwrap(); // seal makes the tail durable under any policy
        let store = SequenceStore::open(&dir, cfg).unwrap();
        assert_eq!(store.len(), sample_rows().len());
    }
}

#[test]
fn foreign_files_in_the_directory_are_ignored() {
    let dir = fresh_dir("foreign");
    let mut store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    store.append(CustomerId(1), seq("(a)")).unwrap();
    fs::write(dir.join("README.txt"), b"not a segment").unwrap();
    drop(store);
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), 1);
}

#[test]
fn renamed_segment_is_refused() {
    let dir = fresh_dir("renamed");
    let cfg = StoreConfig { segment_max_bytes: 64, ..StoreConfig::default() };
    let mut store = SequenceStore::open(&dir, cfg).unwrap();
    ingest(&mut store, &sample_rows());
    drop(store);
    // Swap two segments: ids embedded in headers now disagree with names.
    let a = dir.join(wal::segment_file_name(1));
    let b = dir.join(wal::segment_file_name(2));
    let tmp = dir.join("swap.tmp");
    fs::rename(&a, &tmp).unwrap();
    fs::rename(&b, &a).unwrap();
    fs::rename(&tmp, &b).unwrap();
    assert!(matches!(SequenceStore::open(&dir, cfg), Err(StoreError::SegmentIdMismatch { .. })));
}
