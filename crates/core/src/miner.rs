//! The [`SequentialMiner`] trait implemented by every algorithm in the
//! workspace.

use crate::database::SequenceDatabase;
use crate::guard::{run_guarded, GuardedResult, MineGuard};
use crate::result::MiningResult;
use crate::support::MinSupport;

/// A frequent-sequence mining algorithm.
///
/// Every miner — DISC-all, Dynamic DISC-all, PrefixSpan, Pseudo, GSP, SPADE,
/// SPAM, and the brute-force reference — implements this trait and returns
/// the *complete* set of frequent sequences with *exact* support counts, so
/// results are directly comparable.
pub trait SequentialMiner {
    /// A short, stable name for reports ("DISC-all", "PrefixSpan", …).
    fn name(&self) -> &str;

    /// Mines all frequent sequences of `db` at threshold `min_support`.
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult;

    /// Mines under a [`MineGuard`]: cancellable, deadline- and budget-bound,
    /// panic-isolated. See the [`crate::guard`] module docs for the contract.
    ///
    /// The default implementation wraps [`SequentialMiner::mine`] in a panic
    /// boundary with a pre-flight guard check: a pre-cancelled token, an
    /// expired deadline, or a zero budget aborts before any work, and a
    /// panic becomes [`crate::guard::AbortReason::Panicked`] — but a default
    /// run cannot stop midway or return partial results. Miners in this
    /// workspace override it with cooperative implementations that
    /// checkpoint inside their hot loops and keep whatever was found before
    /// an abort.
    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| {
            *result = self.mine(db, min_support);
            Ok(())
        })
    }

    /// Mines with up to `threads` worker threads.
    ///
    /// The contract is strict: the result must be **identical** to
    /// [`SequentialMiner::mine`] — same patterns, same exact supports — at
    /// every thread count. The default implementation ignores `threads` and
    /// mines sequentially, which satisfies the contract trivially; miners
    /// with a partition-parallel path (DISC-all) override it.
    fn mine_parallel(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        threads: usize,
    ) -> MiningResult {
        let _ = threads;
        self.mine(db, min_support)
    }
}

impl<M: SequentialMiner + ?Sized> SequentialMiner for &M {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        (**self).mine(db, min_support)
    }
    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        (**self).mine_guarded(db, min_support, guard)
    }
    fn mine_parallel(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        threads: usize,
    ) -> MiningResult {
        (**self).mine_parallel(db, min_support, threads)
    }
}

impl<M: SequentialMiner + ?Sized> SequentialMiner for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        (**self).mine(db, min_support)
    }
    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        (**self).mine_guarded(db, min_support, guard)
    }
    fn mine_parallel(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        threads: usize,
    ) -> MiningResult {
        (**self).mine_parallel(db, min_support, threads)
    }
}
