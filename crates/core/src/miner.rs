//! The [`SequentialMiner`] trait implemented by every algorithm in the
//! workspace.

use crate::database::SequenceDatabase;
use crate::result::MiningResult;
use crate::support::MinSupport;

/// A frequent-sequence mining algorithm.
///
/// Every miner — DISC-all, Dynamic DISC-all, PrefixSpan, Pseudo, GSP, SPADE,
/// SPAM, and the brute-force reference — implements this trait and returns
/// the *complete* set of frequent sequences with *exact* support counts, so
/// results are directly comparable.
pub trait SequentialMiner {
    /// A short, stable name for reports ("DISC-all", "PrefixSpan", …).
    fn name(&self) -> &str;

    /// Mines all frequent sequences of `db` at threshold `min_support`.
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult;
}

impl<M: SequentialMiner + ?Sized> SequentialMiner for &M {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        (**self).mine(db, min_support)
    }
}

impl<M: SequentialMiner + ?Sized> SequentialMiner for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        (**self).mine(db, min_support)
    }
}
