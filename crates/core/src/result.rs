//! The [`MiningResult`] container: frequent sequences with exact supports.

use crate::sequence::Sequence;
use std::collections::BTreeMap;
use std::fmt;

/// The output of a miner: every frequent sequence with its exact support
/// count, canonically ordered (by length, then comparative order) so results
/// from different algorithms compare structurally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningResult {
    by_pattern: BTreeMap<Sequence, u64>,
}

impl MiningResult {
    /// An empty result.
    pub fn new() -> MiningResult {
        MiningResult::default()
    }

    /// Builds from `(pattern, support)` pairs. Duplicate patterns must agree
    /// on their support (panics otherwise — a miner emitting two different
    /// supports for one pattern is broken).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Sequence, u64)>) -> MiningResult {
        let mut r = MiningResult::new();
        for (p, s) in pairs {
            r.insert(p, s);
        }
        r
    }

    /// Records one frequent pattern.
    ///
    /// # Panics
    /// If the pattern was already recorded with a different support.
    pub fn insert(&mut self, pattern: Sequence, support: u64) {
        // One tree descent for both the duplicate check and the insert —
        // this is a comparison hot path (every descent is a cmp_sequences
        // chain) once results reach hundreds of thousands of patterns.
        match self.by_pattern.entry(pattern) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let old = *e.get();
                assert_eq!(
                    old,
                    support,
                    "pattern {} recorded twice with supports {old} and {support}",
                    e.key()
                );
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(support);
            }
        }
    }

    /// Number of frequent sequences.
    pub fn len(&self) -> usize {
        self.by_pattern.len()
    }

    /// True when nothing is frequent.
    pub fn is_empty(&self) -> bool {
        self.by_pattern.is_empty()
    }

    /// The support of a pattern, if frequent.
    pub fn support_of(&self, pattern: &Sequence) -> Option<u64> {
        self.by_pattern.get(pattern).copied()
    }

    /// Whether a pattern is in the frequent set.
    pub fn contains_pattern(&self, pattern: &Sequence) -> bool {
        self.by_pattern.contains_key(pattern)
    }

    /// Iterates `(pattern, support)` in comparative order.
    pub fn iter(&self) -> impl Iterator<Item = (&Sequence, u64)> {
        self.by_pattern.iter().map(|(p, &s)| (p, s))
    }

    /// The frequent k-sequences, in comparative order.
    pub fn of_length(&self, k: usize) -> Vec<(&Sequence, u64)> {
        self.iter().filter(|(p, _)| p.length() == k).collect()
    }

    /// The length of the longest frequent sequence (0 when empty).
    pub fn max_length(&self) -> usize {
        self.by_pattern.keys().map(Sequence::length).max().unwrap_or(0)
    }

    /// Histogram: number of frequent sequences per length, indexed from 1.
    pub fn length_histogram(&self) -> Vec<usize> {
        let max = self.max_length();
        let mut hist = vec![0usize; max];
        for p in self.by_pattern.keys() {
            hist[p.length() - 1] += 1;
        }
        hist
    }

    /// The maximal frequent sequences: those contained in no longer frequent
    /// sequence. A compact summary of the result (every frequent sequence is
    /// a subsequence of some maximal one).
    pub fn maximal_patterns(&self) -> Vec<(&Sequence, u64)> {
        self.iter()
            .filter(|(p, _)| {
                !self.iter().any(|(q, _)| q.length() > p.length() && crate::embed::contains(q, p))
            })
            .collect()
    }

    /// The closed frequent sequences: those with no proper super-sequence of
    /// the *same* support. Closed sets are lossless — every frequent
    /// sequence's support is the max support over the closed sequences
    /// containing it — and typically far smaller than the full result.
    pub fn closed_patterns(&self) -> Vec<(&Sequence, u64)> {
        self.iter()
            .filter(|(p, s)| {
                !self.iter().any(|(q, t)| {
                    t == *s && q.length() > p.length() && crate::embed::contains(q, p)
                })
            })
            .collect()
    }

    /// Human-readable differences against another result, for debugging
    /// cross-algorithm disagreements. Empty iff the results are identical.
    pub fn diff(&self, other: &MiningResult) -> Vec<String> {
        let mut out = Vec::new();
        for (p, s) in self.iter() {
            match other.support_of(p) {
                None => out.push(format!("only in left: {p} (support {s})")),
                Some(o) if o != s => {
                    out.push(format!("support mismatch for {p}: left {s}, right {o}"))
                }
                _ => {}
            }
        }
        for (p, s) in other.iter() {
            if !self.contains_pattern(p) {
                out.push(format!("only in right: {p} (support {s})"));
            }
        }
        out
    }
}

impl fmt::Display for MiningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} frequent sequences", self.len())?;
        for (p, s) in self.iter() {
            writeln!(f, "  {p}  [support {s}]")?;
        }
        Ok(())
    }
}

impl FromIterator<(Sequence, u64)> for MiningResult {
    fn from_iter<T: IntoIterator<Item = (Sequence, u64)>>(iter: T) -> Self {
        MiningResult::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = MiningResult::new();
        r.insert(seq("(a)"), 6);
        r.insert(seq("(a)(c)"), 4);
        assert_eq!(r.len(), 2);
        assert_eq!(r.support_of(&seq("(a)(c)")), Some(4));
        assert_eq!(r.support_of(&seq("(c)")), None);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn conflicting_support_panics() {
        let mut r = MiningResult::new();
        r.insert(seq("(a)"), 6);
        r.insert(seq("(a)"), 5);
    }

    #[test]
    fn idempotent_insert_is_fine() {
        let mut r = MiningResult::new();
        r.insert(seq("(a)"), 6);
        r.insert(seq("(a)"), 6);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn of_length_and_histogram() {
        let r = MiningResult::from_pairs([
            (seq("(a)"), 6),
            (seq("(b)"), 5),
            (seq("(a)(c)"), 4),
            (seq("(a)(c)(e)"), 3),
        ]);
        assert_eq!(r.of_length(1).len(), 2);
        assert_eq!(r.of_length(2).len(), 1);
        assert_eq!(r.max_length(), 3);
        assert_eq!(r.length_histogram(), vec![2, 1, 1]);
    }

    #[test]
    fn diff_reports_mismatches() {
        let a = MiningResult::from_pairs([(seq("(a)"), 6), (seq("(b)"), 5)]);
        let b = MiningResult::from_pairs([(seq("(a)"), 6), (seq("(b)"), 4), (seq("(c)"), 2)]);
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(a.diff(&a.clone()).is_empty());
    }

    #[test]
    fn closed_patterns_keep_distinct_supports() {
        let r = MiningResult::from_pairs([
            (seq("(a)"), 6),
            (seq("(c)"), 4),
            (seq("(a)(c)"), 4),
            (seq("(b)"), 2),
        ]);
        let closed: Vec<(String, u64)> =
            r.closed_patterns().iter().map(|(p, s)| (p.to_string(), *s)).collect();
        // (c) is absorbed by (a)(c) (same support); (a) is closed (support
        // differs); (b) is closed.
        assert_eq!(
            closed,
            vec![("(a)".to_string(), 6), ("(a)(c)".to_string(), 4), ("(b)".to_string(), 2)]
        );
    }

    #[test]
    fn maximal_patterns_drop_subsumed_entries() {
        let r = MiningResult::from_pairs([
            (seq("(a)"), 6),
            (seq("(c)"), 4),
            (seq("(a)(c)"), 4),
            (seq("(b)"), 2),
        ]);
        let maximal: Vec<String> =
            r.maximal_patterns().iter().map(|(p, _)| p.to_string()).collect();
        // (a) and (c) are inside (a)(c); (b) is not.
        assert_eq!(maximal, vec!["(a)(c)", "(b)"]);
    }

    #[test]
    fn iteration_is_in_comparative_order() {
        let r = MiningResult::from_pairs([(seq("(b)"), 5), (seq("(a)(c)"), 4), (seq("(a)"), 6)]);
        let order: Vec<String> = r.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(order, vec!["(a)", "(a)(c)", "(b)"]);
    }
}
