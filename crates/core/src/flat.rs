//! Flat (CSR-style) sequence storage and zero-copy sequence views.
//!
//! The miners' hot paths — k-minimum-subsequence computation, counting-array
//! scans, containment tests — spend their time walking itemsets of customer
//! sequences. The nested [`Sequence`] → [`crate::Itemset`] → `Vec<Item>`
//! representation scatters every transaction behind its own heap allocation,
//! so those walks are pointer chases; and the partition machinery used to
//! clone whole sequences (or reference-count them) just to regroup members.
//!
//! This module stores a whole collection of sequences in one contiguous
//! **arena** of three parallel arrays (the classic CSR layout):
//!
//! ```text
//! items:      [ a e g | b | h | f | c | b f | b | d f | e | ... ]
//! set_starts: [ 0     3   4   5   6   7     9  10    12  13 ... ]   (+ final sentinel)
//! row_sets:   [ 0, 6, 9, ... ]           row r's itemset boundaries are
//!                                        set_starts[row_sets[r] ..= row_sets[r+1]]
//! ```
//!
//! * a [`FlatSeq`] is a `Copy` **view** of one row — two borrowed slices, no
//!   allocation, no reference counting;
//! * the [`SeqView`] trait abstracts over `&Sequence` and [`FlatSeq`] so one
//!   generic kernel (compare, embed, count, extend) serves both, selected by
//!   monomorphization — the nested representation keeps working everywhere,
//!   the flat one is used on the hot paths;
//! * a [`FlatKey`] caches a sequence's flattened `(item, transaction-number)`
//!   pairs so repeated comparisons (AVL-tree descents in the k-sorted
//!   database) are a single slice comparison instead of re-deriving the
//!   flattened form each time.
//!
//! Views never materialize owned [`Sequence`]s during mining; patterns are
//! still built as owned sequences, but only at result-reporting time (they
//! come from `prefix.extended(elem)` chains, never from members).

use crate::database::SequenceDatabase;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::sequence::{ExtElem, ExtMode, Sequence};
use crate::storage::DbStorage;
use std::marker::PhantomData;

/// A read-only, `Copy`-able view of a sequence: everything the mining
/// kernels need, implementable without owning the data.
///
/// Transaction numbers are positional — the flattened pair of the `i`-th
/// item of transaction `t` is `(item, t + 1)` — so a view carries no
/// explicit transaction-number storage.
pub trait SeqView<'a>: Copy {
    /// Number of transactions (itemsets).
    fn n_transactions(self) -> usize;

    /// The sorted items of transaction `t`.
    fn itemset_items(self, t: usize) -> &'a [Item];

    /// The paper's *length*: total item occurrences.
    fn length(self) -> usize {
        (0..self.n_transactions()).map(|t| self.itemset_items(t).len()).sum()
    }

    /// Index of the leftmost transaction containing `item` (the *minimum
    /// point* of the `<(item)>`-partition the sequence lives in).
    fn first_txn_containing(self, item: Item) -> Option<usize> {
        (0..self.n_transactions()).find(|&t| self.itemset_items(t).binary_search(&item).is_ok())
    }
}

impl<'a> SeqView<'a> for &'a Sequence {
    #[inline]
    fn n_transactions(self) -> usize {
        Sequence::n_transactions(self)
    }

    #[inline]
    fn itemset_items(self, t: usize) -> &'a [Item] {
        self.itemset(t).as_slice()
    }

    #[inline]
    fn length(self) -> usize {
        Sequence::length(self)
    }

    fn first_txn_containing(self, item: Item) -> Option<usize> {
        Sequence::first_txn_containing(self, item)
    }
}

/// Iterates a view's flattened `(item, transaction-number)` pairs with
/// 1-based transaction numbers — the generic counterpart of
/// [`Sequence::flat_iter`].
pub fn flat_pairs<'a, S: SeqView<'a>>(view: S) -> FlatPairs<'a, S> {
    FlatPairs { view, txn: 0, idx: 0, _marker: PhantomData }
}

/// Iterator returned by [`flat_pairs`].
#[derive(Debug, Clone)]
pub struct FlatPairs<'a, S: SeqView<'a>> {
    view: S,
    txn: usize,
    idx: usize,
    _marker: PhantomData<&'a ()>,
}

impl<'a, S: SeqView<'a>> Iterator for FlatPairs<'a, S> {
    type Item = (Item, u32);

    fn next(&mut self) -> Option<(Item, u32)> {
        while self.txn < self.view.n_transactions() {
            let set = self.view.itemset_items(self.txn);
            if self.idx < set.len() {
                let item = set[self.idx];
                self.idx += 1;
                return Some((item, self.txn as u32 + 1));
            }
            self.txn += 1;
            self.idx = 0;
        }
        None
    }
}

/// One row of a [`FlatArena`]: a zero-copy sequence view (two slices).
#[derive(Debug, Clone, Copy)]
pub struct FlatSeq<'a> {
    /// The arena's full item array; `sets` holds global indices into it.
    items: &'a [Item],
    /// This row's itemset boundaries: `n_transactions + 1` entries, so
    /// transaction `t` spans `items[sets[t]..sets[t + 1]]`.
    sets: &'a [u32],
}

impl<'a> FlatSeq<'a> {
    /// Materializes an owned [`Sequence`] — tests and result conversion
    /// only; mining kernels stay on the view.
    pub fn to_sequence(self) -> Sequence {
        Sequence::new(
            (0..self.n_transactions())
                .map(|t| Itemset::from_sorted(self.itemset_items(t).to_vec())),
        )
    }
}

impl<'a> SeqView<'a> for FlatSeq<'a> {
    #[inline]
    fn n_transactions(self) -> usize {
        self.sets.len() - 1
    }

    #[inline]
    fn itemset_items(self, t: usize) -> &'a [Item] {
        &self.items[self.sets[t] as usize..self.sets[t + 1] as usize]
    }

    #[inline]
    fn length(self) -> usize {
        (self.sets[self.sets.len() - 1] - self.sets[0]) as usize
    }
}

/// Contiguous CSR storage for a collection of sequences.
///
/// Rows are append-only except for [`FlatArena::pop_row`], which rolls back
/// the most recent append — the reduction loop uses it to discard rows that
/// shrink below usefulness without leaving holes.
#[derive(Debug, Clone)]
pub struct FlatArena {
    /// All items of all rows, row-major, transactions in order, items
    /// ascending within a transaction.
    items: Vec<Item>,
    /// Itemset boundaries into `items`, across all rows, with a trailing
    /// sentinel (`set_starts[0] == 0`, last entry `== items.len()`).
    set_starts: Vec<u32>,
    /// Row `r`'s boundaries live at `set_starts[row_sets[r]..=row_sets[r+1]]`
    /// (`row_sets.len() == n_rows + 1`).
    row_sets: Vec<u32>,
}

impl Default for FlatArena {
    fn default() -> FlatArena {
        FlatArena::new()
    }
}

impl FlatArena {
    /// An empty arena.
    pub fn new() -> FlatArena {
        FlatArena { items: Vec::new(), set_starts: vec![0], row_sets: vec![0] }
    }

    /// An empty arena with item capacity reserved up front.
    pub fn with_capacity(items: usize, sets: usize, rows: usize) -> FlatArena {
        let mut arena = FlatArena::new();
        arena.items.reserve(items);
        arena.set_starts.reserve(sets);
        arena.row_sets.reserve(rows);
        arena
    }

    /// Empties the arena, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.items.clear();
        self.set_starts.clear();
        self.set_starts.push(0);
        self.row_sets.clear();
        self.row_sets.push(0);
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.row_sets.len() - 1
    }

    /// True when no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> FlatSeq<'_> {
        let s0 = self.row_sets[r] as usize;
        let s1 = self.row_sets[r + 1] as usize;
        FlatSeq { items: &self.items, sets: &self.set_starts[s0..=s1] }
    }

    /// Iterates all row views in order.
    pub fn rows(&self) -> impl Iterator<Item = FlatSeq<'_>> + '_ {
        (0..self.len()).map(|r| self.row(r))
    }

    /// Appends a sequence as a new row; returns its row index.
    pub fn push_sequence(&mut self, s: &Sequence) -> usize {
        for set in s.itemsets() {
            self.items.extend_from_slice(set.as_slice());
            self.set_starts.push(self.items.len() as u32);
        }
        self.finish_row()
    }

    /// Appends a filtered copy of `src` as a new row, keeping only item
    /// occurrences accepted by `keep(txn_index, item)`. Emptied transactions
    /// disappear (later transactions renumber implicitly — boundaries are
    /// positional). Returns the new row index; the row may be empty.
    pub fn push_filtered<'a, S: SeqView<'a>>(
        &mut self,
        src: S,
        mut keep: impl FnMut(usize, Item) -> bool,
    ) -> usize {
        for t in 0..src.n_transactions() {
            let before = self.items.len();
            for &item in src.itemset_items(t) {
                if keep(t, item) {
                    self.items.push(item);
                }
            }
            if self.items.len() > before {
                self.set_starts.push(self.items.len() as u32);
            }
        }
        self.finish_row()
    }

    fn finish_row(&mut self) -> usize {
        self.row_sets.push((self.set_starts.len() - 1) as u32);
        self.len() - 1
    }

    /// Rolls back the most recently appended row, reclaiming its storage.
    pub fn pop_row(&mut self) {
        let r = self.len().checked_sub(1).expect("pop_row on an empty arena");
        let first_set = self.row_sets[r] as usize;
        self.row_sets.pop();
        self.set_starts.truncate(first_set + 1);
        self.items.truncate(self.set_starts[first_set] as usize);
    }
}

/// A whole [`SequenceDatabase`] in flat storage: built once per mining run,
/// shared read-only across partition walks and parallel shards.
///
/// The three CSR columns live in [`DbStorage`], so a `FlatDb` is either
/// heap-owned (built by [`FlatDb::from_database`]) or borrowed zero-copy
/// from a memory-mapped [`crate::flatfile`] snapshot — the mining kernels
/// cannot tell the difference: [`FlatDb::row`] hands out the same borrowed
/// [`FlatSeq`] slices either way.
#[derive(Debug, Clone)]
pub struct FlatDb {
    /// All items of all rows, row-major (the arena's `items` column).
    items: DbStorage<Item>,
    /// Itemset boundaries into `items`, with a trailing sentinel.
    set_starts: DbStorage<u32>,
    /// Row boundaries into `set_starts` (`row_sets.len() == n_rows + 1`).
    row_sets: DbStorage<u32>,
    /// The largest item id present, cached so miners can size counting
    /// arrays without owning the source [`SequenceDatabase`].
    max_item: Option<Item>,
}

impl FlatDb {
    /// Copies every database row into one contiguous arena.
    pub fn from_database(db: &SequenceDatabase) -> FlatDb {
        let total_items: usize = db.sequences().map(Sequence::length).sum();
        let total_sets: usize = db.sequences().map(Sequence::n_transactions).sum();
        let mut arena = FlatArena::with_capacity(total_items, total_sets + 1, db.len() + 1);
        for seq in db.sequences() {
            arena.push_sequence(seq);
        }
        FlatDb::from_arena(arena, db.max_item())
    }

    /// Wraps an already-built arena, taking ownership of its columns.
    /// `max_item` must be the largest item present in the arena (`None`
    /// for an item-free arena); callers that flattened a database pass its
    /// known maximum instead of re-scanning.
    pub fn from_arena(arena: FlatArena, max_item: Option<Item>) -> FlatDb {
        debug_assert_eq!(max_item, arena.items.iter().max().copied());
        FlatDb {
            items: arena.items.into(),
            set_starts: arena.set_starts.into(),
            row_sets: arena.row_sets.into(),
            max_item,
        }
    }

    /// Assembles a database directly from its three CSR columns (any
    /// storage backend) — the [`crate::flatfile`] loader's entry point.
    /// The columns must satisfy the arena invariants (validated by the
    /// loader): both boundary columns non-empty, starting at 0, monotone,
    /// and in bounds of the next column out.
    pub fn from_columns(
        items: DbStorage<Item>,
        set_starts: DbStorage<u32>,
        row_sets: DbStorage<u32>,
        max_item: Option<Item>,
    ) -> FlatDb {
        FlatDb { items, set_starts, row_sets, max_item }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.row_sets.len() - 1
    }

    /// True when the database had no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest item id present, or `None` for an item-free database —
    /// the flat counterpart of [`SequenceDatabase::max_item`].
    #[inline]
    pub fn max_item(&self) -> Option<Item> {
        self.max_item
    }

    /// The view of row `i` (same index space as the source database).
    #[inline]
    pub fn row(&self, i: usize) -> FlatSeq<'_> {
        let s0 = self.row_sets[i] as usize;
        let s1 = self.row_sets[i + 1] as usize;
        FlatSeq { items: &self.items, sets: &self.set_starts[s0..=s1] }
    }

    /// Iterates all row views in database order.
    pub fn rows(&self) -> impl Iterator<Item = FlatSeq<'_>> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// Whether the columns borrow from a memory mapping (diagnostics).
    pub fn is_mapped(&self) -> bool {
        self.items.is_mapped()
    }

    /// The raw CSR columns `(items, set_starts, row_sets)` — the encoding
    /// surface for [`crate::flatfile`].
    pub fn columns(&self) -> (&[Item], &[u32], &[u32]) {
        (&self.items, &self.set_starts, &self.row_sets)
    }
}

/// A flattened-pair sequence key in some word encoding — the abstraction the
/// k-sorted database is generic over.
///
/// An implementation stores a sequence's flattened `(item,
/// transaction-number)` pairs in a form whose `Ord` **is** the comparative
/// order of Definition 2.2, and supports the one mutation mining needs:
/// appending the single pair contributed by an extension element. The
/// encoding must be invertible so results can be reported as nested
/// sequences.
///
/// Two encodings exist: [`FlatKey`] (one `u64` word per pair — lossless,
/// always applicable) and [`crate::packed::PackedKey`] (one `u32` word per
/// pair — half the bytes per compare, applicable when the database fits the
/// packed budget; see [`crate::packed::fits_packed_budget`]).
pub trait SeqKey: Ord + Clone + std::fmt::Debug {
    /// Builds the key of `seq`.
    fn key_of(seq: &Sequence) -> Self;

    /// The key of `self` extended by `elem` (appends exactly one pair).
    fn extended_key(&self, elem: ExtElem) -> Self;

    /// Reconstructs the nested sequence.
    fn to_sequence(&self) -> Sequence;

    /// [`SeqKey::to_sequence`], consuming the key.
    fn into_sequence(self) -> Sequence;

    /// Number of flattened pairs (the sequence's length `k`).
    fn n_pairs(&self) -> usize;

    /// Compares `self` (whole) against `bound` *without its last pair* —
    /// i.e. against the flattened `(k-1)`-prefix `X` of a condition
    /// k-sequence. Dropping a sequence's last flattened pair is exactly
    /// taking its `(k-1)`-prefix (whether the last itemset shrinks or
    /// disappears), so this compares in the comparative order of
    /// Definition 2.2 without materializing any nested sequence.
    fn cmp_to_bound_prefix(&self, bound: &Self) -> std::cmp::Ordering;

    /// The last flattened pair, as an extension element of the key without
    /// it (`Itemset` when it shares its transaction with the previous pair).
    /// Requires at least two pairs — condition sequences have length ≥ 2.
    fn last_ext(&self) -> ExtElem;
}

/// Packs one flattened pair into a `u64` word: item id in the high 32 bits,
/// transaction number in the low 32. The fields don't overlap, so unsigned
/// word order equals the lexicographic `(item, txn)` pair order — and
/// word-*sequence* order equals the comparative order of Definition 2.2.
#[inline]
pub(crate) fn pack64(item: Item, txn: u32) -> u64 {
    ((item.0 as u64) << 32) | txn as u64
}

/// Inverse of [`pack64`].
#[inline]
pub(crate) fn unpack64(word: u64) -> (Item, u32) {
    (Item((word >> 32) as u32), word as u32)
}

/// A sequence key stored directly in flattened form: each `(item,
/// transaction-number)` pair of Definition 2.1 packed into one `u64` word
/// (item in the high half), so the lexicographic word order — which Rust's
/// slice `Ord` and the vectorized [`crate::simd::cmp_u64`] both compute,
/// with shorter prefixes smaller — is exactly the comparative order of
/// Definition 2.2.
///
/// Keying the k-sorted database's AVL tree by `FlatKey` memoizes the
/// flattening (every tree descent is one word-slice compare), and because
/// the flattened form is invertible, no nested [`Sequence`] is stored at
/// all: one is reconstructed only when a key is reported or split into a
/// re-keying condition. Keys drained and discarded by the Lemma 2.2 skips
/// never materialize one.
#[derive(Debug, Clone)]
pub struct FlatKey {
    words: Vec<u64>,
}

impl FlatKey {
    /// Flattens `seq` into a key.
    pub fn new(seq: &Sequence) -> FlatKey {
        let mut words = Vec::with_capacity(seq.length());
        words.extend(seq.flat_iter().map(|(i, t)| pack64(i, t)));
        FlatKey { words }
    }

    /// The key of `self` extended by `elem` — an extension element always
    /// appends exactly one flattened pair, so no sequence is built.
    pub fn extended(&self, elem: ExtElem) -> FlatKey {
        let last_txn = self.words.last().map_or(0, |&w| w as u32);
        debug_assert!(
            last_txn > 0 || elem.mode == ExtMode::Sequence,
            "itemset extension of an empty key"
        );
        let txn = match elem.mode {
            ExtMode::Itemset => last_txn,
            ExtMode::Sequence => last_txn + 1,
        };
        let mut words = Vec::with_capacity(self.words.len() + 1);
        words.extend_from_slice(&self.words);
        words.push(pack64(elem.item, txn));
        FlatKey { words }
    }

    /// Reconstructs the nested sequence (the flattening is invertible:
    /// transaction numbers recover the grouping).
    pub fn to_sequence(&self) -> Sequence {
        let mut itemsets = Vec::with_capacity(self.words.last().map_or(0, |&w| w as u32 as usize));
        let mut i = 0;
        while i < self.words.len() {
            let txn = self.words[i] as u32;
            let mut items = Vec::new();
            while i < self.words.len() && self.words[i] as u32 == txn {
                items.push(unpack64(self.words[i]).0);
                i += 1;
            }
            itemsets.push(Itemset::from_sorted(items));
        }
        Sequence::new(itemsets)
    }

    /// [`FlatKey::to_sequence`], consuming the key.
    pub fn into_sequence(self) -> Sequence {
        self.to_sequence()
    }

    /// The flattened pairs, decoded from the packed words.
    #[inline]
    pub fn pairs(&self) -> impl Iterator<Item = (Item, u32)> + '_ {
        self.words.iter().map(|&w| unpack64(w))
    }

    /// The packed `u64` words (one per flattened pair, comparison-ready).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

// The packed flattened form is invertible (transaction numbers recover the
// grouping, the fields don't overlap), so word equality coincides with
// sequence equality and the manual impls below stay consistent with each
// other.
impl PartialEq for FlatKey {
    fn eq(&self, other: &FlatKey) -> bool {
        self.words == other.words
    }
}

impl Eq for FlatKey {}

impl PartialOrd for FlatKey {
    fn partial_cmp(&self, other: &FlatKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FlatKey {
    fn cmp(&self, other: &FlatKey) -> std::cmp::Ordering {
        crate::simd::cmp_u64(&self.words, &other.words)
    }
}

impl SeqKey for FlatKey {
    #[inline]
    fn key_of(seq: &Sequence) -> FlatKey {
        FlatKey::new(seq)
    }

    #[inline]
    fn extended_key(&self, elem: ExtElem) -> FlatKey {
        self.extended(elem)
    }

    #[inline]
    fn to_sequence(&self) -> Sequence {
        FlatKey::to_sequence(self)
    }

    #[inline]
    fn into_sequence(self) -> Sequence {
        FlatKey::into_sequence(self)
    }

    #[inline]
    fn n_pairs(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn cmp_to_bound_prefix(&self, bound: &FlatKey) -> std::cmp::Ordering {
        self.words.as_slice().cmp(&bound.words[..bound.words.len() - 1])
    }

    #[inline]
    fn last_ext(&self) -> ExtElem {
        let n = self.words.len();
        debug_assert!(n >= 2, "last_ext of a key shorter than 2 pairs");
        let (item, txn) = unpack64(self.words[n - 1]);
        let mode =
            if txn == self.words[n - 2] as u32 { ExtMode::Itemset } else { ExtMode::Sequence };
        ExtElem { item, mode }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::cmp_sequences;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn item(c: char) -> Item {
        Item::from_letter(c).unwrap()
    }

    #[test]
    fn arena_round_trips_sequences() {
        let texts = ["(a,e,g)(b)(h)(f)(c)(b,f)", "(b)(d,f)(e)", "(b,f,g)", "(f)(a,g)(b,f,h)(b,f)"];
        let mut arena = FlatArena::new();
        for t in &texts {
            arena.push_sequence(&seq(t));
        }
        assert_eq!(arena.len(), texts.len());
        for (r, t) in texts.iter().enumerate() {
            let original = seq(t);
            let view = arena.row(r);
            assert_eq!(view.to_sequence(), original, "row {r}");
            assert_eq!(view.length(), original.length());
            assert_eq!(view.n_transactions(), original.n_transactions());
        }
    }

    #[test]
    fn view_flat_pairs_match_flat_iter() {
        let s = seq("(a)(b)(c,d)(e)");
        let mut arena = FlatArena::new();
        arena.push_sequence(&s);
        let via_view: Vec<(Item, u32)> = flat_pairs(arena.row(0)).collect();
        let via_seq: Vec<(Item, u32)> = s.flat_iter().collect();
        assert_eq!(via_view, via_seq);
        // And through the &Sequence impl of the trait.
        let via_ref: Vec<(Item, u32)> = flat_pairs(&s).collect();
        assert_eq!(via_ref, via_seq);
    }

    #[test]
    fn push_filtered_drops_occurrences_and_renumbers() {
        // Table 6 -> Table 7: CID 1 (a,d)(d)(a,g,h)(c) reduced to (a)(a,g,h)(c).
        let s = seq("(a,d)(d)(a,g,h)(c)");
        let mut arena = FlatArena::new();
        let r = arena.push_filtered(&s, |_, i| i != item('d'));
        assert_eq!(arena.row(r).to_sequence(), seq("(a)(a,g,h)(c)"));
        // The emptied second transaction vanished: 3 transactions remain.
        assert_eq!(arena.row(r).n_transactions(), 3);
    }

    #[test]
    fn pop_row_reclaims_storage() {
        let mut arena = FlatArena::new();
        arena.push_sequence(&seq("(a,b)(c)"));
        let before = arena.clone();
        arena.push_sequence(&seq("(d)(e,f)"));
        arena.pop_row();
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.items, before.items);
        assert_eq!(arena.set_starts, before.set_starts);
        assert_eq!(arena.row_sets, before.row_sets);
        // The arena stays usable after a rollback.
        let r = arena.push_sequence(&seq("(g)"));
        assert_eq!(arena.row(r).to_sequence(), seq("(g)"));
    }

    #[test]
    fn empty_rows_are_representable() {
        let mut arena = FlatArena::new();
        let r = arena.push_filtered(&seq("(a)(b)"), |_, _| false);
        assert_eq!(arena.row(r).n_transactions(), 0);
        assert_eq!(arena.row(r).length(), 0);
        assert_eq!(arena.row(r).to_sequence(), Sequence::empty());
    }

    #[test]
    fn flat_db_mirrors_the_database() {
        let db = SequenceDatabase::from_parsed(&["(a,e,g)(b)", "(b)(d,f)(e)", "(b,f,g)"]).unwrap();
        let flat = FlatDb::from_database(&db);
        assert_eq!(flat.len(), db.len());
        for i in 0..db.len() {
            assert_eq!(&flat.row(i).to_sequence(), db.sequence(i));
        }
        assert!(FlatDb::from_database(&SequenceDatabase::new()).is_empty());
    }

    #[test]
    fn view_first_txn_containing_matches_sequence() {
        let s = seq("(b)(a)(f)(a,c,e,g)");
        let mut arena = FlatArena::new();
        arena.push_sequence(&s);
        let view = arena.row(0);
        for c in ['a', 'b', 'c', 'f', 'g', 'z'] {
            assert_eq!(
                view.first_txn_containing(item(c)),
                s.first_txn_containing(item(c)),
                "item {c}"
            );
        }
    }

    #[test]
    fn flat_key_order_is_the_comparative_order() {
        let texts = [
            "(a)(b)(h)",
            "(a)(c)(f)",
            "(a,b)(c)",
            "(a)(b,c)",
            "(a)(b)",
            "(a)(b)(c)",
            "(b,f,g)",
            "(a,c,d)(b,d)",
            "(a,d,e)(a)",
        ];
        for x in &texts {
            for y in &texts {
                let (sx, sy) = (seq(x), seq(y));
                assert_eq!(
                    FlatKey::new(&sx).cmp(&FlatKey::new(&sy)),
                    cmp_sequences(&sx, &sy),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn flat_key_round_trips_its_sequence() {
        let s = seq("(a)(b,c)");
        let key = FlatKey::new(&s);
        let pairs: Vec<(Item, u32)> = key.pairs().collect();
        assert_eq!(pairs, vec![(item('a'), 1), (item('b'), 2), (item('c'), 2)]);
        assert_eq!(key.to_sequence(), s);
        assert_eq!(key.into_sequence(), s);
        for t in ["(a)", "(a,b,c)", "(a)(a)(a)", "(b,f,g)(a)(c,d)"] {
            assert_eq!(FlatKey::new(&seq(t)).to_sequence(), seq(t), "{t}");
        }
    }

    #[test]
    fn flat_key_extension_appends_one_pair() {
        let key = FlatKey::new(&seq("(a)(b)"));
        let itemset_ext = key.extended(ExtElem { item: item('c'), mode: ExtMode::Itemset });
        assert_eq!(itemset_ext.to_sequence(), seq("(a)(b,c)"));
        let seq_ext = key.extended(ExtElem { item: item('a'), mode: ExtMode::Sequence });
        assert_eq!(seq_ext.to_sequence(), seq("(a)(b)(a)"));
        // Agrees with the nested extension for both modes.
        for (elem, text) in [
            (ExtElem { item: item('z'), mode: ExtMode::Itemset }, "(a)(b)"),
            (ExtElem { item: item('a'), mode: ExtMode::Sequence }, "(a)(b)"),
        ] {
            let s = seq(text);
            assert_eq!(FlatKey::new(&s).extended(elem), FlatKey::new(&s.extended(elem)));
        }
    }
}
