//! Top-K frequent-sequence mining, as a wrapper over any
//! [`SequentialMiner`].
//!
//! Instead of a support threshold, the caller asks for (at least) the `k`
//! highest-support sequences of length ≥ `min_length`. The wrapper runs the
//! underlying miner with a geometrically *descending* threshold until enough
//! patterns surface, then reports every pattern whose support reaches the
//! k-th highest (so ties at the cut are all included and the result is
//! deterministic). This is the standard threshold-probing reduction — the
//! miner itself needs no changes, and DISC's "no counting below the
//! threshold" property makes the probing passes cheap.

use crate::database::SequenceDatabase;
use crate::miner::SequentialMiner;
use crate::result::MiningResult;
use crate::sequence::Sequence;
use crate::support::MinSupport;

/// Top-K mining over any base miner.
///
/// **Hazard:** when the database holds fewer than `k` qualifying patterns,
/// probing descends all the way to δ = 1, where the frequent set (and the
/// runtime) is exponential on non-trivial data. Keep `k` within the realistic
/// pattern count, or bound the base miner (e.g. `BruteForce::with_max_length`).
#[derive(Debug, Clone)]
pub struct TopK<M> {
    /// The underlying miner.
    pub miner: M,
    /// How many patterns to return (at least; support ties at the cut are
    /// kept).
    pub k: usize,
    /// Only patterns of at least this length count toward `k` (1 = all;
    /// 2 skips the usually-uninteresting single items).
    pub min_length: usize,
}

impl<M: SequentialMiner> TopK<M> {
    /// A top-`k` wrapper counting patterns of any length.
    pub fn new(miner: M, k: usize) -> TopK<M> {
        TopK { miner, k, min_length: 1 }
    }

    /// Mines the top-k patterns of `db`. Returns fewer than `k` only when
    /// the database does not contain that many distinct sequences of the
    /// requested minimum length.
    pub fn mine_top(&self, db: &SequenceDatabase) -> Vec<(Sequence, u64)> {
        assert!(self.k >= 1 && self.min_length >= 1);
        if db.is_empty() {
            return Vec::new();
        }
        let mut delta = db.len() as u64;
        let mut result: MiningResult;
        loop {
            result = self.miner.mine(db, MinSupport::Count(delta));
            let qualifying = result.iter().filter(|(p, _)| p.length() >= self.min_length).count();
            if qualifying >= self.k || delta == 1 {
                break;
            }
            // Geometric descent: few probing passes, each a superset of the
            // previous result.
            delta = (delta / 2).max(1);
        }

        let mut patterns: Vec<(Sequence, u64)> = result
            .iter()
            .filter(|(p, _)| p.length() >= self.min_length)
            .map(|(p, s)| (p.clone(), s))
            .collect();
        // Highest support first; comparative order breaks ties stably.
        patterns.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if patterns.len() > self.k {
            let cut = patterns[self.k - 1].1;
            patterns.retain(|(_, s)| *s >= cut);
        }
        patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForce;
    use crate::parse::parse_sequence;

    fn db() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&["(a)(b)(c)", "(a)(b)(c)", "(a)(b)", "(a)(c)", "(a)", "(d)"])
            .unwrap()
    }

    #[test]
    fn returns_the_k_highest_supports() {
        let top = TopK::new(BruteForce::default(), 3).mine_top(&db());
        // Supports: (a):5, (b):3, (a)(b):3, (c):3, (a)(c):3, ... — the cut
        // at k=3 is support 3, and every support-3 pattern is kept.
        assert_eq!(top[0].0, parse_sequence("(a)").unwrap());
        assert_eq!(top[0].1, 5);
        assert!(top.len() >= 3);
        assert!(top.iter().all(|(_, s)| *s >= 3));
        // Nothing with support < cut leaks in.
        assert!(!top.iter().any(|(p, _)| p == &parse_sequence("(d)").unwrap()));
    }

    #[test]
    fn min_length_skips_singletons() {
        let top = TopK { miner: BruteForce::default(), k: 2, min_length: 2 }.mine_top(&db());
        assert!(top.iter().all(|(p, _)| p.length() >= 2));
        assert_eq!(top[0].1, 3); // (a)(b) / (a)(c) / (b)(c) tie at 3
    }

    #[test]
    fn k_larger_than_pattern_space() {
        let small = SequenceDatabase::from_parsed(&["(a)(b)"]).unwrap();
        let top = TopK::new(BruteForce::default(), 50).mine_top(&small);
        assert_eq!(top.len(), 3); // (a), (b), (a)(b)
        assert!(top.iter().all(|(_, s)| *s == 1));
    }

    #[test]
    fn empty_database_yields_nothing() {
        let top = TopK::new(BruteForce::default(), 5).mine_top(&SequenceDatabase::new());
        assert!(top.is_empty());
    }

    #[test]
    fn ties_at_the_cut_are_all_included() {
        let db = SequenceDatabase::from_parsed(&["(a)", "(b)", "(a)", "(b)"]).unwrap();
        let top = TopK::new(BruteForce::default(), 1).mine_top(&db);
        assert_eq!(top.len(), 2, "both support-2 singletons share the cut");
    }
}
