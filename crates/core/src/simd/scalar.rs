//! Portable scalar kernels — the reference semantics every vectorized
//! implementation in this module must reproduce bit-for-bit.
//!
//! These are deliberately the most obvious possible loops: the property
//! tests compare the SSE2/AVX2 kernels against them on arbitrary inputs,
//! so their readability *is* their correctness argument.

use std::cmp::Ordering;

/// Index of the first differing position over the common prefix of `a` and
/// `b`; `min(a.len(), b.len())` when the common prefix is identical.
#[inline]
pub fn first_diff_u32(a: &[u32], b: &[u32]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Index of the first differing position over the common prefix of `a` and
/// `b`; `min(a.len(), b.len())` when the common prefix is identical.
#[inline]
pub fn first_diff_u64(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Lexicographic slice comparison, shorter prefix smaller — the same order
/// as `<[u32]>::cmp`.
#[inline]
pub fn cmp_u32(a: &[u32], b: &[u32]) -> Ordering {
    let n = a.len().min(b.len());
    let d = first_diff_u32(a, b);
    if d < n {
        a[d].cmp(&b[d])
    } else {
        a.len().cmp(&b.len())
    }
}

/// Lexicographic slice comparison, shorter prefix smaller — the same order
/// as `<[u64]>::cmp`.
#[inline]
pub fn cmp_u64(a: &[u64], b: &[u64]) -> Ordering {
    let n = a.len().min(b.len());
    let d = first_diff_u64(a, b);
    if d < n {
        a[d].cmp(&b[d])
    } else {
        a.len().cmp(&b.len())
    }
}

/// Whether `needle` occurs anywhere in `hay`.
#[inline]
pub fn contains_u32(hay: &[u32], needle: u32) -> bool {
    hay.contains(&needle)
}

/// Index of the first element `≥ x` (unsigned), or `hay.len()`.
#[inline]
pub fn first_ge_u32(hay: &[u32], x: u32) -> usize {
    hay.iter().position(|&h| h >= x).unwrap_or(hay.len())
}

/// Index of the first element `> x` (unsigned), or `hay.len()`.
#[inline]
pub fn first_gt_u32(hay: &[u32], x: u32) -> usize {
    hay.iter().position(|&h| h > x).unwrap_or(hay.len())
}

/// `a ⊆ b` for sorted duplicate-free slices: the classic linear merge walk
/// (this is the loop [`crate::itemset::is_sorted_subset`] shipped with
/// before vectorization).
pub fn is_sorted_subset_u32(a: &[u32], b: &[u32]) -> bool {
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                Ordering::Less => continue,
                Ordering::Equal => continue 'outer,
                Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}
