//! `core::arch::x86_64` SSE2 and AVX2 kernels.
//!
//! Compiled only with the `simd` feature on x86_64; callers reach these
//! through the safe dispatch wrappers at the bottom, which take the
//! [`DispatchLevel`] the caller already resolved. Every function returns
//! exactly what its [`super::scalar`] counterpart returns.
//!
//! ## Technique notes
//!
//! * **First-diff** scans compare raw *bytes* (`_mm_cmpeq_epi8`): two words
//!   are equal iff all their bytes are, so the first differing byte's index
//!   divided by the word size is the first differing word — no per-width
//!   compare instruction needed, and one routine serves `u32` and `u64`.
//!   `movemask` bit *i* is byte *i* in memory order (x86 is little-endian),
//!   so `trailing_zeros` of the inverted equality mask is the byte offset.
//! * **Unsigned lane compares**: SSE2/AVX2 only provide *signed* 32-bit
//!   `cmpgt`; biasing both operands by `0x8000_0000` (XOR with the sign
//!   bit) maps unsigned order onto signed order. Packed words use the full
//!   `u32` range, so this matters.
//!
//! ## Safety
//!
//! Unsafe is confined to (a) unaligned vector loads at offsets the loop
//! bounds keep in range, (b) byte-reinterpreting slices of `u32`/`u64`
//! (always valid — plain old data, any alignment suffices for `u8`), and
//! (c) `#[target_feature]` calls, guarded by the dispatch level which is
//! only ever `Sse2`/`Avx2` after `is_x86_feature_detected!` confirmed the
//! feature (see [`super::dispatch_level`] and [`DispatchLevel::available`]).

use super::DispatchLevel;
use core::arch::x86_64::*;

/// A `u32` slice's bytes, in memory order.
#[inline]
fn u32_bytes(a: &[u32]) -> &[u8] {
    // SAFETY: any initialized memory region is valid to view as bytes, and
    // the length in bytes is exactly `4 * a.len()`.
    unsafe { std::slice::from_raw_parts(a.as_ptr().cast::<u8>(), a.len() * 4) }
}

/// A `u64` slice's bytes, in memory order.
#[inline]
fn u64_bytes(a: &[u64]) -> &[u8] {
    // SAFETY: as in `u32_bytes`, with an 8-byte element size.
    unsafe { std::slice::from_raw_parts(a.as_ptr().cast::<u8>(), a.len() * 8) }
}

/// First differing byte index of two equal-length byte slices, or their
/// length — 16 bytes per step.
///
/// # Safety
/// Requires SSE2 (baseline on x86_64, still verified by the dispatcher).
#[target_feature(enable = "sse2")]
unsafe fn first_diff_bytes_sse2(a: &[u8], b: &[u8]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 16 <= len {
        // SAFETY: `i + 16 <= len`, so both 16-byte loads are in bounds;
        // `loadu` has no alignment requirement.
        let va = _mm_loadu_si128(pa.add(i).cast());
        let vb = _mm_loadu_si128(pb.add(i).cast());
        let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
        if eq != 0xFFFF {
            return i + (!eq).trailing_zeros() as usize;
        }
        i += 16;
    }
    while i < len && a[i] == b[i] {
        i += 1;
    }
    i
}

/// First differing byte index of two equal-length byte slices, or their
/// length — 32 bytes per step.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn first_diff_bytes_avx2(a: &[u8], b: &[u8]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 32 <= len {
        // SAFETY: `i + 32 <= len` keeps both unaligned 32-byte loads in
        // bounds.
        let va = _mm256_loadu_si256(pa.add(i).cast());
        let vb = _mm256_loadu_si256(pb.add(i).cast());
        let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
        if eq != u32::MAX {
            return i + (!eq).trailing_zeros() as usize;
        }
        i += 32;
    }
    while i + 16 <= len {
        // SAFETY: AVX2 implies SSE2; bounds as in the SSE2 routine.
        let va = _mm_loadu_si128(pa.add(i).cast());
        let vb = _mm_loadu_si128(pb.add(i).cast());
        let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
        if eq != 0xFFFF {
            return i + (!eq).trailing_zeros() as usize;
        }
        i += 16;
    }
    while i < len && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Membership scan, 4 lanes per step.
///
/// # Safety
/// Requires SSE2.
#[target_feature(enable = "sse2")]
unsafe fn contains_u32_sse2(hay: &[u32], needle: u32) -> bool {
    let p = hay.as_ptr();
    let nv = _mm_set1_epi32(needle as i32);
    let mut i = 0;
    while i + 4 <= hay.len() {
        // SAFETY: `i + 4 <= len` keeps the 16-byte load in bounds.
        let v = _mm_loadu_si128(p.add(i).cast());
        if _mm_movemask_epi8(_mm_cmpeq_epi32(v, nv)) != 0 {
            return true;
        }
        i += 4;
    }
    hay[i..].contains(&needle)
}

/// Membership scan, 8 lanes per step.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn contains_u32_avx2(hay: &[u32], needle: u32) -> bool {
    let p = hay.as_ptr();
    let nv = _mm256_set1_epi32(needle as i32);
    let mut i = 0;
    while i + 8 <= hay.len() {
        // SAFETY: `i + 8 <= len` keeps the 32-byte load in bounds.
        let v = _mm256_loadu_si256(p.add(i).cast());
        if _mm256_movemask_epi8(_mm256_cmpeq_epi32(v, nv)) != 0 {
            return true;
        }
        i += 8;
    }
    hay[i..].contains(&needle)
}

/// First index with `hay[i] >= x` (unsigned), 4 lanes per step.
///
/// # Safety
/// Requires SSE2.
#[target_feature(enable = "sse2")]
unsafe fn first_ge_u32_sse2(hay: &[u32], x: u32) -> usize {
    let p = hay.as_ptr();
    let bias = _mm_set1_epi32(i32::MIN);
    let xv = _mm_xor_si128(_mm_set1_epi32(x as i32), bias);
    let mut i = 0;
    while i + 4 <= hay.len() {
        // SAFETY: `i + 4 <= len` keeps the 16-byte load in bounds.
        let v = _mm_xor_si128(_mm_loadu_si128(p.add(i).cast()), bias);
        // Byte mask of lanes with hay < x; the first lane where that fails
        // is the first lane with hay >= x.
        let lt = _mm_movemask_epi8(_mm_cmpgt_epi32(xv, v)) as u32;
        if lt != 0xFFFF {
            return i + (!lt).trailing_zeros() as usize / 4;
        }
        i += 4;
    }
    while i < hay.len() && hay[i] < x {
        i += 1;
    }
    i
}

/// First index with `hay[i] >= x` (unsigned), 8 lanes per step.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn first_ge_u32_avx2(hay: &[u32], x: u32) -> usize {
    let p = hay.as_ptr();
    let bias = _mm256_set1_epi32(i32::MIN);
    let xv = _mm256_xor_si256(_mm256_set1_epi32(x as i32), bias);
    let mut i = 0;
    while i + 8 <= hay.len() {
        // SAFETY: `i + 8 <= len` keeps the 32-byte load in bounds.
        let v = _mm256_xor_si256(_mm256_loadu_si256(p.add(i).cast()), bias);
        let lt = _mm256_movemask_epi8(_mm256_cmpgt_epi32(xv, v)) as u32;
        if lt != u32::MAX {
            return i + (!lt).trailing_zeros() as usize / 4;
        }
        i += 8;
    }
    while i < hay.len() && hay[i] < x {
        i += 1;
    }
    i
}

/// First index with `hay[i] > x` (unsigned), 4 lanes per step.
///
/// # Safety
/// Requires SSE2.
#[target_feature(enable = "sse2")]
unsafe fn first_gt_u32_sse2(hay: &[u32], x: u32) -> usize {
    let p = hay.as_ptr();
    let bias = _mm_set1_epi32(i32::MIN);
    let xv = _mm_xor_si128(_mm_set1_epi32(x as i32), bias);
    let mut i = 0;
    while i + 4 <= hay.len() {
        // SAFETY: `i + 4 <= len` keeps the 16-byte load in bounds.
        let v = _mm_xor_si128(_mm_loadu_si128(p.add(i).cast()), bias);
        let gt = _mm_movemask_epi8(_mm_cmpgt_epi32(v, xv)) as u32;
        if gt != 0 {
            return i + gt.trailing_zeros() as usize / 4;
        }
        i += 4;
    }
    while i < hay.len() && hay[i] <= x {
        i += 1;
    }
    i
}

/// First index with `hay[i] > x` (unsigned), 8 lanes per step.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn first_gt_u32_avx2(hay: &[u32], x: u32) -> usize {
    let p = hay.as_ptr();
    let bias = _mm256_set1_epi32(i32::MIN);
    let xv = _mm256_xor_si256(_mm256_set1_epi32(x as i32), bias);
    let mut i = 0;
    while i + 8 <= hay.len() {
        // SAFETY: `i + 8 <= len` keeps the 32-byte load in bounds.
        let v = _mm256_xor_si256(_mm256_loadu_si256(p.add(i).cast()), bias);
        let gt = _mm256_movemask_epi8(_mm256_cmpgt_epi32(v, xv)) as u32;
        if gt != 0 {
            return i + gt.trailing_zeros() as usize / 4;
        }
        i += 8;
    }
    while i < hay.len() && hay[i] <= x {
        i += 1;
    }
    i
}

// ---- safe dispatch wrappers -------------------------------------------
//
// The `level` arguments below come from `dispatch_level()` /
// `DispatchLevel::available()`, both of which only yield Sse2/Avx2 after
// `is_x86_feature_detected!` reported the feature, so the
// `#[target_feature]` contracts hold. `Scalar` never reaches here (the
// wrappers in mod.rs route it to the scalar module first); it is mapped to
// SSE2 — always present on x86_64 — rather than `unreachable!`.

/// First differing `u32` index over equal-length slices (byte-scan / 4).
pub fn first_diff_u32(level: DispatchLevel, a: &[u32], b: &[u32]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let byte = match level {
        // SAFETY: AVX2 confirmed by feature detection (see above).
        DispatchLevel::Avx2 => unsafe { first_diff_bytes_avx2(u32_bytes(a), u32_bytes(b)) },
        // SAFETY: SSE2 is baseline on x86_64 and confirmed by detection.
        _ => unsafe { first_diff_bytes_sse2(u32_bytes(a), u32_bytes(b)) },
    };
    byte / 4
}

/// First differing `u64` index over equal-length slices (byte-scan / 8).
pub fn first_diff_u64(level: DispatchLevel, a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let byte = match level {
        // SAFETY: AVX2 confirmed by feature detection (see above).
        DispatchLevel::Avx2 => unsafe { first_diff_bytes_avx2(u64_bytes(a), u64_bytes(b)) },
        // SAFETY: SSE2 is baseline on x86_64 and confirmed by detection.
        _ => unsafe { first_diff_bytes_sse2(u64_bytes(a), u64_bytes(b)) },
    };
    byte / 8
}

/// Vectorized membership scan.
pub fn contains_u32(level: DispatchLevel, hay: &[u32], needle: u32) -> bool {
    match level {
        // SAFETY: AVX2 confirmed by feature detection (see above).
        DispatchLevel::Avx2 => unsafe { contains_u32_avx2(hay, needle) },
        // SAFETY: SSE2 is baseline on x86_64 and confirmed by detection.
        _ => unsafe { contains_u32_sse2(hay, needle) },
    }
}

/// Vectorized first-`≥` scan (unsigned).
pub fn first_ge_u32(level: DispatchLevel, hay: &[u32], x: u32) -> usize {
    match level {
        // SAFETY: AVX2 confirmed by feature detection (see above).
        DispatchLevel::Avx2 => unsafe { first_ge_u32_avx2(hay, x) },
        // SAFETY: SSE2 is baseline on x86_64 and confirmed by detection.
        _ => unsafe { first_ge_u32_sse2(hay, x) },
    }
}

/// Vectorized first-`>` scan (unsigned).
pub fn first_gt_u32(level: DispatchLevel, hay: &[u32], x: u32) -> usize {
    match level {
        // SAFETY: AVX2 confirmed by feature detection (see above).
        DispatchLevel::Avx2 => unsafe { first_gt_u32_avx2(hay, x) },
        // SAFETY: SSE2 is baseline on x86_64 and confirmed by detection.
        _ => unsafe { first_gt_u32_sse2(hay, x) },
    }
}
