//! Runtime-dispatched SIMD kernels for the comparison hot paths.
//!
//! DISC replaces support counting with *ordered comparisons*, so once the
//! data sits in flat arrays (see [`crate::flat`] and [`crate::packed`]) the
//! profile is dominated by a handful of word-scan primitives:
//!
//! * **first-diff / lexicographic compare** over `u32`/`u64` word slices —
//!   the inner step of [`crate::order::cmp_views`], [`crate::flat::FlatKey`]
//!   ordering, and [`crate::packed::PackedKey`] ordering (every AVL descent
//!   of the k-sorted database, every `α₁ = α_δ` test, every
//!   `take_buckets_less_than` boundary scan);
//! * **membership / first-`≥` scans** over sorted `u32` slices — the inner
//!   step of [`crate::itemset::is_sorted_subset`] and therefore of the
//!   leftmost-embedding kernels ([`crate::embed::view_leftmost_end`]) and
//!   the counting-array scans.
//!
//! This module implements those primitives three times: a portable
//! [`scalar`] reference, and `core::arch::x86_64` SSE2 and AVX2 kernels
//! (compiled only with the `simd` cargo feature on x86_64). The
//! implementation actually used is chosen **once per process** by
//! [`dispatch_level`], via `is_x86_feature_detected!`, and can be pinned to
//! the portable fallback with `DISC_FORCE_SCALAR=1` — the hook the CI
//! differential matrix uses to prove all three levels mine bit-identical
//! results.
//!
//! ## Invariant
//!
//! Every public kernel here is a *pure function of its arguments*: for all
//! inputs, all dispatch levels return exactly the same value. The scalar
//! implementations are the specification; the vectorized ones are proven
//! against them by the unit tests below, the property tests in
//! `tests/simd_props.rs` (lane-boundary straddling, empty slices, extreme
//! word values), and CI's three-way differential job.
//!
//! ## Unsafety
//!
//! This module is the only place in the crate allowed to use `unsafe`
//! (the crate root is `#![deny(unsafe_code)]`; the allowance is scoped
//! here). The unsafe surface is exactly: unaligned vector loads from
//! in-bounds slice offsets, and the `#[target_feature]` calling contract,
//! which [`dispatch_level`] upholds by construction. The slice casts in
//! [`items_as_u32`] are sound because [`Item`] is `#[repr(transparent)]`
//! over `u32`.

#![allow(unsafe_code)]

pub mod scalar;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86;

use crate::item::Item;
use std::cmp::Ordering;
use std::sync::OnceLock;

/// Which kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DispatchLevel {
    /// Portable scalar fallback — always available, and the reference
    /// semantics for the other levels.
    Scalar,
    /// 128-bit SSE2 kernels (baseline on `x86_64`).
    Sse2,
    /// 256-bit AVX2 kernels.
    Avx2,
}

impl DispatchLevel {
    /// Stable lowercase name (`scalar` / `sse2` / `avx2`) for logs and
    /// bench reports.
    pub fn name(self) -> &'static str {
        match self {
            DispatchLevel::Scalar => "scalar",
            DispatchLevel::Sse2 => "sse2",
            DispatchLevel::Avx2 => "avx2",
        }
    }

    /// Every level the current build *and* CPU can execute, ascending —
    /// always starts with [`DispatchLevel::Scalar`]. Differential tests
    /// iterate this to compare all reachable implementations.
    pub fn available() -> Vec<DispatchLevel> {
        #[allow(unused_mut)] // scalar-only builds never push
        let mut levels = vec![DispatchLevel::Scalar];
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                levels.push(DispatchLevel::Sse2);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                levels.push(DispatchLevel::Avx2);
            }
        }
        levels
    }
}

/// The dispatch level every plain kernel call (e.g. [`cmp_u32`]) uses,
/// decided once per process:
///
/// * builds without the `simd` feature, non-x86_64 targets, and processes
///   started with `DISC_FORCE_SCALAR=1` use [`DispatchLevel::Scalar`];
/// * otherwise the widest of AVX2/SSE2 the CPU reports via
///   `is_x86_feature_detected!`.
pub fn dispatch_level() -> DispatchLevel {
    static LEVEL: OnceLock<DispatchLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect)
}

/// Whether `DISC_FORCE_SCALAR` requests the portable fallback: set and
/// neither `0` nor empty.
fn force_scalar_requested() -> bool {
    match std::env::var("DISC_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

fn detect() -> DispatchLevel {
    if force_scalar_requested() {
        return DispatchLevel::Scalar;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return DispatchLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return DispatchLevel::Sse2;
        }
    }
    DispatchLevel::Scalar
}

/// Reinterprets a sorted item slice as its raw `u32` ids — zero-cost, and
/// order-preserving because [`Item`]'s `Ord` is its id's order.
#[inline]
pub fn items_as_u32(items: &[Item]) -> &[u32] {
    const _: () = assert!(std::mem::size_of::<Item>() == std::mem::size_of::<u32>());
    // SAFETY: `Item` is `#[repr(transparent)]` over `u32`, so an `&[Item]`
    // has exactly the layout of an `&[u32]` of the same length.
    unsafe { std::slice::from_raw_parts(items.as_ptr().cast::<u32>(), items.len()) }
}

/// Vector loads only pay off past this many bytes; shorter inputs go
/// straight to the scalar kernels regardless of the dispatch level. This is
/// a pure performance cutoff — results are identical either way. The
/// threshold is deliberately well above one vector width: the outlined
/// `#[target_feature]` call (uninlinable across the feature boundary) costs
/// more than a scalar loop over a handful of words, and the mining hot path
/// is dominated by short keys (~6 packed words) and small itemsets, with
/// only the boundary scans and long transactions reaching vector length.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const SIMD_MIN_BYTES: usize = 64;

/// Index of the first position where `a` and `b` differ, over their common
/// prefix; `min(a.len(), b.len())` when that prefix is identical.
#[inline]
pub fn first_diff_u32(a: &[u32], b: &[u32]) -> usize {
    first_diff_u32_at(dispatch_level(), a, b)
}

/// [`first_diff_u32`] pinned to an explicit dispatch level (differential
/// tests and benches; [`DispatchLevel::available`] lists the valid levels).
#[inline]
pub fn first_diff_u32_at(level: DispatchLevel, a: &[u32], b: &[u32]) -> usize {
    let n = a.len().min(b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if level != DispatchLevel::Scalar && n * 4 >= SIMD_MIN_BYTES {
        return x86::first_diff_u32(level, &a[..n], &b[..n]);
    }
    let _ = (level, n);
    scalar::first_diff_u32(a, b)
}

/// Index of the first position where `a` and `b` differ, over their common
/// prefix; `min(a.len(), b.len())` when that prefix is identical.
#[inline]
pub fn first_diff_u64(a: &[u64], b: &[u64]) -> usize {
    first_diff_u64_at(dispatch_level(), a, b)
}

/// [`first_diff_u64`] pinned to an explicit dispatch level.
#[inline]
pub fn first_diff_u64_at(level: DispatchLevel, a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if level != DispatchLevel::Scalar && n * 8 >= SIMD_MIN_BYTES {
        return x86::first_diff_u64(level, &a[..n], &b[..n]);
    }
    let _ = (level, n);
    scalar::first_diff_u64(a, b)
}

/// Lexicographic comparison of two `u32` slices (shorter prefix smaller) —
/// identical to `<[u32]>::cmp`, vectorized.
#[inline]
pub fn cmp_u32(a: &[u32], b: &[u32]) -> Ordering {
    cmp_u32_at(dispatch_level(), a, b)
}

/// [`cmp_u32`] pinned to an explicit dispatch level.
#[inline]
pub fn cmp_u32_at(level: DispatchLevel, a: &[u32], b: &[u32]) -> Ordering {
    let n = a.len().min(b.len());
    let d = first_diff_u32_at(level, a, b);
    if d < n {
        a[d].cmp(&b[d])
    } else {
        a.len().cmp(&b.len())
    }
}

/// Lexicographic comparison of two `u64` slices (shorter prefix smaller) —
/// identical to `<[u64]>::cmp`, vectorized.
#[inline]
pub fn cmp_u64(a: &[u64], b: &[u64]) -> Ordering {
    cmp_u64_at(dispatch_level(), a, b)
}

/// [`cmp_u64`] pinned to an explicit dispatch level.
#[inline]
pub fn cmp_u64_at(level: DispatchLevel, a: &[u64], b: &[u64]) -> Ordering {
    let n = a.len().min(b.len());
    let d = first_diff_u64_at(level, a, b);
    if d < n {
        a[d].cmp(&b[d])
    } else {
        a.len().cmp(&b.len())
    }
}

/// Lexicographic comparison of two item slices — [`cmp_u32`] through
/// [`items_as_u32`].
#[inline]
pub fn cmp_items(a: &[Item], b: &[Item]) -> Ordering {
    cmp_u32(items_as_u32(a), items_as_u32(b))
}

/// [`first_diff_u32`] over item slices — the shared-prefix skip used by
/// [`crate::order::cmp_views`].
#[inline]
pub fn first_diff_items(a: &[Item], b: &[Item]) -> usize {
    first_diff_u32(items_as_u32(a), items_as_u32(b))
}

/// Whether `needle` occurs anywhere in `hay` (no sortedness required).
#[inline]
pub fn contains_u32(hay: &[u32], needle: u32) -> bool {
    contains_u32_at(dispatch_level(), hay, needle)
}

/// [`contains_u32`] pinned to an explicit dispatch level.
#[inline]
pub fn contains_u32_at(level: DispatchLevel, hay: &[u32], needle: u32) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if level != DispatchLevel::Scalar && hay.len() * 4 >= SIMD_MIN_BYTES {
        return x86::contains_u32(level, hay, needle);
    }
    let _ = level;
    scalar::contains_u32(hay, needle)
}

/// Index of the first element `≥ x` (unsigned), or `hay.len()` when none.
/// On a sorted slice this equals `hay.partition_point(|&h| h < x)`.
#[inline]
pub fn first_ge_u32(hay: &[u32], x: u32) -> usize {
    first_ge_u32_at(dispatch_level(), hay, x)
}

/// [`first_ge_u32`] pinned to an explicit dispatch level.
#[inline]
pub fn first_ge_u32_at(level: DispatchLevel, hay: &[u32], x: u32) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if level != DispatchLevel::Scalar && hay.len() * 4 >= SIMD_MIN_BYTES {
        return x86::first_ge_u32(level, hay, x);
    }
    let _ = level;
    scalar::first_ge_u32(hay, x)
}

/// Index of the first element `> x` (unsigned), or `hay.len()` when none.
/// On a sorted slice this equals `hay.partition_point(|&h| h <= x)` — the
/// boundary scan the extension kernels use to skip past a pattern's max
/// item.
#[inline]
pub fn first_gt_u32(hay: &[u32], x: u32) -> usize {
    first_gt_u32_at(dispatch_level(), hay, x)
}

/// [`first_gt_u32`] pinned to an explicit dispatch level.
#[inline]
pub fn first_gt_u32_at(level: DispatchLevel, hay: &[u32], x: u32) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if level != DispatchLevel::Scalar && hay.len() * 4 >= SIMD_MIN_BYTES {
        return x86::first_gt_u32(level, hay, x);
    }
    let _ = level;
    scalar::first_gt_u32(hay, x)
}

/// [`first_gt_u32`] over an item slice: the vectorized replacement for
/// `items.partition_point(|&i| i <= bound)` on sorted itemsets.
#[inline]
pub fn first_gt_items(items: &[Item], bound: Item) -> usize {
    first_gt_u32(items_as_u32(items), bound.id())
}

/// `a ⊆ b` for sorted duplicate-free `u32` slices — a merge walk whose
/// "advance to the next candidate" step is a vectorized first-`≥` scan.
#[inline]
pub fn is_sorted_subset_u32(a: &[u32], b: &[u32]) -> bool {
    is_sorted_subset_u32_at(dispatch_level(), a, b)
}

/// [`is_sorted_subset_u32`] pinned to an explicit dispatch level.
pub fn is_sorted_subset_u32_at(level: DispatchLevel, a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    if let [x] = a {
        // Single-item patterns (the overwhelmingly common case in the
        // extension kernels) reduce to membership.
        return contains_u32_at(level, b, *x);
    }
    let mut pos = 0usize;
    for &x in a {
        let k = first_ge_u32_at(level, &b[pos..], x);
        pos += k;
        if pos >= b.len() || b[pos] != x {
            return false;
        }
        pos += 1;
    }
    true
}

/// `a ⊆ b` over sorted item slices — [`is_sorted_subset_u32`] through
/// [`items_as_u32`].
#[inline]
pub fn is_sorted_subset_items(a: &[Item], b: &[Item]) -> bool {
    is_sorted_subset_u32(items_as_u32(a), items_as_u32(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random words covering small and extreme values
    /// (the packed representation uses the full u32 range).
    fn words(seed: u64, len: usize) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                match state >> 62 {
                    0 => (state >> 32) as u32,       // full range
                    1 => (state >> 48) as u32 & 0x7, // tiny, forces runs of equals
                    2 => u32::MAX - ((state >> 48) as u32 & 0x3),
                    _ => (state >> 40) as u32 & 0xFFF, // mid
                }
            })
            .collect()
    }

    #[test]
    fn all_levels_agree_on_first_diff_and_cmp() {
        let levels = DispatchLevel::available();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100] {
            for seed in 0..8u64 {
                let a = words(seed, len);
                let mut b = a.clone();
                if !b.is_empty() {
                    // Perturb one position so diffs land everywhere,
                    // including the last lane.
                    let at = (seed as usize * 7 + len) % b.len();
                    b[at] ^= 1 << (seed % 32);
                }
                let a64: Vec<u64> = a.iter().map(|&w| (w as u64) << 17 | w as u64).collect();
                let b64: Vec<u64> = b.iter().map(|&w| (w as u64) << 17 | w as u64).collect();
                for &lvl in &levels {
                    assert_eq!(
                        first_diff_u32_at(lvl, &a, &b),
                        scalar::first_diff_u32(&a, &b),
                        "{lvl:?} len {len} seed {seed}"
                    );
                    assert_eq!(cmp_u32_at(lvl, &a, &b), a.cmp(&b), "{lvl:?} len {len} seed {seed}");
                    assert_eq!(
                        first_diff_u64_at(lvl, &a64, &b64),
                        scalar::first_diff_u64(&a64, &b64),
                        "{lvl:?} len {len} seed {seed}"
                    );
                    assert_eq!(
                        cmp_u64_at(lvl, &a64, &b64),
                        a64.cmp(&b64),
                        "{lvl:?} len {len} seed {seed}"
                    );
                    // Identical slices and length mismatches.
                    assert_eq!(first_diff_u32_at(lvl, &a, &a), a.len(), "{lvl:?}");
                    assert_eq!(cmp_u32_at(lvl, &a, &a), std::cmp::Ordering::Equal);
                    if len > 0 {
                        assert_eq!(cmp_u32_at(lvl, &a[..len - 1], &a), a[..len - 1].cmp(&a));
                        assert_eq!(
                            cmp_u64_at(lvl, &a64, &a64[..len - 1]),
                            a64[..].cmp(&a64[..len - 1])
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_levels_agree_on_scans() {
        let levels = DispatchLevel::available();
        for len in [0usize, 1, 3, 4, 5, 8, 13, 16, 21, 32, 40] {
            for seed in 0..8u64 {
                let mut hay = words(seed, len);
                hay.sort_unstable();
                hay.dedup();
                let probes: Vec<u32> = hay
                    .iter()
                    .copied()
                    .chain([0, 1, u32::MAX, u32::MAX - 1, 0x8000_0000, 42])
                    .chain(hay.iter().map(|&h| h.wrapping_add(1)))
                    .collect();
                for &x in &probes {
                    for &lvl in &levels {
                        assert_eq!(
                            contains_u32_at(lvl, &hay, x),
                            scalar::contains_u32(&hay, x),
                            "contains {lvl:?} len {len} x {x}"
                        );
                        assert_eq!(
                            first_ge_u32_at(lvl, &hay, x),
                            hay.partition_point(|&h| h < x),
                            "first_ge {lvl:?} len {len} x {x}"
                        );
                        assert_eq!(
                            first_gt_u32_at(lvl, &hay, x),
                            hay.partition_point(|&h| h <= x),
                            "first_gt {lvl:?} len {len} x {x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_levels_agree_on_subset() {
        let levels = DispatchLevel::available();
        for seed in 0..16u64 {
            let mut b = words(seed, 24);
            b.sort_unstable();
            b.dedup();
            // Subsets, non-subsets, empty, and the full set.
            let mut cases: Vec<Vec<u32>> = vec![
                vec![],
                b.clone(),
                b.iter().copied().step_by(2).collect(),
                b.iter().copied().step_by(3).collect(),
            ];
            if let Some(&last) = b.last() {
                cases.push(vec![last]);
                cases.push(vec![last.wrapping_add(1)]);
                let mut miss = b.clone();
                miss.push(last.wrapping_add(1));
                miss.sort_unstable();
                miss.dedup();
                cases.push(miss);
            }
            for a in &cases {
                let expected = scalar::is_sorted_subset_u32(a, &b);
                for &lvl in &levels {
                    assert_eq!(
                        is_sorted_subset_u32_at(lvl, a, &b),
                        expected,
                        "{lvl:?} seed {seed} a {a:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_ge_first_gt_work_on_unsorted_input_too() {
        // The kernels promise "first position satisfying the predicate"
        // even without sortedness (the scans are linear, not binary).
        let hay = [5u32, 1, 9, 0, 9, 2, 7, 3, 8, 8, 1, 4, 6, 2, 0, 9, 5];
        for x in 0..=10u32 {
            for &lvl in &DispatchLevel::available() {
                assert_eq!(first_ge_u32_at(lvl, &hay, x), scalar::first_ge_u32(&hay, x), "{lvl:?}");
                assert_eq!(first_gt_u32_at(lvl, &hay, x), scalar::first_gt_u32(&hay, x), "{lvl:?}");
            }
        }
    }

    #[test]
    fn items_cast_is_orderfaithful() {
        let items = [Item(0), Item(7), Item(u32::MAX)];
        assert_eq!(items_as_u32(&items), &[0, 7, u32::MAX]);
        assert_eq!(items_as_u32(&[]), &[] as &[u32]);
        assert_eq!(cmp_items(&items[..2], &items), std::cmp::Ordering::Less);
    }

    #[test]
    fn dispatch_level_is_available_and_stable() {
        let level = dispatch_level();
        assert!(DispatchLevel::available().contains(&level));
        assert_eq!(dispatch_level(), level);
        assert_eq!(DispatchLevel::available()[0], DispatchLevel::Scalar);
        assert!(!level.name().is_empty());
    }
}
