//! A brute-force reference miner.
//!
//! Level-wise prefix growth with definitional support counting: frequent
//! 1-sequences come from a scan; every frequent (k-1)-sequence is extended by
//! every frequent item, in both the itemset form (item larger than the last
//! flat item) and the sequence form, and candidates are counted by scanning
//! the whole database with [`crate::contains`]. Completeness follows from the
//! anti-monotone property: any frequent k-sequence is a one-item extension of
//! its own (k-1)-prefix, which is frequent.
//!
//! Quadratic-ish and slow by design — this is the ground truth every other
//! miner is validated against, so it stays as close to the definitions as
//! possible.

use crate::database::SequenceDatabase;
use crate::guard::{run_guarded, AbortReason, GuardedResult, MineGuard};
use crate::item::Item;
use crate::miner::SequentialMiner;
use crate::result::MiningResult;
use crate::sequence::{ExtElem, ExtMode, Sequence};
use crate::support::{support_count, MinSupport};

/// The brute-force reference miner. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct BruteForce {
    /// Optional cap on pattern length (0 = unlimited), to bound runtime on
    /// adversarial property-test inputs.
    pub max_length: usize,
}

impl BruteForce {
    /// A miner that stops after patterns of length `max_length`.
    pub fn with_max_length(max_length: usize) -> BruteForce {
        BruteForce { max_length }
    }

    /// The cooperative core: one checkpoint per counted candidate, one
    /// pattern note per frequent pattern found.
    fn mine_inner(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
    ) -> Result<(), AbortReason> {
        let delta = min_support.resolve(db.len());

        // Frequent 1-sequences.
        let mut items: Vec<Item> = db.sequences().flat_map(|s| s.distinct_items()).collect();
        items.sort_unstable();
        items.dedup();
        let mut frequent_items = Vec::new();
        for &item in &items {
            guard.checkpoint()?;
            let support = support_count(db, &Sequence::single(item));
            if support >= delta {
                frequent_items.push(item);
                guard.note_pattern()?;
                result.insert(Sequence::single(item), support);
            }
        }

        // Level-wise prefix growth.
        let mut frontier: Vec<Sequence> =
            frequent_items.iter().map(|&i| Sequence::single(i)).collect();
        let mut k = 1usize;
        while !frontier.is_empty() {
            k += 1;
            if self.max_length != 0 && k > self.max_length {
                break;
            }
            let mut next = Vec::new();
            for base in &frontier {
                let last = base.last_flat_item().expect("frontier patterns are non-empty");
                for &item in &frequent_items {
                    // Itemset extension: keeps the flattened form append-only.
                    if item > last {
                        guard.checkpoint()?;
                        let cand = base.extended(ExtElem { item, mode: ExtMode::Itemset });
                        let support = support_count(db, &cand);
                        if support >= delta {
                            guard.note_pattern()?;
                            result.insert(cand.clone(), support);
                            next.push(cand);
                        }
                    }
                    // Sequence extension.
                    guard.checkpoint()?;
                    let cand = base.extended(ExtElem { item, mode: ExtMode::Sequence });
                    let support = support_count(db, &cand);
                    if support >= delta {
                        guard.note_pattern()?;
                        result.insert(cand.clone(), support);
                        next.push(cand);
                    }
                }
            }
            frontier = next;
        }
        Ok(())
    }
}

impl SequentialMiner for BruteForce {
    fn name(&self) -> &str {
        "BruteForce"
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_inner(db, min_support, &guard, &mut result)
            .expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| self.mine_inner(db, min_support, guard, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn frequent_one_sequences_of_table_1() {
        // Section 1.1: with δ = 2 the frequent 1-sequences are
        // <(a)>, <(b)>, <(e)>, <(f)>, <(g)>, <(h)>.
        let r = BruteForce::default().mine(&table1(), MinSupport::Count(2));
        let ones: Vec<String> = r.of_length(1).iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(ones, vec!["(a)", "(b)", "(e)", "(f)", "(g)", "(h)"]);
    }

    #[test]
    fn finds_long_patterns_with_exact_supports() {
        let r = BruteForce::default().mine(&table1(), MinSupport::Count(2));
        assert_eq!(r.support_of(&seq("(a,g)(h)(f)")), Some(2));
        assert_eq!(r.support_of(&seq("(a)(b)(b)")), Some(2));
        assert_eq!(r.support_of(&seq("(a,g)(b)(f)")), Some(2));
        assert!(!r.contains_pattern(&seq("(b)(a)")));
        // Every reported support is the definitional one.
        for (p, s) in r.iter() {
            assert_eq!(s, support_count(&table1(), p), "bad support for {p}");
        }
    }

    #[test]
    fn delta_equal_db_size_means_universal_patterns() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a,c)(b)", "(a)(c)(b)"]).unwrap();
        let r = BruteForce::default().mine(&db, MinSupport::Count(3));
        assert_eq!(r.support_of(&seq("(a)(b)")), Some(3));
        assert_eq!(r.len(), 3); // (a), (b), (a)(b)
    }

    #[test]
    fn max_length_caps_growth() {
        let r = BruteForce::with_max_length(1).mine(&table1(), MinSupport::Count(2));
        assert_eq!(r.max_length(), 1);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn empty_database_yields_nothing() {
        let r = BruteForce::default().mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(r.is_empty());
    }

    #[test]
    fn repeated_items_across_transactions() {
        let db = SequenceDatabase::from_parsed(&["(a)(a)(a)", "(a)(a)"]).unwrap();
        let r = BruteForce::default().mine(&db, MinSupport::Count(2));
        assert_eq!(r.support_of(&seq("(a)(a)")), Some(2));
        assert!(!r.contains_pattern(&seq("(a)(a)(a)")));
    }
}
