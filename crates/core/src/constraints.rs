//! GSP-style **time constraints**: sliding windows and minimum/maximum gaps
//! (Srikant & Agrawal, EDBT 1996 — the "Generalizations" half of the GSP
//! paper, which the DISC paper's related work builds on).
//!
//! Transaction *times* are the 0-based transaction indices (the data model
//! keeps transactions ordered but not timestamped; a dedicated timestamped
//! variant would only change the `time` function). A data sequence contains
//! a pattern `s₁ … sₘ` under constraints when there are transaction windows
//! `[l₁, u₁], …, [lₘ, uₘ]` such that:
//!
//! * element `sᵢ` is contained in the **union** of the transactions in
//!   `[lᵢ, uᵢ]`, and `time(uᵢ) − time(lᵢ) ≤ window`;
//! * `time(lᵢ) − time(uᵢ₋₁) > min_gap` (strict, per GSP);
//! * `time(uᵢ) − time(lᵢ₋₁) ≤ max_gap`.
//!
//! With no window and `min_gap = 0`, `max_gap = ∞` this degenerates to plain
//! containment (property-tested). Containment is decided by dynamic
//! programming over the per-element feasible windows — equivalent to GSP's
//! forward/backward phases but easier to show correct.
//!
//! ## Mining under constraints
//!
//! `max_gap` breaks the anti-monotone property (a data sequence can contain
//! a pattern while violating the gap for one of its subsequences), which is
//! why GSP prunes candidates with **contiguous** subsequences only —
//! [`contiguous_subsequences`] implements that definition, and
//! `disc_baselines::gsp` uses it when constraints are active.

use crate::itemset::Itemset;
use crate::sequence::Sequence;

/// Time constraints for containment, GSP semantics. The default is
/// unconstrained (plain containment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeConstraints {
    /// Sliding window: an element may be assembled from transactions at most
    /// this far apart. `None` = 0 (single transaction, the classic model).
    pub window: Option<u32>,
    /// Minimum gap (strict) between consecutive elements' windows.
    pub min_gap: Option<u32>,
    /// Maximum span from the start of one element's window to the end of the
    /// next's.
    pub max_gap: Option<u32>,
}

impl TimeConstraints {
    /// Plain containment.
    pub fn none() -> TimeConstraints {
        TimeConstraints::default()
    }

    /// True when every field is unset (plain containment applies).
    pub fn is_none(&self) -> bool {
        self.window.is_none() && self.min_gap.is_none() && self.max_gap.is_none()
    }

    fn window(&self) -> u32 {
        self.window.unwrap_or(0)
    }

    fn min_gap(&self) -> u32 {
        self.min_gap.unwrap_or(0)
    }
}

/// A feasible transaction window `[l, u]` hosting one pattern element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    l: u32,
    u: u32,
}

/// All minimal feasible windows for `element` in `hay`: for each end
/// transaction `u`, the largest `l` such that `element ⊆ txns[l..=u]` within
/// the window span (keeping `l` maximal makes gap checks the least
/// constrained, and any feasible assignment can be normalized to maximal
/// `l`s without violating `min_gap`/`window`; `max_gap` prefers larger `l`
/// too, so minimal windows are complete).
fn feasible_windows(hay: &Sequence, element: &Itemset, span: u32) -> Vec<Window> {
    let n = hay.n_transactions();
    let mut out = Vec::new();
    for u in 0..n {
        let lo = u.saturating_sub(span as usize);
        // Walk l downward from u; first l where the union covers `element`.
        let mut missing: Vec<_> = element.iter().collect();
        let mut found: Option<usize> = None;
        for l in (lo..=u).rev() {
            missing.retain(|&item| !hay.itemset(l).contains(item));
            if missing.is_empty() {
                found = Some(l);
                break;
            }
        }
        if let Some(l) = found {
            out.push(Window { l: l as u32, u: u as u32 });
        }
    }
    out
}

/// Containment under time constraints (GSP §"when does a data-sequence
/// contain a sequence").
///
/// ```
/// use disc_core::{constraints::{contains_with, TimeConstraints}, parse_sequence};
///
/// let hay = parse_sequence("(a)(b)(c)(d)").unwrap();
/// let pat = parse_sequence("(a)(d)").unwrap();
/// assert!(contains_with(&hay, &pat, &TimeConstraints::none()));
/// // a and d are 3 transactions apart: a max-gap of 2 rejects the pattern.
/// let tight = TimeConstraints { max_gap: Some(2), ..TimeConstraints::none() };
/// assert!(!contains_with(&hay, &pat, &tight));
/// ```
pub fn contains_with(hay: &Sequence, pat: &Sequence, c: &TimeConstraints) -> bool {
    if pat.is_empty() {
        return true;
    }
    if c.is_none() {
        return crate::embed::contains(hay, pat);
    }
    let per_element: Vec<Vec<Window>> =
        pat.itemsets().iter().map(|e| feasible_windows(hay, e, c.window())).collect();
    if per_element.iter().any(Vec::is_empty) {
        return false;
    }

    // DP: can elements i.. be placed given element i-1 sat in `prev`?
    fn admissible(prev: Window, next: Window, c: &TimeConstraints) -> bool {
        if next.l <= prev.u {
            return false; // windows must advance strictly
        }
        if next.l - prev.u <= c.min_gap() {
            // min_gap is strict: need l_i − u_{i−1} > min_gap. With the
            // default min_gap = 0 this only re-states strict advancement.
            if c.min_gap.is_some() {
                return false;
            }
        }
        if let Some(max_gap) = c.max_gap {
            if next.u - prev.l > max_gap {
                return false;
            }
        }
        true
    }

    // Memoized on (element index, index of the previous element's window):
    // feasibility of the suffix depends on nothing else.
    fn place(
        per_element: &[Vec<Window>],
        i: usize,
        prev: Option<(usize, Window)>,
        c: &TimeConstraints,
        memo: &mut std::collections::HashMap<(usize, usize), bool>,
    ) -> bool {
        if i == per_element.len() {
            return true;
        }
        let memo_key = prev.map(|(pi, _)| (i, pi));
        if let Some(key) = memo_key {
            if let Some(&cached) = memo.get(&key) {
                return cached;
            }
        }
        let ok = per_element[i].iter().enumerate().any(|(wi, &w)| {
            let admitted = match prev {
                Some((_, p)) => admissible(p, w, c),
                None => true,
            };
            admitted && place(per_element, i + 1, Some((wi, w)), c, memo)
        });
        if let Some(key) = memo_key {
            memo.insert(key, ok);
        }
        ok
    }
    let mut memo = std::collections::HashMap::new();
    place(&per_element, 0, None, c, &mut memo)
}

/// Support under time constraints, by definitional scanning.
pub fn support_count_with(
    db: &crate::database::SequenceDatabase,
    pattern: &Sequence,
    c: &TimeConstraints,
) -> u64 {
    db.sequences().filter(|s| contains_with(s, pattern, c)).count() as u64
}

/// The **contiguous subsequences** of a sequence (GSP's pruning set under
/// constraints): sequences obtained by dropping an item from the first or
/// last element, or from any element of size ≥ 2 — the drops that cannot
/// widen a gap.
pub fn contiguous_subsequences(seq: &Sequence) -> Vec<Sequence> {
    let mut out = Vec::new();
    let n = seq.n_transactions();
    let mut flat_pos = 0usize;
    for (t, set) in seq.itemsets().iter().enumerate() {
        for j in 0..set.len() {
            let droppable = t == 0 || t == n - 1 || set.len() >= 2;
            if droppable {
                out.push(drop_flat_at(seq, flat_pos + j));
            }
        }
        flat_pos += set.len();
    }
    out.sort();
    out.dedup();
    out
}

/// Drops the `i`-th flattened element, erasing an emptied transaction.
fn drop_flat_at(seq: &Sequence, i: usize) -> Sequence {
    let mut flat_pos = 0usize;
    let mut out: Vec<Itemset> = Vec::with_capacity(seq.n_transactions());
    for set in seq.itemsets() {
        if i < flat_pos || i >= flat_pos + set.len() {
            out.push(set.clone());
        } else if let Some(f) = set
            .filtered(|item| set.as_slice().binary_search(&item).expect("member") != i - flat_pos)
        {
            out.push(f);
        }
        flat_pos += set.len();
    }
    Sequence::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::contains;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn unconstrained_matches_plain_containment() {
        let hay = seq("(a,e,g)(b)(h)(f)(c)(b,f)");
        for pat in ["(a)(b)(b)", "(a,g)(h)(f)", "(b)(a)", "(e)(b,f)", "(a,b)"] {
            let p = seq(pat);
            assert_eq!(
                contains_with(&hay, &p, &TimeConstraints::none()),
                contains(&hay, &p),
                "{pat}"
            );
        }
    }

    #[test]
    fn max_gap_rejects_distant_elements() {
        let hay = seq("(a)(x)(x)(b)");
        let pat = seq("(a)(b)");
        assert!(contains_with(&hay, &pat, &TimeConstraints::none()));
        let c = TimeConstraints { max_gap: Some(3), ..Default::default() };
        assert!(contains_with(&hay, &pat, &c));
        let c = TimeConstraints { max_gap: Some(2), ..Default::default() };
        assert!(!contains_with(&hay, &pat, &c));
    }

    #[test]
    fn max_gap_applies_pairwise_not_overall() {
        // a..b gap 2, b..c gap 2, total span 4: max_gap 2 accepts.
        let hay = seq("(a)(x)(b)(x)(c)");
        let pat = seq("(a)(b)(c)");
        let c = TimeConstraints { max_gap: Some(2), ..Default::default() };
        assert!(contains_with(&hay, &pat, &c));
        let c1 = TimeConstraints { max_gap: Some(1), ..Default::default() };
        assert!(!contains_with(&hay, &pat, &c1));
    }

    #[test]
    fn min_gap_forces_separation() {
        let hay = seq("(a)(b)(x)(b)");
        let pat = seq("(a)(b)");
        // min_gap 1 (strict): the adjacent (b) at distance 1 fails, the
        // later (b) at distance 3 passes.
        let c = TimeConstraints { min_gap: Some(1), ..Default::default() };
        assert!(contains_with(&hay, &pat, &c));
        let c3 = TimeConstraints { min_gap: Some(3), ..Default::default() };
        assert!(!contains_with(&hay, &pat, &c3));
    }

    #[test]
    fn min_and_max_gap_interact() {
        // The only b satisfying min_gap > 1 is at distance 3; max_gap 2
        // forbids it.
        let hay = seq("(a)(b)(x)(b)");
        let pat = seq("(a)(b)");
        let c = TimeConstraints { min_gap: Some(1), max_gap: Some(2), ..Default::default() };
        assert!(!contains_with(&hay, &pat, &c));
        let c = TimeConstraints { min_gap: Some(1), max_gap: Some(3), ..Default::default() };
        assert!(contains_with(&hay, &pat, &c));
    }

    #[test]
    fn sliding_window_assembles_elements_across_transactions() {
        // (a,b) is split across adjacent transactions.
        let hay = seq("(a)(b)(x)");
        let pat = seq("(a,b)");
        assert!(!contains_with(&hay, &pat, &TimeConstraints::none()));
        let c = TimeConstraints { window: Some(1), ..Default::default() };
        assert!(contains_with(&hay, &pat, &c));
        // But not across a span of 2 with window 1.
        let far = seq("(a)(x)(b)");
        assert!(!contains_with(&far, &pat, &c));
        let c2 = TimeConstraints { window: Some(2), ..Default::default() };
        assert!(contains_with(&far, &pat, &c2));
    }

    #[test]
    fn window_and_gap_together() {
        // Element 1 = (a,b) via window over txns 0-1; element 2 = (c) at txn
        // 3. Gap measured between windows: l2 - u1 = 3 - 1 = 2 > min_gap 1 ✓;
        // u2 - l1 = 3 - 0 = 3 ≤ max_gap 3 ✓.
        let hay = seq("(a)(b)(x)(c)");
        let pat = seq("(a,b)(c)");
        let c = TimeConstraints { window: Some(1), min_gap: Some(1), max_gap: Some(3) };
        assert!(contains_with(&hay, &pat, &c));
        let c_tight = TimeConstraints { window: Some(1), min_gap: Some(1), max_gap: Some(2) };
        assert!(!contains_with(&hay, &pat, &c_tight));
    }

    #[test]
    fn windows_must_advance() {
        // Both elements would sit in the same transaction — not allowed:
        // consecutive windows must be disjoint and ordered.
        let hay = seq("(a,b)");
        let pat = seq("(a)(b)");
        let c = TimeConstraints { window: Some(0), ..Default::default() };
        assert!(!contains_with(&hay, &pat, &c));
    }

    #[test]
    fn contiguous_subsequences_definition() {
        // <(a,b)(c)(d)>: droppable are a, b (first element), d (last), and
        // a, b again via the size-2 rule — NOT c (interior singleton).
        let s = seq("(a,b)(c)(d)");
        let subs: Vec<String> = contiguous_subsequences(&s).iter().map(|x| x.to_string()).collect();
        assert_eq!(subs, vec!["(a, b)(c)", "(a)(c)(d)", "(b)(c)(d)"]);
    }

    #[test]
    fn contiguous_subsequences_singletons() {
        let s = seq("(a)(b)(c)");
        let subs: Vec<String> = contiguous_subsequences(&s).iter().map(|x| x.to_string()).collect();
        assert_eq!(subs, vec!["(a)(b)", "(b)(c)"]);
    }

    #[test]
    fn constrained_support_counts() {
        let db = crate::database::SequenceDatabase::from_parsed(&[
            "(a)(b)",
            "(a)(x)(x)(b)",
            "(a)(x)(b)",
        ])
        .unwrap();
        let pat = seq("(a)(b)");
        assert_eq!(support_count_with(&db, &pat, &TimeConstraints::none()), 3);
        let c = TimeConstraints { max_gap: Some(2), ..Default::default() };
        assert_eq!(support_count_with(&db, &pat, &c), 2);
        let c = TimeConstraints { min_gap: Some(1), ..Default::default() };
        assert_eq!(support_count_with(&db, &pat, &c), 2);
    }
}
