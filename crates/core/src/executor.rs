//! The **parallel mining executor**: a fixed-size `std::thread` pool that
//! runs guarded tasks (typically database shards) concurrently while
//! honoring one [`CancelToken`](crate::guard::CancelToken) and one
//! [`ResourceBudget`](crate::guard::ResourceBudget) across every worker.
//!
//! The executor is the scaling substrate for partition-parallel mining: the
//! DISC partition machinery splits a database into independent shards, and
//! [`ParallelExecutor::run`] drives one guarded task per shard with these
//! guarantees:
//!
//! * **Shared control** — every worker observes the coordinating guard's
//!   token, budget, and deadline clock. Operation and pattern budgets are
//!   enforced *globally* through [`SharedCounters`](crate::guard::SharedCounters) seeded with the
//!   coordinator's pre-run spend, not per worker starting from zero.
//! * **First-error propagation** — the first cooperative abort (deadline,
//!   budget, external cancel) cancels a run-local **child** of the caller's
//!   token, so sibling workers stop at their next checkpoint instead of
//!   burning the rest of the queue — while the caller's own token is never
//!   cancelled by the run, so it stays usable afterwards (fallback chains
//!   that retry after a budget abort depend on this).
//! * **Per-worker panic isolation** — a panic inside one task is caught at
//!   that task's boundary and recorded as [`AbortReason::Panicked`]; sibling
//!   shards keep running and the panicking task's partial output survives.
//!   (This deliberately does *not* cancel siblings: a poisoned shard says
//!   nothing about the health of the others.)
//! * **Deterministic collection** — task outputs come back in task order,
//!   regardless of which worker ran what when, so a deterministic merge of
//!   deterministic per-task results is deterministic at any thread count.
//!
//! Workers pull tasks from a shared queue, so shards of uneven size load-
//! balance naturally. The pool is sized by [`std::thread::available_parallelism`]
//! unless overridden.

#[cfg(any(test, feature = "fault-injection"))]
use crate::guard::FaultPlan;
use crate::guard::{AbortReason, GuardStats, MineGuard, MineOutcome};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;

/// A fixed-size thread pool for guarded, cancellable task fan-out.
///
/// Cheap to construct per run: threads are spawned scoped inside
/// [`ParallelExecutor::run`] and joined before it returns, so the executor
/// holds no long-lived resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: usize,
}

impl Default for ParallelExecutor {
    fn default() -> ParallelExecutor {
        ParallelExecutor::with_threads(
            thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
        )
    }
}

impl ParallelExecutor {
    /// An executor sized by [`std::thread::available_parallelism`].
    pub fn new() -> ParallelExecutor {
        ParallelExecutor::default()
    }

    /// An executor with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ParallelExecutor {
        ParallelExecutor { threads: threads.max(1) }
    }

    /// The number of worker threads this executor will use.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// How one task of a [`ParallelExecutor::run`] call ended.
#[derive(Debug)]
pub struct TaskOutcome<R> {
    /// The task's output. On an abort or a panic this holds whatever the
    /// task produced before stopping — a sound partial output under the
    /// cooperative mining contract.
    pub output: R,
    /// Completion status of this task.
    pub outcome: MineOutcome,
    /// The task's guard counters.
    pub stats: GuardStats,
}

/// The result of one [`ParallelExecutor::run`] call.
#[derive(Debug)]
pub struct ParallelRun<R> {
    /// Per-task outcomes, **in task order** (not completion order).
    pub tasks: Vec<TaskOutcome<R>>,
    /// The aggregated outcome: [`MineOutcome::Complete`] iff every task
    /// completed. Otherwise the reason is taken from the first (by task
    /// index) non-complete task, preferring a root cause over the
    /// [`AbortReason::Cancelled`] echoes that first-error propagation
    /// induces in sibling tasks.
    pub outcome: MineOutcome,
    /// Summed worker counters (ops, checkpoints, patterns) with the
    /// wall-clock elapsed of the whole run.
    pub stats: GuardStats,
}

/// One queued task plus its optional injected fault.
struct QueueItem<T> {
    index: usize,
    task: T,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<FaultPlan>,
}

impl ParallelExecutor {
    /// Runs `tasks` on the pool under the control of `parent`.
    ///
    /// Each task gets a fresh worker [`MineGuard`] on a run-scoped child of
    /// `parent`'s token (cancelling `parent`'s token stops the run; a run
    /// abort never cancels `parent`'s token), sharing `parent`'s budget,
    /// deadline clock, and checkpoint interval, with run-global
    /// operation/pattern accounting. `task_fn` receives the worker guard,
    /// the task, and an output slot that survives panics — fill it
    /// incrementally (patterns as their exact support is known) so aborted
    /// tasks still contribute sound partial output.
    ///
    /// The worker counters are absorbed into `parent` before returning, so
    /// `parent.stats()` reflects the whole run. `parent`'s own fault plan is
    /// **not** propagated to workers (it stays on the coordinating thread);
    /// use `ParallelExecutor::run_with_faults` (tests and the
    /// `fault-injection` feature) to inject per-task faults.
    pub fn run<T, R, F>(&self, parent: &MineGuard, tasks: Vec<T>, task_fn: F) -> ParallelRun<R>
    where
        T: Send,
        R: Default + Send,
        F: Fn(&MineGuard, T, &mut R) -> Result<(), AbortReason> + Sync,
    {
        let items = tasks
            .into_iter()
            .enumerate()
            .map(|(index, task)| QueueItem {
                index,
                task,
                #[cfg(any(test, feature = "fault-injection"))]
                fault: None,
            })
            .collect();
        self.run_items(parent, items, task_fn)
    }

    /// [`ParallelExecutor::run`] with a deterministic [`FaultPlan`] attached
    /// to the worker guard of each task whose slot in `faults` is `Some`
    /// (missing trailing slots mean no fault). Available in tests and behind
    /// the `fault-injection` feature only.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn run_with_faults<T, R, F>(
        &self,
        parent: &MineGuard,
        tasks: Vec<T>,
        mut faults: Vec<Option<FaultPlan>>,
        task_fn: F,
    ) -> ParallelRun<R>
    where
        T: Send,
        R: Default + Send,
        F: Fn(&MineGuard, T, &mut R) -> Result<(), AbortReason> + Sync,
    {
        faults.resize_with(tasks.len(), || None);
        let items = tasks
            .into_iter()
            .zip(faults)
            .enumerate()
            .map(|(index, (task, fault))| QueueItem { index, task, fault })
            .collect();
        self.run_items(parent, items, task_fn)
    }

    fn run_items<T, R, F>(
        &self,
        parent: &MineGuard,
        items: VecDeque<QueueItem<T>>,
        task_fn: F,
    ) -> ParallelRun<R>
    where
        T: Send,
        R: Default + Send,
        F: Fn(&MineGuard, T, &mut R) -> Result<(), AbortReason> + Sync,
    {
        let n = items.len();
        let start = parent.start_instant();
        if n == 0 {
            return ParallelRun {
                tasks: Vec::new(),
                outcome: MineOutcome::Complete,
                stats: GuardStats { elapsed: start.elapsed(), ..GuardStats::default() },
            };
        }
        // First-error propagation runs on a child of the caller's token:
        // workers observe both, a sibling abort cancels only the child, and
        // the caller's token comes out of the run un-poisoned — a later
        // fallback stage on the same token must still be able to run.
        let token = parent.token().child();
        let budget = parent.budget();
        let interval = parent.interval();
        let shared = parent.run_counters();
        let queue = Mutex::new(items);
        let slots: Vec<Mutex<Option<TaskOutcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n);
        let task_fn = &task_fn;

        thread::scope(|scope| {
            for _ in 0..workers {
                let token = token.clone();
                let shared = Arc::clone(&shared);
                let queue = &queue;
                let slots = &slots;
                scope.spawn(move || loop {
                    let item = queue.lock().expect("executor queue poisoned").pop_front();
                    let Some(item) = item else { break };
                    let guard = MineGuard::worker(
                        token.clone(),
                        budget,
                        start,
                        interval,
                        Arc::clone(&shared),
                    );
                    #[cfg(any(test, feature = "fault-injection"))]
                    let guard = match item.fault {
                        Some(fault) => guard.with_fault(fault),
                        None => guard,
                    };
                    // The output lives outside the unwind boundary so
                    // whatever the task produced before a panic survives.
                    let mut output = R::default();
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        guard.check_now()?;
                        task_fn(&guard, item.task, &mut output)
                    }));
                    let outcome = match run {
                        Ok(Ok(())) => MineOutcome::Complete,
                        Ok(Err(reason)) => {
                            // First-error propagation: stop the siblings —
                            // they share the same deadline/budget/run token,
                            // so the first cooperative abort dooms them all.
                            // Cancelling the run-local child leaves the
                            // caller's token untouched.
                            token.cancel();
                            MineOutcome::Partial { reason }
                        }
                        // Per-worker panic isolation: record it, keep the
                        // siblings mining.
                        Err(_) => MineOutcome::Partial { reason: AbortReason::Panicked },
                    };
                    *slots[item.index].lock().expect("executor slot poisoned") =
                        Some(TaskOutcome { output, outcome, stats: guard.stats() });
                });
            }
        });

        let tasks: Vec<TaskOutcome<R>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("executor slot poisoned")
                    .expect("every queued task records an outcome")
            })
            .collect();

        let mut stats = GuardStats::default();
        let mut first_reason: Option<AbortReason> = None;
        for task in &tasks {
            stats.ops = stats.ops.saturating_add(task.stats.ops);
            stats.checkpoints = stats.checkpoints.saturating_add(task.stats.checkpoints);
            stats.patterns += task.stats.patterns;
            if let MineOutcome::Partial { reason } = task.outcome {
                first_reason = match first_reason {
                    None => Some(reason),
                    // A concrete root cause beats the Cancelled echo that
                    // propagation induced in the siblings.
                    Some(AbortReason::Cancelled) if reason != AbortReason::Cancelled => {
                        Some(reason)
                    }
                    keep => keep,
                };
            }
        }
        stats.elapsed = start.elapsed();
        parent.absorb_work(&stats);
        let outcome = match first_reason {
            None => MineOutcome::Complete,
            Some(reason) => MineOutcome::Partial { reason },
        };
        ParallelRun { tasks, outcome, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{CancelToken, ResourceBudget};
    use std::time::Duration;

    fn guard() -> MineGuard {
        MineGuard::unlimited().with_checkpoint_interval(1)
    }

    #[test]
    fn outputs_come_back_in_task_order() {
        let parent = guard();
        for threads in [1, 2, 4, 8] {
            let run = ParallelExecutor::with_threads(threads).run(
                &parent,
                (0..32u64).collect(),
                |g, task, out: &mut Vec<u64>| {
                    g.checkpoint()?;
                    out.push(task * 10);
                    Ok(())
                },
            );
            assert!(run.outcome.is_complete());
            let flat: Vec<u64> = run.tasks.iter().flat_map(|t| t.output.clone()).collect();
            assert_eq!(flat, (0..32u64).map(|t| t * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_task_list_is_complete() {
        let parent = guard();
        let run =
            ParallelExecutor::new().run(&parent, Vec::<u64>::new(), |_, _, _: &mut ()| Ok(()));
        assert!(run.outcome.is_complete());
        assert!(run.tasks.is_empty());
    }

    #[test]
    fn first_error_cancels_the_siblings() {
        let parent = guard();
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..16usize).collect(),
            |g, task, out: &mut usize| {
                if task == 0 {
                    return Err(AbortReason::BudgetExhausted);
                }
                // Siblings spin on checkpoints until propagation stops them,
                // or finish quickly if they ran before the error.
                for _ in 0..200_000 {
                    g.checkpoint()?;
                }
                *out = task;
                Ok(())
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        assert_eq!(
            run.tasks[0].outcome,
            MineOutcome::Partial { reason: AbortReason::BudgetExhausted }
        );
        assert!(
            !parent.token().is_cancelled(),
            "sibling propagation must not poison the caller's token"
        );
    }

    #[test]
    fn budget_abort_leaves_the_callers_token_usable() {
        let token = CancelToken::new();
        let budget = ResourceBudget::unlimited().with_max_ops(8);
        let parent = MineGuard::new(token.clone(), budget).with_checkpoint_interval(1);
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..4usize).collect(),
            |g, _, _: &mut ()| loop {
                g.checkpoint()?;
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        assert!(!token.is_cancelled());
        // A fresh guard on the same caller-held token — a fallback stage,
        // say — must still be able to run after the aborted fan-out.
        let retry = MineGuard::new(token, ResourceBudget::unlimited()).with_checkpoint_interval(1);
        assert_eq!(retry.checkpoint(), Ok(()));
    }

    #[test]
    fn external_cancel_still_stops_the_workers() {
        let token = CancelToken::new();
        token.cancel();
        let parent = MineGuard::new(token, ResourceBudget::unlimited()).with_checkpoint_interval(1);
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..4usize).collect(),
            |_, _, _: &mut ()| panic!("task body must not run under a cancelled caller token"),
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Cancelled });
    }

    #[test]
    fn run_budget_counts_the_coordinators_pre_run_spend() {
        let budget = ResourceBudget::unlimited().with_max_ops(100);
        let parent = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        parent.charge(90).unwrap();
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..4usize).collect(),
            |g, _, _: &mut ()| {
                for _ in 0..1_000_000 {
                    g.checkpoint()?;
                }
                Ok(())
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        // The workers inherit the coordinator's 90 already-spent ops, so
        // they get roughly 10 more between them — not a fresh 100.
        assert!(run.stats.ops < 50, "coordinator pre-run spend ignored: {:?}", run.stats);
    }

    #[test]
    fn nested_runs_publish_into_the_outer_budget() {
        let budget = ResourceBudget::unlimited().with_max_ops(64);
        let parent = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let run =
            ParallelExecutor::with_threads(1).run(&parent, vec![0usize], |outer, _, _: &mut ()| {
                // Each nested run completes well inside the budget on its
                // own; the spend it publishes outward must accumulate until
                // the outer budget trips.
                for _ in 0..100 {
                    let inner = ParallelExecutor::with_threads(2).run(
                        outer,
                        vec![0usize, 1],
                        |g, _, _: &mut ()| {
                            for _ in 0..10 {
                                g.checkpoint()?;
                            }
                            Ok(())
                        },
                    );
                    if let MineOutcome::Partial { reason } = inner.outcome {
                        return Err(reason);
                    }
                }
                Ok(())
            });
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        // 100 nested runs of ~20 ops would charge ~2000 ops if each one
        // restarted the global counter at zero.
        assert!(run.stats.ops < 200, "nested runs escaped the outer budget: {:?}", run.stats);
    }

    #[test]
    fn a_panicking_task_does_not_stop_the_siblings() {
        let parent = guard();
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..8usize).collect(),
            |g, task, out: &mut Vec<usize>| {
                g.checkpoint()?;
                out.push(task);
                if task == 3 {
                    out.push(999); // partial output recorded before the panic
                    panic!("poisoned shard");
                }
                Ok(())
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
        assert!(!parent.token().is_cancelled(), "a panic must not cancel siblings");
        for (i, task) in run.tasks.iter().enumerate() {
            if i == 3 {
                assert_eq!(task.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
                assert_eq!(task.output, vec![3, 999], "pre-panic output must survive");
            } else {
                assert!(task.outcome.is_complete(), "sibling {i} was torn down");
                assert_eq!(task.output, vec![i]);
            }
        }
    }

    #[test]
    fn ops_budget_is_global_across_workers() {
        let budget = ResourceBudget::unlimited().with_max_ops(64);
        let parent = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let run = ParallelExecutor::with_threads(4).run(
            &parent,
            (0..8usize).collect(),
            |g, _, _: &mut ()| {
                for _ in 0..1_000_000 {
                    g.checkpoint()?;
                }
                Ok(())
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        // Far below the 8M ops the tasks would charge unbounded; the slack
        // is one checkpoint interval per worker plus scheduling noise.
        assert!(run.stats.ops < 10_000, "global ops budget ignored: {:?}", run.stats);
    }

    #[test]
    fn pattern_budget_is_global_across_workers() {
        let budget = ResourceBudget::unlimited().with_max_patterns(10);
        let parent = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let run = ParallelExecutor::with_threads(4).run(
            &parent,
            (0..8usize).collect(),
            |g, _, out: &mut usize| {
                for _ in 0..100 {
                    g.note_pattern()?;
                    *out += 1;
                }
                Ok(())
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
        let total: usize = run.tasks.iter().map(|t| t.output).sum();
        assert_eq!(total, 10, "pattern cap must be exact across workers");
    }

    #[test]
    fn expired_deadline_aborts_every_task_at_preflight() {
        let budget = ResourceBudget::unlimited().with_deadline(Duration::ZERO);
        let parent = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..4usize).collect(),
            |_, _, _: &mut ()| panic!("task body must not run past an expired deadline"),
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::DeadlineExceeded });
    }

    #[test]
    fn worker_stats_are_absorbed_into_the_parent() {
        let parent = guard();
        let run = ParallelExecutor::with_threads(2).run(
            &parent,
            (0..4usize).collect(),
            |g, _, _: &mut ()| g.charge(25),
        );
        assert!(run.outcome.is_complete());
        assert_eq!(run.stats.ops, 100);
        assert_eq!(parent.stats().ops, 100);
    }

    #[test]
    fn injected_worker_fault_is_isolated() {
        let parent = guard();
        let faults = vec![None, Some(FaultPlan::panic_at(2))];
        let run = ParallelExecutor::with_threads(2).run_with_faults(
            &parent,
            vec![0usize, 1usize],
            faults,
            |g, task, out: &mut usize| {
                g.checkpoint()?; // task 1: preflight is checkpoint 1, this is 2 → panics
                *out = task + 1;
                Ok(())
            },
        );
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
        assert!(run.tasks[0].outcome.is_complete());
        assert_eq!(run.tasks[0].output, 1);
        assert_eq!(run.tasks[1].outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
    }
}
