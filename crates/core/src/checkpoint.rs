//! **Crash-consistent mining snapshots**: a durable, versioned binary format
//! for the state of a DISC-style mining run at a level boundary, plus the
//! atomic write protocol that makes torn or truncated files detectable.
//!
//! ## Why level boundaries
//!
//! The DISC-all discovery loop is naturally staged: when a first-level
//! `<(λ)>`-partition finishes, the accumulated result — the frequent
//! 1-sequences plus every pattern whose minimum item has already been
//! processed — is a complete, self-describing summary of progress. (The
//! k-sorted database that drives the inner DISC iterations is ephemeral
//! per sub-partition; at a partition boundary its drained state is exactly
//! the emitted pattern set.) A snapshot therefore stores the *boundary
//! state*: which partitions completed, the patterns found so far, and the
//! guard's spend — everything a resumed run needs to skip finished work
//! and still produce a result bit-identical to an uninterrupted run.
//!
//! ## File format
//!
//! ```text
//! magic "DSCCK1\n"
//! varint  format version (currently 1)
//! sections, each:
//!   u8      section tag
//!   varint  payload length
//!   payload bytes
//!   u32le   CRC-32 (IEEE) of the payload
//! end marker: tag 0xFF with an empty payload (and its CRC)
//! ```
//!
//! Sections: HEADER (database fingerprint, resolved δ, miner provenance),
//! PROGRESS (completed first-level partition keys), PATTERNS (the
//! boundary-consistent frequent set with exact supports), COUNTERS (guard
//! spend). Every section is independently CRC-checked and the decoder is
//! strict: unknown tags, missing sections, trailing bytes, truncation, or a
//! CRC mismatch reject the whole file with a typed [`CheckpointError`] —
//! a snapshot is never partially loaded.
//!
//! ## Atomic write protocol
//!
//! [`write_snapshot`] writes `<path>.tmp`, fsyncs it, renames it over
//! `<path>`, then fsyncs the parent directory. A crash at any point leaves
//! either the previous complete snapshot or a stray `.tmp` the loader never
//! looks at; a torn rename (or bit rot) is caught by the section CRCs.

use crate::codec::{self, CodecError};
use crate::database::SequenceDatabase;
use crate::result::MiningResult;
use crate::sequence::Sequence;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The checkpoint file magic.
pub const CHECKPOINT_MAGIC: &[u8] = b"DSCCK1\n";
/// The current format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Miner provenance code: sequential DISC-all.
pub const MINER_DISC_ALL: u8 = 1;
/// Miner provenance code: Dynamic DISC-all.
pub const MINER_DYNAMIC: u8 = 2;
/// Miner provenance code: parallel (sharded) DISC-all.
pub const MINER_PARALLEL: u8 = 3;

const SEC_HEADER: u8 = 1;
const SEC_PROGRESS: u8 = 2;
const SEC_PATTERNS: u8 = 3;
const SEC_COUNTERS: u8 = 4;
const SEC_END: u8 = 0xFF;

/// Why a checkpoint could not be written or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file does not exist — a fresh run, not a failure.
    Missing {
        /// The path that was probed.
        path: PathBuf,
    },
    /// An IO operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        message: String,
        /// Whether the failure is transient (`EINTR`/`EAGAIN`-class) —
        /// already retried once by the writer, but still worth a coarser
        /// retry by a supervisor, unlike corruption or `ENOSPC`.
        transient: bool,
    },
    /// The input does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u64),
    /// The input ended inside a value or section.
    Truncated,
    /// A section's CRC did not match its payload — a torn or corrupted file.
    SectionCrc {
        /// The tag of the damaged section.
        tag: u8,
    },
    /// An unknown section tag was encountered.
    UnknownSection(u8),
    /// A nested codec value was malformed.
    Codec(CodecError),
    /// A structural invariant was violated.
    Invalid(&'static str),
    /// The snapshot was taken against a different database.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the database offered for resume.
        found: u64,
    },
    /// The snapshot was taken at a different resolved support threshold.
    DeltaMismatch {
        /// δ recorded in the snapshot.
        expected: u64,
        /// δ of the run attempting to resume.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Missing { path } => {
                write!(f, "no checkpoint at {}", path.display())
            }
            CheckpointError::Io { path, message, .. } => {
                write!(f, "checkpoint io error at {}: {message}", path.display())
            }
            CheckpointError::BadMagic => write!(f, "not a DSCCK1 checkpoint file"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint ended inside a value"),
            CheckpointError::SectionCrc { tag } => {
                write!(f, "checkpoint section {tag} failed its CRC — torn or corrupted file")
            }
            CheckpointError::UnknownSection(tag) => {
                write!(f, "unknown checkpoint section tag {tag}")
            }
            CheckpointError::Codec(e) => write!(f, "checkpoint payload: {e}"),
            CheckpointError::Invalid(what) => write!(f, "invalid checkpoint: {what}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different database \
                 (snapshot fingerprint {expected:#018x}, database {found:#018x})"
            ),
            CheckpointError::DeltaMismatch { expected, found } => write!(
                f,
                "checkpoint was taken at δ = {expected}, this run resolves to δ = {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> CheckpointError {
        match e {
            CodecError::Truncated => CheckpointError::Truncated,
            other => CheckpointError::Codec(other),
        }
    }
}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    if e.kind() == std::io::ErrorKind::NotFound {
        CheckpointError::Missing { path: path.to_path_buf() }
    } else {
        CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
            transient: crate::guard::is_transient_io_kind(e.kind()),
        }
    }
}

// -------------------------------------------------------------------------
// CRC-32 (IEEE) and the database fingerprint — self-contained, no deps.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A stable 64-bit fingerprint of a database (FNV-1a over its canonical
/// binary encoding). Snapshot headers record it so a resume against the
/// wrong database is rejected instead of silently producing garbage.
pub fn database_fingerprint(db: &SequenceDatabase) -> u64 {
    let bytes = codec::encode_database(db);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// -------------------------------------------------------------------------
// The snapshot model.

/// The durable state of a mining run at a level boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningSnapshot {
    /// Fingerprint of the input database ([`database_fingerprint`]).
    pub fingerprint: u64,
    /// Customer count of the input database (sanity alongside the hash).
    pub rows: u64,
    /// The resolved minimum-support count δ the run used.
    pub delta: u64,
    /// Provenance: which miner wrote the snapshot ([`MINER_DISC_ALL`] /
    /// [`MINER_DYNAMIC`] / [`MINER_PARALLEL`]). Informational — any
    /// checkpoint-aware miner can resume any snapshot, because every
    /// complete miner produces the same per-partition pattern sets.
    pub miner: u8,
    /// Provenance: whether the bi-level optimization was on.
    pub bi_level: bool,
    /// Provenance: worker threads of the writing run (1 = sequential).
    pub threads: u32,
    /// Completed first-level partition keys (item ids), ascending.
    pub done: Vec<u32>,
    /// The boundary-consistent frequent set: every pattern found by the
    /// completed partitions (plus the frequent 1-sequences), with exact
    /// supports, in comparative order.
    pub patterns: Vec<(Sequence, u64)>,
    /// Guard operations charged up to the boundary.
    pub ops: u64,
    /// Patterns noted against the guard's budget up to the boundary.
    pub noted_patterns: u64,
}

impl MiningSnapshot {
    /// Checks that this snapshot belongs to `db` mined at `delta`.
    pub fn validate(&self, db: &SequenceDatabase, delta: u64) -> Result<(), CheckpointError> {
        let found = database_fingerprint(db);
        if found != self.fingerprint {
            return Err(CheckpointError::FingerprintMismatch { expected: self.fingerprint, found });
        }
        if self.rows != db.len() as u64 {
            return Err(CheckpointError::Invalid("row count disagrees with fingerprint"));
        }
        if self.delta != delta {
            return Err(CheckpointError::DeltaMismatch { expected: self.delta, found: delta });
        }
        Ok(())
    }

    /// The saved patterns as a [`MiningResult`].
    pub fn restore_result(&self) -> MiningResult {
        MiningResult::from_pairs(self.patterns.iter().map(|(p, s)| (p.clone(), *s)))
    }

    /// Whether the first-level partition keyed on `item` completed before
    /// the snapshot was taken.
    pub fn is_done(&self, item: u32) -> bool {
        self.done.binary_search(&item).is_ok()
    }
}

// -------------------------------------------------------------------------
// Encoding.

fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    codec::put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// A borrowed view of a run's current state: the same fields as
/// [`MiningSnapshot`], but with the pattern set streamed straight out of the
/// live [`MiningResult`]. The write path uses it so that persisting a
/// snapshot never deep-clones every pattern — [`encode_snapshot_view`]
/// produces byte-identical output to encoding the equivalent owned snapshot.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    /// See [`MiningSnapshot::fingerprint`].
    pub fingerprint: u64,
    /// See [`MiningSnapshot::rows`].
    pub rows: u64,
    /// See [`MiningSnapshot::delta`].
    pub delta: u64,
    /// See [`MiningSnapshot::miner`].
    pub miner: u8,
    /// See [`MiningSnapshot::bi_level`].
    pub bi_level: bool,
    /// See [`MiningSnapshot::threads`].
    pub threads: u32,
    /// Completed first-level partition keys (item ids), ascending.
    pub done: &'a [u32],
    /// The live pattern set (comparative order, exact supports).
    pub patterns: &'a MiningResult,
    /// See [`MiningSnapshot::ops`].
    pub ops: u64,
    /// See [`MiningSnapshot::noted_patterns`].
    pub noted_patterns: u64,
}

impl SnapshotView<'_> {
    /// Materializes the owned [`MiningSnapshot`] this view encodes as.
    /// Clones the pattern set — for cold paths (crash injection), not the
    /// per-write hot path.
    pub fn to_snapshot(&self) -> MiningSnapshot {
        MiningSnapshot {
            fingerprint: self.fingerprint,
            rows: self.rows,
            delta: self.delta,
            miner: self.miner,
            bi_level: self.bi_level,
            threads: self.threads,
            done: self.done.to_vec(),
            patterns: self.patterns.iter().map(|(p, s)| (p.clone(), s)).collect(),
            ops: self.ops,
            noted_patterns: self.noted_patterns,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_parts<'a>(
    fingerprint: u64,
    rows: u64,
    delta: u64,
    miner: u8,
    bi_level: bool,
    threads: u32,
    done: &[u32],
    n_patterns: usize,
    pattern_iter: impl Iterator<Item = (&'a Sequence, u64)>,
    ops: u64,
    noted_patterns: u64,
    version: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + n_patterns * 16);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    codec::put_varint(&mut out, version);

    let mut header = Vec::with_capacity(32);
    header.extend_from_slice(&fingerprint.to_le_bytes());
    codec::put_varint(&mut header, rows);
    codec::put_varint(&mut header, delta);
    header.push(miner);
    header.push(u8::from(bi_level));
    codec::put_varint(&mut header, u64::from(threads));
    put_section(&mut out, SEC_HEADER, &header);

    let mut progress = Vec::with_capacity(1 + done.len() * 2);
    codec::put_varint(&mut progress, done.len() as u64);
    for &id in done {
        codec::put_varint(&mut progress, u64::from(id));
    }
    put_section(&mut out, SEC_PROGRESS, &progress);

    let mut patterns = Vec::with_capacity(n_patterns * 12);
    codec::put_varint(&mut patterns, n_patterns as u64);
    for (pattern, support) in pattern_iter {
        codec::put_sequence(&mut patterns, pattern);
        codec::put_varint(&mut patterns, support);
    }
    put_section(&mut out, SEC_PATTERNS, &patterns);

    let mut counters = Vec::with_capacity(16);
    codec::put_varint(&mut counters, ops);
    codec::put_varint(&mut counters, noted_patterns);
    put_section(&mut out, SEC_COUNTERS, &counters);

    put_section(&mut out, SEC_END, &[]);
    out
}

/// Encodes a snapshot to the binary checkpoint format.
pub fn encode_snapshot(snap: &MiningSnapshot) -> Vec<u8> {
    encode_snapshot_version(snap, CHECKPOINT_VERSION)
}

/// [`encode_snapshot`] with an explicit format version — the hook the
/// stale-version fault uses; production code always writes
/// [`CHECKPOINT_VERSION`].
pub fn encode_snapshot_version(snap: &MiningSnapshot, version: u64) -> Vec<u8> {
    encode_parts(
        snap.fingerprint,
        snap.rows,
        snap.delta,
        snap.miner,
        snap.bi_level,
        snap.threads,
        &snap.done,
        snap.patterns.len(),
        snap.patterns.iter().map(|(p, s)| (p, *s)),
        snap.ops,
        snap.noted_patterns,
        version,
    )
}

/// Encodes a [`SnapshotView`] — byte-identical to
/// `encode_snapshot(&view.to_snapshot())`, without cloning the pattern set.
pub fn encode_snapshot_view(view: &SnapshotView<'_>) -> Vec<u8> {
    encode_parts(
        view.fingerprint,
        view.rows,
        view.delta,
        view.miner,
        view.bi_level,
        view.threads,
        view.done,
        view.patterns.len(),
        view.patterns.iter(),
        view.ops,
        view.noted_patterns,
        CHECKPOINT_VERSION,
    )
}

// -------------------------------------------------------------------------
// Decoding.

fn get_section<'a>(input: &'a [u8], pos: &mut usize) -> Result<(u8, &'a [u8]), CheckpointError> {
    let &tag = input.get(*pos).ok_or(CheckpointError::Truncated)?;
    *pos += 1;
    let len = codec::get_varint(input, pos)? as usize;
    let end = pos.checked_add(len).ok_or(CheckpointError::Truncated)?;
    if end.checked_add(4).ok_or(CheckpointError::Truncated)? > input.len() {
        return Err(CheckpointError::Truncated);
    }
    let payload = &input[*pos..end];
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&input[end..end + 4]);
    if crc32(payload) != u32::from_le_bytes(crc_bytes) {
        return Err(CheckpointError::SectionCrc { tag });
    }
    *pos = end + 4;
    Ok((tag, payload))
}

fn get_u64_le(input: &[u8], pos: &mut usize) -> Result<u64, CheckpointError> {
    let end = pos.checked_add(8).ok_or(CheckpointError::Truncated)?;
    if end > input.len() {
        return Err(CheckpointError::Truncated);
    }
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&input[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(bytes))
}

/// Decodes a snapshot from checkpoint bytes. Strict: every section must be
/// present exactly once, every CRC must match, and nothing may follow the
/// end marker — a damaged file is rejected whole, never partially loaded.
pub fn decode_snapshot(input: &[u8]) -> Result<MiningSnapshot, CheckpointError> {
    if input.len() < CHECKPOINT_MAGIC.len() || &input[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC
    {
        return Err(CheckpointError::BadMagic);
    }
    let mut pos = CHECKPOINT_MAGIC.len();
    let version = codec::get_varint(input, &mut pos)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }

    let mut header: Option<&[u8]> = None;
    let mut progress: Option<&[u8]> = None;
    let mut patterns: Option<&[u8]> = None;
    let mut counters: Option<&[u8]> = None;
    loop {
        let (tag, payload) = get_section(input, &mut pos)?;
        let slot = match tag {
            SEC_HEADER => &mut header,
            SEC_PROGRESS => &mut progress,
            SEC_PATTERNS => &mut patterns,
            SEC_COUNTERS => &mut counters,
            SEC_END => {
                if !payload.is_empty() {
                    return Err(CheckpointError::Invalid("end marker carries payload"));
                }
                break;
            }
            other => return Err(CheckpointError::UnknownSection(other)),
        };
        if slot.is_some() {
            return Err(CheckpointError::Invalid("duplicate section"));
        }
        *slot = Some(payload);
    }
    if pos != input.len() {
        return Err(CheckpointError::Invalid("trailing bytes after end marker"));
    }
    let header = header.ok_or(CheckpointError::Invalid("missing header section"))?;
    let progress = progress.ok_or(CheckpointError::Invalid("missing progress section"))?;
    let patterns = patterns.ok_or(CheckpointError::Invalid("missing patterns section"))?;
    let counters = counters.ok_or(CheckpointError::Invalid("missing counters section"))?;

    let mut p = 0usize;
    let fingerprint = get_u64_le(header, &mut p)?;
    let rows = codec::get_varint(header, &mut p)?;
    let delta = codec::get_varint(header, &mut p)?;
    let &miner = header.get(p).ok_or(CheckpointError::Truncated)?;
    p += 1;
    let &bi_level = header.get(p).ok_or(CheckpointError::Truncated)?;
    p += 1;
    if bi_level > 1 {
        return Err(CheckpointError::Invalid("bi_level flag out of range"));
    }
    let threads = codec::get_varint(header, &mut p)?;
    if threads > u64::from(u32::MAX) {
        return Err(CheckpointError::Invalid("thread count out of range"));
    }
    if p != header.len() {
        return Err(CheckpointError::Invalid("trailing bytes in header section"));
    }

    let mut p = 0usize;
    let n_done = codec::get_varint(progress, &mut p)?;
    let mut done = Vec::with_capacity(n_done as usize);
    let mut prev: Option<u32> = None;
    for _ in 0..n_done {
        let id = codec::get_varint(progress, &mut p)?;
        if id > u64::from(u32::MAX) {
            return Err(CheckpointError::Invalid("partition key out of range"));
        }
        let id = id as u32;
        if prev.is_some_and(|q| q >= id) {
            return Err(CheckpointError::Invalid("partition keys not strictly ascending"));
        }
        prev = Some(id);
        done.push(id);
    }
    if p != progress.len() {
        return Err(CheckpointError::Invalid("trailing bytes in progress section"));
    }

    let mut p = 0usize;
    let n_patterns = codec::get_varint(patterns, &mut p)?;
    let mut pats = Vec::with_capacity(n_patterns as usize);
    for _ in 0..n_patterns {
        let seq = codec::get_sequence(patterns, &mut p)?;
        if seq.is_empty() {
            return Err(CheckpointError::Invalid("empty pattern"));
        }
        let support = codec::get_varint(patterns, &mut p)?;
        pats.push((seq, support));
    }
    if p != patterns.len() {
        return Err(CheckpointError::Invalid("trailing bytes in patterns section"));
    }

    let mut p = 0usize;
    let ops = codec::get_varint(counters, &mut p)?;
    let noted_patterns = codec::get_varint(counters, &mut p)?;
    if p != counters.len() {
        return Err(CheckpointError::Invalid("trailing bytes in counters section"));
    }

    Ok(MiningSnapshot {
        fingerprint,
        rows,
        delta,
        miner,
        bi_level: bi_level == 1,
        threads: threads as u32,
        done,
        patterns: pats,
        ops,
        noted_patterns,
    })
}

// -------------------------------------------------------------------------
// Durable IO.

pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

pub(crate) fn sync_parent_dir(path: &Path) {
    // Best-effort: directory fsync is what makes the rename itself durable
    // on crash, but not every platform/filesystem allows opening a directory
    // for sync, and a failure here never invalidates the data already synced.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<usize, CheckpointError> {
    // Each step retries EINTR/EAGAIN-class failures with bounded, jittered
    // backoff before surfacing; permanent errors surface on first touch.
    let policy = crate::guard::RetryPolicy::io_default();
    let tmp = tmp_path(path);
    // The create+write+sync triple retries as a unit: `File::create`
    // truncates, so a retry never appends after a partial first attempt.
    crate::guard::retry_transient(policy, || {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()
    })
    .map_err(|e| io_err(&tmp, e))?;
    crate::guard::retry_transient(policy, || fs::rename(&tmp, path))
        .map_err(|e| io_err(path, e))?;
    sync_parent_dir(path);
    Ok(bytes.len())
}

/// Durably writes a snapshot: temp file, fsync, atomic rename, directory
/// fsync. A crash at any point leaves either the previous snapshot intact
/// or a stray `.tmp` that the loader never reads. Returns the bytes
/// written, for overhead accounting.
pub fn write_snapshot(path: &Path, snap: &MiningSnapshot) -> Result<usize, CheckpointError> {
    write_bytes_atomic(path, &encode_snapshot(snap))
}

/// [`write_snapshot`] for a borrowed [`SnapshotView`] — the per-boundary
/// write path, which must not deep-clone the pattern set it persists.
pub fn write_snapshot_view(path: &Path, view: &SnapshotView<'_>) -> Result<usize, CheckpointError> {
    write_bytes_atomic(path, &encode_snapshot_view(view))
}

/// Reads and strictly validates a snapshot file. A missing file returns
/// [`CheckpointError::Missing`]; any damage returns the specific typed
/// error and no partial state.
pub fn read_snapshot(path: &Path) -> Result<MiningSnapshot, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    decode_snapshot(&bytes)
}

/// A cheap summary of a snapshot's progress: everything a status endpoint
/// wants to report, without decoding a single pattern.
///
/// Produced by [`peek_progress`], which validates the magic, version, and
/// the CRCs of the sections it touches, but reads only the header, the
/// completed-partition list, the leading pattern *count*, and the guard
/// counters — never the pattern payload itself, which dominates snapshot
/// size on real runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotProgress {
    /// See [`MiningSnapshot::fingerprint`].
    pub fingerprint: u64,
    /// See [`MiningSnapshot::rows`].
    pub rows: u64,
    /// See [`MiningSnapshot::delta`].
    pub delta: u64,
    /// Number of completed first-level partitions.
    pub done_partitions: u64,
    /// Number of patterns in the boundary-consistent frequent set.
    pub patterns: u64,
    /// See [`MiningSnapshot::ops`].
    pub ops: u64,
}

/// Reads just the progress summary from a snapshot file — section CRCs for
/// the header/progress/counters sections are still verified, but the
/// pattern payload is only counted, not decoded. A missing file returns
/// [`CheckpointError::Missing`].
///
/// Intended for supervisors (a job server's status endpoint, a scheduler
/// deciding whether a preempted slice advanced) that poll a checkpoint
/// between runs: decoding cost is `O(done_partitions)` — the pattern bytes
/// are CRC-summed but never parsed into sequences.
pub fn peek_progress(path: &Path) -> Result<SnapshotProgress, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let input = bytes.as_slice();
    if input.len() < CHECKPOINT_MAGIC.len() || &input[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC
    {
        return Err(CheckpointError::BadMagic);
    }
    let mut pos = CHECKPOINT_MAGIC.len();
    let version = codec::get_varint(input, &mut pos)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }

    let mut header: Option<&[u8]> = None;
    let mut done_partitions: Option<u64> = None;
    let mut patterns: Option<u64> = None;
    let mut counters: Option<&[u8]> = None;
    loop {
        let (tag, payload) = get_section(input, &mut pos)?;
        match tag {
            SEC_HEADER => header = Some(payload),
            SEC_PROGRESS => {
                let mut p = 0usize;
                done_partitions = Some(codec::get_varint(payload, &mut p)?);
            }
            SEC_PATTERNS => {
                let mut p = 0usize;
                patterns = Some(codec::get_varint(payload, &mut p)?);
            }
            SEC_COUNTERS => counters = Some(payload),
            SEC_END => break,
            other => return Err(CheckpointError::UnknownSection(other)),
        }
    }
    let header = header.ok_or(CheckpointError::Invalid("missing header section"))?;
    let done_partitions =
        done_partitions.ok_or(CheckpointError::Invalid("missing progress section"))?;
    let patterns = patterns.ok_or(CheckpointError::Invalid("missing patterns section"))?;
    let counters = counters.ok_or(CheckpointError::Invalid("missing counters section"))?;

    let mut p = 0usize;
    let fingerprint = get_u64_le(header, &mut p)?;
    let rows = codec::get_varint(header, &mut p)?;
    let delta = codec::get_varint(header, &mut p)?;

    let mut p = 0usize;
    let ops = codec::get_varint(counters, &mut p)?;

    Ok(SnapshotProgress { fingerprint, rows, delta, done_partitions, patterns, ops })
}

// -------------------------------------------------------------------------
// Crash injection (tests and the `fault-injection` feature).

/// A deterministic crash to inject into a checkpoint write, for recovery
/// tests. Each mode leaves on disk exactly what a real kill at that point
/// would: a torn temp file, a complete-but-unrenamed temp file, a corrupted
/// final file, or a file in a version this build refuses to load.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCrash {
    /// The process died mid-write: the temp file holds half the bytes and
    /// was never renamed. The previous snapshot (if any) survives.
    TornTempWrite,
    /// The process died between fsync and rename: the temp file is complete
    /// but the final path still holds the previous snapshot (if any).
    CrashBeforeRename,
    /// The final file was written whole but a byte in a section payload
    /// flipped — the loader must reject it by CRC.
    CorruptSection,
    /// The file was written in a format version this build does not
    /// support — the loader must reject it by version.
    StaleVersion,
}

/// Performs the on-disk effects of a crash at a checkpoint write, then
/// returns — the caller simulates the death itself (by panicking), so the
/// unwind path matches a real kill as closely as an in-process test can.
#[cfg(any(test, feature = "fault-injection"))]
pub fn write_snapshot_crashing(path: &Path, snap: &MiningSnapshot, crash: CheckpointCrash) {
    let bytes = encode_snapshot(snap);
    let tmp = tmp_path(path);
    match crash {
        CheckpointCrash::TornTempWrite => {
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
        }
        CheckpointCrash::CrashBeforeRename => {
            let _ = fs::write(&tmp, &bytes);
        }
        CheckpointCrash::CorruptSection => {
            let mut corrupt = bytes;
            let mid = corrupt.len() / 2;
            corrupt[mid] ^= 0x55;
            let _ = write_bytes_atomic(path, &corrupt);
        }
        CheckpointCrash::StaleVersion => {
            let stale = encode_snapshot_version(snap, CHECKPOINT_VERSION + 1);
            let _ = write_bytes_atomic(path, &stale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    fn sample_snapshot() -> MiningSnapshot {
        let db = table1();
        MiningSnapshot {
            fingerprint: database_fingerprint(&db),
            rows: db.len() as u64,
            delta: 2,
            miner: MINER_DISC_ALL,
            bi_level: true,
            threads: 1,
            done: vec![0, 1, 5],
            patterns: vec![
                (parse_sequence("(a)").unwrap(), 2),
                (parse_sequence("(a,g)(b)(f)").unwrap(), 2),
                (parse_sequence("(b)").unwrap(), 4),
            ],
            ops: 12345,
            noted_patterns: 3,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = database_fingerprint(&table1());
        assert_eq!(a, database_fingerprint(&table1()));
        let other = SequenceDatabase::from_parsed(&["(a)(b)"]).unwrap();
        assert_ne!(a, database_fingerprint(&other));
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = sample_snapshot();
        let back = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn view_encoding_is_byte_identical_to_owned() {
        let snap = sample_snapshot();
        let live = snap.restore_result();
        let view = SnapshotView {
            fingerprint: snap.fingerprint,
            rows: snap.rows,
            delta: snap.delta,
            miner: snap.miner,
            bi_level: snap.bi_level,
            threads: snap.threads,
            done: &snap.done,
            patterns: &live,
            ops: snap.ops,
            noted_patterns: snap.noted_patterns,
        };
        // The live result iterates in comparative order — the same order the
        // owned snapshot's pattern vector was collected in.
        let owned = MiningSnapshot {
            patterns: live.iter().map(|(p, s)| (p.clone(), s)).collect(),
            ..snap.clone()
        };
        assert_eq!(encode_snapshot_view(&view), encode_snapshot(&owned));
        assert_eq!(view.to_snapshot(), owned);
        assert_eq!(decode_snapshot(&encode_snapshot_view(&view)).unwrap(), owned);
    }

    #[test]
    fn validate_accepts_the_right_database_and_rejects_others() {
        let snap = sample_snapshot();
        snap.validate(&table1(), 2).unwrap();
        assert!(matches!(
            snap.validate(&table1(), 3),
            Err(CheckpointError::DeltaMismatch { expected: 2, found: 3 })
        ));
        let other = SequenceDatabase::from_parsed(&["(a)(b)"]).unwrap();
        assert!(matches!(
            snap.validate(&other, 2),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(&sample_snapshot());
        for len in 0..bytes.len() {
            let err =
                decode_snapshot(&bytes[..len]).expect_err("a prefix of a snapshot must never load");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::SectionCrc { .. }
                        | CheckpointError::Invalid(_)
                ),
                "unexpected error for prefix of {len} bytes: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = encode_snapshot(&sample_snapshot());
        let reference = decode_snapshot(&bytes).unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            // Either the file is rejected outright, or (for a flipped bit in
            // a CRC-covered-but-semantically-free spot — there are none in
            // this format, every payload byte is meaningful) it must not
            // silently decode to something else claiming to be the snapshot.
            match decode_snapshot(&corrupt) {
                Err(_) => {}
                Ok(decoded) => {
                    assert_eq!(
                        decoded, reference,
                        "byte {i} flipped yet the snapshot decoded differently"
                    );
                }
            }
        }
    }

    #[test]
    fn stale_version_is_rejected() {
        let bytes = encode_snapshot_version(&sample_snapshot(), CHECKPOINT_VERSION + 1);
        assert_eq!(
            decode_snapshot(&bytes),
            Err(CheckpointError::UnsupportedVersion(CHECKPOINT_VERSION + 1))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes),
            Err(CheckpointError::Invalid("trailing bytes after end marker"))
        );
    }

    #[test]
    fn atomic_write_and_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dscck-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.dscck");
        let snap = sample_snapshot();
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), snap);
        // Overwrites are atomic replacements.
        let mut snap2 = snap.clone();
        snap2.done.push(7);
        write_snapshot(&path, &snap2).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), snap2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_typed_miss() {
        let path = std::env::temp_dir().join("definitely-absent.dscck");
        assert!(matches!(read_snapshot(&path), Err(CheckpointError::Missing { .. })));
        assert!(matches!(peek_progress(&path), Err(CheckpointError::Missing { .. })));
    }

    #[test]
    fn peek_progress_agrees_with_the_full_decode() {
        let dir = std::env::temp_dir().join(format!("dscck-peek-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.dscck");
        let snap = sample_snapshot();
        write_snapshot(&path, &snap).unwrap();
        let progress = peek_progress(&path).unwrap();
        assert_eq!(
            progress,
            SnapshotProgress {
                fingerprint: snap.fingerprint,
                rows: snap.rows,
                delta: snap.delta,
                done_partitions: snap.done.len() as u64,
                patterns: snap.patterns.len() as u64,
                ops: snap.ops,
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_progress_still_rejects_damaged_files() {
        let bytes = encode_snapshot(&sample_snapshot());
        let dir = std::env::temp_dir().join(format!("dscck-peekbad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.dscck");

        // A flipped byte inside the (unparsed) pattern payload must still be
        // caught: the peek CRC-checks every section it walks past.
        let mut corrupt = bytes.clone();
        let mid = bytes.len() / 2;
        corrupt[mid] ^= 0x01;
        fs::write(&path, &corrupt).unwrap();
        assert!(peek_progress(&path).is_err(), "corruption at byte {mid} not detected");

        // Truncation is never silently tolerated either.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(peek_progress(&path).is_err());

        fs::write(&path, b"not a checkpoint").unwrap();
        assert_eq!(peek_progress(&path), Err(CheckpointError::BadMagic));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crashes_leave_detectable_or_recoverable_state() {
        let dir = std::env::temp_dir().join(format!("dscck-crash-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let snap = sample_snapshot();

        // Torn temp write: final path untouched, loader sees a clean miss.
        let path = dir.join("torn.dscck");
        write_snapshot_crashing(&path, &snap, CheckpointCrash::TornTempWrite);
        assert!(matches!(read_snapshot(&path), Err(CheckpointError::Missing { .. })));

        // Crash before rename over an existing snapshot: old state survives.
        let path = dir.join("unrenamed.dscck");
        write_snapshot(&path, &snap).unwrap();
        let mut newer = snap.clone();
        newer.done.push(9);
        write_snapshot_crashing(&path, &newer, CheckpointCrash::CrashBeforeRename);
        assert_eq!(read_snapshot(&path).unwrap(), snap);

        // Corrupt section: typed rejection, never a partial load.
        let path = dir.join("corrupt.dscck");
        write_snapshot_crashing(&path, &snap, CheckpointCrash::CorruptSection);
        let err = read_snapshot(&path).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::SectionCrc { .. }
                    | CheckpointError::Truncated
                    | CheckpointError::Invalid(_)
            ),
            "corruption produced {err:?}"
        );

        // Stale version: typed rejection by version.
        let path = dir.join("stale.dscck");
        write_snapshot_crashing(&path, &snap, CheckpointCrash::StaleVersion);
        assert!(matches!(read_snapshot(&path), Err(CheckpointError::UnsupportedVersion(_))));

        let _ = fs::remove_dir_all(&dir);
    }
}
