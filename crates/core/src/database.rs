//! The [`SequenceDatabase`]: a collection of customer sequences.

use crate::error::ParseError;
use crate::item::Item;
use crate::parse::parse_sequence;
use crate::sequence::Sequence;
use std::fmt;

/// A customer identifier. Purely informational: miners identify customers by
/// database index; CIDs survive into output for traceability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CustomerId(pub u64);

impl fmt::Display for CustomerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One database row: a customer and their transaction history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomerSequence {
    /// The customer id.
    pub cid: CustomerId,
    /// The ordered transaction history.
    pub sequence: Sequence,
}

/// A database of customer sequences — the input of every miner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceDatabase {
    rows: Vec<CustomerSequence>,
}

/// Aggregate shape statistics of a database, for workload reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseStats {
    /// Number of customer sequences.
    pub customers: usize,
    /// Mean transactions per customer (the paper's `slen` / θ).
    pub avg_transactions: f64,
    /// Mean items per transaction (the paper's `tlen`).
    pub avg_items_per_transaction: f64,
    /// Total item occurrences.
    pub total_items: usize,
    /// Number of distinct items present.
    pub distinct_items: usize,
}

impl SequenceDatabase {
    /// An empty database.
    pub fn new() -> SequenceDatabase {
        SequenceDatabase::default()
    }

    /// Builds from `(cid, sequence)` pairs.
    pub fn from_rows(rows: impl IntoIterator<Item = (CustomerId, Sequence)>) -> SequenceDatabase {
        SequenceDatabase {
            rows: rows
                .into_iter()
                .map(|(cid, sequence)| CustomerSequence { cid, sequence })
                .collect(),
        }
    }

    /// Builds from bare sequences, assigning CIDs 1, 2, 3, … like the paper's
    /// tables.
    pub fn from_sequences(seqs: impl IntoIterator<Item = Sequence>) -> SequenceDatabase {
        SequenceDatabase {
            rows: seqs
                .into_iter()
                .enumerate()
                .map(|(i, sequence)| CustomerSequence { cid: CustomerId(i as u64 + 1), sequence })
                .collect(),
        }
    }

    /// Builds from textual sequences in the paper's notation, assigning CIDs
    /// 1, 2, 3, …
    pub fn from_parsed(texts: &[&str]) -> Result<SequenceDatabase, ParseError> {
        let seqs: Result<Vec<Sequence>, ParseError> =
            texts.iter().map(|t| parse_sequence(t)).collect();
        Ok(SequenceDatabase::from_sequences(seqs?))
    }

    /// Appends a row.
    pub fn push(&mut self, cid: CustomerId, sequence: Sequence) {
        self.rows.push(CustomerSequence { cid, sequence });
    }

    /// Number of customer sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the database has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion order.
    #[inline]
    pub fn rows(&self) -> &[CustomerSequence] {
        &self.rows
    }

    /// The `i`-th customer's sequence.
    #[inline]
    pub fn sequence(&self, i: usize) -> &Sequence {
        &self.rows[i].sequence
    }

    /// Iterates the sequences.
    pub fn sequences(&self) -> impl Iterator<Item = &Sequence> {
        self.rows.iter().map(|r| &r.sequence)
    }

    /// Largest item id present, if any.
    pub fn max_item(&self) -> Option<Item> {
        self.sequences()
            .flat_map(|s| s.itemsets().iter().map(crate::itemset::Itemset::max_item))
            .max()
    }

    /// Aggregate shape statistics.
    pub fn stats(&self) -> DatabaseStats {
        let customers = self.rows.len();
        let total_txns: usize = self.sequences().map(Sequence::n_transactions).sum();
        let total_items: usize = self.sequences().map(Sequence::length).sum();
        let mut items: Vec<Item> =
            self.sequences().flat_map(|s| s.itemsets().iter().flat_map(|set| set.iter())).collect();
        items.sort_unstable();
        items.dedup();
        DatabaseStats {
            customers,
            avg_transactions: if customers == 0 {
                0.0
            } else {
                total_txns as f64 / customers as f64
            },
            avg_items_per_transaction: if total_txns == 0 {
                0.0
            } else {
                total_items as f64 / total_txns as f64
            },
            total_items,
            distinct_items: items.len(),
        }
    }

    /// Serializes to the line format `cid: (a, b)(c)`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for row in &self.rows {
            writeln!(out, "{}: {}", row.cid, row.sequence).expect("string write");
        }
        out
    }

    /// Parses the line format produced by [`SequenceDatabase::to_text`].
    /// Blank lines and lines starting with `#` are skipped.
    pub fn from_text(text: &str) -> Result<SequenceDatabase, ParseError> {
        let mut rows = Vec::new();
        let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (cid_part, seq_part) = line.split_once(':').ok_or_else(|| ParseError::BadLine {
                line: lineno + 1,
                reason: "missing `cid:` prefix".into(),
            })?;
            let cid: u64 = cid_part.trim().parse().map_err(|_| ParseError::BadLine {
                line: lineno + 1,
                reason: format!("bad customer id {cid_part:?}"),
            })?;
            if !seen.insert(cid) {
                return Err(ParseError::DuplicateCustomer { line: lineno + 1, cid });
            }
            rows.push((CustomerId(cid), parse_sequence(seq_part)?));
        }
        Ok(SequenceDatabase::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn construction_assigns_cids() {
        let db = table1();
        assert_eq!(db.len(), 4);
        assert_eq!(db.rows()[0].cid, CustomerId(1));
        assert_eq!(db.rows()[3].cid, CustomerId(4));
    }

    #[test]
    fn stats_summarize_shape() {
        let db = table1();
        let stats = db.stats();
        assert_eq!(stats.customers, 4);
        assert_eq!(stats.total_items, 9 + 4 + 3 + 8);
        assert_eq!(stats.distinct_items, 8); // a..h
        assert!((stats.avg_transactions - 14.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn text_roundtrip() {
        let db = table1();
        let text = db.to_text();
        let back = SequenceDatabase::from_text(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn from_text_skips_comments_and_blanks() {
        let db = SequenceDatabase::from_text("# header\n\n7: (a)(b)\n").unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.rows()[0].cid, CustomerId(7));
    }

    #[test]
    fn from_text_rejects_bad_lines() {
        assert!(SequenceDatabase::from_text("(a)(b)").is_err());
        assert!(SequenceDatabase::from_text("x: (a)").is_err());
    }

    #[test]
    fn from_text_rejects_duplicate_customer_ids() {
        let err = SequenceDatabase::from_text("1: (a)\n# note\n2: (b)\n1: (c)\n").unwrap_err();
        assert_eq!(err, ParseError::DuplicateCustomer { line: 4, cid: 1 });
    }

    #[test]
    fn max_item_across_rows() {
        let db = table1();
        assert_eq!(db.max_item(), Some(Item::from_letter('h').unwrap()));
        assert_eq!(SequenceDatabase::new().max_item(), None);
    }
}
