//! Support counting and the [`MinSupport`] threshold.

use crate::database::SequenceDatabase;
use crate::embed::contains;
use crate::sequence::Sequence;

/// The minimum support threshold δ.
///
/// Following the paper's experiments, a *fractional* threshold is resolved
/// against the database size: δ = ⌈fraction · |DB|⌉ (at least 1). A sequence
/// is **frequent** iff its support count is ≥ δ — this is the reading the
/// paper's own worked examples use (Figure 3: with δ = 3, `<(a)(c)>` with
/// support 4 is frequent while `<(a c)>` with support 2 is not).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSupport {
    /// An absolute minimum support count δ.
    Count(u64),
    /// A fraction of the database size (the "minimum support threshold" of
    /// Section 4).
    Fraction(f64),
}

impl MinSupport {
    /// Resolves to an absolute count δ ≥ 1 for a database of `db_len`
    /// customers.
    pub fn resolve(self, db_len: usize) -> u64 {
        match self {
            MinSupport::Count(c) => c.max(1),
            MinSupport::Fraction(f) => {
                assert!((0.0..=1.0).contains(&f), "support fraction must be in [0, 1], got {f}");
                ((f * db_len as f64).ceil() as u64).max(1)
            }
        }
    }
}

/// Counts the customer sequences of `db` containing `pattern`, by scanning.
///
/// This is the definitional support count; miners compute it by cleverer
/// means and are tested against it.
pub fn support_count(db: &SequenceDatabase, pattern: &Sequence) -> u64 {
    db.sequences().filter(|s| contains(s, pattern)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    #[test]
    fn resolve_count_floors_at_one() {
        assert_eq!(MinSupport::Count(0).resolve(100), 1);
        assert_eq!(MinSupport::Count(5).resolve(100), 5);
    }

    #[test]
    fn resolve_fraction_takes_ceiling() {
        assert_eq!(MinSupport::Fraction(0.0025).resolve(10_000), 25);
        assert_eq!(MinSupport::Fraction(0.005).resolve(10_000), 50);
        assert_eq!(MinSupport::Fraction(0.001).resolve(1_500), 2); // ceil(1.5)
        assert_eq!(MinSupport::Fraction(0.0).resolve(100), 1);
    }

    #[test]
    #[should_panic(expected = "support fraction")]
    fn resolve_rejects_bad_fraction() {
        MinSupport::Fraction(1.5).resolve(10);
    }

    #[test]
    fn support_counts_by_containment() {
        let db = SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap();
        // SPADE's example: <(a,g)(h)(f)> has support 2.
        assert_eq!(support_count(&db, &parse_sequence("(a,g)(h)(f)").unwrap()), 2);
        assert_eq!(support_count(&db, &parse_sequence("(b)").unwrap()), 4);
        assert_eq!(support_count(&db, &parse_sequence("(b,f)").unwrap()), 3);
        assert_eq!(support_count(&db, &parse_sequence("(x)").unwrap()), 0);
    }
}
