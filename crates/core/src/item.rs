//! The [`Item`] identifier type.

use std::fmt;

/// An item identifier.
///
/// Items are totally ordered by their numeric id; the paper's "alphabetical
/// order" on items is exactly this order (the worked examples map `a` to 0,
/// `b` to 1, and so on — see [`Item::from_letter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Item(pub u32);

impl Item {
    /// Builds the item corresponding to a lowercase ASCII letter, so the
    /// paper's examples (`a`, `b`, …) can be written literally.
    ///
    /// ```
    /// use disc_core::Item;
    /// assert_eq!(Item::from_letter('a'), Some(Item(0)));
    /// assert_eq!(Item::from_letter('z'), Some(Item(25)));
    /// assert_eq!(Item::from_letter('A'), None);
    /// ```
    pub fn from_letter(c: char) -> Option<Item> {
        if c.is_ascii_lowercase() {
            Some(Item(c as u32 - 'a' as u32))
        } else {
            None
        }
    }

    /// The inverse of [`Item::from_letter`]: the letter for items 0–25.
    pub fn as_letter(self) -> Option<char> {
        if self.0 < 26 {
            Some((b'a' + self.0 as u8) as char)
        } else {
            None
        }
    }

    /// Raw numeric id.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl From<u32> for Item {
    fn from(v: u32) -> Self {
        Item(v)
    }
}

impl fmt::Display for Item {
    /// Items 0–25 display as letters (matching the paper's examples); larger
    /// ids display numerically.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_letter() {
            Some(c) => write!(f, "{c}"),
            None => write!(f, "{}", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letter_roundtrip() {
        for c in 'a'..='z' {
            let item = Item::from_letter(c).unwrap();
            assert_eq!(item.as_letter(), Some(c));
            assert_eq!(item.to_string(), c.to_string());
        }
    }

    #[test]
    fn non_letters_rejected() {
        assert_eq!(Item::from_letter('A'), None);
        assert_eq!(Item::from_letter('0'), None);
        assert_eq!(Item::from_letter('{'), None);
    }

    #[test]
    fn large_items_display_numerically() {
        assert_eq!(Item(26).to_string(), "26");
        assert_eq!(Item(999).to_string(), "999");
        assert_eq!(Item(25).to_string(), "z");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Item(0) < Item(1));
        assert!(Item::from_letter('a').unwrap() < Item::from_letter('b').unwrap());
        assert!(Item(25) < Item(26));
    }
}
