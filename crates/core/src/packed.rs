//! Dictionary-packed `(item, transaction-number)` words.
//!
//! The flat arena (see [`crate::flat`]) already removed the pointer chases
//! from the mining hot paths; this module removes the *width*. After
//! [`ItemMapping`] has remapped the items actually present onto `0..n`, the
//! vast majority of databases need far fewer than 32 bits per item id — and
//! transaction numbers are small by construction (a customer's purchase
//! count). So one flattened pair fits a single dense `u32` word:
//!
//! ```text
//!   31            12 11         0
//!  +----------------+-----------+
//!  |   item id      |   txn     |    word = (item << 12) | txn
//!  +----------------+-----------+
//! ```
//!
//! Because the two bit fields do not overlap and the item occupies the high
//! bits, **unsigned word order equals the lexicographic `(item, txn)` pair
//! order** — which by Definition 2.2 means lexicographic word-*sequence*
//! order (shorter prefix smaller) is exactly the paper's comparative order.
//! Every ordered comparison the DISC strategy performs then becomes a word
//! compare the SIMD kernels of [`crate::simd`] chew 4–8 lanes at a time,
//! with half the memory traffic of the `u64` [`crate::flat::FlatKey`]
//! encoding.
//!
//! The budget is fixed: [`PACKED_ITEM_BITS`] = 20 bits of item id (1M
//! distinct items after remapping) and [`PACKED_TXN_BITS`] = 12 bits of
//! transaction number (4095 transactions per customer). Databases exceeding
//! it are **rejected with a typed [`DiscError::PackedOverflow`]** — never
//! silently truncated — and callers fall back to the always-valid wide
//! encoding. `ItemMapping::analyze`'s dense-input short-circuit does not
//! bypass the check: [`PackedDb::build`] validates every id it packs.

use crate::compact::ItemMapping;
use crate::error::DiscError;
use crate::flat::{FlatDb, SeqKey, SeqView};
use crate::item::Item;
use crate::itemset::Itemset;
use crate::sequence::{ExtElem, ExtMode, Sequence};
use crate::simd;
use crate::storage::DbStorage;
use std::cmp::Ordering;

/// Bits of the packed word holding the transaction number (low field).
pub const PACKED_TXN_BITS: u32 = 12;

/// Bits of the packed word holding the dictionary-remapped item id (high
/// field).
pub const PACKED_ITEM_BITS: u32 = 32 - PACKED_TXN_BITS;

/// Largest item id representable in a packed word.
pub const MAX_PACKED_ITEM: u32 = (1 << PACKED_ITEM_BITS) - 1;

/// Largest transaction *number* representable in a packed word. Numbers are
/// 1-based, so this is also the largest representable transaction count.
pub const MAX_PACKED_TXNS: u32 = (1 << PACKED_TXN_BITS) - 1;

/// Packs one flattened pair into a `u32` word (item high, txn low).
///
/// Debug-asserts the budget; release callers must have validated via
/// [`fits_packed_budget`] / [`PackedDb::build`] / [`PackedKey::try_new`].
#[inline]
pub fn pack_pair(item: Item, txn: u32) -> u32 {
    debug_assert!(item.id() <= MAX_PACKED_ITEM, "item {} exceeds packed budget", item.id());
    debug_assert!(
        (1..=MAX_PACKED_TXNS).contains(&txn),
        "transaction number {txn} exceeds packed budget"
    );
    (item.id() << PACKED_TXN_BITS) | txn
}

/// Inverse of [`pack_pair`].
#[inline]
pub fn unpack_pair(word: u32) -> (Item, u32) {
    (Item(word >> PACKED_TXN_BITS), word & MAX_PACKED_TXNS)
}

/// Checks a database's extremes against the packed-word budget: the largest
/// dictionary-remapped item id and the largest transaction count that will
/// be packed. Returns the typed overflow error naming the violated field.
pub fn fits_packed_budget(max_item_id: u64, max_txns: u64) -> Result<(), DiscError> {
    if max_item_id > MAX_PACKED_ITEM as u64 {
        return Err(DiscError::PackedOverflow {
            what: "item id",
            value: max_item_id,
            limit: MAX_PACKED_ITEM as u64,
        });
    }
    if max_txns > MAX_PACKED_TXNS as u64 {
        return Err(DiscError::PackedOverflow {
            what: "transaction index",
            value: max_txns,
            limit: MAX_PACKED_TXNS as u64,
        });
    }
    Ok(())
}

/// A whole flat database re-encoded as packed words (same CSR shape as
/// [`crate::flat::FlatArena`]): row-major words, itemset boundaries, row
/// boundaries.
#[derive(Debug, Clone)]
pub struct PackedDb {
    /// All packed words of all rows, row-major.
    words: DbStorage<u32>,
    /// Itemset boundaries into `words`, across all rows, with a trailing
    /// sentinel.
    set_starts: DbStorage<u32>,
    /// Row `r`'s boundaries live at `set_starts[row_sets[r]..=row_sets[r+1]]`.
    row_sets: DbStorage<u32>,
}

impl PackedDb {
    /// Re-encodes `db` through `mapping` into packed words, validating every
    /// item id and transaction index against the budget.
    ///
    /// `mapping` must be the one analyzed from the database `db` was built
    /// from (identity mappings skip the per-item translation). Rows whose
    /// transaction count or remapped item ids overflow the fixed bit fields
    /// produce [`DiscError::PackedOverflow`] — the caller keeps mining on
    /// the wide representation instead.
    pub fn build(db: &FlatDb, mapping: &ItemMapping) -> Result<PackedDb, DiscError> {
        let identity = mapping.is_identity();
        let mut words = Vec::new();
        let mut set_starts = vec![0u32];
        let mut row_sets = vec![0u32];
        for row in db.rows() {
            let n = row.n_transactions();
            fits_packed_budget(0, n as u64)?;
            for t in 0..n {
                for &item in row.itemset_items(t) {
                    let id = if identity {
                        item
                    } else {
                        mapping.to_compact(item).expect("mapping analyzed from this database")
                    };
                    fits_packed_budget(id.id() as u64, 0)?;
                    words.push(pack_pair(id, t as u32 + 1));
                }
                set_starts.push(words.len() as u32);
            }
            row_sets.push((set_starts.len() - 1) as u32);
        }
        Ok(PackedDb {
            words: words.into(),
            set_starts: set_starts.into(),
            row_sets: row_sets.into(),
        })
    }

    /// Assembles a packed database directly from its three CSR columns (any
    /// storage backend) — the [`crate::flatfile`] loader's entry point. The
    /// shape columns are shared with the flat arena: the packed word column
    /// is index-parallel to the item column, so one `(set_starts,
    /// row_sets)` pair describes both.
    pub fn from_columns(
        words: DbStorage<u32>,
        set_starts: DbStorage<u32>,
        row_sets: DbStorage<u32>,
    ) -> PackedDb {
        PackedDb { words, set_starts, row_sets }
    }

    /// The raw packed word column — the encoding surface for
    /// [`crate::flatfile`].
    pub fn words_column(&self) -> &[u32] {
        &self.words
    }

    /// Whether the columns borrow from a memory mapping (diagnostics).
    pub fn is_mapped(&self) -> bool {
        self.words.is_mapped()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.row_sets.len() - 1
    }

    /// True when no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> PackedSeq<'_> {
        let s0 = self.row_sets[r] as usize;
        let s1 = self.row_sets[r + 1] as usize;
        PackedSeq { words: &self.words, sets: &self.set_starts[s0..=s1] }
    }

    /// Iterates all row views in order.
    pub fn rows(&self) -> impl Iterator<Item = PackedSeq<'_>> + '_ {
        (0..self.len()).map(|r| self.row(r))
    }
}

/// One row of a [`PackedDb`]: a zero-copy view of its packed words.
#[derive(Debug, Clone, Copy)]
pub struct PackedSeq<'a> {
    /// The database's full word array; `sets` holds global indices into it.
    words: &'a [u32],
    /// This row's itemset boundaries (`n_transactions + 1` entries).
    sets: &'a [u32],
}

impl<'a> PackedSeq<'a> {
    /// Number of transactions (itemsets).
    #[inline]
    pub fn n_transactions(self) -> usize {
        self.sets.len() - 1
    }

    /// The packed words of transaction `t`, ascending (item order dominates
    /// and the txn field is constant within a transaction).
    #[inline]
    pub fn txn_words(self, t: usize) -> &'a [u32] {
        &self.words[self.sets[t] as usize..self.sets[t + 1] as usize]
    }

    /// The whole row's packed words — the flattened form, comparison-ready.
    #[inline]
    pub fn flat_words(self) -> &'a [u32] {
        &self.words[self.sets[0] as usize..self.sets[self.sets.len() - 1] as usize]
    }

    /// Decodes the row back to a nested sequence in *compact* ids; pass the
    /// result through [`ItemMapping::restore_sequence`] for original ids.
    pub fn to_sequence(self) -> Sequence {
        Sequence::new((0..self.n_transactions()).map(|t| {
            Itemset::from_sorted(self.txn_words(t).iter().map(|&w| unpack_pair(w).0).collect())
        }))
    }
}

/// Comparative order (Definition 2.2) of two packed rows: one vectorized
/// lexicographic word compare.
#[inline]
pub fn cmp_packed(a: PackedSeq<'_>, b: PackedSeq<'_>) -> Ordering {
    simd::cmp_u32(a.flat_words(), b.flat_words())
}

/// A pattern pre-packed for containment tests against a [`PackedDb`]: per
/// pattern itemset, the item ids shifted into the high field with the txn
/// field zeroed. OR-ing a candidate transaction number onto a shifted id
/// yields the exact word that transaction would contain — so subset testing
/// runs directly on the haystack's raw words, vectorized.
#[derive(Debug, Clone, Default)]
pub struct PackedPattern {
    /// Per pattern itemset: sorted `item << PACKED_TXN_BITS` words.
    shifted_sets: Vec<Vec<u32>>,
}

impl PackedPattern {
    /// Packs `pat` (already in compact ids), validating the item budget.
    /// The transaction budget needs no check here: a pattern only ever
    /// matches transactions the database itself holds.
    pub fn try_new(pat: &Sequence) -> Result<PackedPattern, DiscError> {
        let mut shifted_sets = Vec::with_capacity(pat.n_transactions());
        for set in pat.itemsets() {
            let mut shifted = Vec::with_capacity(set.len());
            for item in set.iter() {
                fits_packed_budget(item.id() as u64, 0)?;
                shifted.push(item.id() << PACKED_TXN_BITS);
            }
            shifted_sets.push(shifted);
        }
        Ok(PackedPattern { shifted_sets })
    }

    /// Number of pattern itemsets.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.shifted_sets.len()
    }
}

/// Whether one pattern itemset is a subset of transaction `t` of `hay` —
/// a merge walk over raw packed words (needle = shifted id | txn tag).
#[inline]
fn packed_txn_subset(shifted: &[u32], tag: u32, txn_words: &[u32]) -> bool {
    if shifted.len() > txn_words.len() {
        return false;
    }
    if let [s] = shifted {
        return simd::contains_u32(txn_words, s | tag);
    }
    let mut pos = 0usize;
    for &s in shifted {
        let w = s | tag;
        pos += simd::first_ge_u32(&txn_words[pos..], w);
        if pos >= txn_words.len() || txn_words[pos] != w {
            return false;
        }
        pos += 1;
    }
    true
}

/// Vectorized leftmost-embedding containment on packed rows: the packed
/// counterpart of [`crate::embed::view_contains`], returning the same
/// verdict for the same (compact-id) pattern.
pub fn packed_contains(hay: PackedSeq<'_>, pat: &PackedPattern) -> bool {
    let n = hay.n_transactions();
    let mut from = 0usize;
    for shifted in &pat.shifted_sets {
        let t =
            match (from..n).find(|&t| packed_txn_subset(shifted, t as u32 + 1, hay.txn_words(t))) {
                Some(t) => t,
                None => return false,
            };
        from = t + 1;
    }
    true
}

/// Exact support of a (compact-id) pattern over a packed database — the
/// packed counterpart of [`crate::support::support_count`].
pub fn support_count_packed(db: &PackedDb, pat: &Sequence) -> Result<u64, DiscError> {
    let packed = PackedPattern::try_new(pat)?;
    Ok(db.rows().filter(|&row| packed_contains(row, &packed)).count() as u64)
}

/// Packed keys up to this many words live inline in the key itself — no
/// heap allocation. The rekey inner loop of the discovery pass produces one
/// extended key per CKMS hit (hundreds of thousands per run), and mined
/// patterns rarely exceed a dozen pairs, so the common case is a plain
/// word-array copy.
pub const PACKED_INLINE_WORDS: usize = 16;

/// Storage of a [`PackedKey`]: a small inline buffer, spilling to the heap
/// only for keys longer than [`PACKED_INLINE_WORDS`] pairs.
#[derive(Debug, Clone)]
enum KeyRepr {
    /// `len` valid words at the front of `buf`.
    Inline { len: u8, buf: [u32; PACKED_INLINE_WORDS] },
    /// Keys too long for the inline buffer.
    Heap(Vec<u32>),
}

/// The narrow counterpart of [`crate::flat::FlatKey`]: a sequence key whose
/// flattened pairs are packed one per `u32` word, so every comparison moves
/// half the bytes. Only valid within the packed budget — construction is
/// fallible, and the k-sorted database selects this encoding only after
/// [`fits_packed_budget`] cleared the whole member set (every key it will
/// ever hold is built from those members' pairs).
#[derive(Debug, Clone)]
pub struct PackedKey {
    repr: KeyRepr,
}

impl PackedKey {
    /// Wraps an already-validated word sequence, inlining when it fits.
    fn from_words(words: &[u32]) -> PackedKey {
        if words.len() <= PACKED_INLINE_WORDS {
            let mut buf = [0u32; PACKED_INLINE_WORDS];
            buf[..words.len()].copy_from_slice(words);
            PackedKey { repr: KeyRepr::Inline { len: words.len() as u8, buf } }
        } else {
            PackedKey { repr: KeyRepr::Heap(words.to_vec()) }
        }
    }

    /// Flattens `seq` (compact ids) into a packed key, validating the
    /// budget.
    pub fn try_new(seq: &Sequence) -> Result<PackedKey, DiscError> {
        fits_packed_budget(0, seq.n_transactions() as u64)?;
        let mut words = Vec::with_capacity(seq.length());
        for (item, txn) in seq.flat_iter() {
            fits_packed_budget(item.id() as u64, 0)?;
            words.push(pack_pair(item, txn));
        }
        Ok(PackedKey::from_words(&words))
    }

    /// The key of `self` extended by `elem` — appends exactly one packed
    /// pair; for inline keys this is an allocation-free array copy. Panics
    /// (never truncates) if the extension would overflow the budget; the
    /// k-sorted database's member pre-check makes that unreachable in the
    /// mining pipeline.
    pub fn extended(&self, elem: ExtElem) -> PackedKey {
        let words = self.words();
        let last_txn = words.last().map_or(0, |&w| w & MAX_PACKED_TXNS);
        debug_assert!(
            last_txn > 0 || elem.mode == ExtMode::Sequence,
            "itemset extension of an empty key"
        );
        let txn = match elem.mode {
            ExtMode::Itemset => last_txn,
            ExtMode::Sequence => last_txn + 1,
        };
        assert!(
            elem.item.id() <= MAX_PACKED_ITEM && txn <= MAX_PACKED_TXNS,
            "packed key extension overflows the packed budget"
        );
        let extra = pack_pair(elem.item, txn);
        if words.len() < PACKED_INLINE_WORDS {
            let mut buf = [0u32; PACKED_INLINE_WORDS];
            buf[..words.len()].copy_from_slice(words);
            buf[words.len()] = extra;
            return PackedKey { repr: KeyRepr::Inline { len: words.len() as u8 + 1, buf } };
        }
        let mut v = Vec::with_capacity(words.len() + 1);
        v.extend_from_slice(words);
        v.push(extra);
        PackedKey { repr: KeyRepr::Heap(v) }
    }

    /// Reconstructs the nested sequence (the packing is invertible).
    pub fn to_sequence(&self) -> Sequence {
        let words = self.words();
        let mut itemsets =
            Vec::with_capacity(words.last().map_or(0, |&w| (w & MAX_PACKED_TXNS) as usize));
        let mut i = 0;
        while i < words.len() {
            let txn = words[i] & MAX_PACKED_TXNS;
            let mut items = Vec::new();
            while i < words.len() && words[i] & MAX_PACKED_TXNS == txn {
                items.push(unpack_pair(words[i]).0);
                i += 1;
            }
            itemsets.push(Itemset::from_sorted(items));
        }
        Sequence::new(itemsets)
    }

    /// [`PackedKey::to_sequence`], consuming the key.
    pub fn into_sequence(self) -> Sequence {
        self.to_sequence()
    }

    /// The packed `u32` words (one per flattened pair, comparison-ready).
    #[inline]
    pub fn words(&self) -> &[u32] {
        match &self.repr {
            KeyRepr::Inline { len, buf } => &buf[..*len as usize],
            KeyRepr::Heap(v) => v,
        }
    }
}

// As with `FlatKey`: the packing is invertible, so word equality coincides
// with sequence equality.
impl PartialEq for PackedKey {
    fn eq(&self, other: &PackedKey) -> bool {
        self.words() == other.words()
    }
}

impl Eq for PackedKey {}

impl PartialOrd for PackedKey {
    fn partial_cmp(&self, other: &PackedKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PackedKey {
    fn cmp(&self, other: &PackedKey) -> Ordering {
        simd::cmp_u32(self.words(), other.words())
    }
}

impl SeqKey for PackedKey {
    #[inline]
    fn key_of(seq: &Sequence) -> PackedKey {
        PackedKey::try_new(seq).expect("caller pre-checked the packed budget")
    }

    #[inline]
    fn extended_key(&self, elem: ExtElem) -> PackedKey {
        self.extended(elem)
    }

    #[inline]
    fn to_sequence(&self) -> Sequence {
        PackedKey::to_sequence(self)
    }

    #[inline]
    fn into_sequence(self) -> Sequence {
        PackedKey::into_sequence(self)
    }

    #[inline]
    fn n_pairs(&self) -> usize {
        self.words().len()
    }

    #[inline]
    fn cmp_to_bound_prefix(&self, bound: &PackedKey) -> std::cmp::Ordering {
        let bw = bound.words();
        self.words().cmp(&bw[..bw.len() - 1])
    }

    #[inline]
    fn last_ext(&self) -> ExtElem {
        let words = self.words();
        let n = words.len();
        debug_assert!(n >= 2, "last_ext of a key shorter than 2 pairs");
        let w = words[n - 1];
        let mode = if w & MAX_PACKED_TXNS == words[n - 2] & MAX_PACKED_TXNS {
            ExtMode::Itemset
        } else {
            ExtMode::Sequence
        };
        ExtElem { item: Item(w >> PACKED_TXN_BITS), mode }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SequenceDatabase;
    use crate::embed::contains;
    use crate::flat::FlatKey;
    use crate::order::cmp_sequences;
    use crate::parse::parse_sequence;
    use crate::support::support_count;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn pack_unpack_round_trips_and_preserves_pair_order() {
        let pairs = [
            (Item(0), 1),
            (Item(0), MAX_PACKED_TXNS),
            (Item(1), 1),
            (Item(7), 3),
            (Item(MAX_PACKED_ITEM), 1),
            (Item(MAX_PACKED_ITEM), MAX_PACKED_TXNS),
        ];
        for &(i, t) in &pairs {
            assert_eq!(unpack_pair(pack_pair(i, t)), (i, t));
        }
        for &(xi, xn) in &pairs {
            for &(yi, yn) in &pairs {
                assert_eq!(
                    pack_pair(xi, xn).cmp(&pack_pair(yi, yn)),
                    (xi, xn).cmp(&(yi, yn)),
                    "({xi:?},{xn}) vs ({yi:?},{yn})"
                );
            }
        }
    }

    #[test]
    fn budget_rejects_overflow_with_typed_error() {
        assert!(fits_packed_budget(MAX_PACKED_ITEM as u64, MAX_PACKED_TXNS as u64).is_ok());
        assert_eq!(
            fits_packed_budget(MAX_PACKED_ITEM as u64 + 1, 0),
            Err(DiscError::PackedOverflow {
                what: "item id",
                value: MAX_PACKED_ITEM as u64 + 1,
                limit: MAX_PACKED_ITEM as u64,
            })
        );
        assert_eq!(
            fits_packed_budget(0, MAX_PACKED_TXNS as u64 + 1),
            Err(DiscError::PackedOverflow {
                what: "transaction index",
                value: MAX_PACKED_TXNS as u64 + 1,
                limit: MAX_PACKED_TXNS as u64,
            })
        );
    }

    #[test]
    fn packed_db_round_trips_table_1() {
        let db = table1();
        let mapping = ItemMapping::analyze(&db);
        let flat = FlatDb::from_database(&db);
        let packed = PackedDb::build(&flat, &mapping).unwrap();
        assert_eq!(packed.len(), db.len());
        for (i, row) in packed.rows().enumerate() {
            // Table 1 ids are already dense, so compact == original.
            assert_eq!(&row.to_sequence(), db.sequence(i), "row {i}");
        }
    }

    #[test]
    fn packed_db_remaps_sparse_ids_and_rejects_oversized() {
        let db = SequenceDatabase::from_parsed(&[
            "(10, 4000000)(999999999)",
            "(10)(4000000, 999999999)",
        ])
        .unwrap();
        let mapping = ItemMapping::analyze(&db);
        let flat = FlatDb::from_database(&db);
        // Sparse but only 3 distinct items: packs fine after remapping.
        let packed = PackedDb::build(&flat, &mapping).unwrap();
        assert_eq!(mapping.restore_sequence(&packed.row(0).to_sequence()), *db.sequence(0));

        // The dense short-circuit must not smuggle oversized ids past the
        // check: a gapless id space `0..=MAX_PACKED_ITEM+1` analyzes to the
        // identity mapping (no remap step), yet its top id exceeds the item
        // budget — build must reject, never truncate.
        let wide = SequenceDatabase::from_sequences([Sequence::new([Itemset::from_sorted(
            (0..=MAX_PACKED_ITEM + 1).map(Item).collect(),
        )])]);
        let wide_mapping = ItemMapping::analyze(&wide);
        assert!(wide_mapping.is_identity());
        let err = PackedDb::build(&FlatDb::from_database(&wide), &wide_mapping).unwrap_err();
        assert!(matches!(err, DiscError::PackedOverflow { what: "item id", .. }), "{err}");
    }

    #[test]
    fn packed_db_rejects_too_many_transactions() {
        let text = "(a)".repeat(MAX_PACKED_TXNS as usize + 1);
        let db = SequenceDatabase::from_parsed(&[text.as_str()]).unwrap();
        let mapping = ItemMapping::analyze(&db);
        let err = PackedDb::build(&FlatDb::from_database(&db), &mapping).unwrap_err();
        assert!(
            matches!(err, DiscError::PackedOverflow { what: "transaction index", .. }),
            "{err}"
        );
    }

    #[test]
    fn cmp_packed_is_the_comparative_order() {
        let texts = [
            "(a)(b)(h)",
            "(a)(c)(f)",
            "(a,b)(c)",
            "(a)(b,c)",
            "(a)(b)",
            "(a)(b)(c)",
            "(b,f,g)",
            "(a,c,d)(b,d)",
            "(a,d,e)(a)",
        ];
        let db = SequenceDatabase::from_parsed(&texts).unwrap();
        let mapping = ItemMapping::analyze(&db);
        let packed = PackedDb::build(&FlatDb::from_database(&db), &mapping).unwrap();
        for (x, tx) in texts.iter().enumerate() {
            for (y, ty) in texts.iter().enumerate() {
                assert_eq!(
                    cmp_packed(packed.row(x), packed.row(y)),
                    cmp_sequences(&seq(tx), &seq(ty)),
                    "{tx} vs {ty}"
                );
                assert_eq!(
                    PackedKey::try_new(&seq(tx))
                        .unwrap()
                        .cmp(&PackedKey::try_new(&seq(ty)).unwrap()),
                    cmp_sequences(&seq(tx), &seq(ty)),
                    "keys {tx} vs {ty}"
                );
            }
        }
    }

    #[test]
    fn packed_contains_matches_nested_containment() {
        let db = table1();
        let mapping = ItemMapping::analyze(&db);
        let packed = PackedDb::build(&FlatDb::from_database(&db), &mapping).unwrap();
        let patterns = [
            "(a)(b)(b)",
            "(a,g)(b)(f)",
            "(b)(a)",
            "(a,b)",
            "(e)(b,f)",
            "(b,f)",
            "(b)(f)(b)",
            "(f)(f)(f)",
            "(h)(h)",
        ];
        for p in &patterns {
            let pat = seq(p);
            let packed_pat = PackedPattern::try_new(&pat).unwrap();
            for i in 0..db.len() {
                assert_eq!(
                    packed_contains(packed.row(i), &packed_pat),
                    contains(db.sequence(i), &pat),
                    "pattern {p} row {i}"
                );
            }
            assert_eq!(
                support_count_packed(&packed, &pat).unwrap(),
                support_count(&db, &pat),
                "support of {p}"
            );
        }
        // The empty pattern is contained in everything.
        let empty = PackedPattern::try_new(&Sequence::empty()).unwrap();
        assert!(packed_contains(packed.row(0), &empty));
    }

    #[test]
    fn packed_key_round_trips_and_extends_like_flat_key() {
        for t in ["(a)", "(a)(b,c)", "(a,b,c)", "(a)(a)(a)", "(b,f,g)(a)(c,d)"] {
            let s = seq(t);
            let key = PackedKey::try_new(&s).unwrap();
            assert_eq!(key.to_sequence(), s, "{t}");
            assert_eq!(key.clone().into_sequence(), s, "{t}");
            // Itemset extensions always append past the current max item
            // (the extension kernels guarantee it), so item 25 is the only
            // valid itemset extension across these fixtures.
            for elem in [
                ExtElem { item: Item(25), mode: ExtMode::Itemset },
                ExtElem { item: Item(3), mode: ExtMode::Sequence },
            ] {
                let wide = FlatKey::new(&s).extended(elem).into_sequence();
                assert_eq!(key.extended(elem).to_sequence(), wide, "{t} + {elem:?}");
            }
        }
    }

    #[test]
    fn packed_key_rejects_budget_overflow() {
        let over = Sequence::new([Itemset::from_sorted(vec![Item(MAX_PACKED_ITEM + 1)])]);
        assert!(matches!(
            PackedKey::try_new(&over),
            Err(DiscError::PackedOverflow { what: "item id", .. })
        ));
        assert!(matches!(
            PackedPattern::try_new(&over),
            Err(DiscError::PackedOverflow { what: "item id", .. })
        ));
        let tall =
            Sequence::new((0..=MAX_PACKED_TXNS).map(|_| Itemset::from_sorted(vec![Item(0)])));
        assert!(matches!(
            PackedKey::try_new(&tall),
            Err(DiscError::PackedOverflow { what: "transaction index", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "packed key extension overflows")]
    fn packed_key_extension_panics_instead_of_truncating() {
        let tall = Sequence::new((0..MAX_PACKED_TXNS).map(|_| Itemset::from_sorted(vec![Item(0)])));
        let key = PackedKey::try_new(&tall).unwrap();
        let _ = key.extended(ExtElem { item: Item(0), mode: ExtMode::Sequence });
    }
}
