//! Error types for parsing sequences and databases, plus the workspace-wide
//! [`DiscError`] umbrella that IO- and input-facing code returns instead of
//! panicking.

use crate::checkpoint::CheckpointError;
use crate::codec::CodecError;
use crate::store::StoreError;
use std::fmt;
use std::path::PathBuf;

/// An error produced while parsing a sequence or database from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An unexpected character at the given byte offset.
    UnexpectedChar {
        /// Byte offset in the input.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// Input ended inside a transaction.
    UnexpectedEnd,
    /// A transaction was empty (`()`).
    EmptyItemset {
        /// Byte offset of the closing parenthesis.
        offset: usize,
    },
    /// A numeric item id overflowed `u32`.
    ItemOverflow {
        /// Byte offset where the number starts.
        offset: usize,
    },
    /// A database line was malformed (missing `cid:` prefix or bad id).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A customer id appeared on more than one database line. Silently
    /// keeping both rows would double-count the customer's support.
    DuplicateCustomer {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated customer id.
        cid: u64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { offset, found } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            ParseError::UnexpectedEnd => write!(f, "input ended inside a transaction"),
            ParseError::EmptyItemset { offset } => {
                write!(f, "empty transaction at byte {offset}")
            }
            ParseError::ItemOverflow { offset } => {
                write!(f, "item id at byte {offset} does not fit in u32")
            }
            ParseError::BadLine { line, reason } => {
                write!(f, "bad database line {line}: {reason}")
            }
            ParseError::DuplicateCustomer { line, cid } => {
                write!(f, "line {line}: customer id {cid} appeared earlier in the input")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// The workspace-wide error type: everything that can go wrong between a
/// user's input (text, binary files, environment configuration, checkpoint
/// state) and a mining run. Code reachable from user input or file IO
/// returns this instead of panicking, so corrupt inputs fail with a
/// diagnostic rather than a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscError {
    /// Text input failed to parse.
    Parse(ParseError),
    /// A binary database failed to decode.
    Codec(CodecError),
    /// A checkpoint failed to write, load, or validate.
    Checkpoint(CheckpointError),
    /// The durable ingest store failed to append, recover, or compact.
    Store(StoreError),
    /// An IO operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        message: String,
        /// Whether the failure is transient (`EINTR`/`EAGAIN`-class) and
        /// worth retrying, per [`crate::guard::is_transient_io_kind`].
        transient: bool,
    },
    /// A configuration value (CLI flag, environment variable) was invalid.
    Config {
        /// The option's name, e.g. `DISC_BENCH_DEADLINE_SECS`.
        option: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A DSCFD1 flat file failed structural or CRC verification — it is
    /// refused whole; no partially-mapped database is ever returned.
    FlatFile {
        /// The flat file involved.
        path: PathBuf,
        /// What was wrong.
        what: &'static str,
    },
    /// A database exceeds the packed-word budget of
    /// [`crate::packed::PackedDb`]: its dictionary-remapped item count or a
    /// transaction index does not fit the fixed bit fields. Callers fall
    /// back to the wide ([`crate::flat::FlatKey`]) representation rather
    /// than silently truncating.
    PackedOverflow {
        /// Which budget was exceeded (`"item id"` or `"transaction index"`).
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The largest representable value.
        limit: u64,
    },
}

impl fmt::Display for DiscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscError::Parse(e) => write!(f, "{e}"),
            DiscError::Codec(e) => write!(f, "{e}"),
            DiscError::Checkpoint(e) => write!(f, "{e}"),
            DiscError::Store(e) => write!(f, "{e}"),
            DiscError::Io { path, message, .. } => {
                write!(f, "io error at {}: {message}", path.display())
            }
            DiscError::Config { option, reason } => write!(f, "invalid {option}: {reason}"),
            DiscError::FlatFile { path, what } => {
                write!(f, "corrupt flat file {}: {what}", path.display())
            }
            DiscError::PackedOverflow { what, value, limit } => {
                write!(f, "packed-word budget exceeded: {what} {value} > {limit}")
            }
        }
    }
}

impl DiscError {
    /// Whether the failure is transient — an `EINTR`/`EAGAIN`-class IO
    /// error that a supervisor can reasonably retry — as opposed to a
    /// permanent one (corrupt input, bad configuration, `ENOSPC`).
    ///
    /// `disc-mine` maps this to its exit code (75, `EX_TEMPFAIL`, for
    /// transient; 1 for permanent) so restart policies can tell the two
    /// apart without parsing stderr.
    pub fn is_transient(&self) -> bool {
        match self {
            DiscError::Io { transient, .. } => *transient,
            DiscError::Store(e) => e.is_transient(),
            DiscError::Checkpoint(CheckpointError::Io { transient, .. }) => *transient,
            _ => false,
        }
    }

    /// Builds [`DiscError::Io`] from an `io::Error`, classifying transience.
    pub fn from_io(path: impl Into<PathBuf>, e: &std::io::Error) -> DiscError {
        DiscError::Io {
            path: path.into(),
            message: e.to_string(),
            transient: crate::guard::is_transient_io_kind(e.kind()),
        }
    }
}

impl std::error::Error for DiscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiscError::Parse(e) => Some(e),
            DiscError::Codec(e) => Some(e),
            DiscError::Checkpoint(e) => Some(e),
            DiscError::Store(e) => Some(e),
            DiscError::Io { .. }
            | DiscError::Config { .. }
            | DiscError::FlatFile { .. }
            | DiscError::PackedOverflow { .. } => None,
        }
    }
}

impl From<ParseError> for DiscError {
    fn from(e: ParseError) -> DiscError {
        DiscError::Parse(e)
    }
}

impl From<CodecError> for DiscError {
    fn from(e: CodecError) -> DiscError {
        DiscError::Codec(e)
    }
}

impl From<CheckpointError> for DiscError {
    fn from(e: CheckpointError) -> DiscError {
        DiscError::Checkpoint(e)
    }
}

impl From<StoreError> for DiscError {
    fn from(e: StoreError) -> DiscError {
        DiscError::Store(e)
    }
}
