//! Error types for parsing sequences and databases.

use std::fmt;

/// An error produced while parsing a sequence or database from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An unexpected character at the given byte offset.
    UnexpectedChar {
        /// Byte offset in the input.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// Input ended inside a transaction.
    UnexpectedEnd,
    /// A transaction was empty (`()`).
    EmptyItemset {
        /// Byte offset of the closing parenthesis.
        offset: usize,
    },
    /// A numeric item id overflowed `u32`.
    ItemOverflow {
        /// Byte offset where the number starts.
        offset: usize,
    },
    /// A database line was malformed (missing `cid:` prefix or bad id).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A customer id appeared on more than one database line. Silently
    /// keeping both rows would double-count the customer's support.
    DuplicateCustomer {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated customer id.
        cid: u64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { offset, found } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            ParseError::UnexpectedEnd => write!(f, "input ended inside a transaction"),
            ParseError::EmptyItemset { offset } => {
                write!(f, "empty transaction at byte {offset}")
            }
            ParseError::ItemOverflow { offset } => {
                write!(f, "item id at byte {offset} does not fit in u32")
            }
            ParseError::BadLine { line, reason } => {
                write!(f, "bad database line {line}: {reason}")
            }
            ParseError::DuplicateCustomer { line, cid } => {
                write!(f, "line {line}: customer id {cid} appeared earlier in the input")
            }
        }
    }
}

impl std::error::Error for ParseError {}
