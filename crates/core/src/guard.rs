//! The **guarded mining runtime**: cancellation, deadlines, resource
//! budgets, panic isolation, and fallback chains for every miner.
//!
//! Mining is worst-case exponential in the output: a hostile (or merely
//! unlucky) database plus a low threshold can run for hours and allocate
//! without bound. Embedding a miner in a service therefore needs four
//! guarantees that the plain [`SequentialMiner::mine`] contract cannot give:
//!
//! 1. **Cancellation** — another thread can abort an in-flight job through a
//!    cheap [`CancelToken`];
//! 2. **Deadlines / budgets** — a [`ResourceBudget`] bounds wall-clock time,
//!    expanded-node/comparison work, and the number of tracked patterns;
//! 3. **Panic isolation** — a bug in one algorithm must not take down the
//!    caller, and whatever was mined before the panic should survive;
//! 4. **Fallbacks** — when a fancy miner dies, a sturdier one should get the
//!    same job ([`FallbackMiner`]).
//!
//! The contract is *cooperative*: miners call [`MineGuard::checkpoint`] (or
//! [`MineGuard::charge`]) inside their hot loops — amortized to one real
//! check every [`MineGuard::DEFAULT_CHECKPOINT_INTERVAL`] operations — and
//! thread the resulting `Result` outward, inserting each frequent pattern
//! into the shared [`MiningResult`] as soon as its exact support is known.
//! An aborted run therefore returns a **sound partial result**: every
//! pattern it reports is frequent with its exact support; only completeness
//! is given up, which [`MineOutcome::Partial`] records.

use crate::database::SequenceDatabase;
use crate::miner::SequentialMiner;
use crate::result::MiningResult;
use crate::support::MinSupport;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(any(test, feature = "fault-injection"))]
use std::rc::Rc;

// -------------------------------------------------------------------------
// Transient-error classification and bounded retry with jittered backoff.

/// Whether an [`std::io::ErrorKind`] is **transient** — the `EINTR`/`EAGAIN`
/// class of failures that a short, bounded retry is likely to clear — as
/// opposed to permanent conditions (missing files, permissions, a full disk,
/// corrupt data) where retrying only delays the real diagnostic.
pub fn is_transient_io_kind(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::Interrupted
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
            | ErrorKind::ResourceBusy
    )
}

/// Whether an [`std::io::ErrorKind`] is **transient at the network layer**:
/// the [`is_transient_io_kind`] class plus the socket failures a retrying
/// client (or an accept loop) should absorb — peers resetting or aborting
/// connections, half-written responses, and a listener that is momentarily
/// refusing (e.g. across a server restart). A *local-file* writer must keep
/// using [`is_transient_io_kind`]: a reset on a file path would be a bug
/// worth surfacing, not retrying.
pub fn is_transient_net_kind(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    is_transient_io_kind(kind)
        || matches!(
            kind,
            ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::ConnectionRefused
                | ErrorKind::BrokenPipe
                | ErrorKind::NotConnected
                | ErrorKind::UnexpectedEof
        )
}

/// A bounded retry schedule with exponential, jittered backoff, shared by
/// every durable writer in the workspace (WAL appends, checkpoint snapshots,
/// store snapshot publication).
///
/// The jitter is deterministic per process *sequence* (a splitmix64 stream),
/// not wall-clock random — retries stay reproducible under test while
/// concurrent writers still decorrelate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// The default schedule for local-filesystem IO: 4 attempts, 1 ms base,
    /// 20 ms cap — under 50 ms worst case, enough to clear an interrupted
    /// syscall without masking a real failure.
    pub const fn io_default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        }
    }

    /// No retries at all: every failure surfaces on first touch.
    pub const fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
    }

    /// The backoff before retry number `retry` (0-based), jittered into
    /// `[50%, 100%]` of the exponential step by `salt`. Public so callers
    /// running their own retry loops (the HTTP client honors `Retry-After`
    /// and response statuses, which [`retry_transient`] cannot see) still
    /// sleep on the shared jittered schedule. Draw `salt` once per retried
    /// operation from [`fresh_retry_salt`].
    pub fn delay(&self, retry: u32, salt: u64) -> Duration {
        self.backoff(retry, salt)
    }

    fn backoff(&self, retry: u32, salt: u64) -> Duration {
        let step =
            self.base_delay.saturating_mul(1u32 << retry.min(16)).min(self.max_delay).as_nanos()
                as u64;
        let jittered = step / 2 + splitmix64(salt ^ u64::from(retry)) % (step / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::io_default()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-process jitter stream; each retried operation draws a fresh salt so
/// concurrent writers back off on decorrelated schedules.
static RETRY_SALT: AtomicU64 = AtomicU64::new(0x243F_6A88_85A3_08D3);

/// Draws the next salt from the per-process jitter stream — the same stream
/// [`retry_transient`] uses, for callers running their own retry loops with
/// [`RetryPolicy::delay`].
pub fn fresh_retry_salt() -> u64 {
    RETRY_SALT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// Runs `op`, retrying **transient** IO failures (see
/// [`is_transient_io_kind`]) up to `policy.max_attempts` total attempts with
/// jittered exponential backoff. Permanent failures — and the final
/// transient failure once attempts run out — are returned unchanged, so the
/// caller's diagnostics always carry the real error.
pub fn retry_transient<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let salt = fresh_retry_salt();
    let mut retry = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if retry + 1 < policy.max_attempts.max(1) && is_transient_io_kind(e.kind()) => {
                std::thread::sleep(policy.backoff(retry, salt));
                retry += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

// -------------------------------------------------------------------------
// The writer-agnostic IO fault surface (tests / `fault-injection` only).

/// Which durable writer an injected [`IoFault`] targets. One injection
/// surface serves every writer in the workspace — the checkpoint snapshot
/// path, WAL appends, and store snapshot publication — instead of each
/// growing a bespoke flag.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoWriter {
    /// The mining checkpoint snapshot writer (`core::checkpoint`).
    Checkpoint,
    /// A WAL frame append (`core::store::wal`).
    WalAppend,
    /// A store snapshot publication during compaction (`core::store`).
    StoreSnapshot,
    /// A store file read during recovery or fsck (`core::store`). Targets
    /// the n-th file opened, for short-read and `EINTR` injection.
    StoreRead,
    /// A DSCFD1 flat-file publication (`core::flatfile`), standalone or as
    /// the columnar mirror a store compaction emits.
    FlatFile,
}

/// A deterministic IO fault to inject at a numbered write (or read) of one
/// [`IoWriter`]. Crash-class faults leave on disk exactly what a real kill
/// at that point would, then panic to simulate the death; error-class faults
/// make the targeted syscall fail once with the corresponding `io::Error`,
/// exercising the retry/classification paths.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Crash mid-write: only a prefix of the bytes reaches the file.
    TornWrite,
    /// Crash between fsync and rename: the temp file is complete but the
    /// final path never updated.
    CrashBeforeRename,
    /// Crash after rename but before post-publication cleanup (e.g. WAL
    /// segment deletion after a compaction).
    CrashAfterRename,
    /// The write "succeeds" but a payload byte flipped — silent corruption
    /// that only the frame/section CRCs can catch.
    CorruptByte,
    /// The file is written whole, in a format version this build rejects.
    StaleVersion,
    /// The write fails with `ENOSPC` — a permanent error the retry helper
    /// must *not* retry.
    Enospc,
    /// The write fails once with `EINTR` — a transient error the retry
    /// helper clears on the next attempt.
    Interrupted,
    /// A read returns fewer bytes than the file holds, as a torn tail would.
    ShortRead,
}

#[cfg(any(test, feature = "fault-injection"))]
impl IoFault {
    /// The `io::Error` this fault injects, for error-class faults; `None`
    /// for crash-class faults, which are staged on disk instead.
    pub fn as_io_error(self) -> Option<std::io::Error> {
        match self {
            IoFault::Enospc => {
                Some(std::io::Error::new(std::io::ErrorKind::StorageFull, "injected ENOSPC"))
            }
            IoFault::Interrupted => {
                Some(std::io::Error::new(std::io::ErrorKind::Interrupted, "injected EINTR"))
            }
            _ => None,
        }
    }

    /// The legacy checkpoint crash this fault corresponds to, when it maps.
    pub fn as_checkpoint_crash(self) -> Option<crate::checkpoint::CheckpointCrash> {
        use crate::checkpoint::CheckpointCrash;
        match self {
            IoFault::TornWrite => Some(CheckpointCrash::TornTempWrite),
            IoFault::CrashBeforeRename => Some(CheckpointCrash::CrashBeforeRename),
            IoFault::CorruptByte => Some(CheckpointCrash::CorruptSection),
            IoFault::StaleVersion => Some(CheckpointCrash::StaleVersion),
            _ => None,
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
impl From<crate::checkpoint::CheckpointCrash> for IoFault {
    fn from(crash: crate::checkpoint::CheckpointCrash) -> IoFault {
        use crate::checkpoint::CheckpointCrash;
        match crash {
            CheckpointCrash::TornTempWrite => IoFault::TornWrite,
            CheckpointCrash::CrashBeforeRename => IoFault::CrashBeforeRename,
            CheckpointCrash::CorruptSection => IoFault::CorruptByte,
            CheckpointCrash::StaleVersion => IoFault::StaleVersion,
        }
    }
}

/// A cheap, cloneable cancellation handle.
///
/// Clone it, hand one copy to the mining thread (inside a [`MineGuard`]) and
/// keep the other; [`CancelToken::cancel`] flips a shared atomic flag that
/// the guard observes at its next checkpoint.
///
/// Tokens form a hierarchy: [`CancelToken::child`] derives a token that
/// observes its parent's cancellation but can be cancelled on its own
/// without touching the parent. The parallel executor scopes first-error
/// propagation to a child per run, so an aborted run never poisons the
/// caller's token (a cancelled token cannot be un-cancelled).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation of this token — and, through observation, of
    /// every child derived from it. Idempotent; never blocks. Cancelling a
    /// child leaves its parent un-cancelled.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested on this token or any of its
    /// ancestors.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        let mut next = self.parent.as_deref();
        while let Some(token) = next {
            if token.flag.load(Ordering::Relaxed) {
                return true;
            }
            next = token.parent.as_deref();
        }
        false
    }

    /// A child token: cancelled when either it or this token (or any
    /// ancestor) is cancelled, while cancelling the child has no effect on
    /// this token.
    pub fn child(&self) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), parent: Some(Arc::new(self.clone())) }
    }
}

/// Resource limits for one guarded mining run. All limits are optional;
/// [`ResourceBudget::unlimited`] disables everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Wall-clock deadline, measured from [`MineGuard`] construction.
    pub deadline: Option<Duration>,
    /// Maximum number of charged operations (expanded nodes, comparisons,
    /// scans — whatever unit the miner charges at its checkpoints).
    pub max_ops: Option<u64>,
    /// Maximum number of patterns recorded into the result.
    pub max_patterns: Option<usize>,
}

impl ResourceBudget {
    /// No limits at all.
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ResourceBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets an operation-count ceiling.
    pub fn with_max_ops(mut self, max_ops: u64) -> ResourceBudget {
        self.max_ops = Some(max_ops);
        self
    }

    /// Sets a ceiling on the number of patterns tracked.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> ResourceBudget {
        self.max_patterns = Some(max_patterns);
        self
    }
}

/// Operation and pattern counters shared by every worker guard of one
/// parallel run, so a [`ResourceBudget`] bounds the run *globally* rather
/// than per worker.
///
/// Worker guards keep the cheap `Cell`-based hot path and flush their
/// operation counts into the shared atomics only at full checkpoints; the
/// pattern counter is updated exactly (it is a memory bound).
#[derive(Debug, Default)]
pub struct SharedCounters {
    ops: AtomicU64,
    patterns: AtomicUsize,
}

impl SharedCounters {
    /// Fresh zeroed counters.
    pub fn new() -> SharedCounters {
        SharedCounters::default()
    }

    /// Total operations flushed by all worker guards so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Total patterns noted by all worker guards so far.
    pub fn patterns(&self) -> usize {
        self.patterns.load(Ordering::Relaxed)
    }
}

/// A point-in-time view of one budget's spend, cheap enough for a status
/// endpoint to compute on every poll.
///
/// Built by [`ResourceBudget::snapshot`] from the [`SharedCounters`] a run
/// publishes into — two relaxed atomic loads, no locks, and no access to the
/// mining thread's [`MineGuard`] (which is deliberately not `Sync`). The
/// counters lag the guard's private cells by at most one checkpoint interval
/// of operations; the pattern counter is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Operations published so far.
    pub ops: u64,
    /// Patterns noted so far.
    pub patterns: usize,
    /// Wall-clock elapsed the caller measured for the run.
    pub elapsed: Duration,
    /// Operations left before [`ResourceBudget::max_ops`] trips; `None` when
    /// the budget sets no operation ceiling.
    pub ops_remaining: Option<u64>,
    /// Patterns left before [`ResourceBudget::max_patterns`] trips; `None`
    /// when the budget sets no pattern ceiling.
    pub patterns_remaining: Option<usize>,
    /// Wall-clock left before [`ResourceBudget::deadline`] trips; `None`
    /// when the budget sets no deadline.
    pub deadline_remaining: Option<Duration>,
}

impl ResourceBudget {
    /// Snapshots this budget's spend from run-published counters: what was
    /// consumed, and how much of each configured limit remains (saturating
    /// at zero once a limit is reached).
    pub fn snapshot(&self, counters: &SharedCounters, elapsed: Duration) -> BudgetSnapshot {
        let ops = counters.ops();
        let patterns = counters.patterns();
        BudgetSnapshot {
            ops,
            patterns,
            elapsed,
            ops_remaining: self.max_ops.map(|max| max.saturating_sub(ops)),
            patterns_remaining: self.max_patterns.map(|max| max.saturating_sub(patterns)),
            deadline_remaining: self.deadline.map(|d| d.saturating_sub(elapsed)),
        }
    }
}

/// Why a guarded run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// An operation or pattern budget ran out.
    BudgetExhausted,
    /// The miner panicked; the panic was caught at the guard boundary.
    Panicked,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Cancelled => write!(f, "cancelled"),
            AbortReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            AbortReason::BudgetExhausted => write!(f, "budget exhausted"),
            AbortReason::Panicked => write!(f, "panicked"),
        }
    }
}

/// Whether a guarded run finished, and if not, why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MineOutcome {
    /// The miner ran to completion: the result is the full frequent set.
    Complete,
    /// The run was aborted; the result is a sound subset of the frequent
    /// set (every reported pattern is frequent with its exact support).
    Partial {
        /// What stopped the run.
        reason: AbortReason,
    },
}

impl MineOutcome {
    /// True for [`MineOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, MineOutcome::Complete)
    }
}

/// Counters observed by a [`MineGuard`] over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Operations charged via [`MineGuard::checkpoint`] / [`MineGuard::charge`].
    pub ops: u64,
    /// Full (non-amortized) checks performed.
    pub checkpoints: u64,
    /// Patterns recorded via [`MineGuard::note_pattern`].
    pub patterns: usize,
    /// Wall-clock time since guard construction.
    pub elapsed: Duration,
}

/// The result of a guarded mining run: what was found, whether it is
/// complete, and what it cost.
#[derive(Debug, Clone)]
pub struct GuardedResult {
    /// Completion status.
    pub outcome: MineOutcome,
    /// The (possibly partial, always sound) frequent set.
    pub result: MiningResult,
    /// Observed counters.
    pub stats: GuardStats,
    /// Where the run left a durable snapshot, when it ran under a
    /// checkpointing wrapper. An aborted run records the path here so a
    /// fallback stage or a later resume picks the work up instead of
    /// remining from scratch.
    pub checkpoint: Option<std::path::PathBuf>,
}

/// A deterministic fault to inject at a numbered full checkpoint, for
/// testing abort paths. Fires **once**, then disarms — so a fallback chain
/// sharing the plan sees the fault in exactly one stage.
///
/// Available in tests and behind the `fault-injection` feature only.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug)]
pub struct FaultPlan {
    panic_at_checkpoint: Option<u64>,
    stall_at_checkpoint: Option<(u64, Duration)>,
    io_fault: Option<(IoWriter, u64, IoFault)>,
    armed: Cell<bool>,
}

#[cfg(any(test, feature = "fault-injection"))]
impl FaultPlan {
    /// Panics when the `n`-th full checkpoint (1-based) runs.
    pub fn panic_at(n: u64) -> FaultPlan {
        FaultPlan {
            panic_at_checkpoint: Some(n),
            stall_at_checkpoint: None,
            io_fault: None,
            armed: Cell::new(true),
        }
    }

    /// Sleeps for `stall` when the `n`-th full checkpoint (1-based) runs —
    /// before the deadline check, so a stall past the deadline makes the
    /// same checkpoint return [`AbortReason::DeadlineExceeded`].
    pub fn stall_at(n: u64, stall: Duration) -> FaultPlan {
        FaultPlan {
            panic_at_checkpoint: None,
            stall_at_checkpoint: Some((n, stall)),
            io_fault: None,
            armed: Cell::new(true),
        }
    }

    /// Injects `fault` at the `n`-th (1-based) write of `writer` — the one
    /// injection surface shared by the WAL, checkpoint, and store snapshot
    /// writers. Fires once, then disarms, like every fault.
    pub fn io_fault_at(writer: IoWriter, n: u64, fault: IoFault) -> FaultPlan {
        FaultPlan {
            panic_at_checkpoint: None,
            stall_at_checkpoint: None,
            io_fault: Some((writer, n, fault)),
            armed: Cell::new(true),
        }
    }

    /// Kills the process-equivalent at the `n`-th durable snapshot write
    /// (1-based): the checkpoint sink performs the on-disk effects of
    /// `crash` and then panics, simulating a death at that exact point of
    /// the write protocol. A thin wrapper over [`FaultPlan::io_fault_at`]
    /// targeting [`IoWriter::Checkpoint`].
    pub fn crash_at_snapshot_write(n: u64, crash: crate::checkpoint::CheckpointCrash) -> FaultPlan {
        FaultPlan::io_fault_at(IoWriter::Checkpoint, n, crash.into())
    }

    /// Consulted by a writer before its `n`-th (1-based) write. Returns the
    /// fault to apply when this plan targets that (writer, n), disarming
    /// the plan.
    pub fn fire_io(&self, writer: IoWriter, n: u64) -> Option<IoFault> {
        if !self.armed.get() {
            return None;
        }
        match self.io_fault {
            Some((w, at, fault)) if w == writer && at == n => {
                self.armed.set(false);
                Some(fault)
            }
            _ => None,
        }
    }

    /// Consulted by checkpoint sinks before the `write_n`-th (1-based)
    /// snapshot write. Returns the crash to stage, disarming the plan.
    /// Error-class faults are surfaced through
    /// [`MineGuard::io_write_fault`] instead.
    pub fn fire_snapshot_write(&self, write_n: u64) -> Option<crate::checkpoint::CheckpointCrash> {
        self.fire_io(IoWriter::Checkpoint, write_n).and_then(IoFault::as_checkpoint_crash)
    }

    fn fire(&self, checkpoint: u64) {
        if !self.armed.get() {
            return;
        }
        if let Some((at, stall)) = self.stall_at_checkpoint {
            if checkpoint == at {
                self.armed.set(false);
                std::thread::sleep(stall);
            }
        }
        if let Some(at) = self.panic_at_checkpoint {
            if checkpoint == at {
                self.armed.set(false);
                panic!("injected fault at checkpoint {checkpoint}");
            }
        }
    }
}

/// The per-run guard a miner consults from its hot loops.
///
/// Not `Sync`: a guard belongs to the mining thread. Cross-thread control
/// flows through the [`CancelToken`], which *is* cheap to clone and send.
#[derive(Debug)]
pub struct MineGuard {
    token: CancelToken,
    budget: ResourceBudget,
    start: Instant,
    interval: u64,
    ops: Cell<u64>,
    pending: Cell<u64>,
    checkpoints: Cell<u64>,
    patterns: Cell<usize>,
    /// Cross-worker counters of a parallel run; `None` for ordinary guards.
    shared: Option<Arc<SharedCounters>>,
    /// Operations already flushed into `shared`.
    flushed: Cell<u64>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<Rc<FaultPlan>>,
}

impl MineGuard {
    /// How many charged operations pass between full checks by default.
    pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1024;

    /// A guard with a token and budget. The deadline clock starts now.
    pub fn new(token: CancelToken, budget: ResourceBudget) -> MineGuard {
        MineGuard {
            token,
            budget,
            start: Instant::now(),
            interval: MineGuard::DEFAULT_CHECKPOINT_INTERVAL,
            ops: Cell::new(0),
            pending: Cell::new(0),
            checkpoints: Cell::new(0),
            patterns: Cell::new(0),
            shared: None,
            flushed: Cell::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// A guard that never aborts — the plain [`SequentialMiner::mine`] path.
    pub fn unlimited() -> MineGuard {
        MineGuard::new(CancelToken::new(), ResourceBudget::unlimited())
    }

    /// A guard for one worker of a parallel run: shared token, shared
    /// deadline clock (`start` is the coordinating guard's start instant),
    /// and [`SharedCounters`] so operation and pattern budgets bound the run
    /// globally across workers.
    pub(crate) fn worker(
        token: CancelToken,
        budget: ResourceBudget,
        start: Instant,
        interval: u64,
        shared: Arc<SharedCounters>,
    ) -> MineGuard {
        let mut guard = MineGuard::new(token, budget);
        guard.start = start;
        guard.interval = interval.max(1);
        guard.shared = Some(shared);
        guard
    }

    /// Overrides the amortization interval (tests use `1` so every
    /// [`MineGuard::checkpoint`] is a full check). Panics on `0`.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> MineGuard {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        self.interval = interval;
        self
    }

    /// Publishes this guard's spend into `shared` so other threads can
    /// observe it while the run is in flight: operation counts are flushed
    /// at every full checkpoint and pattern counts exactly on every
    /// [`MineGuard::note_pattern`]. Budgets are then enforced against the
    /// shared totals, so counters carried over from an earlier slice of the
    /// same job count toward this run's limits.
    ///
    /// This is the observation hook a serving layer uses: the guard itself
    /// is not `Sync`, but the counters are, and
    /// [`ResourceBudget::snapshot`] turns them into a [`BudgetSnapshot`]
    /// without touching the mining thread.
    pub fn with_shared_counters(mut self, shared: Arc<SharedCounters>) -> MineGuard {
        self.shared = Some(shared);
        self
    }

    /// Attaches a deterministic [`FaultPlan`].
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn with_fault(mut self, fault: FaultPlan) -> MineGuard {
        self.fault = Some(Rc::new(fault));
        self
    }

    /// Consults the fault plan (if any) for an injected crash at the
    /// `write_n`-th durable snapshot write of this run. Checkpoint sinks
    /// call this immediately before each write.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn snapshot_write_crash(&self, write_n: u64) -> Option<crate::checkpoint::CheckpointCrash> {
        self.io_write_fault(IoWriter::Checkpoint, write_n).and_then(IoFault::as_checkpoint_crash)
    }

    /// Consults the fault plan (if any) for an injected IO fault at the
    /// `n`-th write of `writer` — the generalized surface behind
    /// [`MineGuard::snapshot_write_crash`].
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn io_write_fault(&self, writer: IoWriter, n: u64) -> Option<IoFault> {
        self.fault.as_ref().and_then(|f| f.fire_io(writer, n))
    }

    /// The cancellation token this guard observes.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The resource budget this guard enforces.
    pub fn budget(&self) -> ResourceBudget {
        self.budget
    }

    /// The instant the deadline clock started.
    pub(crate) fn start_instant(&self) -> Instant {
        self.start
    }

    /// The amortization interval between full checks.
    pub(crate) fn interval(&self) -> u64 {
        self.interval
    }

    /// Folds work done elsewhere (worker guards of a parallel run) into this
    /// guard's counters, so `stats()` on the coordinating guard reflects the
    /// whole run. Patterns are *not* absorbed — the coordinator re-notes each
    /// pattern as it merges shard results, which keeps the pattern cap exact.
    pub(crate) fn absorb_work(&self, stats: &GuardStats) {
        self.ops.set(self.ops.get().saturating_add(stats.ops));
        // The absorbed ops were already budget-checked by the worker guards.
        // Publish them to this guard's own run counters — when this guard is
        // itself a worker of an outer run, a nested fan-out's work must reach
        // the outer run's budget — and mark them flushed so the next full
        // check does not publish them a second time.
        if let Some(shared) = &self.shared {
            shared.ops.fetch_add(stats.ops, Ordering::Relaxed);
        }
        self.flushed.set(self.flushed.get().saturating_add(stats.ops));
        self.checkpoints.set(self.checkpoints.get().saturating_add(stats.checkpoints));
    }

    /// Fresh [`SharedCounters`] for a parallel run coordinated by this
    /// guard, seeded with the guard's run-wide spend so far: workers then
    /// enforce `max_ops`/`max_patterns` against the total *including* the
    /// coordinator's pre-run work (and, in a nested run, everything already
    /// published to the outer run's counters), instead of against counters
    /// that restart at zero.
    pub(crate) fn run_counters(&self) -> Arc<SharedCounters> {
        let counters = SharedCounters::new();
        let (ops, patterns) = match &self.shared {
            Some(shared) => (
                shared.ops().saturating_add(self.ops.get() - self.flushed.get()),
                shared.patterns(),
            ),
            None => (self.ops.get(), self.patterns.get()),
        };
        counters.ops.store(ops, Ordering::Relaxed);
        counters.patterns.store(patterns, Ordering::Relaxed);
        Arc::new(counters)
    }

    /// A fresh guard for the next stage of a fallback chain: same token,
    /// same budget, same deadline clock (the original start instant), same
    /// fault plan (which fires at most once across the whole chain), fresh
    /// operation counters.
    pub fn stage(&self) -> MineGuard {
        MineGuard {
            token: self.token.clone(),
            budget: self.budget,
            start: self.start,
            interval: self.interval,
            ops: Cell::new(0),
            pending: Cell::new(0),
            checkpoints: Cell::new(0),
            patterns: Cell::new(0),
            shared: self.shared.clone(),
            flushed: Cell::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: self.fault.clone(),
        }
    }

    /// Charges one operation; amortized — see [`MineGuard::charge`].
    #[inline]
    pub fn checkpoint(&self) -> Result<(), AbortReason> {
        self.charge(1)
    }

    /// Charges `n` operations against the budget. Once the charges since the
    /// last full check reach the interval, runs the full check: fault
    /// injection, cancellation, deadline, operation and pattern budgets.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), AbortReason> {
        self.ops.set(self.ops.get().saturating_add(n));
        let pending = self.pending.get().saturating_add(n);
        if pending < self.interval {
            self.pending.set(pending);
            return Ok(());
        }
        self.pending.set(0);
        self.full_check()
    }

    /// Runs the full check immediately, regardless of amortization.
    /// [`run_guarded`] calls this once before the miner starts, so a
    /// pre-cancelled token or an already-expired deadline aborts without
    /// doing any work.
    pub fn check_now(&self) -> Result<(), AbortReason> {
        self.full_check()
    }

    /// Records one pattern insertion. Always a cheap, exact check (never
    /// amortized): the pattern cap is a memory bound, so overshooting it by
    /// a checkpoint interval would defeat its purpose. Call **before** the
    /// matching [`MiningResult::insert`] so an exhausted budget keeps the
    /// result at exactly the cap.
    #[inline]
    pub fn note_pattern(&self) -> Result<(), AbortReason> {
        if let Some(shared) = &self.shared {
            // Cross-worker exactness: reserve a slot atomically, back out on
            // overflow so the global count stays at the cap.
            let next = shared.patterns.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(max) = self.budget.max_patterns {
                if next > max {
                    shared.patterns.fetch_sub(1, Ordering::Relaxed);
                    return Err(AbortReason::BudgetExhausted);
                }
            }
            self.patterns.set(self.patterns.get() + 1);
            return Ok(());
        }
        let next = self.patterns.get() + 1;
        if let Some(max) = self.budget.max_patterns {
            if next > max {
                return Err(AbortReason::BudgetExhausted);
            }
        }
        self.patterns.set(next);
        Ok(())
    }

    /// The counters so far.
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            ops: self.ops.get(),
            checkpoints: self.checkpoints.get(),
            patterns: self.patterns.get(),
            elapsed: self.start.elapsed(),
        }
    }

    fn full_check(&self) -> Result<(), AbortReason> {
        let n = self.checkpoints.get() + 1;
        self.checkpoints.set(n);
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(fault) = &self.fault {
            fault.fire(n);
        }
        if self.token.is_cancelled() {
            return Err(AbortReason::Cancelled);
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return Err(AbortReason::DeadlineExceeded);
            }
        }
        // With shared counters, budgets are checked against the run-wide
        // totals; the local delta since the last flush is published first.
        let ops_total = match &self.shared {
            Some(shared) => {
                let delta = self.ops.get() - self.flushed.get();
                self.flushed.set(self.ops.get());
                shared.ops.fetch_add(delta, Ordering::Relaxed) + delta
            }
            None => self.ops.get(),
        };
        if let Some(max) = self.budget.max_ops {
            if ops_total >= max {
                return Err(AbortReason::BudgetExhausted);
            }
        }
        let patterns_total = match &self.shared {
            Some(shared) => shared.patterns.load(Ordering::Relaxed),
            None => self.patterns.get(),
        };
        if let Some(max) = self.budget.max_patterns {
            if patterns_total >= max {
                return Err(AbortReason::BudgetExhausted);
            }
        }
        Ok(())
    }
}

/// Runs a cooperative mining body under a guard, catching panics.
///
/// The [`MiningResult`] lives *outside* the `catch_unwind` boundary, so
/// patterns inserted before a panic (or a cooperative abort) survive into
/// the returned [`GuardedResult`]. The body receives the result to fill and
/// returns `Err(reason)` when a checkpoint trips.
pub fn run_guarded<F>(guard: &MineGuard, body: F) -> GuardedResult
where
    F: FnOnce(&mut MiningResult) -> Result<(), AbortReason>,
{
    let mut result = MiningResult::new();
    let outcome = match catch_unwind(AssertUnwindSafe(|| {
        guard.check_now()?;
        body(&mut result)
    })) {
        Ok(Ok(())) => MineOutcome::Complete,
        Ok(Err(reason)) => MineOutcome::Partial { reason },
        Err(_) => MineOutcome::Partial { reason: AbortReason::Panicked },
    };
    GuardedResult { outcome, result, stats: guard.stats(), checkpoint: None }
}

/// A report for one stage of a [`FallbackMiner`] chain.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The stage miner's name.
    pub name: String,
    /// How the stage ended.
    pub outcome: MineOutcome,
    /// The stage's counters.
    pub stats: GuardStats,
    /// The durable snapshot the stage left behind, if it checkpoints.
    pub checkpoint: Option<std::path::PathBuf>,
}

/// An ordered chain of miners: each stage runs under its own stage guard
/// (shared token, shared deadline clock), and the chain advances to the next
/// stage only when a stage **panicked** or **exhausted its budget** — the
/// failure modes a sturdier algorithm might survive. Cancellation and
/// deadline expiry end the chain immediately: no later stage could do
/// better.
pub struct FallbackMiner {
    stages: Vec<Box<dyn SequentialMiner>>,
    name: String,
}

impl FallbackMiner {
    /// A chain from ordered stages. Panics when `stages` is empty.
    pub fn new(stages: Vec<Box<dyn SequentialMiner>>) -> FallbackMiner {
        assert!(!stages.is_empty(), "FallbackMiner needs at least one stage");
        let name = stages.iter().map(|s| s.name().to_string()).collect::<Vec<_>>().join(" -> ");
        FallbackMiner { stages, name }
    }

    /// Runs the chain, returning the deciding stage's result plus a
    /// per-stage report of everything that was attempted.
    pub fn run(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> (GuardedResult, Vec<StageReport>) {
        let mut reports = Vec::new();
        let last = self.stages.len() - 1;
        for (i, stage) in self.stages.iter().enumerate() {
            let stage_guard = guard.stage();
            let run = stage.mine_guarded(db, min_support, &stage_guard);
            reports.push(StageReport {
                name: stage.name().to_string(),
                outcome: run.outcome,
                stats: run.stats,
                checkpoint: run.checkpoint.clone(),
            });
            let advance = matches!(
                run.outcome,
                MineOutcome::Partial {
                    reason: AbortReason::Panicked | AbortReason::BudgetExhausted,
                }
            );
            if !advance || i == last {
                return (run, reports);
            }
        }
        unreachable!("loop always returns at the last stage");
    }
}

impl SequentialMiner for FallbackMiner {
    fn name(&self) -> &str {
        &self.name
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        self.run(db, min_support, &guard).0.result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        self.run(db, min_support, guard).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForce;
    use crate::parse::parse_sequence;
    use crate::support::support_count;

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn unlimited_guard_never_aborts() {
        let guard = MineGuard::unlimited().with_checkpoint_interval(1);
        for _ in 0..10_000 {
            guard.checkpoint().unwrap();
            guard.note_pattern().unwrap();
        }
        let stats = guard.stats();
        assert_eq!(stats.ops, 10_000);
        assert_eq!(stats.checkpoints, 10_000);
        assert_eq!(stats.patterns, 10_000);
    }

    #[test]
    fn cancel_token_trips_the_next_full_check() {
        let token = CancelToken::new();
        let guard =
            MineGuard::new(token.clone(), ResourceBudget::unlimited()).with_checkpoint_interval(1);
        guard.checkpoint().unwrap();
        token.cancel();
        assert_eq!(guard.checkpoint(), Err(AbortReason::Cancelled));
    }

    #[test]
    fn child_token_observes_the_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "cancelling a child must not cancel the parent");
        let sibling = parent.child();
        assert!(!sibling.is_cancelled(), "siblings are independent");
        let grandchild = sibling.child();
        parent.cancel();
        assert!(sibling.is_cancelled());
        assert!(grandchild.is_cancelled(), "cancellation is observed through the whole chain");
    }

    #[test]
    fn child_token_clones_share_the_flag() {
        let child = CancelToken::new().child();
        let clone = child.clone();
        child.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn amortization_delays_the_full_check() {
        let token = CancelToken::new();
        let guard =
            MineGuard::new(token.clone(), ResourceBudget::unlimited()).with_checkpoint_interval(4);
        token.cancel();
        assert_eq!(guard.checkpoint(), Ok(()));
        assert_eq!(guard.checkpoint(), Ok(()));
        assert_eq!(guard.checkpoint(), Ok(()));
        assert_eq!(guard.checkpoint(), Err(AbortReason::Cancelled));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let budget = ResourceBudget::unlimited().with_deadline(Duration::ZERO);
        let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        assert_eq!(guard.checkpoint(), Err(AbortReason::DeadlineExceeded));
    }

    #[test]
    fn ops_budget_exhausts() {
        let budget = ResourceBudget::unlimited().with_max_ops(3);
        let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        assert_eq!(guard.checkpoint(), Ok(()));
        assert_eq!(guard.checkpoint(), Ok(()));
        assert_eq!(guard.checkpoint(), Err(AbortReason::BudgetExhausted));
    }

    #[test]
    fn pattern_budget_caps_exactly() {
        let budget = ResourceBudget::unlimited().with_max_patterns(2);
        let guard = MineGuard::new(CancelToken::new(), budget);
        assert_eq!(guard.note_pattern(), Ok(()));
        assert_eq!(guard.note_pattern(), Ok(()));
        assert_eq!(guard.note_pattern(), Err(AbortReason::BudgetExhausted));
        assert_eq!(guard.stats().patterns, 2);
    }

    #[test]
    fn bulk_charge_counts_like_single_checkpoints() {
        let budget = ResourceBudget::unlimited().with_max_ops(10);
        let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        assert_eq!(guard.charge(20), Err(AbortReason::BudgetExhausted));
        assert_eq!(guard.stats().ops, 20);
    }

    #[test]
    fn injected_panic_is_caught_by_run_guarded() {
        let guard =
            MineGuard::unlimited().with_checkpoint_interval(1).with_fault(FaultPlan::panic_at(3));
        let run = run_guarded(&guard, |result| {
            // Checkpoint 1 is run_guarded's preflight; 2 passes; 3 panics.
            guard.checkpoint()?;
            result.insert(parse_sequence("(a)").unwrap(), 2);
            guard.checkpoint()?;
            result.insert(parse_sequence("(b)").unwrap(), 9);
            Ok(())
        });
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
        // The insert before the panic survived; the one after never ran.
        assert_eq!(run.result.support_of(&parse_sequence("(a)").unwrap()), Some(2));
        assert_eq!(run.result.len(), 1);
    }

    #[test]
    fn injected_stall_turns_into_deadline_abort() {
        let budget = ResourceBudget::unlimited().with_deadline(Duration::from_millis(5));
        let guard = MineGuard::new(CancelToken::new(), budget)
            .with_checkpoint_interval(1)
            .with_fault(FaultPlan::stall_at(1, Duration::from_millis(20)));
        assert_eq!(guard.checkpoint(), Err(AbortReason::DeadlineExceeded));
    }

    #[test]
    fn fault_plans_fire_once() {
        let guard =
            MineGuard::unlimited().with_checkpoint_interval(1).with_fault(FaultPlan::panic_at(1));
        assert!(catch_unwind(AssertUnwindSafe(|| guard.checkpoint())).is_err());
        // Disarmed: the same checkpoint number in a stage guard is quiet.
        let stage = guard.stage();
        assert_eq!(stage.checkpoint(), Ok(()));
    }

    #[test]
    fn default_mine_guarded_is_equivalent_when_unlimited() {
        let db = table1();
        let guard = MineGuard::unlimited();
        let run = BruteForce::default().mine_guarded(&db, MinSupport::Count(2), &guard);
        assert!(run.outcome.is_complete());
        let plain = BruteForce::default().mine(&db, MinSupport::Count(2));
        assert!(run.result.diff(&plain).is_empty());
        assert!(run.stats.ops > 0);
    }

    /// A miner that always panics, for fallback tests.
    struct AlwaysPanics;

    impl SequentialMiner for AlwaysPanics {
        fn name(&self) -> &str {
            "AlwaysPanics"
        }
        fn mine(&self, _: &SequenceDatabase, _: MinSupport) -> MiningResult {
            panic!("this miner always panics");
        }
    }

    #[test]
    fn fallback_advances_past_a_panicking_stage() {
        let db = table1();
        let chain =
            FallbackMiner::new(vec![Box::new(AlwaysPanics), Box::new(BruteForce::default())]);
        assert_eq!(chain.name(), "AlwaysPanics -> BruteForce");
        let guard = MineGuard::unlimited();
        let (run, reports) = chain.run(&db, MinSupport::Count(2), &guard);
        assert!(run.outcome.is_complete());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
        assert!(reports[1].outcome.is_complete());
        let expected = BruteForce::default().mine(&db, MinSupport::Count(2));
        assert!(run.result.diff(&expected).is_empty());
        for (p, s) in run.result.iter() {
            assert_eq!(s, support_count(&db, p));
        }
    }

    #[test]
    fn fallback_stops_on_cancellation() {
        let db = table1();
        let token = CancelToken::new();
        token.cancel();
        let chain =
            FallbackMiner::new(vec![Box::new(BruteForce::default()), Box::new(AlwaysPanics)]);
        let guard = MineGuard::new(token, ResourceBudget::unlimited());
        let (run, reports) = chain.run(&db, MinSupport::Count(2), &guard);
        // The second stage never ran: cancellation ends the chain.
        assert_eq!(reports.len(), 1);
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Cancelled });
        assert!(run.result.is_empty());
    }

    #[test]
    fn shared_counters_expose_spend_across_threads() {
        let counters = Arc::new(SharedCounters::new());
        let budget = ResourceBudget::unlimited().with_max_ops(100).with_max_patterns(10);
        let guard = MineGuard::new(CancelToken::new(), budget)
            .with_checkpoint_interval(1)
            .with_shared_counters(Arc::clone(&counters));
        for _ in 0..7 {
            guard.checkpoint().unwrap();
        }
        for _ in 0..3 {
            guard.note_pattern().unwrap();
        }
        // Another thread reads the published counters without the guard.
        let observed = std::thread::scope(|s| {
            s.spawn(|| budget.snapshot(&counters, Duration::from_millis(5))).join().unwrap()
        });
        assert_eq!(observed.ops, 7);
        assert_eq!(observed.patterns, 3);
        assert_eq!(observed.ops_remaining, Some(93));
        assert_eq!(observed.patterns_remaining, Some(7));
        assert_eq!(observed.deadline_remaining, None);
    }

    #[test]
    fn shared_counters_carry_spend_into_the_next_slice() {
        // A serving layer reuses one counter set across preemption slices:
        // the second slice's budget must see the first slice's spend.
        let counters = Arc::new(SharedCounters::new());
        let budget = ResourceBudget::unlimited().with_max_ops(10);
        let first = MineGuard::new(CancelToken::new(), budget)
            .with_checkpoint_interval(1)
            .with_shared_counters(Arc::clone(&counters));
        for _ in 0..6 {
            first.checkpoint().unwrap();
        }
        let second = MineGuard::new(CancelToken::new(), budget)
            .with_checkpoint_interval(1)
            .with_shared_counters(Arc::clone(&counters));
        assert_eq!(second.checkpoint(), Ok(()));
        assert_eq!(second.checkpoint(), Ok(()));
        assert_eq!(second.checkpoint(), Ok(()));
        assert_eq!(second.checkpoint(), Err(AbortReason::BudgetExhausted));
    }

    #[test]
    fn budget_snapshot_saturates_at_exhausted_limits() {
        let counters = Arc::new(SharedCounters::new());
        let budget = ResourceBudget::unlimited()
            .with_max_ops(5)
            .with_max_patterns(1)
            .with_deadline(Duration::from_millis(1));
        let guard = MineGuard::new(CancelToken::new(), budget)
            .with_checkpoint_interval(1)
            .with_shared_counters(Arc::clone(&counters));
        let _ = guard.charge(20);
        guard.note_pattern().unwrap();
        let snap = budget.snapshot(&counters, Duration::from_secs(1));
        assert_eq!(snap.ops_remaining, Some(0));
        assert_eq!(snap.patterns_remaining, Some(0));
        assert_eq!(snap.deadline_remaining, Some(Duration::ZERO));
        // An unlimited budget reports no remaining fields at all.
        let open = ResourceBudget::unlimited().snapshot(&counters, Duration::ZERO);
        assert_eq!(open.ops_remaining, None);
        assert_eq!(open.patterns_remaining, None);
        assert_eq!(open.deadline_remaining, None);
    }

    #[test]
    fn retry_clears_a_transient_failure() {
        let mut failures = 2;
        let out = retry_transient(RetryPolicy::io_default(), || {
            if failures > 0 {
                failures -= 1;
                Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(failures, 0);
    }

    #[test]
    fn retry_never_retries_permanent_failures() {
        let mut attempts = 0;
        let err = retry_transient(RetryPolicy::io_default(), || -> std::io::Result<()> {
            attempts += 1;
            Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "ENOSPC"))
        })
        .unwrap_err();
        assert_eq!(attempts, 1, "a permanent error must surface on first touch");
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    }

    #[test]
    fn retry_is_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
        };
        let mut attempts = 0;
        let err = retry_transient(policy, || -> std::io::Result<()> {
            attempts += 1;
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "EAGAIN"))
        })
        .unwrap_err();
        assert_eq!(attempts, 3);
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        // max_attempts = 1 means "no retry", and 0 is treated as 1.
        for max_attempts in [1, 0] {
            let mut attempts = 0;
            let _ = retry_transient(
                RetryPolicy { max_attempts, ..policy },
                || -> std::io::Result<()> {
                    attempts += 1;
                    Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"))
                },
            );
            assert_eq!(attempts, 1);
        }
    }

    #[test]
    fn transient_classification_matches_the_eintr_class() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::ResourceBusy,
        ] {
            assert!(is_transient_io_kind(kind), "{kind:?} should be transient");
        }
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::StorageFull,
            ErrorKind::InvalidData,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(!is_transient_io_kind(kind), "{kind:?} should be permanent");
        }
    }

    #[test]
    fn net_transient_classification_extends_the_io_class() {
        use std::io::ErrorKind;
        // Everything IO-transient is net-transient…
        for kind in [ErrorKind::Interrupted, ErrorKind::WouldBlock, ErrorKind::TimedOut] {
            assert!(is_transient_net_kind(kind));
        }
        // …plus the socket class…
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionRefused,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(is_transient_net_kind(kind), "{kind:?} should be net-transient");
            assert!(!is_transient_io_kind(kind), "{kind:?} must stay file-permanent");
        }
        // …while real data/permission failures stay permanent everywhere.
        for kind in [ErrorKind::NotFound, ErrorKind::PermissionDenied, ErrorKind::InvalidData] {
            assert!(!is_transient_net_kind(kind));
        }
    }

    #[test]
    fn public_delay_matches_the_internal_backoff_bounds() {
        let policy = RetryPolicy::io_default();
        for retry in 0..4 {
            let d = policy.delay(retry, fresh_retry_salt());
            let step = policy.base_delay.saturating_mul(1u32 << retry).min(policy.max_delay);
            assert!(d <= step, "delay {d:?} exceeds the exponential step {step:?}");
            assert!(d >= step / 2, "delay {d:?} under half the step {step:?}");
        }
    }

    #[test]
    fn io_faults_fire_once_at_the_targeted_writer_and_index() {
        let plan = FaultPlan::io_fault_at(IoWriter::WalAppend, 3, IoFault::TornWrite);
        assert_eq!(plan.fire_io(IoWriter::StoreSnapshot, 3), None, "wrong writer");
        assert_eq!(plan.fire_io(IoWriter::WalAppend, 2), None, "wrong index");
        assert_eq!(plan.fire_io(IoWriter::WalAppend, 3), Some(IoFault::TornWrite));
        assert_eq!(plan.fire_io(IoWriter::WalAppend, 3), None, "fires once, then disarms");
    }

    #[test]
    fn checkpoint_crashes_round_trip_through_the_io_fault_surface() {
        use crate::checkpoint::CheckpointCrash;
        for crash in [
            CheckpointCrash::TornTempWrite,
            CheckpointCrash::CrashBeforeRename,
            CheckpointCrash::CorruptSection,
            CheckpointCrash::StaleVersion,
        ] {
            let plan = FaultPlan::crash_at_snapshot_write(5, crash);
            assert_eq!(plan.fire_snapshot_write(5), Some(crash));
        }
        assert_eq!(IoFault::Enospc.as_checkpoint_crash(), None);
        assert_eq!(IoFault::Enospc.as_io_error().unwrap().kind(), std::io::ErrorKind::StorageFull);
        assert_eq!(
            IoFault::Interrupted.as_io_error().unwrap().kind(),
            std::io::ErrorKind::Interrupted
        );
        assert!(IoFault::TornWrite.as_io_error().is_none());
    }

    #[test]
    fn fallback_walks_every_stage_on_budget_exhaustion() {
        let db = table1();
        let budget = ResourceBudget::unlimited().with_max_ops(2);
        let chain = FallbackMiner::new(vec![
            Box::new(BruteForce::default()),
            Box::new(BruteForce::default()),
        ]);
        let guard = MineGuard::new(CancelToken::new(), budget).with_checkpoint_interval(1);
        let (run, reports) = chain.run(&db, MinSupport::Count(2), &guard);
        assert_eq!(reports.len(), 2);
        assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::BudgetExhausted });
    }
}
