//! `DSCFD1` — the on-disk columnar flat-file format and its zero-copy loader.
//!
//! A flat file is the [`crate::flat::FlatDb`] arena written down: the three
//! CSR columns (`items`, `set_starts`, `row_sets`), the packed-u32 word
//! column of [`crate::packed::PackedDb`] when the database fits the packed
//! budget, and the item dictionary ([`ItemMapping`]) that translates the
//! stored compact ids back to the original catalog. Opening one with
//! [`open_flat_file`] memory-maps it and hands the miners columns that
//! *borrow* from the mapping ([`crate::storage::DbStorage::Mapped`]) — no
//! deserialization, no heap copy, and the OS pages data in and out as the
//! scans touch it, so a database larger than RAM mines in bounded memory.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "DSCFD1\0\0"
//!      8     4  format version (= 1)
//!     12     4  flags (bit 0: packed word column present)
//!     16     8  n_rows
//!     24     8  items_len        (elements in the item column)
//!     32     8  sets_len         (elements in set_starts, incl. sentinel)
//!     40     8  dict_len         (distinct items = compact id space size)
//!     48     4  max_item + 1     (compact space; 0 for an item-free db)
//!     52     4  max transactions in any row
//!     56     8  fingerprint of the source database (FNV-1a, original ids)
//!     64     4  section count
//!     68     4  header CRC32 — over bytes [0, 128 + 32·sections) with this
//!                slot zeroed
//!     72    56  reserved (zero)
//!    128   32·n  section table: {tag u32, 0, offset u64, byte_len u64,
//!                CRC32 u32, 0} per section
//!    ...        section payloads, each offset page-aligned (4096)
//! ```
//!
//! Section tags: 1 items, 2 set_starts, 3 row_sets, 4 dictionary, 5 packed
//! words. Items and packed words are stored in the **compact** id space
//! (dense from 0), with the dictionary always written so results can be
//! translated back; compaction is monotone, so the comparative order of the
//! stored database equals that of the original — mining the mapped columns
//! yields exactly the original patterns after
//! [`ItemMapping::restore_result`]. The packed column is index-parallel to
//! the item column and shares its shape columns.
//!
//! Page-aligned payloads + page-aligned `mmap` bases guarantee the 4-byte
//! alignment the typed column windows need; every payload is a whole number
//! of `u32` words.
//!
//! ## Verification
//!
//! A file is refused whole or accepted whole — no partially-mapped database
//! is ever returned. [`Verify::Full`] checks the header CRC, every section
//! CRC, and the structural invariants (monotone boundary columns, items
//! within the dictionary range, ascending dictionary). The cheaper
//! [`Verify::HeaderOnly`] still checks the header CRC and the boundary
//! columns — everything the row/itemset *slicing* depends on, so mining
//! cannot index out of a column — but trusts the bulk item/packed payloads.
//! It exists for files this process (or its store) just wrote and verified;
//! a forged item payload under `HeaderOnly` can make mining produce wrong
//! supports or abort on an out-of-range counting index — never undefined
//! behavior.

use crate::checkpoint::{crc32, sync_parent_dir, tmp_path};
use crate::compact::ItemMapping;
use crate::database::SequenceDatabase;
use crate::error::DiscError;
use crate::flat::FlatDb;
use crate::guard::{retry_transient, RetryPolicy};
use crate::item::Item;
use crate::mmap::{Advice, Mmap};
use crate::packed::PackedDb;
use crate::storage::DbStorage;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// The 8-byte magic prefix of a flat file.
pub const FLAT_FILE_MAGIC: [u8; 8] = *b"DSCFD1\0\0";
/// The format version this build reads and writes.
pub const FLAT_FILE_VERSION: u32 = 1;
/// File name of the columnar mirror a [`crate::store::SequenceStore`]
/// compaction emits next to its snapshot.
pub const FLAT_FILE_NAME: &str = "store.dscfd";

const HEADER_LEN: usize = 128;
const ENTRY_LEN: usize = 32;
const CRC_SLOT: usize = 68;
const PAGE: usize = 4096;
const FLAG_PACKED: u32 = 1;
const MAX_SECTIONS: u32 = 16;

const SEC_ITEMS: u32 = 1;
const SEC_SET_STARTS: u32 = 2;
const SEC_ROW_SETS: u32 = 3;
const SEC_DICT: u32 = 4;
const SEC_PACKED: u32 = 5;

/// How much of a flat file [`open_flat_file`] checks before trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verify {
    /// Header CRC + every section CRC + full structural validation,
    /// including the item-range scan. Use for files of unknown provenance.
    Full,
    /// Header CRC + boundary-column structure only; the bulk item/packed
    /// payloads are not read until mining touches them. Use for files this
    /// process just wrote (the writer verifies on publish) — this is what
    /// makes time-to-first-pattern independent of deserialization.
    HeaderOnly,
}

/// Everything a flat file holds, decoded: the databases (columns borrowed
/// from the mapping when possible), the dictionary, and the header
/// metadata.
#[derive(Debug)]
pub struct FlatFileContents {
    /// The flat database, in compact item ids.
    pub flat: FlatDb,
    /// The packed database sharing the flat shape columns, when the file
    /// carries the packed word column.
    pub packed: Option<PackedDb>,
    /// Compact-id ⇄ original-id dictionary; translate mined patterns back
    /// with [`ItemMapping::restore_result`].
    pub mapping: ItemMapping,
    /// FNV-1a fingerprint of the source database (original ids) — the
    /// staleness check against a store snapshot.
    pub fingerprint: u64,
    /// Largest transaction count of any row (the packed-budget input).
    pub max_txns: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

impl FlatFileContents {
    /// Whether the columns borrow zero-copy from a memory mapping (false on
    /// fallback targets and for heap decodes).
    pub fn is_mapped(&self) -> bool {
        self.flat.is_mapped()
    }
}

fn bad(path: &Path, what: &'static str) -> DiscError {
    DiscError::FlatFile { path: path.to_path_buf(), what }
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

fn u64_at(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("bounds checked"))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn pad_to_page(out: &mut Vec<u8>) {
    let rem = out.len() % PAGE;
    if rem != 0 {
        out.resize(out.len() + (PAGE - rem), 0);
    }
}

struct SectionEntry {
    tag: u32,
    offset: u64,
    byte_len: u64,
    crc: u32,
}

fn push_section(
    out: &mut Vec<u8>,
    entries: &mut Vec<SectionEntry>,
    tag: u32,
    words: impl Iterator<Item = u32>,
) {
    pad_to_page(out);
    let start = out.len();
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let crc = crc32(&out[start..]);
    entries.push(SectionEntry {
        tag,
        offset: start as u64,
        byte_len: (out.len() - start) as u64,
        crc,
    });
}

/// Encodes a flat database (already in compact ids), its dictionary, and an
/// optional packed word column into `DSCFD1` bytes.
///
/// `mapping` must cover exactly the compact id space of `flat`
/// (`mapping.len() == max_item + 1`); `packed`, when given, must have been
/// built from `flat` so its word column is index-parallel to the item
/// column. `fingerprint` is the source database's
/// [`crate::checkpoint::database_fingerprint`] in **original** ids.
pub fn encode_flat_file(
    flat: &FlatDb,
    mapping: &ItemMapping,
    packed: Option<&PackedDb>,
    fingerprint: u64,
) -> Vec<u8> {
    let (items, sets, rows) = flat.columns();
    let max_item_plus_one = flat.max_item().map_or(0, |i| i.id() as u64 + 1);
    debug_assert_eq!(
        mapping.len() as u64,
        max_item_plus_one,
        "dictionary must cover the compact space"
    );
    let max_txns = rows.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
    if let Some(p) = packed {
        debug_assert_eq!(
            p.words_column().len(),
            items.len(),
            "packed column must be index-parallel"
        );
    }

    let n_sections = 4 + usize::from(packed.is_some());
    let table_end = HEADER_LEN + n_sections * ENTRY_LEN;
    let mut out = vec![0u8; table_end];
    let mut entries = Vec::with_capacity(n_sections);

    push_section(&mut out, &mut entries, SEC_ITEMS, items.iter().map(|i| i.id()));
    push_section(&mut out, &mut entries, SEC_SET_STARTS, sets.iter().copied());
    push_section(&mut out, &mut entries, SEC_ROW_SETS, rows.iter().copied());
    push_section(&mut out, &mut entries, SEC_DICT, mapping.originals().iter().map(|i| i.id()));
    if let Some(p) = packed {
        push_section(&mut out, &mut entries, SEC_PACKED, p.words_column().iter().copied());
    }

    out[0..8].copy_from_slice(&FLAT_FILE_MAGIC);
    put_u32(&mut out, 8, FLAT_FILE_VERSION);
    put_u32(&mut out, 12, if packed.is_some() { FLAG_PACKED } else { 0 });
    put_u64(&mut out, 16, flat.len() as u64);
    put_u64(&mut out, 24, items.len() as u64);
    put_u64(&mut out, 32, sets.len() as u64);
    put_u64(&mut out, 40, mapping.len() as u64);
    put_u32(&mut out, 48, max_item_plus_one as u32);
    put_u32(&mut out, 52, max_txns);
    put_u64(&mut out, 56, fingerprint);
    put_u32(&mut out, 64, entries.len() as u32);
    for (i, e) in entries.iter().enumerate() {
        let base = HEADER_LEN + i * ENTRY_LEN;
        put_u32(&mut out, base, e.tag);
        put_u64(&mut out, base + 8, e.offset);
        put_u64(&mut out, base + 16, e.byte_len);
        put_u32(&mut out, base + 24, e.crc);
    }
    let crc = {
        let mut head = out[..table_end].to_vec();
        head[CRC_SLOT..CRC_SLOT + 4].fill(0);
        crc32(&head)
    };
    put_u32(&mut out, CRC_SLOT, crc);
    out
}

/// Encodes a [`SequenceDatabase`] end to end: analyzes the dictionary,
/// remaps onto compact ids, builds the packed column when the database fits
/// the packed budget (silently omitted otherwise — the loader falls back to
/// the wide representation), and stamps the database's fingerprint.
///
/// This is the *packing* step and it is in-memory: it builds the full
/// columns before writing. Mining the resulting file is what runs
/// out-of-core.
pub fn encode_database_flat_file(db: &SequenceDatabase) -> Vec<u8> {
    let fingerprint = crate::checkpoint::database_fingerprint(db);
    let mapping = ItemMapping::analyze(db);
    let flat = if mapping.is_identity() {
        FlatDb::from_database(db)
    } else {
        FlatDb::from_database(&mapping.remap_database(db))
    };
    // `flat` is already compact, so the packed build needs only an identity
    // translation over its own id space.
    let identity = ItemMapping::from_originals((0..mapping.len() as u32).map(Item).collect());
    let packed = PackedDb::build(&flat, &identity).ok();
    encode_flat_file(&flat, &mapping, packed.as_ref(), fingerprint)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Header {
    flags: u32,
    n_rows: u64,
    items_len: u64,
    sets_len: u64,
    dict_len: u64,
    max_item_plus_one: u32,
    max_txns: u32,
    fingerprint: u64,
    entries: Vec<SectionEntry>,
}

/// Validates the fixed header + section table of `bytes` (which may be a
/// prefix of the file, as long as it covers the table).
fn parse_header(path: &Path, bytes: &[u8], file_len: u64) -> Result<Header, DiscError> {
    if bytes.len() < HEADER_LEN {
        return Err(bad(path, "truncated header"));
    }
    if bytes[0..8] != FLAT_FILE_MAGIC {
        return Err(bad(path, "bad magic"));
    }
    if u32_at(bytes, 8) != FLAT_FILE_VERSION {
        return Err(bad(path, "unsupported format version"));
    }
    let flags = u32_at(bytes, 12);
    if flags & !FLAG_PACKED != 0 {
        return Err(bad(path, "unknown flags"));
    }
    let section_count = u32_at(bytes, 64);
    if section_count == 0 || section_count > MAX_SECTIONS {
        return Err(bad(path, "implausible section count"));
    }
    let table_end = HEADER_LEN + section_count as usize * ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(bad(path, "truncated section table"));
    }
    let crc = {
        let mut head = bytes[..table_end].to_vec();
        head[CRC_SLOT..CRC_SLOT + 4].fill(0);
        crc32(&head)
    };
    if crc != u32_at(bytes, CRC_SLOT) {
        return Err(bad(path, "header CRC mismatch"));
    }
    let mut entries = Vec::with_capacity(section_count as usize);
    for i in 0..section_count as usize {
        let base = HEADER_LEN + i * ENTRY_LEN;
        let entry = SectionEntry {
            tag: u32_at(bytes, base),
            offset: u64_at(bytes, base + 8),
            byte_len: u64_at(bytes, base + 16),
            crc: u32_at(bytes, base + 24),
        };
        if !entry.offset.is_multiple_of(4) || !entry.byte_len.is_multiple_of(4) {
            return Err(bad(path, "misaligned section"));
        }
        let end = entry
            .offset
            .checked_add(entry.byte_len)
            .ok_or_else(|| bad(path, "section out of bounds"))?;
        if entry.offset < table_end as u64 || end > file_len {
            return Err(bad(path, "section out of bounds"));
        }
        if entries.iter().any(|e: &SectionEntry| e.tag == entry.tag) {
            return Err(bad(path, "duplicate section"));
        }
        entries.push(entry);
    }
    Ok(Header {
        flags,
        n_rows: u64_at(bytes, 16),
        items_len: u64_at(bytes, 24),
        sets_len: u64_at(bytes, 32),
        dict_len: u64_at(bytes, 40),
        max_item_plus_one: u32_at(bytes, 48),
        max_txns: u32_at(bytes, 52),
        fingerprint: u64_at(bytes, 56),
        entries,
    })
}

impl Header {
    /// The `(byte offset, element count)` window of the section with `tag`,
    /// after checking its byte length matches `elems` u32 words.
    fn section(&self, path: &Path, tag: u32, elems: u64) -> Result<(usize, usize), DiscError> {
        let e = self
            .entries
            .iter()
            .find(|e| e.tag == tag)
            .ok_or_else(|| bad(path, "missing section"))?;
        let expect = elems.checked_mul(4).ok_or_else(|| bad(path, "section length overflow"))?;
        if e.byte_len != expect {
            return Err(bad(path, "section length mismatch"));
        }
        let off =
            usize::try_from(e.offset).map_err(|_| bad(path, "file too large for this platform"))?;
        let n =
            usize::try_from(elems).map_err(|_| bad(path, "file too large for this platform"))?;
        Ok((off, n))
    }

    fn crc_of(&self, tag: u32) -> u32 {
        self.entries.iter().find(|e| e.tag == tag).map(|e| e.crc).unwrap_or(0)
    }
}

fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4"))).collect()
}

/// A u32 column: borrowed from the mapping when the target allows the
/// in-place reinterpretation, decoded to the heap otherwise.
fn col_u32(map: &Arc<Mmap>, off: usize, len: usize) -> DbStorage<u32> {
    #[cfg(target_endian = "little")]
    if let Some(col) = crate::storage::MappedCol::new(Arc::clone(map), off, len) {
        return DbStorage::Mapped(col);
    }
    decode_u32s(&map.bytes()[off..off + len * 4]).into()
}

/// An item column, same policy (`Item` is `repr(transparent)` over `u32`).
fn col_items(map: &Arc<Mmap>, off: usize, len: usize) -> DbStorage<Item> {
    #[cfg(target_endian = "little")]
    if let Some(col) = crate::storage::MappedCol::new(Arc::clone(map), off, len) {
        return DbStorage::Mapped(col);
    }
    DbStorage::Owned(
        map.bytes()[off..off + len * 4]
            .chunks_exact(4)
            .map(|c| Item(u32::from_le_bytes(c.try_into().expect("chunk of 4"))))
            .collect(),
    )
}

/// Opens, verifies, and decodes the flat file at `path`, memory-mapping it
/// so the returned columns borrow from the page cache where the platform
/// allows (see [`crate::mmap`]). Hints the kernel that access will be
/// sequential — the mining scans are — so it reads ahead and drops behind,
/// which is what keeps resident memory bounded on databases larger than
/// RAM.
pub fn open_flat_file(path: &Path, verify: Verify) -> Result<FlatFileContents, DiscError> {
    let map = Arc::new(Mmap::open(path).map_err(|e| DiscError::from_io(path, &e))?);
    map.advise(Advice::WillNeed);
    map.advise(Advice::Sequential);
    decode_from_map(path, map, verify)
}

/// Decodes `DSCFD1` bytes already in memory (columns are heap-owned copies
/// of the buffer's windows on little-endian targets, decoded otherwise).
/// `path` labels errors only.
pub fn decode_flat_file(
    path: &Path,
    bytes: Vec<u8>,
    verify: Verify,
) -> Result<FlatFileContents, DiscError> {
    decode_from_map(path, Arc::new(Mmap::from_vec(bytes)), verify)
}

fn decode_from_map(
    path: &Path,
    map: Arc<Mmap>,
    verify: Verify,
) -> Result<FlatFileContents, DiscError> {
    let bytes = map.bytes();
    let header = parse_header(path, bytes, map.len() as u64)?;

    if header.sets_len == 0 {
        return Err(bad(path, "empty set boundary column"));
    }
    let rows_len =
        header.n_rows.checked_add(1).ok_or_else(|| bad(path, "implausible row count"))?;
    let (items_off, items_n) = header.section(path, SEC_ITEMS, header.items_len)?;
    let (sets_off, sets_n) = header.section(path, SEC_SET_STARTS, header.sets_len)?;
    let (rows_off, rows_n) = header.section(path, SEC_ROW_SETS, rows_len)?;
    let (dict_off, dict_n) = header.section(path, SEC_DICT, header.dict_len)?;
    let packed_window = if header.flags & FLAG_PACKED != 0 {
        Some(header.section(path, SEC_PACKED, header.items_len)?)
    } else {
        if header.entries.iter().any(|e| e.tag == SEC_PACKED) {
            return Err(bad(path, "packed flag mismatch"));
        }
        None
    };
    if u64::from(header.max_item_plus_one) != header.dict_len {
        return Err(bad(path, "dictionary length must cover the compact id space"));
    }

    if verify == Verify::Full {
        for (tag, off, n) in [
            (SEC_ITEMS, items_off, items_n),
            (SEC_SET_STARTS, sets_off, sets_n),
            (SEC_ROW_SETS, rows_off, rows_n),
            (SEC_DICT, dict_off, dict_n),
        ]
        .into_iter()
        .chain(packed_window.map(|(off, n)| (SEC_PACKED, off, n)))
        {
            if crc32(&bytes[off..off + n * 4]) != header.crc_of(tag) {
                return Err(bad(path, "section CRC mismatch"));
            }
        }
    }

    let sets = col_u32(&map, sets_off, sets_n);
    let rows = col_u32(&map, rows_off, rows_n);

    // Boundary-column structure — everything row/itemset slicing indexes
    // through — is validated in *both* modes, so no file content can make
    // `FlatDb::row` reach outside a column.
    if sets.first() != Some(&0) || *sets.last().expect("non-empty") as u64 != header.items_len {
        return Err(bad(path, "set boundary column must span the item column"));
    }
    if header.items_len > 0 && sets.windows(2).any(|w| w[0] >= w[1]) {
        return Err(bad(path, "set boundaries must be strictly increasing"));
    }
    if rows.first() != Some(&0) || *rows.last().expect("non-empty") as u64 != header.sets_len - 1 {
        return Err(bad(path, "row boundary column must span the set column"));
    }
    if rows.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad(path, "row boundaries must be monotone"));
    }
    let max_txns = rows.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
    if max_txns != header.max_txns {
        return Err(bad(path, "transaction count mismatch"));
    }

    let dict: Vec<Item> = map.bytes()[dict_off..dict_off + dict_n * 4]
        .chunks_exact(4)
        .map(|c| Item(u32::from_le_bytes(c.try_into().expect("chunk of 4"))))
        .collect();
    if dict.windows(2).any(|w| w[0] >= w[1]) {
        return Err(bad(path, "dictionary must be strictly ascending"));
    }

    let items = col_items(&map, items_off, items_n);
    if verify == Verify::Full {
        match items.iter().max() {
            None if header.max_item_plus_one != 0 => return Err(bad(path, "max item mismatch")),
            Some(max) if max.id() as u64 + 1 != u64::from(header.max_item_plus_one) => {
                return Err(bad(path, "max item mismatch"))
            }
            _ => {}
        }
    }

    let packed = packed_window
        .map(|(off, n)| PackedDb::from_columns(col_u32(&map, off, n), sets.clone(), rows.clone()));
    let max_item =
        if header.max_item_plus_one == 0 { None } else { Some(Item(header.max_item_plus_one - 1)) };
    let flat = FlatDb::from_columns(items, sets, rows, max_item);
    Ok(FlatFileContents {
        flat,
        packed,
        mapping: ItemMapping::from_originals(dict),
        fingerprint: header.fingerprint,
        max_txns: header.max_txns,
        file_bytes: map.len() as u64,
    })
}

/// Reads just the header of the flat file at `path` — magic, version, and
/// header CRC are verified — and returns the stored source-database
/// fingerprint. A few hundred bytes of IO: the staleness check the store
/// runs on recovery and `store mine --mmap` runs before mapping.
pub fn peek_flat_file_fingerprint(path: &Path) -> Result<u64, DiscError> {
    use std::io::Read;
    let file = fs::File::open(path).map_err(|e| DiscError::from_io(path, &e))?;
    let file_len = file.metadata().map_err(|e| DiscError::from_io(path, &e))?.len();
    let mut head = Vec::with_capacity(PAGE.min(file_len as usize));
    file.take(PAGE as u64).read_to_end(&mut head).map_err(|e| DiscError::from_io(path, &e))?;
    Ok(parse_header(path, &head, file_len)?.fingerprint)
}

// ---------------------------------------------------------------------------
// Atomic publication
// ---------------------------------------------------------------------------

/// Which failure the faulted writer should stage (all off outside tests).
#[derive(Default)]
struct Injected {
    torn: bool,
    corrupt_byte: bool,
    stale_version: bool,
    enospc: bool,
    eintr: bool,
    before_rename: bool,
    after_rename: bool,
}

fn injected_crash(path: &Path, message: &str) -> DiscError {
    DiscError::Io { path: path.to_path_buf(), message: message.to_string(), transient: false }
}

/// Publishes `bytes` (a [`encode_flat_file`] encoding) at `path` with the
/// store's write discipline: temp write + fsync → read-back verification
/// (byte equality **and** a [`Verify::Full`] decode) → rename → parent
/// directory fsync. On any error the final path is either untouched or the
/// previous complete file. Returns the byte count written.
pub fn write_flat_file(path: &Path, bytes: &[u8]) -> Result<u64, DiscError> {
    publish(path, bytes, Injected::default())
}

/// [`write_flat_file`] with a [`crate::guard::FaultPlan`] consulted at the
/// `n`-th flat-file write — the hook the durability tests and the store's
/// crash matrix drive.
#[cfg(any(test, feature = "fault-injection"))]
pub fn write_flat_file_faulted(
    path: &Path,
    bytes: &[u8],
    plan: Option<&crate::guard::FaultPlan>,
    n: u64,
) -> Result<u64, DiscError> {
    use crate::guard::{IoFault, IoWriter};
    let mut injected = Injected::default();
    if let Some(fault) = plan.and_then(|p| p.fire_io(IoWriter::FlatFile, n)) {
        match fault {
            IoFault::TornWrite => injected.torn = true,
            IoFault::CorruptByte => injected.corrupt_byte = true,
            IoFault::StaleVersion => injected.stale_version = true,
            IoFault::Enospc => injected.enospc = true,
            IoFault::Interrupted => injected.eintr = true,
            IoFault::CrashBeforeRename => injected.before_rename = true,
            IoFault::CrashAfterRename => injected.after_rename = true,
            // Reads are not in this path; a short read of the written file
            // would be caught by the read-back verification anyway.
            IoFault::ShortRead => {}
        }
    }
    publish(path, bytes, injected)
}

/// Rewrites the header CRC of `copy` after a field was altered — used by
/// the `StaleVersion` injection so the version check (not the CRC) rejects.
fn refresh_header_crc(copy: &mut [u8]) {
    let table_end = HEADER_LEN + u32_at(copy, 64) as usize * ENTRY_LEN;
    copy[CRC_SLOT..CRC_SLOT + 4].fill(0);
    let crc = crc32(&copy[..table_end]);
    put_u32(copy, CRC_SLOT, crc);
}

fn publish(path: &Path, bytes: &[u8], injected: Injected) -> Result<u64, DiscError> {
    let tmp = tmp_path(path);
    if injected.torn {
        let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
        return Err(injected_crash(path, "injected crash: torn flat-file write"));
    }

    let mut written: std::borrow::Cow<'_, [u8]> = std::borrow::Cow::Borrowed(bytes);
    if injected.corrupt_byte {
        let copy = written.to_mut();
        let last = copy.len() - 1;
        copy[last] ^= 0x40;
    }
    if injected.stale_version {
        let copy = written.to_mut();
        put_u32(copy, 8, FLAT_FILE_VERSION + 1);
        refresh_header_crc(copy);
    }

    let enospc = std::cell::Cell::new(injected.enospc);
    let eintr = std::cell::Cell::new(injected.eintr);
    retry_transient(RetryPolicy::io_default(), || {
        if enospc.take() {
            return Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "injected ENOSPC"));
        }
        if eintr.take() {
            return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&written)?;
        f.sync_all()
    })
    .map_err(|e| DiscError::from_io(&tmp, &e))?;

    // Read back and verify before publishing: the temp file must hold
    // exactly the intended bytes and decode cleanly, or the final path is
    // never updated.
    let readback = retry_transient(RetryPolicy::io_default(), || fs::read(&tmp))
        .map_err(|e| DiscError::from_io(&tmp, &e))?;
    if readback != *written || *written != *bytes {
        return Err(bad(path, "post-write verification failed"));
    }
    decode_flat_file(path, readback, Verify::Full)?;

    if injected.before_rename {
        return Err(injected_crash(path, "injected crash before flat-file rename"));
    }
    retry_transient(RetryPolicy::io_default(), || fs::rename(&tmp, path))
        .map_err(|e| DiscError::from_io(path, &e))?;
    sync_parent_dir(path);
    if injected.after_rename {
        return Err(injected_crash(path, "injected crash after flat-file rename"));
    }
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::database_fingerprint;
    use crate::guard::{FaultPlan, IoFault, IoWriter};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("disc-flatfile-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn paper_db() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    fn sparse_db() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(10, 4000000)(999999999)",
            "(10)(4000000, 999999999)(10, 999999999)",
            "(10)(999999999)",
        ])
        .unwrap()
    }

    fn roundtrip(db: &SequenceDatabase, verify: Verify) -> FlatFileContents {
        let bytes = encode_database_flat_file(db);
        decode_flat_file(Path::new("test.dscfd"), bytes, verify).unwrap()
    }

    #[test]
    fn roundtrips_databases() {
        for db in [paper_db(), sparse_db(), SequenceDatabase::new()] {
            for verify in [Verify::Full, Verify::HeaderOnly] {
                let contents = roundtrip(&db, verify);
                assert_eq!(contents.fingerprint, database_fingerprint(&db));
                let mapping = ItemMapping::analyze(&db);
                assert_eq!(contents.mapping, mapping);
                let expect = FlatDb::from_database(&mapping.remap_database(&db));
                assert_eq!(contents.flat.len(), expect.len());
                assert_eq!(contents.flat.max_item(), expect.max_item());
                assert_eq!(contents.flat.columns(), expect.columns());
                // The packed column decodes to the same rows.
                let packed = contents.packed.expect("small databases fit the packed budget");
                for (r, row) in expect.rows().enumerate() {
                    assert_eq!(packed.row(r).to_sequence(), row.to_sequence());
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let bytes = encode_database_flat_file(&paper_db());
        let path = Path::new("trunc.dscfd");
        for len in 0..bytes.len() {
            let err = decode_flat_file(path, bytes[..len].to_vec(), Verify::Full)
                .expect_err("every proper prefix must be refused");
            assert!(matches!(err, DiscError::FlatFile { .. }), "prefix {len}: {err}");
        }
        decode_flat_file(path, bytes, Verify::Full).unwrap();
    }

    #[test]
    fn corruption_of_any_covered_byte_is_rejected() {
        let bytes = encode_database_flat_file(&sparse_db());
        let path = Path::new("corrupt.dscfd");
        let header = parse_header(path, &bytes, bytes.len() as u64).unwrap();
        // Every byte of the header + table and of every section payload is
        // CRC-covered; only inter-section padding is not.
        let mut covered: Vec<(usize, usize)> =
            vec![(0, HEADER_LEN + header.entries.len() * ENTRY_LEN)];
        for e in &header.entries {
            covered.push((e.offset as usize, (e.offset + e.byte_len) as usize));
        }
        for (start, end) in covered {
            for i in start..end {
                let mut copy = bytes.clone();
                copy[i] ^= 0x01;
                assert!(
                    decode_flat_file(path, copy, Verify::Full).is_err(),
                    "flipped byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn header_only_trusts_payloads_but_full_does_not() {
        let bytes = encode_database_flat_file(&paper_db());
        let path = Path::new("trust.dscfd");
        let header = parse_header(path, &bytes, bytes.len() as u64).unwrap();
        let items = header.entries.iter().find(|e| e.tag == SEC_ITEMS).unwrap();
        let mut copy = bytes.clone();
        // Perturb an item id without leaving the dictionary range.
        let off = items.offset as usize;
        let orig = u32_at(&copy, off);
        put_u32(&mut copy, off, if orig == 0 { 1 } else { orig - 1 });
        assert!(decode_flat_file(path, copy.clone(), Verify::Full).is_err());
        let contents = decode_flat_file(path, copy, Verify::HeaderOnly).unwrap();
        assert_eq!(contents.flat.len(), 4);
    }

    #[test]
    fn boundary_columns_are_validated_even_header_only() {
        let db = paper_db();
        let bytes = encode_database_flat_file(&db);
        let path = Path::new("bounds.dscfd");
        let header = parse_header(path, &bytes, bytes.len() as u64).unwrap();
        let sets = header.entries.iter().find(|e| e.tag == SEC_SET_STARTS).unwrap();
        // Point a set boundary past the item column; HeaderOnly must still
        // refuse, or mining would slice out of bounds.
        let mut copy = bytes.clone();
        put_u32(&mut copy, sets.offset as usize + 4, u32::MAX);
        assert!(decode_flat_file(path, copy, Verify::HeaderOnly).is_err());
    }

    #[test]
    fn open_maps_the_columns_zero_copy() {
        let dir = tmp_dir("open");
        let path = dir.join("db.dscfd");
        let db = sparse_db();
        write_flat_file(&path, &encode_database_flat_file(&db)).unwrap();
        let contents = open_flat_file(&path, Verify::Full).unwrap();
        assert_eq!(contents.fingerprint, database_fingerprint(&db));
        assert_eq!(peek_flat_file_fingerprint(&path).unwrap(), contents.fingerprint);
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        {
            assert!(contents.is_mapped());
            assert!(contents.packed.as_ref().unwrap().is_mapped());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_is_atomic_under_injected_faults() {
        let dir = tmp_dir("faults");
        let path = dir.join("db.dscfd");
        let bytes = encode_database_flat_file(&paper_db());

        for fault in [
            IoFault::TornWrite,
            IoFault::CorruptByte,
            IoFault::StaleVersion,
            IoFault::Enospc,
            IoFault::CrashBeforeRename,
        ] {
            let plan = FaultPlan::io_fault_at(IoWriter::FlatFile, 0, fault);
            let err = write_flat_file_faulted(&path, &bytes, Some(&plan), 0)
                .expect_err("staged fault must surface");
            assert!(!path.exists(), "{fault:?} must not publish; got error {err}");
        }

        // A transient EINTR is retried through; the file publishes.
        let plan = FaultPlan::io_fault_at(IoWriter::FlatFile, 0, IoFault::Interrupted);
        write_flat_file_faulted(&path, &bytes, Some(&plan), 0).unwrap();
        open_flat_file(&path, Verify::Full).unwrap();

        // A crash after rename leaves a complete, valid file.
        let plan = FaultPlan::io_fault_at(IoWriter::FlatFile, 0, IoFault::CrashAfterRename);
        write_flat_file_faulted(&path, &bytes, Some(&plan), 0).unwrap_err();
        open_flat_file(&path, Verify::Full).unwrap();

        // And a fresh torn write cannot clobber the published file.
        let plan = FaultPlan::io_fault_at(IoWriter::FlatFile, 0, IoFault::TornWrite);
        write_flat_file_faulted(&path, &bytes, Some(&plan), 0).unwrap_err();
        open_flat_file(&path, Verify::Full).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_permanent_and_eintr_transient() {
        let dir = tmp_dir("classify");
        let path = dir.join("db.dscfd");
        let bytes = encode_database_flat_file(&paper_db());
        let plan = FaultPlan::io_fault_at(IoWriter::FlatFile, 0, IoFault::Enospc);
        let err = write_flat_file_faulted(&path, &bytes, Some(&plan), 0).unwrap_err();
        assert!(!err.is_transient());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
