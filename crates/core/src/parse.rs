//! Text parsing for sequences, in the paper's notation.
//!
//! A sequence is written as a run of parenthesized transactions, items
//! separated by commas: `(a, e, g)(b)(h)`. Items are either single lowercase
//! letters (`a` ↦ 0 … `z` ↦ 25, as in the paper's examples) or decimal
//! numbers (for generated datasets): `(0, 4, 6)(1)(7)` parses to the same
//! sequence. Whitespace between tokens is ignored. Underscores (the paper's
//! projected-database placeholders) are rejected — projections are a runtime
//! concept, not part of the data model.

use crate::error::ParseError;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::sequence::Sequence;

/// Parses a single item token: a lowercase letter or a decimal number.
pub fn parse_item(s: &str) -> Option<Item> {
    let s = s.trim();
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if c.is_ascii_lowercase() => Item::from_letter(c),
        _ => s.parse::<u32>().ok().map(Item),
    }
}

/// Parses a sequence like `(a, e, g)(b)(h)` or `(10, 42)(7)`.
///
/// The empty string parses to the empty sequence.
///
/// ```
/// use disc_core::parse_sequence;
/// let s = parse_sequence("(a, e, g)(b)(h)").unwrap();
/// assert_eq!(s.to_string(), "(a, e, g)(b)(h)");
/// assert_eq!(s, parse_sequence("(0,4,6)(1)(7)").unwrap());
/// ```
pub fn parse_sequence(input: &str) -> Result<Sequence, ParseError> {
    // Parse over `char_indices` rather than raw bytes so arbitrary (even
    // multi-byte) input is rejected with the real offending character and a
    // byte offset that is always a character boundary of `input`.
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0usize;
    let mut itemsets: Vec<Itemset> = Vec::new();

    let skip_ws = |i: &mut usize| {
        while *i < chars.len() && chars[*i].1.is_whitespace() {
            *i += 1;
        }
    };

    skip_ws(&mut i);
    while i < chars.len() {
        let (offset, c) = chars[i];
        if c != '(' {
            return Err(ParseError::UnexpectedChar { offset, found: c });
        }
        i += 1;
        let mut items: Vec<Item> = Vec::new();
        let close_offset;
        loop {
            skip_ws(&mut i);
            if i >= chars.len() {
                return Err(ParseError::UnexpectedEnd);
            }
            let (offset, c) = chars[i];
            match c {
                ')' => {
                    if items.is_empty() {
                        return Err(ParseError::EmptyItemset { offset });
                    }
                    close_offset = offset;
                    i += 1;
                    break;
                }
                ',' => {
                    i += 1;
                }
                c if c.is_ascii_lowercase() => {
                    match Item::from_letter(c) {
                        Some(item) => items.push(item),
                        None => return Err(ParseError::UnexpectedChar { offset, found: c }),
                    }
                    i += 1;
                }
                c if c.is_ascii_digit() => {
                    let start = offset;
                    while i < chars.len() && chars[i].1.is_ascii_digit() {
                        i += 1;
                    }
                    let end = chars.get(i).map_or(input.len(), |&(o, _)| o);
                    let num: u32 = input[start..end]
                        .parse()
                        .map_err(|_| ParseError::ItemOverflow { offset: start })?;
                    items.push(Item(num));
                }
                c => return Err(ParseError::UnexpectedChar { offset, found: c }),
            }
        }
        // Structurally unreachable (an empty transaction already returned
        // above), but corrupt input must surface as an error, not a panic.
        let set = Itemset::new(items).ok_or(ParseError::EmptyItemset { offset: close_offset })?;
        itemsets.push(set);
        skip_ws(&mut i);
    }
    Ok(Sequence::new(itemsets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_notation() {
        let s = parse_sequence("(a,e,g)(b)(h)(f)(c)(b,f)").unwrap();
        assert_eq!(s.n_transactions(), 6);
        assert_eq!(s.length(), 9);
        assert_eq!(s.to_string(), "(a, e, g)(b)(h)(f)(c)(b, f)");
    }

    #[test]
    fn parses_numeric_items() {
        let s = parse_sequence("(10, 2)(7)").unwrap();
        assert_eq!(s.itemset(0).as_slice(), &[Item(2), Item(10)]);
        assert_eq!(s.itemset(1).as_slice(), &[Item(7)]);
    }

    #[test]
    fn letters_and_numbers_agree() {
        assert_eq!(parse_sequence("(a, c)(z)").unwrap(), parse_sequence("(0, 2)(25)").unwrap());
    }

    #[test]
    fn tolerates_whitespace() {
        assert_eq!(
            parse_sequence("  ( a , b ) ( c )  ").unwrap(),
            parse_sequence("(a,b)(c)").unwrap()
        );
    }

    #[test]
    fn unsorted_input_is_normalized() {
        // The paper writes <(a,c,d)(d,b)>; itemsets are sets so (d,b) = (b,d).
        let s = parse_sequence("(a,c,d)(d,b)").unwrap();
        assert_eq!(s.to_string(), "(a, c, d)(b, d)");
    }

    #[test]
    fn empty_string_is_empty_sequence() {
        assert!(parse_sequence("").unwrap().is_empty());
        assert!(parse_sequence("   ").unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse_sequence("(a)("), Err(ParseError::UnexpectedEnd)));
        assert!(matches!(parse_sequence("()"), Err(ParseError::EmptyItemset { .. })));
        assert!(matches!(parse_sequence("a)"), Err(ParseError::UnexpectedChar { offset: 0, .. })));
        assert!(matches!(parse_sequence("(a)(_, b)"), Err(ParseError::UnexpectedChar { .. })));
        assert!(matches!(parse_sequence("(99999999999)"), Err(ParseError::ItemOverflow { .. })));
    }

    #[test]
    fn multibyte_input_reports_the_real_char_on_a_boundary() {
        // A byte-wise parser would report a mangled Latin-1 char at a
        // non-boundary offset; the real char and its start byte are required.
        assert_eq!(
            parse_sequence("(é)"),
            Err(ParseError::UnexpectedChar { offset: 1, found: 'é' })
        );
        assert_eq!(
            parse_sequence("→(a)"),
            Err(ParseError::UnexpectedChar { offset: 0, found: '→' })
        );
        // U+00A0 NO-BREAK SPACE is whitespace as a char and stays skippable.
        assert_eq!(parse_sequence("\u{a0}(a)\u{a0}").unwrap(), parse_sequence("(a)").unwrap());
    }

    #[test]
    fn parse_item_tokens() {
        assert_eq!(parse_item("a"), Some(Item(0)));
        assert_eq!(parse_item(" 42 "), Some(Item(42)));
        assert_eq!(parse_item("ab"), None);
        assert_eq!(parse_item(""), None);
    }
}
