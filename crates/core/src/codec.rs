//! A compact binary codec for sequence databases.
//!
//! Workload generation dominates harness start-up for the larger sweeps, so
//! generated databases are cached on disk. The format is simple and stable:
//!
//! ```text
//! magic "DSCDB1\n"
//! varint  customer count
//! per customer:
//!   varint cid
//!   varint transaction count
//!   per transaction:
//!     varint item count
//!     varint first item, then varint gaps between consecutive sorted items
//! ```
//!
//! LEB128 varints plus delta-encoded items keep typical Quest workloads
//! around 2 bytes per item occurrence.

use crate::database::{CustomerId, SequenceDatabase};
use crate::item::Item;
use crate::itemset::Itemset;
use crate::sequence::Sequence;
use std::collections::HashSet;
use std::fmt;

const MAGIC: &[u8] = b"DSCDB1\n";

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input does not start with the format magic.
    BadMagic,
    /// The input ended inside a value.
    Truncated,
    /// A varint exceeded 64 bits.
    Overflow,
    /// Two customers carried the same id — the file is not a database.
    DuplicateCustomer(u64),
    /// A structural invariant was violated (empty transaction, item overflow).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a DSCDB1 file"),
            CodecError::Truncated => write!(f, "input ended inside a value"),
            CodecError::Overflow => write!(f, "varint overflow"),
            CodecError::DuplicateCustomer(cid) => {
                write!(f, "customer id {cid} appears more than once")
            }
            CodecError::Invalid(what) => write!(f, "invalid structure: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(input: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = input.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Overflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends one sequence: transaction count, then per transaction an item
/// count and delta-encoded sorted items. Shared by the database codec and
/// the checkpoint pattern log.
pub(crate) fn put_sequence(out: &mut Vec<u8>, seq: &Sequence) {
    put_varint(out, seq.n_transactions() as u64);
    for set in seq.itemsets() {
        put_varint(out, set.len() as u64);
        let mut prev = 0u64;
        for (i, item) in set.iter().enumerate() {
            let v = u64::from(item.id());
            if i == 0 {
                put_varint(out, v);
            } else {
                put_varint(out, v - prev);
            }
            prev = v;
        }
    }
}

/// Reads one sequence written by [`put_sequence`], validating every
/// structural invariant (non-empty transactions, strictly ascending items
/// within a transaction, ids within `u32`).
pub(crate) fn get_sequence(input: &[u8], pos: &mut usize) -> Result<Sequence, CodecError> {
    let n_txns = get_varint(input, pos)?;
    let mut itemsets = Vec::with_capacity(n_txns as usize);
    for _ in 0..n_txns {
        let n_items = get_varint(input, pos)?;
        if n_items == 0 {
            return Err(CodecError::Invalid("empty transaction"));
        }
        let mut items = Vec::with_capacity(n_items as usize);
        let mut prev = 0u64;
        for i in 0..n_items {
            let delta = get_varint(input, pos)?;
            let v = if i == 0 { delta } else { prev + delta };
            if v > u64::from(u32::MAX) || (i > 0 && delta == 0) {
                return Err(CodecError::Invalid("item id out of range or duplicate"));
            }
            items.push(Item(v as u32));
            prev = v;
        }
        itemsets.push(Itemset::from_sorted(items));
    }
    Ok(Sequence::new(itemsets))
}

/// Encodes a database to the binary format.
pub fn encode_database(db: &SequenceDatabase) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + db.len() * 16);
    out.extend_from_slice(MAGIC);
    put_varint(&mut out, db.len() as u64);
    for row in db.rows() {
        put_varint(&mut out, row.cid.0);
        put_sequence(&mut out, &row.sequence);
    }
    out
}

/// Decodes a database from the binary format. Strict: a file carrying the
/// same customer id twice, trailing bytes, or any malformed value is
/// rejected with a typed error.
pub fn decode_database(input: &[u8]) -> Result<SequenceDatabase, CodecError> {
    if input.len() < MAGIC.len() || &input[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut pos = MAGIC.len();
    let n_rows = get_varint(input, &mut pos)?;
    let mut db = SequenceDatabase::new();
    let mut seen = HashSet::with_capacity(n_rows.min(1 << 20) as usize);
    for _ in 0..n_rows {
        let cid = get_varint(input, &mut pos)?;
        if !seen.insert(cid) {
            return Err(CodecError::DuplicateCustomer(cid));
        }
        let sequence = get_sequence(input, &mut pos)?;
        db.push(CustomerId(cid), sequence);
    }
    if pos != input.len() {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let db = table1();
        let bytes = encode_database(&db);
        let back = decode_database(&bytes).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = SequenceDatabase::new();
        let back = decode_database(&encode_database(&db)).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn large_item_ids_roundtrip() {
        let db = SequenceDatabase::from_parsed(&["(0, 300, 70000)(4294967295)"]).unwrap();
        let back = decode_database(&encode_database(&db)).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn compactness() {
        // Delta-encoded small alphabets should stay under ~2.5 bytes/item.
        let db = table1();
        let total_items: usize = db.sequences().map(|s| s.length()).sum();
        let bytes = encode_database(&db);
        assert!(
            bytes.len() <= MAGIC.len() + 1 + total_items * 2 + db.len() * 4,
            "{} bytes for {} items",
            bytes.len(),
            total_items
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode_database(b"nope"), Err(CodecError::BadMagic));
        let mut bytes = encode_database(&table1());
        bytes.truncate(bytes.len() - 1);
        assert_eq!(decode_database(&bytes), Err(CodecError::Truncated));
        let mut extra = encode_database(&table1());
        extra.push(0);
        assert_eq!(decode_database(&extra), Err(CodecError::Invalid("trailing bytes")));
    }

    #[test]
    fn rejects_duplicate_customer_ids() {
        // Hand-build a file with cid 7 twice: a single-item sequence "(a)"
        // encodes as n_txns=1, n_items=1, item=0.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_varint(&mut bytes, 2); // two customers
        for _ in 0..2 {
            put_varint(&mut bytes, 7); // the same cid
            put_varint(&mut bytes, 1);
            put_varint(&mut bytes, 1);
            put_varint(&mut bytes, 0);
        }
        assert_eq!(decode_database(&bytes), Err(CodecError::DuplicateCustomer(7)));
    }

    #[test]
    fn sequence_roundtrip() {
        for text in ["(a)", "(a,e,g)(b)(h)", "(0, 300, 70000)(4294967295)"] {
            let seq = crate::parse::parse_sequence(text).unwrap();
            let mut buf = Vec::new();
            put_sequence(&mut buf, &seq);
            let mut pos = 0;
            assert_eq!(get_sequence(&buf, &mut pos), Ok(seq));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }
}
