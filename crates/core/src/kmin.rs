//! Reference implementations of the **k-minimum subsequence** operators
//! (Definitions 2.3 and 2.5), by exhaustive enumeration.
//!
//! These are exponential in the sequence length and exist as ground truth:
//! the fast Apriori-KMS / Apriori-CKMS algorithms in `disc-algo` are
//! property-tested against them. They are also handy for exploring the
//! definitions on small examples.

use crate::item::Item;
use crate::itemset::Itemset;
use crate::sequence::Sequence;
use std::collections::BTreeSet;

/// Calls `f` with every distinct embedding of a k-subsequence of `seq`
/// (patterns repeat once per embedding; deduplicate downstream if needed).
fn for_each_k_subsequence(seq: &Sequence, k: usize, f: &mut impl FnMut(&Sequence)) {
    if k == 0 {
        return;
    }
    // One pattern itemset under construction at a time; positions are
    // (transaction index, item index within the sorted transaction).
    fn recurse(
        seq: &Sequence,
        k: usize,
        cur: &mut Vec<Vec<Item>>,
        chosen: usize,
        last_txn: usize,
        last_idx: usize,
        f: &mut impl FnMut(&Sequence),
    ) {
        if chosen == k {
            let pattern =
                Sequence::new(cur.iter().map(|items| Itemset::from_sorted(items.clone())));
            f(&pattern);
            return;
        }
        // (a) extend the current last pattern itemset with a later item of
        // the same transaction.
        let txn = seq.itemset(last_txn);
        for j in last_idx + 1..txn.len() {
            cur.last_mut().expect("non-empty during recursion").push(txn.as_slice()[j]);
            recurse(seq, k, cur, chosen + 1, last_txn, j, f);
            cur.last_mut().unwrap().pop();
        }
        // (b) open a new pattern itemset in a strictly later transaction.
        for t in last_txn + 1..seq.n_transactions() {
            let set = seq.itemset(t);
            for j in 0..set.len() {
                cur.push(vec![set.as_slice()[j]]);
                recurse(seq, k, cur, chosen + 1, t, j, f);
                cur.pop();
            }
        }
    }

    for t in 0..seq.n_transactions() {
        let set = seq.itemset(t);
        for j in 0..set.len() {
            let mut cur = vec![vec![set.as_slice()[j]]];
            recurse(seq, k, &mut cur, 1, t, j, f);
        }
    }
}

/// All distinct k-subsequences of `seq`, in comparative order.
///
/// ```
/// use disc_core::{all_k_subsequences, parse_sequence};
/// let s = parse_sequence("(a,c,d)(b,d)").unwrap();
/// let subs = all_k_subsequences(&s, 1);
/// assert_eq!(subs.len(), 4); // a, b, c, d
/// ```
pub fn all_k_subsequences(seq: &Sequence, k: usize) -> BTreeSet<Sequence> {
    let mut out = BTreeSet::new();
    for_each_k_subsequence(seq, k, &mut |p| {
        out.insert(p.clone());
    });
    out
}

/// The k-minimum subsequence of Definition 2.3, by exhaustive search.
pub fn min_k_subsequence_naive(seq: &Sequence, k: usize) -> Option<Sequence> {
    let mut best: Option<Sequence> = None;
    for_each_k_subsequence(seq, k, &mut |p| {
        if best.as_ref().is_none_or(|b| p < b) {
            best = Some(p.clone());
        }
    });
    best
}

/// The conditional k-minimum subsequence of Definition 2.5, by exhaustive
/// search: the minimum k-subsequence `μ` with `μ > bound` (`strict`) or
/// `μ ≥ bound` (`!strict`).
pub fn min_k_subsequence_above_naive(
    seq: &Sequence,
    k: usize,
    bound: &Sequence,
    strict: bool,
) -> Option<Sequence> {
    let mut best: Option<Sequence> = None;
    for_each_k_subsequence(seq, k, &mut |p| {
        let ok = if strict { p > bound } else { p >= bound };
        if ok && best.as_ref().is_none_or(|b| p < b) {
            best = Some(p.clone());
        }
    });
    best
}

/// The minimum k-subsequence whose (k-1)-prefix belongs to `allowed`,
/// optionally above a bound — the exact quantity Apriori-KMS/CKMS compute.
/// `bound = None` reproduces Apriori-KMS; `Some((b, strict))` reproduces
/// Apriori-CKMS.
pub fn min_k_subsequence_with_allowed_prefix_naive(
    seq: &Sequence,
    k: usize,
    allowed: &BTreeSet<Sequence>,
    bound: Option<(&Sequence, bool)>,
) -> Option<Sequence> {
    let mut best: Option<Sequence> = None;
    for_each_k_subsequence(seq, k, &mut |p| {
        if !allowed.contains(&p.k_prefix(k - 1)) {
            return;
        }
        if let Some((b, strict)) = bound {
            let ok = if strict { p > b } else { p >= b };
            if !ok {
                return;
            }
        }
        if best.as_ref().is_none_or(|cur| p < cur) {
            best = Some(p.clone());
        }
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn example_2_2_k_minimum_subsequences() {
        // A = <(a,c,d)(b,d)>. The paper's Example 2.2 writes the second
        // transaction "(d, b)" and walks it in that literal order; under the
        // set model (sorted itemsets, used everywhere else in the paper) the
        // exact minimums differ, but — as checked at the end of this test —
        // the resulting k-minimum ORDERS between A, B and C are the same
        // ones the paper reports.
        let a = seq("(a,c,d)(b,d)");
        assert_eq!(min_k_subsequence_naive(&a, 1).unwrap(), seq("(a)"));
        assert_eq!(min_k_subsequence_naive(&a, 2).unwrap(), seq("(a)(b)"));
        assert_eq!(min_k_subsequence_naive(&a, 3).unwrap(), seq("(a)(b,d)"));
        assert_eq!(min_k_subsequence_naive(&a, 4).unwrap(), seq("(a,c)(b,d)"));
        assert_eq!(min_k_subsequence_naive(&a, 5).unwrap(), seq("(a,c,d)(b,d)"));
        assert_eq!(min_k_subsequence_naive(&a, 6), None);

        let b = seq("(a,d,e)(a)");
        let c = seq("(a,c)(a,d)");
        assert_eq!(min_k_subsequence_naive(&b, 3).unwrap(), seq("(a,d)(a)"));
        assert_eq!(min_k_subsequence_naive(&c, 3).unwrap(), seq("(a)(a,d)"));

        // 3-minimum order C <3 A <3 B; 2-minimum order C =2 B <2 A — exactly
        // as in the paper.
        assert!(min_k_subsequence_naive(&c, 3) < min_k_subsequence_naive(&a, 3));
        assert!(min_k_subsequence_naive(&a, 3) < min_k_subsequence_naive(&b, 3));
        assert_eq!(min_k_subsequence_naive(&c, 2), min_k_subsequence_naive(&b, 2));
        assert!(min_k_subsequence_naive(&b, 2) < min_k_subsequence_naive(&a, 2));
    }

    #[test]
    fn table_3_three_minimum_subsequences() {
        // The 3-minimum subsequences of the Table 1 database.
        assert_eq!(
            min_k_subsequence_naive(&seq("(a,e,g)(b)(h)(f)(c)(b,f)"), 3).unwrap(),
            seq("(a)(b)(b)")
        );
        assert_eq!(
            min_k_subsequence_naive(&seq("(f)(a,g)(b,f,h)(b,f)"), 3).unwrap(),
            seq("(a)(b)(b)")
        );
        assert_eq!(min_k_subsequence_naive(&seq("(b)(d,f)(e)"), 3).unwrap(), seq("(b)(d)(e)"));
        assert_eq!(min_k_subsequence_naive(&seq("(b,f,g)"), 3).unwrap(), seq("(b,f,g)"));
    }

    #[test]
    fn table_4_conditional_three_minimums() {
        // Example 1.2: with bound <(b)(d)(e)> (inclusive), CID 1 re-sorts to
        // <(b)(f)(b)> and CID 4 to <(b,f)(b)>.
        let bound = seq("(b)(d)(e)");
        assert_eq!(
            min_k_subsequence_above_naive(&seq("(a,e,g)(b)(h)(f)(c)(b,f)"), 3, &bound, false)
                .unwrap(),
            seq("(b)(f)(b)")
        );
        assert_eq!(
            min_k_subsequence_above_naive(&seq("(f)(a,g)(b,f,h)(b,f)"), 3, &bound, false).unwrap(),
            seq("(b,f)(b)")
        );
    }

    #[test]
    fn strict_vs_inclusive_bounds() {
        let s = seq("(a)(b)(c)");
        let bound = seq("(a)(b)");
        assert_eq!(min_k_subsequence_above_naive(&s, 2, &bound, false).unwrap(), seq("(a)(b)"));
        assert_eq!(min_k_subsequence_above_naive(&s, 2, &bound, true).unwrap(), seq("(a)(c)"));
    }

    #[test]
    fn all_subsequences_enumerates_distinct_patterns() {
        let s = seq("(a,b)(a)");
        let subs = all_k_subsequences(&s, 2);
        let strs: Vec<String> = subs.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["(a)(a)", "(a, b)", "(b)(a)"]);
    }

    #[test]
    fn prefix_restricted_minimum() {
        let s = seq("(a)(c)(b)");
        let mut allowed = BTreeSet::new();
        allowed.insert(seq("(c)"));
        // Without the restriction the 2-minimum is <(a)(b)>; restricted to
        // prefixes {<(c)>} it is <(c)(b)>.
        assert_eq!(min_k_subsequence_naive(&s, 2).unwrap(), seq("(a)(b)"));
        assert_eq!(
            min_k_subsequence_with_allowed_prefix_naive(&s, 2, &allowed, None).unwrap(),
            seq("(c)(b)")
        );
        // And with a strict bound above it, nothing remains.
        let bound = seq("(c)(b)");
        assert_eq!(
            min_k_subsequence_with_allowed_prefix_naive(&s, 2, &allowed, Some((&bound, true))),
            None
        );
    }

    #[test]
    fn no_k_subsequence_when_too_short() {
        assert_eq!(min_k_subsequence_naive(&seq("(a,b)"), 3), None);
        assert!(all_k_subsequences(&seq("(a)"), 2).is_empty());
    }
}
