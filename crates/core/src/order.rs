//! The paper's **comparative order** on sequences (Definitions 2.1–2.2).
//!
//! A sequence is viewed in its *flattened* form: the list of
//! `(item, transaction-number)` pairs obtained by renumbering transactions
//! from 1 and walking items left-to-right (ascending within a transaction).
//! The **differential point** of two sequences is the first position at which
//! the pairs differ (Definition 2.1 — its published conjunction "items differ
//! *and* numbers differ" is read as "the pairs differ", which is what the
//! paper's own Example 2.1 requires: there the items are equal at the
//! differential point and only the numbers differ). Definition 2.2 then
//! orders by item first and transaction number second, and treats a proper
//! prefix as smaller ("add a special item that is smaller than any other item
//! to the end of the shorter sequence").
//!
//! In other words: the comparative order is the lexicographic order over the
//! flattened pairs with pair order `(item, transaction-number)` — a total
//! order, which is what lets DISC sort a database by k-minimum subsequences
//! and read frequency off ranks.

use crate::flat::SeqView;
use crate::sequence::Sequence;
use crate::simd;
use std::cmp::Ordering;

/// Compares two sequences in the comparative order of Definition 2.2.
///
/// ```
/// use disc_core::{cmp_sequences, parse_sequence};
/// use std::cmp::Ordering;
///
/// let a = parse_sequence("(a)(b)(h)").unwrap();
/// let b = parse_sequence("(a)(c)(f)").unwrap();
/// assert_eq!(cmp_sequences(&a, &b), Ordering::Less); // b < c in txn 2
///
/// // Same items, different distribution: <(a,b)(c)> < <(a)(b,c)>.
/// let c = parse_sequence("(a,b)(c)").unwrap();
/// let d = parse_sequence("(a)(b,c)").unwrap();
/// assert_eq!(cmp_sequences(&c, &d), Ordering::Less);
/// ```
pub fn cmp_sequences(a: &Sequence, b: &Sequence) -> Ordering {
    cmp_views(a, b)
}

/// [`cmp_sequences`] generalized over [`SeqView`]s, so flat storage rows
/// compare against each other (or against nested sequences) without
/// materializing anything.
///
/// The comparison walks transaction by transaction rather than pair by pair:
/// within one transaction both sides carry the same txn number, so the pair
/// order reduces to item order and the shared item prefix can be skipped with
/// one vectorized [`simd::first_diff`](simd::first_diff_u32) call. When the
/// itemsets have different lengths the pair streams desynchronize, but the
/// outcome is decided immediately at that point: the shorter side's next pair
/// (if any) is the first item of its *next* transaction, which is compared
/// against the longer side's surplus item — and on an item tie the shorter
/// side's larger txn number loses. Itemsets are non-empty by the model's
/// invariant, which is what makes "first item of the next transaction"
/// well-defined.
pub fn cmp_views<'x, 'y>(a: impl SeqView<'x>, b: impl SeqView<'y>) -> Ordering {
    let na = a.n_transactions();
    let nb = b.n_transactions();
    let n = na.min(nb);
    for t in 0..n {
        let xa = a.itemset_items(t);
        let xb = b.itemset_items(t);
        let m = xa.len().min(xb.len());
        let d = simd::first_diff_items(&xa[..m], &xb[..m]);
        if d < m {
            return xa[d].cmp(&xb[d]);
        }
        if xa.len() == xb.len() {
            continue;
        }
        // Itemset lengths differ: the side with the shorter itemset either
        // ends here (prefix, smaller) or continues in transaction t+1, whose
        // txn number exceeds the surplus pair's — so an item tie goes against
        // it (Definition 2.2(b)).
        return if xa.len() < xb.len() {
            if t + 1 >= na {
                Ordering::Less
            } else {
                match a.itemset_items(t + 1)[0].cmp(&xb[m]) {
                    Ordering::Equal => Ordering::Greater,
                    ord => ord,
                }
            }
        } else if t + 1 >= nb {
            Ordering::Greater
        } else {
            match xa[m].cmp(&b.itemset_items(t + 1)[0]) {
                Ordering::Equal => Ordering::Less,
                ord => ord,
            }
        };
    }
    na.cmp(&nb)
}

/// The differential point of Definition 2.1: the 1-based flattened position
/// of the first differing pair, or `None` when the sequences are equal.
///
/// When one sequence is a proper prefix of the other, the differential point
/// is the position just past the shorter sequence (the paper's "special item"
/// convention).
pub fn differential_point(a: &Sequence, b: &Sequence) -> Option<usize> {
    let mut ia = a.flat_iter();
    let mut ib = b.flat_iter();
    let mut pos = 0usize;
    loop {
        pos += 1;
        match (ia.next(), ib.next()) {
            (None, None) => return None,
            (Some(x), Some(y)) if x == y => continue,
            _ => return Some(pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;
    use crate::sequence::Sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn example_2_1_items_decide() {
        // A = <(a,c,d)(b,d)>, B = <(a,d,e)(a)>: differential point 2 because
        // A_2.item = c < d = B_2.item, hence A < B.
        let a = seq("(a,c,d)(b,d)");
        let b = seq("(a,d,e)(a)");
        assert_eq!(differential_point(&a, &b), Some(2));
        assert_eq!(cmp_sequences(&a, &b), Ordering::Less);
    }

    #[test]
    fn example_2_1_transaction_numbers_decide() {
        // Definition 2.2(b): when the items at the differential point are
        // equal, the smaller transaction number wins. (The paper's literal
        // Example 2.1 writes the itemset "(d, a)" in unsorted order, which
        // contradicts the set model used everywhere else in the paper; this
        // is the same comparison with itemsets as sets.)
        let a = seq("(a,c,d)(b,d)"); // flat: (a,1)(c,1)(d,1)(b,2)(d,2)
        let c = seq("(a,c)(d,e)"); //   flat: (a,1)(c,1)(d,2)(e,2)
        assert_eq!(differential_point(&a, &c), Some(3));
        assert_eq!(cmp_sequences(&a, &c), Ordering::Less); // d in txn 1 vs txn 2

        // And with the paper's C normalized to a set, <(a,c)(a,d)>, the items
        // at position 3 differ (d vs a), so 2.2(a) applies instead.
        let c_set = seq("(a,c)(a,d)");
        assert_eq!(differential_point(&a, &c_set), Some(3));
        assert_eq!(cmp_sequences(&a, &c_set), Ordering::Greater);
    }

    #[test]
    fn section_1_2_examples() {
        // <(a)(b)(h)> < <(a)(c)(f)>: in the 2nd transactions, b < c.
        assert!(seq("(a)(b)(h)") < seq("(a)(c)(f)"));
        // <(a,b)(c)> < <(a)(b,c)>: same items, b in an earlier transaction.
        assert!(seq("(a,b)(c)") < seq("(a)(b,c)"));
    }

    #[test]
    fn prefix_is_smaller() {
        assert_eq!(cmp_sequences(&seq("(a)(b)"), &seq("(a)(b)(c)")), Ordering::Less);
        assert_eq!(cmp_sequences(&seq("(a)(b)(c)"), &seq("(a)(b)")), Ordering::Greater);
        assert_eq!(differential_point(&seq("(a)(b)"), &seq("(a)(b)(c)")), Some(3));
    }

    #[test]
    fn equal_sequences_have_no_differential_point() {
        let a = seq("(a,e,g)(b)");
        assert_eq!(differential_point(&a, &a.clone()), None);
        assert_eq!(cmp_sequences(&a, &a.clone()), Ordering::Equal);
    }

    #[test]
    fn empty_sequence_is_minimum() {
        assert_eq!(cmp_sequences(&Sequence::empty(), &seq("(a)")), Ordering::Less);
        assert_eq!(cmp_sequences(&Sequence::empty(), &Sequence::empty()), Ordering::Equal);
    }

    #[test]
    fn table_3_sort_order() {
        // The 3-minimum subsequences of Table 3, already in sorted order:
        // (a)(b)(b) = (a)(b)(b) < (b)(d)(e) < (b,f,g).
        let rows = [seq("(a)(b)(b)"), seq("(a)(b)(b)"), seq("(b)(d)(e)"), seq("(b,f,g)")];
        let mut sorted = rows.to_vec();
        sorted.sort();
        assert_eq!(sorted, rows.to_vec());
        // And <(b,f,g)> > <(b)(f)(b)> (Table 4 ordering: (b)(f)(b) comes before (b,f,g)?
        // No: Table 4 lists (b)(d)(e), (b,f)(b), (b,f,g), (b)(f)(b) — check pairwise).
        assert!(seq("(b)(d)(e)") < seq("(b,f)(b)"));
        assert!(seq("(b,f)(b)") < seq("(b,f,g)"));
    }

    #[test]
    fn cmp_views_agrees_with_cmp_sequences() {
        let texts =
            ["(a)(b)(h)", "(a)(c)(f)", "(a,b)(c)", "(a)(b,c)", "(a)(b)", "(a)(b)(c)", "(b,f,g)"];
        for x in &texts {
            for y in &texts {
                let (sx, sy) = (seq(x), seq(y));
                assert_eq!(cmp_views(&sx, &sy), cmp_sequences(&sx, &sy), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn itemset_extension_sorts_before_sequence_extension() {
        // <(a)(a,e)> < <(a)(a)(e)>: same items, e attaches to txn 2 vs txn 3.
        assert!(seq("(a)(a,e)") < seq("(a)(a)(e)"));
    }
}
