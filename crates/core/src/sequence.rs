//! The [`Sequence`] type: an ordered list of itemsets.

use crate::item::Item;
use crate::itemset::Itemset;
use std::fmt;

/// A sequence — an ordered list of non-empty itemsets.
///
/// Sequences double as *customer sequences* (database rows) and *patterns*
/// (mining output). Following the paper, the **length** of a sequence is the
/// total number of item occurrences ([`Sequence::length`]), and a sequence of
/// length `k` is called a *k-sequence*.
///
/// `Ord` is the paper's comparative order (Definition 2.2); see the [`crate::order`]
/// module for the definition and proofs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sequence(Vec<Itemset>);

/// How a one-item extension attaches to a sequence (the two forms `<(λx)>`
/// and `<(λ)(x)>` of Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtMode {
    /// Itemset extension: the item joins the last transaction. In the
    /// flattened representation its transaction number equals the last
    /// element's, which is why [`ExtMode::Itemset`] sorts *before*
    /// [`ExtMode::Sequence`] for the same item.
    Itemset,
    /// Sequence extension: the item opens a new transaction.
    Sequence,
}

/// A one-item extension element: the `(item, transaction-number-delta)` pair
/// appended to a pattern's flattened representation.
///
/// The derived `Ord` (item first, then mode with `Itemset < Sequence`) is
/// exactly the comparative order restricted to the appended position, which
/// is what the Apriori-KMS/CKMS algorithms minimize over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExtElem {
    /// The appended item.
    pub item: Item,
    /// Whether it extends the last itemset or opens a new transaction.
    pub mode: ExtMode,
}

impl PartialOrd for ExtMode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExtMode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Itemset extension keeps the same transaction number; sequence
        // extension increments it. Smaller transaction number sorts first.
        fn rank(m: &ExtMode) -> u8 {
            match m {
                ExtMode::Itemset => 0,
                ExtMode::Sequence => 1,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

impl Sequence {
    /// The empty sequence (length 0). Used as the root prefix of the
    /// partitioning schemes.
    pub fn empty() -> Sequence {
        Sequence(Vec::new())
    }

    /// Builds a sequence from itemsets.
    pub fn new(itemsets: impl IntoIterator<Item = Itemset>) -> Sequence {
        Sequence(itemsets.into_iter().collect())
    }

    /// A 1-sequence `<(item)>`.
    pub fn single(item: Item) -> Sequence {
        Sequence(vec![Itemset::single(item)])
    }

    /// The paper's *length*: total number of item occurrences.
    ///
    /// ```
    /// use disc_core::parse_sequence;
    /// assert_eq!(parse_sequence("(a)(b)(c,d)(e)").unwrap().length(), 5);
    /// ```
    pub fn length(&self) -> usize {
        self.0.iter().map(Itemset::len).sum()
    }

    /// Number of transactions (itemsets).
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.0.len()
    }

    /// True when the sequence has no itemsets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The itemsets, in order.
    #[inline]
    pub fn itemsets(&self) -> &[Itemset] {
        &self.0
    }

    /// The `i`-th transaction.
    #[inline]
    pub fn itemset(&self, i: usize) -> &Itemset {
        &self.0[i]
    }

    /// The last transaction, if any.
    #[inline]
    pub fn last_itemset(&self) -> Option<&Itemset> {
        self.0.last()
    }

    /// The last element of the flattened representation: the max item of the
    /// last transaction. `None` for the empty sequence.
    pub fn last_flat_item(&self) -> Option<Item> {
        self.0.last().map(Itemset::max_item)
    }

    /// Iterates the flattened `(item, transaction-number)` representation of
    /// Section 2, with 1-based transaction numbers:
    ///
    /// ```
    /// use disc_core::{parse_sequence, Item};
    /// let s = parse_sequence("(a)(b)(c,d)(e)").unwrap();
    /// let flat: Vec<(Item, u32)> = s.flat_iter().collect();
    /// let no: Vec<u32> = flat.iter().map(|&(_, n)| n).collect();
    /// assert_eq!(no, [1, 2, 3, 3, 4]);
    /// ```
    pub fn flat_iter(&self) -> impl Iterator<Item = (Item, u32)> + '_ {
        self.0
            .iter()
            .enumerate()
            .flat_map(|(t, set)| set.iter().map(move |item| (item, t as u32 + 1)))
    }

    /// The smallest item occurring anywhere in the sequence (the *minimum
    /// 1-sequence* of Section 3), with the index of the transaction holding
    /// its leftmost occurrence (the *minimum point*).
    pub fn min_item_with_point(&self) -> Option<(Item, usize)> {
        let mut best: Option<(Item, usize)> = None;
        for (t, set) in self.0.iter().enumerate() {
            let m = set.min_item();
            if best.is_none_or(|(b, _)| m < b) {
                best = Some((m, t));
            }
        }
        best
    }

    /// Index of the leftmost transaction containing `item` — the *minimum
    /// point* of the `<(item)>`-partition this sequence currently lives in
    /// (after reassignment the partition's λ need not be the sequence's
    /// minimum item).
    pub fn first_txn_containing(&self, item: Item) -> Option<usize> {
        self.0.iter().position(|set| set.contains(item))
    }

    /// The smallest item strictly greater than `after` occurring anywhere in
    /// the sequence, with its leftmost transaction index. Drives the
    /// first-level reassignment of Step 2.2.
    pub fn min_item_after(&self, after: Item) -> Option<(Item, usize)> {
        let mut best: Option<(Item, usize)> = None;
        for (t, set) in self.0.iter().enumerate() {
            // The first item > `after` in the sorted transaction.
            let idx = set.as_slice().partition_point(|&i| i <= after);
            if let Some(&m) = set.as_slice().get(idx) {
                if best.is_none_or(|(b, _)| m < b) {
                    best = Some((m, t));
                }
            }
        }
        best
    }

    /// The k-prefix: the first `k` elements of the flattened representation,
    /// as a sequence (Section 3.2: "the 3-prefix of `<(a)(a,g,h)(c)>` is
    /// `<(a)(a,g)>`").
    pub fn k_prefix(&self, k: usize) -> Sequence {
        debug_assert!(k <= self.length());
        let mut out = Vec::new();
        let mut remaining = k;
        for set in &self.0 {
            if remaining == 0 {
                break;
            }
            if set.len() <= remaining {
                out.push(set.clone());
                remaining -= set.len();
            } else {
                out.push(Itemset::from_sorted(set.as_slice()[..remaining].to_vec()));
                remaining = 0;
            }
        }
        Sequence(out)
    }

    /// Appends an extension element, producing `<self ⊕ e>`: either the item
    /// joins the last transaction (itemset extension; requires the item to be
    /// greater than the current last flat item) or opens a new one.
    pub fn extended(&self, e: ExtElem) -> Sequence {
        let mut v = self.0.clone();
        match e.mode {
            ExtMode::Itemset => {
                let last = v.pop().expect("itemset extension of an empty sequence");
                v.push(last.extended_with(e.item));
            }
            ExtMode::Sequence => v.push(Itemset::single(e.item)),
        }
        Sequence(v)
    }

    /// Appends an itemset as a new transaction, in place.
    pub fn push_itemset(&mut self, set: Itemset) {
        self.0.push(set);
    }

    /// All distinct items of the sequence, ascending.
    pub fn distinct_items(&self) -> Vec<Item> {
        let mut v: Vec<Item> = self.0.iter().flat_map(Itemset::iter).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Rebuilds the sequence keeping only item occurrences accepted by
    /// `keep(txn_index, item)`; empty transactions disappear.
    pub fn filtered(&self, mut keep: impl FnMut(usize, Item) -> bool) -> Sequence {
        let itemsets =
            self.0.iter().enumerate().filter_map(|(t, set)| set.filtered(|i| keep(t, i))).collect();
        Sequence(itemsets)
    }
}

impl PartialOrd for Sequence {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sequence {
    /// The paper's comparative order (Definition 2.2).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        crate::order::cmp_sequences(self, other)
    }
}

impl fmt::Display for Sequence {
    /// Formats like the paper: `(a, e, g)(b)(h)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "<>");
        }
        for set in &self.0 {
            write!(f, "{set}")?;
        }
        Ok(())
    }
}

impl FromIterator<Itemset> for Sequence {
    fn from_iter<T: IntoIterator<Item = Itemset>>(iter: T) -> Self {
        Sequence::new(iter)
    }
}

impl AsRef<Sequence> for Sequence {
    fn as_ref(&self) -> &Sequence {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    fn item(c: char) -> Item {
        Item::from_letter(c).unwrap()
    }

    #[test]
    fn length_counts_item_occurrences() {
        assert_eq!(seq("(a,e,g)(b)(h)(f)(c)(b,f)").length(), 9);
        assert_eq!(Sequence::empty().length(), 0);
    }

    #[test]
    fn flat_iter_numbers_transactions() {
        // Section 2's example: in <(a)(b)(c,d)(e)> the transaction numbers
        // are 1, 2, 3, 3, 4.
        let s = seq("(a)(b)(c,d)(e)");
        let flat: Vec<(Item, u32)> = s.flat_iter().collect();
        assert_eq!(
            flat,
            vec![(item('a'), 1), (item('b'), 2), (item('c'), 3), (item('d'), 3), (item('e'), 4)]
        );
    }

    #[test]
    fn min_item_and_point() {
        // CID 2 of Table 6: (b)(a)(f)(a,c,e,g) — min item a, leftmost in txn 1 (index 1).
        let s = seq("(b)(a)(f)(a,c,e,g)");
        assert_eq!(s.min_item_with_point(), Some((item('a'), 1)));
        assert_eq!(s.min_item_after(item('a')), Some((item('b'), 0)));
        assert_eq!(s.min_item_after(item('f')), Some((item('g'), 3)));
        assert_eq!(s.min_item_after(item('g')), None);
    }

    #[test]
    fn first_txn_containing_is_the_minimum_point() {
        let s = seq("(b)(a)(f)(a,c,e,g)");
        assert_eq!(s.first_txn_containing(item('a')), Some(1));
        assert_eq!(s.first_txn_containing(item('b')), Some(0));
        assert_eq!(s.first_txn_containing(item('g')), Some(3));
        assert_eq!(s.first_txn_containing(item('z')), None);
    }

    #[test]
    fn k_prefix_truncates_flattened_form() {
        // Paper: the 3-prefix of <(a)(a,g,h)(c)> is <(a)(a,g)>.
        let s = seq("(a)(a,g,h)(c)");
        assert_eq!(s.k_prefix(3), seq("(a)(a,g)"));
        assert_eq!(s.k_prefix(4), seq("(a)(a,g,h)"));
        assert_eq!(s.k_prefix(1), seq("(a)"));
        assert_eq!(s.k_prefix(0), Sequence::empty());
    }

    #[test]
    fn extension_elements() {
        let s = seq("(a)(a,e)");
        let i_ext = s.extended(ExtElem { item: item('g'), mode: ExtMode::Itemset });
        assert_eq!(i_ext, seq("(a)(a,e,g)"));
        let s_ext = s.extended(ExtElem { item: item('c'), mode: ExtMode::Sequence });
        assert_eq!(s_ext, seq("(a)(a,e)(c)"));
    }

    #[test]
    fn ext_elem_order_prefers_small_item_then_itemset_mode() {
        let a_i = ExtElem { item: item('a'), mode: ExtMode::Itemset };
        let a_s = ExtElem { item: item('a'), mode: ExtMode::Sequence };
        let b_i = ExtElem { item: item('b'), mode: ExtMode::Itemset };
        assert!(a_i < a_s);
        assert!(a_s < b_i);
    }

    #[test]
    fn display_roundtrip() {
        let s = seq("(a, e, g)(b)(h)");
        assert_eq!(s.to_string(), "(a, e, g)(b)(h)");
        assert_eq!(Sequence::empty().to_string(), "<>");
    }

    #[test]
    fn distinct_items_sorted() {
        let s = seq("(f)(a,g)(b,f,h)(b,f)");
        let letters: String = s.distinct_items().iter().map(|i| i.as_letter().unwrap()).collect();
        assert_eq!(letters, "abfgh");
    }

    #[test]
    fn filtered_removes_occurrences() {
        // Table 6 -> Table 7: CID 1 (a,d)(d)(a,g,h)(c) reduced to (a)(a,g,h)(c).
        let s = seq("(a,d)(d)(a,g,h)(c)");
        let reduced = s.filtered(|_, i| i != item('d'));
        assert_eq!(reduced, seq("(a)(a,g,h)(c)"));
    }
}
