//! # disc-core
//!
//! Data model and shared infrastructure for the reproduction of *"An Efficient
//! Algorithm for Mining Frequent Sequences by a New Strategy without Support
//! Counting"* (Chiu, Wu, Chen — ICDE 2004).
//!
//! This crate defines the problem domain of sequential pattern mining in the
//! Agrawal–Srikant sense:
//!
//! * an [`Item`] is an opaque identifier (e.g. a product);
//! * an [`Itemset`] is a non-empty, duplicate-free, sorted set of items — one
//!   transaction of a customer;
//! * a [`Sequence`] is an ordered list of itemsets — a customer's purchase
//!   history, or a pattern to mine;
//! * a [`SequenceDatabase`] is a collection of customer sequences.
//!
//! On top of the model it provides the machinery every miner in the workspace
//! shares:
//!
//! * the paper's **comparative order** on sequences ([`order`]) — Definitions
//!   2.1 and 2.2, a total order on the flattened `(item, transaction-number)`
//!   representation;
//! * subsequence **containment and leftmost embeddings** ([`embed`]);
//! * reference implementations of the **k-minimum subsequence** operators
//!   ([`kmin`]) — Definitions 2.3 and 2.5 — used as ground truth for the fast
//!   implementations in `disc-algo`;
//! * the [`SequentialMiner`] trait, [`MinSupport`] thresholds, and the
//!   [`MiningResult`] container with exact support counts;
//! * a [`BruteForce`] reference miner used to validate every other algorithm.
//!
//! ## Quick example
//!
//! ```
//! use disc_core::{parse_sequence, SequenceDatabase, MinSupport, SequentialMiner, BruteForce};
//!
//! // Table 1 of the paper.
//! let db = SequenceDatabase::from_parsed(&[
//!     "(a,e,g)(b)(h)(f)(c)(b,f)",
//!     "(b)(d,f)(e)",
//!     "(b,f,g)",
//!     "(f)(a,g)(b,f,h)(b,f)",
//! ]).unwrap();
//!
//! let result = BruteForce::default().mine(&db, MinSupport::Count(2));
//! let pat = parse_sequence("(a,g)(b)(f)").unwrap();
//! assert_eq!(result.support_of(&pat), Some(2));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod checkpoint;
pub mod codec;
pub mod compact;
pub mod constraints;
pub mod database;
pub mod embed;
pub mod error;
pub mod executor;
pub mod flat;
pub mod flatfile;
pub mod guard;
pub mod item;
pub mod itemset;
pub mod kmin;
pub mod miner;
pub mod mmap;
pub mod order;
pub mod packed;
pub mod parse;
pub mod result;
pub mod sequence;
pub mod simd;
pub mod storage;
pub mod store;
pub mod support;
pub mod topk;

pub use bruteforce::BruteForce;
pub use checkpoint::{
    database_fingerprint, peek_progress, read_snapshot, write_snapshot, write_snapshot_view,
    CheckpointError, MiningSnapshot, SnapshotProgress, SnapshotView,
};
#[cfg(any(test, feature = "fault-injection"))]
pub use checkpoint::{write_snapshot_crashing, CheckpointCrash};
pub use codec::{decode_database, encode_database, CodecError};
pub use compact::ItemMapping;
pub use constraints::TimeConstraints;
pub use database::{CustomerId, CustomerSequence, SequenceDatabase};
pub use embed::{contains, leftmost_embedding, leftmost_match_end, MatchPoint};
pub use error::{DiscError, ParseError};
pub use executor::{ParallelExecutor, ParallelRun, TaskOutcome};
pub use flat::{flat_pairs, FlatArena, FlatDb, FlatKey, FlatSeq, SeqKey, SeqView};
#[cfg(any(test, feature = "fault-injection"))]
pub use flatfile::write_flat_file_faulted;
pub use flatfile::{
    decode_flat_file, encode_database_flat_file, encode_flat_file, open_flat_file,
    peek_flat_file_fingerprint, write_flat_file, FlatFileContents, Verify, FLAT_FILE_MAGIC,
    FLAT_FILE_NAME,
};
pub use guard::{
    fresh_retry_salt, is_transient_io_kind, is_transient_net_kind, retry_transient, run_guarded,
    AbortReason, BudgetSnapshot, CancelToken, FallbackMiner, GuardStats, GuardedResult, MineGuard,
    MineOutcome, ResourceBudget, RetryPolicy, SharedCounters, StageReport,
};
#[cfg(any(test, feature = "fault-injection"))]
pub use guard::{FaultPlan, IoFault, IoWriter};
pub use item::Item;
pub use itemset::{is_sorted_subset, Itemset};
pub use kmin::{all_k_subsequences, min_k_subsequence_naive};
pub use miner::SequentialMiner;
pub use mmap::{Advice, Mmap};
pub use order::{cmp_sequences, cmp_views, differential_point};
pub use packed::{
    fits_packed_budget, pack_pair, unpack_pair, PackedDb, PackedKey, PackedSeq, MAX_PACKED_ITEM,
    MAX_PACKED_TXNS, PACKED_ITEM_BITS, PACKED_TXN_BITS,
};
pub use parse::{parse_item, parse_sequence};
pub use result::MiningResult;
pub use sequence::{ExtElem, ExtMode, Sequence};
pub use simd::{dispatch_level, DispatchLevel};
pub use storage::{ColumnWord, DbStorage, MappedCol};
pub use store::fsck::{fsck, FsckReport, SegmentStatus, SnapshotStatus};
pub use store::{
    CompactionReport, RecoveryReport, SequenceStore, StoreConfig, StoreError, SyncPolicy,
};
pub use support::{support_count, MinSupport};
pub use topk::TopK;
