//! The [`Itemset`] type: one transaction's set of items.

use crate::item::Item;
use std::fmt;

/// A non-empty, sorted, duplicate-free set of items — one transaction.
///
/// The sorted invariant is what makes the paper's flattened
/// `(item, transaction-number)` representation well-defined: within a
/// transaction, items are enumerated in ascending (alphabetical) order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Itemset(Vec<Item>);

impl Itemset {
    /// Builds an itemset from arbitrary items, sorting and deduplicating.
    ///
    /// Returns `None` for an empty input: empty transactions are not part of
    /// the model.
    pub fn new(items: impl IntoIterator<Item = Item>) -> Option<Itemset> {
        let mut v: Vec<Item> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            None
        } else {
            Some(Itemset(v))
        }
    }

    /// Builds a singleton itemset.
    pub fn single(item: Item) -> Itemset {
        Itemset(vec![item])
    }

    /// Builds from a vector that is already sorted and duplicate-free.
    ///
    /// This is the hot-path constructor used by the miners; the invariant is
    /// checked in debug builds only.
    pub fn from_sorted(items: Vec<Item>) -> Itemset {
        debug_assert!(!items.is_empty(), "itemsets must be non-empty");
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "itemsets must be sorted and duplicate-free: {items:?}"
        );
        Itemset(items)
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Itemsets are never empty, but `clippy` insists on the pair.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: Item) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// `self ⊆ other`, via a linear merge over the two sorted slices.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_sorted_subset(&self.0, &other.0)
    }

    /// Iterates the items in ascending order.
    #[inline]
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Item>> {
        self.0.iter().copied()
    }

    /// The sorted items as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Item] {
        &self.0
    }

    /// Smallest item.
    #[inline]
    pub fn min_item(&self) -> Item {
        self.0[0]
    }

    /// Largest item (the "last item" in the flattened representation).
    #[inline]
    pub fn max_item(&self) -> Item {
        *self.0.last().expect("itemsets are non-empty")
    }

    /// Returns a copy extended with `item`, which must be larger than
    /// [`Itemset::max_item`] so the extension appends at the end of the
    /// flattened representation (the itemset-extension used throughout the
    /// paper's algorithms).
    pub fn extended_with(&self, item: Item) -> Itemset {
        debug_assert!(item > self.max_item(), "itemset extension must append past the max item");
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(item);
        Itemset(v)
    }

    /// Returns a copy with `item` inserted at its sorted position (no-op when
    /// already present).
    pub fn inserted(&self, item: Item) -> Itemset {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, item);
                Itemset(v)
            }
        }
    }

    /// Retains only items satisfying the predicate; returns `None` when
    /// nothing survives.
    pub fn filtered(&self, mut keep: impl FnMut(Item) -> bool) -> Option<Itemset> {
        let v: Vec<Item> = self.0.iter().copied().filter(|&i| keep(i)).collect();
        if v.is_empty() {
            None
        } else {
            Some(Itemset(v))
        }
    }
}

/// `a ⊆ b` for sorted duplicate-free slices — the raw-slice form of
/// [`Itemset::is_subset_of`], for callers walking flat storage.
///
/// Delegates to the dispatched kernel in [`crate::simd`]; the portable
/// reference loop lives in [`crate::simd::scalar::is_sorted_subset_u32`].
#[inline]
pub fn is_sorted_subset(a: &[Item], b: &[Item]) -> bool {
    crate::simd::is_sorted_subset_items(a, b)
}

impl fmt::Display for Itemset {
    /// Formats like the paper: `(a, e, g)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, ")")
    }
}

impl<'a> IntoIterator for &'a Itemset {
    type Item = Item;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Item>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn its(s: &str) -> Itemset {
        Itemset::new(s.chars().map(|c| Item::from_letter(c).unwrap())).unwrap()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let set = Itemset::new([Item(3), Item(1), Item(3), Item(2)]).unwrap();
        assert_eq!(set.as_slice(), &[Item(1), Item(2), Item(3)]);
        assert!(Itemset::new([]).is_none());
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(its("gea").to_string(), "(a, e, g)");
        assert_eq!(Itemset::single(Item(1)).to_string(), "(b)");
    }

    #[test]
    fn subset_relation() {
        assert!(its("ag").is_subset_of(&its("aeg")));
        assert!(its("a").is_subset_of(&its("a")));
        assert!(!its("ab").is_subset_of(&its("aeg")));
        assert!(!its("aeg").is_subset_of(&its("ag")));
        assert!(its("g").is_subset_of(&its("aeg")));
    }

    #[test]
    fn min_max_and_extension() {
        let set = its("be");
        assert_eq!(set.min_item(), Item::from_letter('b').unwrap());
        assert_eq!(set.max_item(), Item::from_letter('e').unwrap());
        let ext = set.extended_with(Item::from_letter('h').unwrap());
        assert_eq!(ext.to_string(), "(b, e, h)");
    }

    #[test]
    fn inserted_keeps_sorted() {
        let set = its("bh");
        assert_eq!(set.inserted(Item::from_letter('e').unwrap()).to_string(), "(b, e, h)");
        assert_eq!(set.inserted(Item::from_letter('b').unwrap()).to_string(), "(b, h)");
        assert_eq!(set.inserted(Item::from_letter('a').unwrap()).to_string(), "(a, b, h)");
    }

    #[test]
    fn filtered_drops_items() {
        let set = its("aeg");
        let f = set.filtered(|i| i != Item::from_letter('e').unwrap()).unwrap();
        assert_eq!(f.to_string(), "(a, g)");
        assert!(set.filtered(|_| false).is_none());
    }

    #[test]
    fn contains_uses_order() {
        let set = its("aeg");
        assert!(set.contains(Item::from_letter('e').unwrap()));
        assert!(!set.contains(Item::from_letter('b').unwrap()));
    }
}
