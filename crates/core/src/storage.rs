//! Column storage for the flat and packed databases: heap-owned or
//! mmap-borrowed.
//!
//! [`crate::flat::FlatDb`] and [`crate::packed::PackedDb`] are plain CSR
//! column triples. Mining kernels never see the columns directly — they
//! work on [`crate::flat::FlatSeq`] / [`crate::packed::PackedSeq`] slice
//! views — so the *ownership* of a column is the only thing that needs to
//! vary between an in-memory build and a zero-copy load from a
//! [`crate::flatfile`] mapping. [`DbStorage`] is that variation point: a
//! column is either an owned `Vec<T>` or a typed window into a shared
//! [`Mmap`]. Both deref to `&[T]`, so every kernel is monomorphized over
//! the same slice code for both backends, with zero per-call copies.
//!
//! The mapped variant reinterprets file bytes in place, which is only
//! sound for types a raw byte pattern cannot invalidate. The sealed
//! [`ColumnWord`] trait whitelists exactly the column element types the
//! on-disk format stores: `u32` and [`Item`] (`#[repr(transparent)]` over
//! `u32`). Alignment is checked at construction — the DSCFD1 writer
//! page-aligns every section, and `mmap` bases are page-aligned, so the
//! check only fails on a hand-built file.

use crate::item::Item;
use crate::mmap::Mmap;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

mod sealed {
    /// Seals [`super::ColumnWord`]: only types whose every bit pattern is a
    /// valid value, with no padding and a known layout, may be mapped.
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for crate::item::Item {}
}

/// Element types that may back a mapped column. Implemented for `u32` and
/// [`Item`] only; both are 4-byte, alignment-4, padding-free types for
/// which every bit pattern is valid, so reinterpreting mapped file bytes
/// as a slice of them is sound once alignment and bounds are checked.
pub trait ColumnWord: sealed::Sealed + Copy + 'static {}

impl ColumnWord for u32 {}
impl ColumnWord for Item {}

/// A typed window into a shared read-only mapping: `len` elements of `T`
/// starting `byte_offset` bytes into the file.
#[derive(Debug, Clone)]
pub struct MappedCol<T: ColumnWord> {
    map: Arc<Mmap>,
    byte_offset: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: ColumnWord> MappedCol<T> {
    /// Creates a window over `map`. Returns `None` when the byte range is
    /// out of bounds or misaligned for `T` — the flat-file loader turns
    /// that into a typed corruption error.
    pub fn new(map: Arc<Mmap>, byte_offset: usize, len: usize) -> Option<MappedCol<T>> {
        let byte_len = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(byte_len)?;
        if end > map.len() {
            return None;
        }
        let ptr = map.bytes().as_ptr() as usize + byte_offset;
        if !ptr.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(MappedCol { map, byte_offset, len, _marker: PhantomData })
    }

    /// The elements, reinterpreted in place from the mapping.
    #[inline]
    fn as_slice(&self) -> &[T] {
        cast::slice(&self.map.bytes()[self.byte_offset..], self.len)
    }
}

#[allow(unsafe_code)]
mod cast {
    //! The one unsafe reinterpretation, quarantined (the crate is
    //! `deny(unsafe_code)` elsewhere).

    /// Reinterprets the front of `bytes` as `len` elements of `T`.
    ///
    /// Callers guarantee (checked in [`super::MappedCol::new`]): the byte
    /// range covers `len * size_of::<T>()` bytes and the base pointer is
    /// aligned for `T`. `T: ColumnWord` guarantees every bit pattern is a
    /// valid `T`, so no byte content can make this undefined behavior.
    #[inline]
    pub(super) fn slice<T: super::ColumnWord>(bytes: &[u8], len: usize) -> &[T] {
        debug_assert!(len * std::mem::size_of::<T>() <= bytes.len());
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: range and alignment established above; `ColumnWord` is
        // sealed to padding-free, any-bit-pattern-valid 4-byte types; the
        // borrow is tied to `bytes`, which borrows the `Arc<Mmap>` keeping
        // the mapping alive.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, len) }
    }
}

/// One database column: heap-owned (built in memory) or a borrowed window
/// into a memory-mapped flat file. Deref yields `&[T]` either way — the
/// storage split is invisible past construction.
#[derive(Debug, Clone)]
pub enum DbStorage<T: ColumnWord> {
    /// A column built (or decoded) on the heap.
    Owned(Vec<T>),
    /// A column borrowed zero-copy from a [`Mmap`] window.
    Mapped(MappedCol<T>),
}

impl<T: ColumnWord> DbStorage<T> {
    /// Whether this column borrows from a mapping (diagnostics only).
    pub fn is_mapped(&self) -> bool {
        matches!(self, DbStorage::Mapped(_))
    }
}

impl<T: ColumnWord> Deref for DbStorage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            DbStorage::Owned(v) => v,
            DbStorage::Mapped(m) => m.as_slice(),
        }
    }
}

impl<T: ColumnWord> From<Vec<T>> for DbStorage<T> {
    fn from(v: Vec<T>) -> DbStorage<T> {
        DbStorage::Owned(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_column_derefs_to_its_vec() {
        let col: DbStorage<u32> = vec![1, 2, 3].into();
        assert_eq!(&col[..], &[1, 2, 3]);
        assert!(!col.is_mapped());
    }

    #[test]
    fn mapped_column_reads_file_words_in_place() {
        let dir = std::env::temp_dir().join(format!("disc-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.bin");
        let words: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::File::create(&path).unwrap().write_all(&bytes).unwrap();

        let map = Arc::new(Mmap::open(&path).unwrap());
        let col =
            DbStorage::Mapped(MappedCol::<u32>::new(Arc::clone(&map), 0, words.len()).unwrap());
        assert_eq!(&col[..], &words[..]);
        assert!(col.is_mapped());

        // Item columns share the representation.
        let items = DbStorage::Mapped(
            MappedCol::<Item>::new(Arc::clone(&map), 4, words.len() - 1).unwrap(),
        );
        assert_eq!(items[0], Item(words[1]));

        // Out-of-bounds and misaligned windows are rejected.
        assert!(MappedCol::<u32>::new(Arc::clone(&map), 0, words.len() + 1).is_none());
        assert!(MappedCol::<u32>::new(Arc::clone(&map), 2, 1).is_none());
        assert!(MappedCol::<u32>::new(Arc::clone(&map), bytes.len(), 1).is_none());
        // A zero-length window at EOF is fine.
        assert!(MappedCol::<u32>::new(map, bytes.len(), 0).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
