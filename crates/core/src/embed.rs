//! Subsequence containment and leftmost embeddings.
//!
//! A sequence `A = <A₁…Aₙ>` is contained in `B = <B₁…Bₘ>` when there are
//! transaction indices `j₁ < j₂ < … < jₙ` with `Aᵢ ⊆ B_{jᵢ}`. The *leftmost*
//! embedding is the one produced by greedily matching each pattern itemset in
//! the earliest possible transaction; the exchange argument shows it exists
//! whenever any embedding does, and that it minimizes every `jᵢ`
//! simultaneously — in particular the *matching point* (the position of the
//! pattern's last item), which is what the Apriori-KMS algorithm (Fig. 5)
//! relies on.

use crate::flat::SeqView;
use crate::itemset::{is_sorted_subset, Itemset};
use crate::sequence::Sequence;

/// Where the leftmost embedding of a pattern ends inside a customer sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchPoint {
    /// Index (0-based) of the transaction matching the pattern's last itemset.
    pub txn: usize,
    /// Index within that transaction of the item matching the pattern's last
    /// flattened item (the max item of the last pattern itemset).
    pub item_idx: usize,
}

/// Finds the earliest transaction of `hay` at index `>= from` containing
/// `needle` as a subset.
fn find_txn_containing(hay: &Sequence, from: usize, needle: &Itemset) -> Option<usize> {
    hay.itemsets()
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, set)| needle.is_subset_of(set))
        .map(|(t, _)| t)
}

/// Tests whether `pat ⊆ hay` (the paper's "contains"/"supports" relation).
///
/// The empty pattern is contained in everything.
///
/// ```
/// use disc_core::{contains, parse_sequence};
/// let hay = parse_sequence("(a,e,g)(b)(h)(f)(c)(b,f)").unwrap();
/// assert!(contains(&hay, &parse_sequence("(a,g)(b)(f)").unwrap()));
/// assert!(!contains(&hay, &parse_sequence("(b)(a)").unwrap()));
/// ```
pub fn contains(hay: &Sequence, pat: &Sequence) -> bool {
    leftmost_embedding(hay, pat).is_some()
}

/// Computes the leftmost embedding of `pat` in `hay`: the transaction index
/// matched by each pattern itemset, or `None` when `pat ⊄ hay`.
pub fn leftmost_embedding(hay: &Sequence, pat: &Sequence) -> Option<Vec<usize>> {
    let mut out = Vec::with_capacity(pat.n_transactions());
    let mut from = 0usize;
    for set in pat.itemsets() {
        let t = find_txn_containing(hay, from, set)?;
        out.push(t);
        from = t + 1;
    }
    Some(out)
}

/// The matching point of the leftmost embedding (Fig. 5, step 5): the
/// position in `hay` of the pattern's last flattened item.
///
/// Returns `None` when `pat ⊄ hay` or when `pat` is empty.
pub fn leftmost_match_end(hay: &Sequence, pat: &Sequence) -> Option<MatchPoint> {
    let embedding = leftmost_embedding(hay, pat)?;
    let &txn = embedding.last()?;
    let last_item = pat.last_itemset()?.max_item();
    let item_idx = hay
        .itemset(txn)
        .as_slice()
        .binary_search(&last_item)
        .expect("embedding guarantees membership");
    Some(MatchPoint { txn, item_idx })
}

/// The transaction index where the leftmost embedding of `pat` ends, or
/// `None` when not contained. For the empty pattern this is a virtual
/// position before the first transaction, encoded as `None` ↦ callers treat
/// the empty pattern specially via [`leftmost_end_txn_or_start`].
pub fn leftmost_end_txn(hay: &Sequence, pat: &Sequence) -> Option<usize> {
    leftmost_embedding(hay, pat).and_then(|e| e.last().copied())
}

/// Like [`leftmost_end_txn`], but maps the empty pattern to "ends before
/// transaction 0" (`Some(usize::MAX)` would be wrong; we return an
/// `EmbeddingEnd` instead).
pub fn leftmost_end_txn_or_start(hay: &Sequence, pat: &Sequence) -> Option<EmbeddingEnd> {
    view_leftmost_end(hay, pat.itemsets())
}

/// Allocation-free generic form of [`leftmost_end_txn_or_start`]: where the
/// leftmost embedding of the pattern `pat_sets` ends inside the view `hay`,
/// or `None` when not contained. Tracks only the last matched transaction —
/// no embedding vector is built — so the mining hot loops call it per member
/// without touching the heap.
pub fn view_leftmost_end<'a, S: SeqView<'a>>(hay: S, pat_sets: &[Itemset]) -> Option<EmbeddingEnd> {
    let mut from = 0usize;
    let mut end = EmbeddingEnd::BeforeStart;
    for set in pat_sets {
        let n = hay.n_transactions();
        let t = (from..n).find(|&t| is_sorted_subset(set.as_slice(), hay.itemset_items(t)))?;
        end = EmbeddingEnd::At(t);
        from = t + 1;
    }
    Some(end)
}

/// [`contains`] generalized over [`SeqView`]s.
pub fn view_contains<'a, S: SeqView<'a>>(hay: S, pat: &Sequence) -> bool {
    view_leftmost_end(hay, pat.itemsets()).is_some()
}

/// Where an embedding of a (possibly empty) pattern ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbeddingEnd {
    /// The empty pattern "ends" before the first transaction, so the next
    /// pattern itemset may match any transaction.
    BeforeStart,
    /// The last pattern itemset matched this transaction index.
    At(usize),
}

impl EmbeddingEnd {
    /// First transaction index a *strictly later* itemset may match.
    pub fn next_txn(self) -> usize {
        match self {
            EmbeddingEnd::BeforeStart => 0,
            EmbeddingEnd::At(t) => t + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sequence;

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn containment_basics() {
        let hay = seq("(a,e,g)(b)(h)(f)(c)(b,f)");
        assert!(contains(&hay, &seq("(a)(b)(b)")));
        assert!(contains(&hay, &seq("(a,g)(h)(f)")));
        assert!(contains(&hay, &seq("(e)(b,f)")));
        assert!(!contains(&hay, &seq("(b)(a)")));
        assert!(!contains(&hay, &seq("(a,b)")));
        assert!(contains(&hay, &Sequence::empty()));
    }

    #[test]
    fn itemsets_must_match_distinct_transactions() {
        let hay = seq("(a,b)");
        assert!(contains(&hay, &seq("(a,b)")));
        assert!(!contains(&hay, &seq("(a)(b)")));
    }

    #[test]
    fn leftmost_embedding_is_greedy() {
        // CID 4 of Table 1: (f)(a,g)(b,f,h)(b,f); pattern <(b)(b)> embeds at txns 2,3.
        let hay = seq("(f)(a,g)(b,f,h)(b,f)");
        assert_eq!(leftmost_embedding(&hay, &seq("(b)(b)")), Some(vec![2, 3]));
        assert_eq!(leftmost_embedding(&hay, &seq("(f)(f)(f)")), Some(vec![0, 2, 3]));
        assert_eq!(leftmost_embedding(&hay, &seq("(a,g)(b,f)")), Some(vec![1, 2]));
        assert_eq!(leftmost_embedding(&hay, &seq("(h)(h)")), None);
    }

    #[test]
    fn match_end_points_at_last_pattern_item() {
        // Example 3.3: matching <(a)(a,g)> on (a)(a,g,h)(c): matching point is
        // item g in the second transaction (index 1, item index 1).
        let hay = seq("(a)(a,g,h)(c)");
        let mp = leftmost_match_end(&hay, &seq("(a)(a,g)")).unwrap();
        assert_eq!(mp, MatchPoint { txn: 1, item_idx: 1 });

        // No match of <(a)(a,e)> on CID 1.
        assert_eq!(leftmost_match_end(&hay, &seq("(a)(a,e)")), None);
    }

    #[test]
    fn match_end_of_empty_pattern_is_none() {
        let hay = seq("(a)(b)");
        assert_eq!(leftmost_match_end(&hay, &Sequence::empty()), None);
        assert_eq!(
            leftmost_end_txn_or_start(&hay, &Sequence::empty()),
            Some(EmbeddingEnd::BeforeStart)
        );
    }

    #[test]
    fn greedy_minimizes_end_transaction() {
        // <(b,f)> occurs in txns 2 and 3; leftmost must pick 2.
        let hay = seq("(f)(a,g)(b,f,h)(b,f)");
        assert_eq!(leftmost_end_txn(&hay, &seq("(b,f)")), Some(2));
        let mp = leftmost_match_end(&hay, &seq("(b,f)")).unwrap();
        assert_eq!(mp.txn, 2);
        assert_eq!(mp.item_idx, 1); // f within (b,f,h)
    }
}
