//! Item-id compaction.
//!
//! The miners follow the paper in using **dense arrays indexed by item id**
//! (counting arrays, frequency masks, SPAM's per-item bitmaps), which is the
//! right layout for Quest-style catalogs but hostile to sparse id spaces —
//! a database mentioning item `4_000_000_000` would allocate gigabytes of
//! counters. [`ItemMapping`] bijectively remaps the items actually present
//! onto `0..n` and translates results back, preserving the comparative
//! order (the mapping is monotone), so mining a compacted database yields
//! exactly the original patterns after [`ItemMapping::restore_result`].

use crate::database::SequenceDatabase;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::result::MiningResult;
use crate::sequence::Sequence;

/// A monotone bijection between the original item ids and `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemMapping {
    /// Sorted original ids; index = compact id.
    originals: Vec<Item>,
}

impl ItemMapping {
    /// Builds the mapping for a database **without** copying it — one scan
    /// over the items, no remapped rows. Callers that find
    /// [`is_identity`](ItemMapping::is_identity) or decide the mapping is
    /// not [worthwhile](ItemMapping::is_worthwhile) can mine the original
    /// database directly and skip the copy entirely.
    pub fn analyze(db: &SequenceDatabase) -> ItemMapping {
        let mut originals: Vec<Item> =
            db.sequences().flat_map(|s| s.itemsets().iter().flat_map(|set| set.iter())).collect();
        originals.sort_unstable();
        originals.dedup();
        ItemMapping { originals }
    }

    /// Builds the mapping for a database and returns the compacted copy.
    ///
    /// When the ids are already dense from 0 the mapping is the identity
    /// and the "copy" is a plain clone — no per-item remapping work.
    pub fn compact(db: &SequenceDatabase) -> (ItemMapping, SequenceDatabase) {
        let mapping = ItemMapping::analyze(db);
        let compacted = mapping.remap_database(db);
        (mapping, compacted)
    }

    /// Rewrites a database onto compact ids. The database must be the one
    /// (or a sub-database of the one) this mapping was
    /// [analyzed](ItemMapping::analyze) from. Identity mappings clone
    /// instead of remapping item by item.
    pub fn remap_database(&self, db: &SequenceDatabase) -> SequenceDatabase {
        if self.is_identity() {
            return db.clone();
        }
        SequenceDatabase::from_rows(db.rows().iter().map(|row| {
            (row.cid, map_sequence(&row.sequence, |i| self.to_compact(i).expect("item seen")))
        }))
    }

    /// Rebuilds a mapping from its sorted original-id column — the
    /// [`crate::flatfile`] dictionary section round-trip. `originals` must
    /// be strictly ascending (the encoder wrote it from a valid mapping;
    /// the loader validates before calling).
    pub fn from_originals(originals: Vec<Item>) -> ItemMapping {
        debug_assert!(originals.windows(2).all(|w| w[0] < w[1]), "dictionary must be ascending");
        ItemMapping { originals }
    }

    /// The sorted original-id column (index = compact id) — the
    /// [`crate::flatfile`] dictionary section's encoding surface.
    pub fn originals(&self) -> &[Item] {
        &self.originals
    }

    /// Number of distinct items (the compact id space is `0..len`).
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// True when the database had no items.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// Original id → compact id.
    pub fn to_compact(&self, item: Item) -> Option<Item> {
        self.originals.binary_search(&item).ok().map(|i| Item(i as u32))
    }

    /// Compact id → original id.
    pub fn to_original(&self, item: Item) -> Option<Item> {
        self.originals.get(item.id() as usize).copied()
    }

    /// Is compaction a no-op (ids already dense from 0)?
    pub fn is_identity(&self) -> bool {
        self.originals.iter().enumerate().all(|(i, item)| item.id() as usize == i)
    }

    /// Would compaction save meaningful allocation? True when the max id is
    /// much larger than the number of distinct items.
    pub fn is_worthwhile(&self) -> bool {
        match self.originals.last() {
            None => false,
            Some(max) => (max.id() as usize) >= self.originals.len().saturating_mul(4).max(1024),
        }
    }

    /// Translates a compact-id sequence back to original ids.
    pub fn restore_sequence(&self, seq: &Sequence) -> Sequence {
        map_sequence(seq, |i| self.to_original(i).expect("compact id in range"))
    }

    /// Translates a whole mining result back to original ids.
    pub fn restore_result(&self, result: &MiningResult) -> MiningResult {
        result.iter().map(|(p, s)| (self.restore_sequence(p), s)).collect()
    }
}

fn map_sequence(seq: &Sequence, mut f: impl FnMut(Item) -> Item) -> Sequence {
    Sequence::new(seq.itemsets().iter().map(|set| {
        // A monotone map keeps itemsets sorted.
        Itemset::from_sorted(set.iter().map(&mut f).collect())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForce;
    use crate::miner::SequentialMiner;
    use crate::parse::parse_sequence;
    use crate::support::MinSupport;

    fn sparse_db() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(10, 4000000)(999999999)",
            "(10)(4000000, 999999999)",
            "(10)(999999999)",
        ])
        .unwrap()
    }

    #[test]
    fn compaction_is_monotone_and_dense() {
        let (mapping, compacted) = ItemMapping::compact(&sparse_db());
        assert_eq!(mapping.len(), 3);
        assert_eq!(compacted.max_item(), Some(Item(2)));
        assert_eq!(mapping.to_compact(Item(10)), Some(Item(0)));
        assert_eq!(mapping.to_compact(Item(4_000_000)), Some(Item(1)));
        assert_eq!(mapping.to_compact(Item(999_999_999)), Some(Item(2)));
        assert_eq!(mapping.to_compact(Item(11)), None);
        assert_eq!(mapping.to_original(Item(1)), Some(Item(4_000_000)));
        assert!(mapping.is_worthwhile());
        assert!(!mapping.is_identity());
    }

    #[test]
    fn mining_commutes_with_compaction() {
        let db = sparse_db();
        let (mapping, compacted) = ItemMapping::compact(&db);
        let direct = BruteForce::default().mine(&db, MinSupport::Count(2));
        let via_compact =
            mapping.restore_result(&BruteForce::default().mine(&compacted, MinSupport::Count(2)));
        assert!(direct.diff(&via_compact).is_empty());
        assert_eq!(via_compact.support_of(&parse_sequence("(10)(999999999)").unwrap()), Some(3));
    }

    #[test]
    fn identity_detection() {
        let db = SequenceDatabase::from_parsed(&["(a, b)(c)"]).unwrap();
        let (mapping, compacted) = ItemMapping::compact(&db);
        assert!(mapping.is_identity());
        assert!(!mapping.is_worthwhile());
        assert_eq!(db, compacted);
    }

    #[test]
    fn analyze_matches_compact_mapping() {
        let db = sparse_db();
        let analyzed = ItemMapping::analyze(&db);
        let (compacted_mapping, _) = ItemMapping::compact(&db);
        assert_eq!(analyzed, compacted_mapping);
        // A gapless id space analyzes to the identity without any copy.
        let dense = SequenceDatabase::from_parsed(&["(a)(b, c)", "(c)"]).unwrap();
        assert!(ItemMapping::analyze(&dense).is_identity());
    }

    #[test]
    fn empty_database() {
        let (mapping, compacted) = ItemMapping::compact(&SequenceDatabase::new());
        assert!(mapping.is_empty());
        assert!(compacted.is_empty());
        assert!(!mapping.is_worthwhile());
    }
}
