//! Read-only memory mapping of files, with no external dependencies.
//!
//! The [`crate::flatfile`] loader wants to hand the miners borrowed column
//! slices backed by the page cache instead of heap copies. The workspace
//! vendors no `libc`/`memmap` crate, so this module declares the three
//! syscalls it needs (`mmap`, `munmap`, `madvise`) directly — `std` already
//! links the platform C library on every Unix target — and wraps them in a
//! safe, owning [`Mmap`] handle.
//!
//! On non-Unix targets (or 32-bit Unix, where the raw `off_t` width is
//! configuration-dependent) the same [`Mmap`] API is backed by a plain heap
//! read of the file, so callers never need a platform split: the zero-copy
//! property degrades gracefully to a single copy.
//!
//! Soundness notes for the mapped backend:
//!
//! * mappings are `PROT_READ` + `MAP_PRIVATE`: nothing in this process can
//!   write through them, so `&[u8]` borrows of the mapping are never aliased
//!   by mutation from safe code;
//! * a concurrent writer to the *file* could still change mapped pages (the
//!   private copy-on-write snapshot is only taken per page, on first
//!   access). Every bit pattern is a valid `u8`/`u32`, so a torn read
//!   produces wrong *values*, never undefined behavior — and the flat-file
//!   loader's CRC verification bounds the damage to a typed decode error;
//! * the pointer and length are owned by the handle and unmapped exactly
//!   once, in `Drop`; [`Mmap::bytes`] borrows are tied to the handle's
//!   lifetime (callers share the handle via `Arc` to extend it).

use std::fs::File;
use std::io;
use std::path::Path;

/// Access-pattern hints forwarded to `madvise(2)`. On targets without the
/// syscall the hints are accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential access: read-ahead aggressively, drop behind.
    Sequential,
    /// Expect access soon: start faulting pages in now.
    WillNeed,
    /// Expect random access: disable read-ahead.
    Random,
}

#[cfg(all(unix, target_pointer_width = "64"))]
#[allow(unsafe_code)]
mod sys {
    //! The raw syscall surface, quarantined: this is the only module in the
    //! crate that may use `unsafe` (see the crate-level `deny(unsafe_code)`).
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    // Prototypes per POSIX; `std` links libc on every Unix target. The
    // 64-bit gate above makes `usize` == `size_t` and keeps `off_t` == i64
    // on every supported platform (LP64).
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    // Linux and the BSDs (incl. macOS) agree on these three values.
    const MADV_SEQUENTIAL: c_int = 2;
    const MADV_WILLNEED: c_int = 3;
    const MADV_RANDOM: c_int = 1;

    /// A live `mmap(2)` region. `len` is never 0 (zero-length maps are
    /// handled above this layer).
    #[derive(Debug)]
    pub(super) struct RawMap {
        ptr: *mut c_void,
        len: usize,
    }

    // The region is immutable shared memory with no thread affinity.
    #[allow(unsafe_code)]
    unsafe impl Send for RawMap {}
    #[allow(unsafe_code)]
    unsafe impl Sync for RawMap {}

    impl RawMap {
        pub(super) fn map(file: &std::fs::File, len: usize) -> std::io::Result<RawMap> {
            debug_assert!(len > 0, "zero-length maps are handled by the caller");
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of `len` bytes;
            // the fd stays open only for the duration of the call (POSIX
            // keeps the mapping valid after the fd closes). The returned
            // region is owned by `RawMap` and released exactly once.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(RawMap { ptr, len })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live read-only mapping of exactly `len`
            // bytes, valid for the lifetime of `self`; see the module docs
            // for why concurrent file writes cannot cause UB here.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        pub(super) fn advise(&self, advice: super::Advice) {
            let advice = match advice {
                super::Advice::Sequential => MADV_SEQUENTIAL,
                super::Advice::WillNeed => MADV_WILLNEED,
                super::Advice::Random => MADV_RANDOM,
            };
            // SAFETY: the region is owned and live; madvise is advisory and
            // its failure (e.g. on an exotic filesystem) is ignorable.
            let _ = unsafe { madvise(self.ptr, self.len, advice) };
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region this handle owns, once.
            let _ = unsafe { munmap(self.ptr, self.len) };
        }
    }
}

/// How the bytes are held: a real mapping where supported, a heap read
/// elsewhere. Zero-length files use `Heap(vec![])` everywhere (POSIX
/// `mmap` rejects `len == 0`).
#[derive(Debug)]
enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(sys::RawMap),
    Heap(Vec<u8>),
}

/// An immutable, read-only view of a whole file — memory-mapped on 64-bit
/// Unix, heap-backed elsewhere. Cheap to share behind an `Arc`; the mapping
/// is released when the last handle drops.
#[derive(Debug)]
pub struct Mmap {
    backing: Backing,
}

impl Mmap {
    /// Maps (or, on fallback targets, reads) the file at `path`.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        Mmap::from_file(&file)
    }

    /// Maps (or reads) an already-open file, from offset 0 to its current
    /// length.
    pub fn from_file(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds address space"));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap { backing: Backing::Heap(Vec::new()) });
        }
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            Ok(Mmap { backing: Backing::Mapped(sys::RawMap::map(file, len)?) })
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            use std::io::Read;
            let mut bytes = Vec::with_capacity(len);
            let mut reader = file.try_clone()?;
            reader.read_to_end(&mut bytes)?;
            Ok(Mmap { backing: Backing::Heap(bytes) })
        }
    }

    /// Wraps bytes already in memory in a heap-backed handle, so code
    /// written against [`Mmap`] (the flat-file decoder) can also run over a
    /// buffer that never came from a file.
    pub fn from_vec(bytes: Vec<u8>) -> Mmap {
        Mmap { backing: Backing::Heap(bytes) }
    }

    /// The file's bytes. For the mapped backing this touches no memory by
    /// itself — pages fault in lazily as slices are read.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(map) => map.bytes(),
            Backing::Heap(v) => v,
        }
    }

    /// Number of bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the file was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are a true memory mapping (false on fallback
    /// targets and for empty files). Diagnostics only.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(_) => true,
            Backing::Heap(_) => false,
        }
    }

    /// Forwards an access-pattern hint to the OS (no-op for heap backings).
    pub fn advise(&self, advice: Advice) {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(map) => map.advise(advice),
            Backing::Heap(_) => {
                let _ = advice;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("disc-mmap-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn maps_file_contents() {
        let dir = tmp_dir("contents");
        let path = dir.join("f.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        map.advise(Advice::Sequential);
        map.advise(Advice::WillNeed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = tmp_dir("empty");
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/disc/mmap/file")).is_err());
    }

    #[test]
    fn mapping_outlives_the_file_handle_and_is_shareable() {
        let dir = tmp_dir("share");
        let path = dir.join("f.bin");
        std::fs::File::create(&path).unwrap().write_all(&[7u8; 4096]).unwrap();
        let map = std::sync::Arc::new(Mmap::open(&path).unwrap());
        // The File handle from `open` is already dropped; reads still work,
        // including from another thread through the Arc.
        let m2 = std::sync::Arc::clone(&map);
        let handle = std::thread::spawn(move || m2.bytes().iter().map(|&b| b as u64).sum::<u64>());
        assert_eq!(handle.join().unwrap(), 7 * 4096);
        assert_eq!(map.bytes()[4095], 7);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
