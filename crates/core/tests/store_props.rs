//! Durability properties of the store, through its public API only:
//! truncating the WAL at **every** byte offset — the on-disk image of a
//! crash at that exact point — never loses a record whose frame survived
//! and never resurrects a record whose frame did not fully reach the file;
//! and arbitrary ingests round-trip through a clean close and recovery
//! under every sync policy and segment size.

use disc_core::{
    fsck, CustomerId, Item, Itemset, Sequence, SequenceDatabase, SequenceStore, StoreConfig,
    SyncPolicy,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_N: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("store-props-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The single WAL segment file inside `dir`.
fn only_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("store directory exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dscwl"))
        .collect();
    assert_eq!(segs.len(), 1, "expected exactly one segment in {}", dir.display());
    segs.pop().expect("one segment")
}

fn rows() -> Vec<(CustomerId, Sequence)> {
    [
        "(a,e,g)(b)(h)(f)(c)(b,f)",
        "(b)(d,f)(e)",
        "(b,f,g)",
        "(f)(a,g)(b,f,h)(b,f)",
        "(c)(c)(c)",
        "(a)",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| (CustomerId(i as u64), disc_core::parse_sequence(text).unwrap()))
    .collect()
}

/// Ingest with `SyncPolicy::Always`, capturing the segment length after
/// each acknowledged append; then truncate a copy of the segment at every
/// byte offset and recover. The recovered database must be exactly the
/// acknowledged records whose frames are fully inside the truncated file —
/// frames at or past the cut must never partially surface.
#[test]
fn truncation_at_every_byte_offset_recovers_the_exact_surviving_prefix() {
    let rows = rows();
    let src = fresh_dir("src");
    let mut store = SequenceStore::open(&src, StoreConfig::default()).expect("open");
    let mut acked_len: Vec<u64> = Vec::new();
    for (cid, seq) in &rows {
        store.append(*cid, seq.clone()).expect("append");
        acked_len.push(fs::metadata(only_segment(&src)).expect("segment").len());
    }
    let seg_path = only_segment(&src);
    let seg_name = seg_path.file_name().expect("name").to_owned();
    let bytes = fs::read(&seg_path).expect("read segment");
    assert_eq!(bytes.len() as u64, *acked_len.last().expect("appends"));

    for cut in 0..=bytes.len() {
        let dir = fresh_dir("cut");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(&seg_name), &bytes[..cut]).expect("write truncation");

        let report = fsck(&dir).expect("fsck reads the truncated store");
        assert!(report.is_recoverable(), "cut {cut}: a pure truncation is a crash image\n{report}");

        let store = SequenceStore::open(&dir, StoreConfig::default())
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        let expect = acked_len.iter().filter(|&&l| l <= cut as u64).count();
        assert_eq!(report.acked_records, expect as u64, "cut {cut}");
        let got = store.view();
        assert_eq!(got.len(), expect, "cut {cut}: recovered row count");
        for (row, (cid, seq)) in got.rows().iter().zip(&rows) {
            assert_eq!((row.cid, &row.sequence), (*cid, seq), "cut {cut}");
        }
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&src);
}

/// A random itemset over a small alphabet.
fn arb_itemset(max_item: u32) -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(0..max_item, 1..=3)
        .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

/// A random sequence of 1..=4 transactions.
fn arb_sequence(max_item: u32) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(max_item), 1..=4).prop_map(Sequence::new)
}

fn arb_sync() -> impl Strategy<Value = SyncPolicy> {
    (0u8..4).prop_map(|n| match n {
        0 => SyncPolicy::Always,
        1 => SyncPolicy::EveryN(2),
        2 => SyncPolicy::EveryN(7),
        _ => SyncPolicy::Never,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary records, segment sizes (forcing rotation mid-ingest), and
    /// sync policies: a clean close makes everything durable, recovery
    /// restores it exactly, and fsck calls the result clean.
    #[test]
    fn arbitrary_ingests_roundtrip_through_close_and_recovery(
        seqs in prop::collection::vec(arb_sequence(10), 1..12),
        segment_max_bytes in 64u64..512,
        sync in arb_sync(),
    ) {
        let dir = fresh_dir("roundtrip");
        let cfg = StoreConfig { sync, segment_max_bytes, ..StoreConfig::default() };
        let mut store = SequenceStore::open(&dir, cfg)
            .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        let mut expected = SequenceDatabase::new();
        for (i, seq) in seqs.iter().enumerate() {
            let cid = CustomerId(i as u64);
            store.append(cid, seq.clone())
                .map_err(|e| TestCaseError::fail(format!("append {i}: {e}")))?;
            expected.push(cid, seq.clone());
        }
        prop_assert_eq!(&*store.view(), &expected);
        store.close().map_err(|e| TestCaseError::fail(format!("close: {e}")))?;

        let store = SequenceStore::open(&dir, cfg)
            .map_err(|e| TestCaseError::fail(format!("reopen: {e}")))?;
        prop_assert_eq!(&*store.view(), &expected);
        let report = fsck(&dir).map_err(|e| TestCaseError::fail(format!("fsck: {e}")))?;
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert_eq!(report.acked_records, seqs.len() as u64);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Compaction is transparent: fold at an arbitrary point mid-ingest,
    /// keep appending, recover — the database is identical to one that was
    /// never compacted, and the snapshot supersedes exactly the folded
    /// segments.
    #[test]
    fn compaction_at_an_arbitrary_point_is_invisible_to_recovery(
        seqs in prop::collection::vec(arb_sequence(10), 2..12),
        segment_max_bytes in 64u64..256,
        fold_at in 0usize..12,
    ) {
        let dir = fresh_dir("fold");
        let cfg = StoreConfig { segment_max_bytes, ..StoreConfig::default() };
        let mut store = SequenceStore::open(&dir, cfg)
            .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        let fold_at = fold_at % seqs.len();
        let mut expected = SequenceDatabase::new();
        for (i, seq) in seqs.iter().enumerate() {
            if i == fold_at {
                store.compact().map_err(|e| TestCaseError::fail(format!("compact: {e}")))?;
            }
            let cid = CustomerId(i as u64);
            store.append(cid, seq.clone())
                .map_err(|e| TestCaseError::fail(format!("append {i}: {e}")))?;
            expected.push(cid, seq.clone());
        }
        store.close().map_err(|e| TestCaseError::fail(format!("close: {e}")))?;

        let store = SequenceStore::open(&dir, cfg)
            .map_err(|e| TestCaseError::fail(format!("reopen: {e}")))?;
        prop_assert_eq!(&*store.view(), &expected);
        prop_assert_eq!(store.recovery_report().snapshot_rows, fold_at);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}
