//! Differential property tests for the SIMD comparison kernels and the
//! packed `u32` representation: every dispatch level the build and CPU can
//! execute must agree bit-for-bit with the portable scalar reference, on
//! arbitrary inputs including lane-straddling lengths, empty slices, and the
//! packed-word budget edges.

use disc_core::embed::view_contains;
use disc_core::packed::{cmp_packed, packed_contains, support_count_packed, PackedPattern};
use disc_core::{
    cmp_sequences, cmp_views, contains, fits_packed_budget, pack_pair, simd, support_count,
    unpack_pair, DiscError, DispatchLevel, FlatDb, FlatKey, Item, ItemMapping, Itemset, PackedDb,
    PackedKey, Sequence, SequenceDatabase, MAX_PACKED_ITEM, MAX_PACKED_TXNS,
};
use proptest::prelude::*;

/// A random itemset over a small alphabet.
fn arb_itemset(max_item: u32) -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(0..max_item, 1..=3)
        .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

/// A random sequence of 1..=4 transactions.
fn arb_sequence(max_item: u32) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(max_item), 1..=4).prop_map(Sequence::new)
}

/// A random tiny database.
fn arb_db(max_item: u32, max_rows: usize) -> impl Strategy<Value = SequenceDatabase> {
    prop::collection::vec(arb_sequence(max_item), 1..=max_rows)
        .prop_map(SequenceDatabase::from_sequences)
}

/// Word slices whose lengths straddle the 16-byte SSE2 and 32-byte AVX2 lane
/// boundaries (0..=40 u32 words = 0..=160 bytes), over a tiny value range so
/// long equal prefixes — the case the first-diff kernels must get exactly
/// right — are common rather than vanishing.
fn arb_words(max: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..max, 0..=40)
}

/// A pair of word slices sharing a random-length common prefix, so the first
/// difference lands at an arbitrary (often lane-interior) position.
fn arb_prefix_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (arb_words(5), arb_words(5), arb_words(5)).prop_map(|(prefix, ta, tb)| {
        let mut a = prefix.clone();
        a.extend(ta);
        let mut b = prefix;
        b.extend(tb);
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_levels_agree_on_first_diff_and_cmp((a, b) in arb_prefix_pair()) {
        let a64: Vec<u64> = a.iter().map(|&w| w as u64).collect();
        let b64: Vec<u64> = b.iter().map(|&w| w as u64).collect();
        let diff_ref = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        for level in DispatchLevel::available() {
            prop_assert_eq!(simd::first_diff_u32_at(level, &a, &b), diff_ref);
            prop_assert_eq!(simd::first_diff_u64_at(level, &a64, &b64), diff_ref);
            prop_assert_eq!(simd::cmp_u32_at(level, &a, &b), a.cmp(&b));
            prop_assert_eq!(simd::cmp_u64_at(level, &a64, &b64), a64.cmp(&b64));
        }
    }

    #[test]
    fn all_levels_agree_on_scans(mut hay in arb_words(9), x in 0u32..10) {
        for level in DispatchLevel::available() {
            prop_assert_eq!(simd::contains_u32_at(level, &hay, x), hay.contains(&x));
        }
        // The ordered scans additionally match binary search on sorted input.
        hay.sort_unstable();
        for level in DispatchLevel::available() {
            prop_assert_eq!(
                simd::first_ge_u32_at(level, &hay, x),
                hay.partition_point(|&w| w < x)
            );
            prop_assert_eq!(
                simd::first_gt_u32_at(level, &hay, x),
                hay.partition_point(|&w| w <= x)
            );
        }
    }

    #[test]
    fn all_levels_agree_on_subset(a in arb_words(12), b in arb_words(12)) {
        let mut a: Vec<u32> = a;
        let mut b: Vec<u32> = b;
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let subset_ref = a.iter().all(|x| b.binary_search(x).is_ok());
        for level in DispatchLevel::available() {
            prop_assert_eq!(simd::is_sorted_subset_u32_at(level, &a, &b), subset_ref);
        }
    }

    #[test]
    fn cmp_views_matches_the_nested_order(a in arb_sequence(6), b in arb_sequence(6)) {
        // The transaction-wise SIMD walk must reproduce the flattened-pair
        // reference exactly (under whatever level the process dispatched).
        let fa: Vec<(Item, u32)> = a.flat_iter().collect();
        let fb: Vec<(Item, u32)> = b.flat_iter().collect();
        prop_assert_eq!(cmp_sequences(&a, &b), fa.cmp(&fb));
        let db = SequenceDatabase::from_sequences([a.clone(), b.clone()]);
        let flat = FlatDb::from_database(&db);
        prop_assert_eq!(cmp_views(flat.row(0), flat.row(1)), fa.cmp(&fb));
    }

    #[test]
    fn view_contains_matches_contains(db in arb_db(5, 6), pat in arb_sequence(5)) {
        // `view_contains` runs on the SIMD subset kernel; `contains` walks
        // the nested representation.
        let flat = FlatDb::from_database(&db);
        for (row, src) in flat.rows().zip(db.sequences()) {
            prop_assert_eq!(view_contains(row, &pat), contains(src, &pat));
        }
    }

    #[test]
    fn first_gt_items_matches_partition_point(set in arb_words(9), after in 0u32..10) {
        let mut items: Vec<Item> = set.into_iter().map(Item).collect();
        items.sort_unstable();
        items.dedup();
        prop_assert_eq!(
            simd::first_gt_items(&items, Item(after)),
            items.partition_point(|&i| i <= Item(after))
        );
    }

    #[test]
    fn pack_pair_round_trips_and_preserves_order(
        a in 0u32..=MAX_PACKED_ITEM, ta in 1u32..=MAX_PACKED_TXNS,
        b in 0u32..=MAX_PACKED_ITEM, tb in 1u32..=MAX_PACKED_TXNS,
    ) {
        prop_assert_eq!(unpack_pair(pack_pair(Item(a), ta)), (Item(a), ta));
        prop_assert_eq!(unpack_pair(pack_pair(Item(b), tb)), (Item(b), tb));
        // Unsigned word order == (item, txn) lexicographic order: the claim
        // that makes single-compare packed keys sound, checked at the budget
        // edges included.
        prop_assert_eq!(
            pack_pair(Item(a), ta).cmp(&pack_pair(Item(b), tb)),
            (a, ta).cmp(&(b, tb))
        );
    }

    #[test]
    fn packed_db_round_trips_and_orders_like_flat(db in arb_db(6, 6)) {
        let flat = FlatDb::from_database(&db);
        let mapping = ItemMapping::analyze(&db);
        let packed = PackedDb::build(&flat, &mapping).expect("tiny alphabet fits the budget");
        prop_assert_eq!(packed.len(), db.len());
        for (i, src) in db.sequences().enumerate() {
            // Round trip through the packed CSR (ids are compacted, so remap
            // back through the mapping).
            let restored = mapping.restore_sequence(&packed.row(i).to_sequence());
            prop_assert_eq!(&restored, src);
            // Packed word order == comparative order, pairwise.
            for (j, other) in db.sequences().enumerate() {
                prop_assert_eq!(
                    cmp_packed(packed.row(i), packed.row(j)),
                    cmp_sequences(src, other)
                );
            }
        }
    }

    #[test]
    fn packed_key_orders_like_the_comparative_order(a in arb_sequence(6), b in arb_sequence(6)) {
        let (ka, kb) = (PackedKey::try_new(&a).unwrap(), PackedKey::try_new(&b).unwrap());
        prop_assert_eq!(ka.cmp(&kb), cmp_sequences(&a, &b));
        prop_assert_eq!(ka.to_sequence(), a.clone());
        prop_assert_eq!(FlatKey::new(&a).cmp(&FlatKey::new(&b)), cmp_sequences(&a, &b));
    }

    #[test]
    fn packed_containment_matches_support(db in arb_db(5, 6), pat in arb_sequence(5)) {
        let flat = FlatDb::from_database(&db);
        let identity = ItemMapping::analyze(&SequenceDatabase::from_sequences(
            [Sequence::new([Itemset::from_sorted((0..5).map(Item).collect())])],
        ));
        prop_assert!(identity.is_identity());
        let packed = PackedDb::build(&flat, &identity).unwrap();
        let ppat = PackedPattern::try_new(&pat).unwrap();
        for (i, src) in db.sequences().enumerate() {
            prop_assert_eq!(packed_contains(packed.row(i), &ppat), contains(src, &pat));
        }
        prop_assert_eq!(support_count_packed(&packed, &pat).unwrap(), support_count(&db, &pat));
    }

    #[test]
    fn packed_budget_rejects_exactly_the_overflows(item in 0u64..1 << 22, txns in 0u64..1 << 14) {
        let verdict = fits_packed_budget(item, txns);
        let fits = item <= MAX_PACKED_ITEM as u64 && txns <= MAX_PACKED_TXNS as u64;
        prop_assert_eq!(verdict.is_ok(), fits);
        if let Err(DiscError::PackedOverflow { value, limit, .. }) = verdict {
            prop_assert!(value > limit);
        }
    }
}
