//! Codec properties of the DSCFD1 flat-file format, through the public API
//! only: arbitrary databases (including sparse item ids that stress the
//! dictionary) round-trip bit-exactly through encode → decode and through
//! encode → write → mmap-open; every proper prefix of a file is refused at
//! both verification levels; and no single-byte corruption can silently
//! change what a `Verify::Full` load yields.

use disc_core::{
    database_fingerprint, decode_flat_file, encode_database_flat_file, open_flat_file,
    peek_flat_file_fingerprint, write_flat_file, FlatDb, Item, ItemMapping, Itemset, Sequence,
    SequenceDatabase, Verify, FLAT_FILE_MAGIC,
};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_N: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("flatfile-props-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A random itemset whose ids are spread across a sparse range, so the
/// compact-id dictionary does real work.
fn arb_itemset() -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(
        prop_oneof![0u32..8, 1_000u32..1_008, 900_000_000u32..900_000_016],
        1..=4,
    )
    .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

fn arb_sequence() -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(), 1..=5).prop_map(Sequence::new)
}

fn arb_database() -> impl Strategy<Value = SequenceDatabase> {
    prop::collection::vec(arb_sequence(), 0..10).prop_map(|seqs| {
        let mut db = SequenceDatabase::new();
        for (i, s) in seqs.into_iter().enumerate() {
            db.push(disc_core::CustomerId(i as u64), s);
        }
        db
    })
}

/// Asserts that decoded contents are exactly the encoder's view of `db`.
fn assert_matches_database(contents: &disc_core::FlatFileContents, db: &SequenceDatabase) {
    assert_eq!(contents.fingerprint, database_fingerprint(db));
    let mapping = ItemMapping::analyze(db);
    assert_eq!(contents.mapping, mapping);
    let expect = FlatDb::from_database(&mapping.remap_database(db));
    assert_eq!(contents.flat.columns(), expect.columns());
    if let Some(packed) = &contents.packed {
        for (r, row) in expect.rows().enumerate() {
            assert_eq!(packed.row(r).to_sequence(), row.to_sequence());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode and encode → write → mmap-open both reproduce the
    /// source database exactly, at both verification levels, and the cheap
    /// fingerprint peek agrees with the full load.
    #[test]
    fn arbitrary_databases_roundtrip(db in arb_database()) {
        let bytes = encode_database_flat_file(&db);
        prop_assert_eq!(&bytes[..FLAT_FILE_MAGIC.len()], FLAT_FILE_MAGIC);
        for verify in [Verify::Full, Verify::HeaderOnly] {
            let contents = decode_flat_file(Path::new("prop.dscfd"), bytes.clone(), verify)
                .map_err(|e| TestCaseError::fail(format!("decode ({verify:?}): {e}")))?;
            assert_matches_database(&contents, &db);
        }

        let dir = fresh_dir("roundtrip");
        let path = dir.join("db.dscfd");
        write_flat_file(&path, &bytes)
            .map_err(|e| TestCaseError::fail(format!("write: {e}")))?;
        let opened = open_flat_file(&path, Verify::Full)
            .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        assert_matches_database(&opened, &db);
        prop_assert_eq!(
            peek_flat_file_fingerprint(&path)
                .map_err(|e| TestCaseError::fail(format!("peek: {e}")))?,
            opened.fingerprint
        );
        drop(opened);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Every proper prefix of a valid file — the on-disk image of a crash or
    /// short copy at that point — is refused at both verification levels.
    /// Sampled cuts cover the interesting strata: inside the header, at the
    /// page-aligned section boundaries, and one byte short of complete.
    #[test]
    fn truncation_is_rejected_at_every_boundary(
        db in arb_database(),
        header_cut in 0usize..160,
        random_permille in 0u32..1000,
    ) {
        let bytes = encode_database_flat_file(&db);
        let path = Path::new("trunc.dscfd");
        let mut cuts: Vec<usize> = vec![header_cut, bytes.len() - 1];
        cuts.push((bytes.len() - 1) * random_permille as usize / 1000);
        // Section payloads start on 4096-byte pages: cut exactly at, just
        // before, and just after each page edge inside the file.
        let mut page = 4096;
        while page < bytes.len() {
            cuts.extend([page - 1, page, page + 1]);
            page += 4096;
        }
        for cut in cuts {
            let cut = cut.min(bytes.len() - 1);
            for verify in [Verify::Full, Verify::HeaderOnly] {
                let err = decode_flat_file(path, bytes[..cut].to_vec(), verify);
                prop_assert!(err.is_err(), "prefix of {cut}/{} accepted ({verify:?})", bytes.len());
            }
        }
        decode_flat_file(path, bytes, Verify::Full)
            .map_err(|e| TestCaseError::fail(format!("whole file: {e}")))?;
    }

    /// Flipping any single byte can never silently change what a
    /// `Verify::Full` load yields: either the CRCs refuse the file, or the
    /// flip landed in inter-section padding and the decode is bit-identical
    /// to the uncorrupted one.
    #[test]
    fn single_byte_corruption_never_silently_changes_a_full_load(
        db in arb_database(),
        pos_permille in 0u32..1000,
        bit in 0u8..8,
    ) {
        let bytes = encode_database_flat_file(&db);
        let path = Path::new("flip.dscfd");
        let clean = decode_flat_file(path, bytes.clone(), Verify::Full)
            .map_err(|e| TestCaseError::fail(format!("clean decode: {e}")))?;
        let pos = (bytes.len() - 1) * pos_permille as usize / 1000;
        let mut copy = bytes;
        copy[pos] ^= 1 << bit;
        match decode_flat_file(path, copy, Verify::Full) {
            Err(_) => {} // detected — the common case
            Ok(contents) => {
                prop_assert_eq!(contents.fingerprint, clean.fingerprint);
                prop_assert_eq!(contents.mapping, clean.mapping);
                prop_assert_eq!(contents.flat.columns(), clean.flat.columns());
            }
        }
    }
}
