//! Property tests for the core data model: the comparative order is a total
//! order consistent with the flattened representation, k-minimum
//! subsequences really are minima, and the brute-force miner is exactly the
//! definitional frequent set.

use disc_core::embed::view_contains;
use disc_core::{
    all_k_subsequences, cmp_sequences, cmp_views, contains, flat_pairs, min_k_subsequence_naive,
    parse_sequence, support_count, BruteForce, FlatDb, FlatKey, Item, Itemset, MinSupport,
    ParseError, Sequence, SequenceDatabase, SequentialMiner,
};
use proptest::prelude::*;
use std::cmp::Ordering;

/// A random itemset over a small alphabet.
fn arb_itemset(max_item: u32) -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(0..max_item, 1..=3)
        .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

/// A random sequence of 1..=4 transactions.
fn arb_sequence(max_item: u32) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(max_item), 1..=4).prop_map(Sequence::new)
}

/// A random tiny database.
fn arb_db(max_item: u32, max_rows: usize) -> impl Strategy<Value = SequenceDatabase> {
    prop::collection::vec(arb_sequence(max_item), 1..=max_rows)
        .prop_map(SequenceDatabase::from_sequences)
}

/// Arbitrary (frequently invalid) text: raw bytes decoded lossily, so the
/// parser sees real multi-byte UTF-8, replacement chars, and control bytes.
fn arb_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// Text biased toward the sequence grammar, with multi-byte characters and
/// database-line punctuation mixed in to reach the deeper parser states.
fn arb_almost_grammar() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        '(', ')', ',', 'a', 'b', 'z', '0', '4', '9', ' ', '\t', '_', 'é', '→', '\u{a0}', '#', ':',
        '\n',
    ];
    prop::collection::vec(0usize..PALETTE.len(), 0..48)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

/// `parse_sequence` must never panic, and every offset it reports must be a
/// character boundary of the input pointing at the character it names.
fn check_parse_error_offsets(input: &str) {
    match parse_sequence(input) {
        Ok(_) | Err(ParseError::UnexpectedEnd) => {}
        Err(ParseError::UnexpectedChar { offset, found }) => {
            assert!(offset < input.len(), "offset {offset} out of bounds");
            assert!(input.is_char_boundary(offset), "offset {offset} splits a char");
            assert_eq!(input[offset..].chars().next(), Some(found));
        }
        Err(ParseError::EmptyItemset { offset }) => {
            assert!(input.is_char_boundary(offset));
            assert_eq!(input[offset..].chars().next(), Some(')'));
        }
        Err(ParseError::ItemOverflow { offset }) => {
            assert!(input.is_char_boundary(offset));
            assert!(input[offset..].chars().next().is_some_and(|c| c.is_ascii_digit()));
        }
        Err(e) => panic!("impossible error kind from parse_sequence: {e:?}"),
    }
}

/// Reference comparison: plain lexicographic order over the flattened pairs.
fn cmp_flat(a: &Sequence, b: &Sequence) -> Ordering {
    let fa: Vec<(Item, u32)> = a.flat_iter().collect();
    let fb: Vec<(Item, u32)> = b.flat_iter().collect();
    fa.cmp(&fb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn comparative_order_matches_flattened_lex(a in arb_sequence(6), b in arb_sequence(6)) {
        prop_assert_eq!(cmp_sequences(&a, &b), cmp_flat(&a, &b));
    }

    #[test]
    fn comparative_order_is_antisymmetric(a in arb_sequence(6), b in arb_sequence(6)) {
        let ab = cmp_sequences(&a, &b);
        let ba = cmp_sequences(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b); // equality in the order is structural equality
        }
    }

    #[test]
    fn comparative_order_is_transitive(
        a in arb_sequence(4), b in arb_sequence(4), c in arb_sequence(4)
    ) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(cmp_sequences(&v[0], &v[1]) != Ordering::Greater);
        prop_assert!(cmp_sequences(&v[1], &v[2]) != Ordering::Greater);
        prop_assert!(cmp_sequences(&v[0], &v[2]) != Ordering::Greater);
    }

    #[test]
    fn enumerated_subsequences_are_contained(s in arb_sequence(5), k in 1usize..=3) {
        for sub in all_k_subsequences(&s, k) {
            prop_assert_eq!(sub.length(), k);
            prop_assert!(contains(&s, &sub), "{} should contain {}", s, sub);
        }
    }

    #[test]
    fn k_minimum_is_the_minimum(s in arb_sequence(5), k in 1usize..=3) {
        let subs = all_k_subsequences(&s, k);
        let min = min_k_subsequence_naive(&s, k);
        prop_assert_eq!(min.as_ref(), subs.iter().next());
    }

    #[test]
    fn k_prefix_of_contained_pattern_is_contained(s in arb_sequence(5), k in 2usize..=3) {
        // Anti-monotonicity of containment under prefixes (the property the
        // Apriori pruning in KMS relies on).
        for sub in all_k_subsequences(&s, k) {
            prop_assert!(contains(&s, &sub.k_prefix(k - 1)));
        }
    }

    #[test]
    fn brute_force_equals_definitional_frequent_set(db in arb_db(4, 6), delta in 1u64..=3) {
        let result = BruteForce::default().mine(&db, MinSupport::Count(delta));
        // Soundness: every reported pattern has its definitional support.
        for (p, s) in result.iter() {
            prop_assert_eq!(s, support_count(&db, p));
            prop_assert!(s >= delta);
        }
        // Completeness: every frequent subsequence (up to length 3) is found.
        for k in 1usize..=3 {
            let mut all = std::collections::BTreeSet::new();
            for s in db.sequences() {
                all.extend(all_k_subsequences(s, k));
            }
            for cand in all {
                let sup = support_count(&db, &cand);
                prop_assert_eq!(
                    result.contains_pattern(&cand),
                    sup >= delta,
                    "{} support {} delta {}", cand, sup, delta
                );
            }
        }
    }

    #[test]
    fn support_is_antimonotone(db in arb_db(4, 5), s in arb_sequence(4), k in 1usize..=3) {
        for sub in all_k_subsequences(&s, k) {
            if k >= 2 {
                let prefix = sub.k_prefix(k - 1);
                prop_assert!(support_count(&db, &prefix) >= support_count(&db, &sub));
            }
        }
    }

    #[test]
    fn text_roundtrip(db in arb_db(30, 6)) {
        let text = db.to_text();
        let back = SequenceDatabase::from_text(&text).unwrap();
        prop_assert_eq!(db, back);
    }

    #[test]
    fn binary_codec_roundtrip(db in arb_db(5000, 8)) {
        let bytes = disc_core::encode_database(&db);
        let back = disc_core::decode_database(&bytes).unwrap();
        prop_assert_eq!(db, back);
    }

    #[test]
    fn binary_codec_rejects_mutations(db in arb_db(40, 4), flip in any::<(usize, u8)>()) {
        // Any single-byte mutation either still decodes to SOME database or
        // errors — it must never panic.
        let mut bytes = disc_core::encode_database(&db);
        if !bytes.is_empty() {
            let pos = flip.0 % bytes.len();
            bytes[pos] ^= flip.1 | 1;
            let _ = disc_core::decode_database(&bytes);
        }
    }

    #[test]
    fn sequence_parser_never_panics_on_byte_soup(input in arb_soup()) {
        check_parse_error_offsets(&input);
    }

    #[test]
    fn sequence_parser_never_panics_near_the_grammar(input in arb_almost_grammar()) {
        check_parse_error_offsets(&input);
    }

    #[test]
    fn database_parser_never_panics(soup in arb_soup(), grammar in arb_almost_grammar()) {
        let _ = SequenceDatabase::from_text(&soup);
        let _ = SequenceDatabase::from_text(&grammar);
    }

    #[test]
    fn parse_accepts_what_display_produces(s in arb_sequence(40)) {
        prop_assert_eq!(parse_sequence(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn flat_rows_mirror_their_sequences(db in arb_db(8, 8)) {
        // The CSR arena is a lossless re-layout: every row converts back to
        // its source sequence, and the borrowed view flattens to exactly the
        // same (item, transaction-number) stream as the nested walk.
        let flat = FlatDb::from_database(&db);
        prop_assert_eq!(flat.len(), db.len());
        for (row, src) in flat.rows().zip(db.sequences()) {
            prop_assert_eq!(&row.to_sequence(), src);
            let via_view: Vec<(Item, u32)> = flat_pairs(row).collect();
            let via_seq: Vec<(Item, u32)> = src.flat_iter().collect();
            prop_assert_eq!(via_view, via_seq);
        }
    }

    #[test]
    fn flat_comparisons_match_the_comparative_order(
        a in arb_sequence(6), b in arb_sequence(6)
    ) {
        // Both memoized forms of the comparison — the borrowed-view walk and
        // the precomputed FlatKey — agree with the nested reference.
        let reference = cmp_sequences(&a, &b);
        let db = SequenceDatabase::from_sequences([a.clone(), b.clone()]);
        let flat = FlatDb::from_database(&db);
        prop_assert_eq!(cmp_views(flat.row(0), flat.row(1)), reference);
        prop_assert_eq!(FlatKey::new(&a).cmp(&FlatKey::new(&b)), reference);
        prop_assert_eq!(&FlatKey::new(&a).to_sequence(), &a);
    }

    #[test]
    fn view_containment_matches_contains(db in arb_db(5, 6), pat in arb_sequence(5)) {
        let flat = FlatDb::from_database(&db);
        for (row, src) in flat.rows().zip(db.sequences()) {
            prop_assert_eq!(view_contains(row, &pat), contains(src, &pat));
        }
    }

    #[test]
    fn maximal_patterns_cover_result(db in arb_db(4, 6)) {
        let result = BruteForce::default().mine(&db, MinSupport::Count(2));
        let maximal = result.maximal_patterns();
        for (p, _) in result.iter() {
            prop_assert!(
                maximal.iter().any(|(m, _)| contains(m, p)),
                "{} not covered by any maximal pattern", p
            );
        }
        // And maximal patterns are mutually incomparable.
        for (i, (a, _)) in maximal.iter().enumerate() {
            for (b, _) in maximal.iter().skip(i + 1) {
                prop_assert!(!contains(a, b) && !contains(b, a));
            }
        }
    }
}
