//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **bi-level on/off** — does finding two levels per k-sorted-database
//!   pass pay for its counting arrays?
//! * **γ sweep** — Dynamic DISC-all between "always DISC" (γ = 0) and
//!   "always partition" (γ = 2), across sparse and dense workloads;
//! * **partition depth** — fixed-depth splitting (the "number of levels"
//!   knob of §3.1) from depth 0 (pure DISC) to depth 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_algo::weighted::{WeightedDatabase, WeightedDisc};
use disc_algo::{DiscAll, DynamicDiscAll};
use disc_core::{MinSupport, SequentialMiner};
use disc_datagen::QuestConfig;

fn bench_bilevel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bilevel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, cfg) in [
        ("sparse", QuestConfig::paper_table11().with_ncust(1_000).with_seed(5)),
        ("dense", QuestConfig::paper_fig9().with_ncust(600).with_seed(5)),
    ] {
        let db = cfg.generate();
        for miner in [DiscAll::default(), DiscAll::without_bi_level()] {
            group.bench_with_input(BenchmarkId::new(miner.name(), label), &db, |b, db| {
                b.iter(|| miner.mine(db, MinSupport::Fraction(0.01)))
            });
        }
    }
    group.finish();
}

fn bench_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for theta in [10.0f64, 40.0] {
        let db = QuestConfig::paper_fig10(theta).with_ncust(400).with_seed(6).generate();
        for gamma in [0.0f64, 0.3, 0.6, 0.9, 2.0] {
            let miner = DynamicDiscAll::with_gamma(gamma);
            group.bench_with_input(
                BenchmarkId::new(format!("gamma_{gamma}"), theta as u64),
                &db,
                // δ = 16: low enough for deep patterns, high enough that the
                // 400-customer workload cannot explode combinatorially.
                |b, db| b.iter(|| miner.mine(db, MinSupport::Fraction(0.04))),
            );
        }
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partition_depth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let db = QuestConfig::paper_table11().with_ncust(1_000).with_seed(7).generate();
    for depth in [0usize, 1, 2, 3, 4] {
        let miner = DynamicDiscAll::with_fixed_depth(depth);
        group.bench_with_input(BenchmarkId::new("depth", depth), &db, |b, db| {
            b.iter(|| miner.mine(db, MinSupport::Fraction(0.01)))
        });
    }
    group.finish();
}

/// Weighted mining vs unweighted at uniform weights: the price of carrying
/// weights through the tree and counting arrays.
fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let db = QuestConfig::paper_table11().with_ncust(800).with_seed(8).generate();
    let delta = (db.len() / 100) as u64; // 1%
    let wdb = WeightedDatabase::uniform(db.clone());
    group.bench_function("DiscAll_unweighted", |b| {
        b.iter(|| DiscAll::default().mine(&db, MinSupport::Count(delta)))
    });
    group.bench_function("WeightedDisc_uniform", |b| {
        b.iter(|| WeightedDisc::default().mine(&wdb, delta))
    });
    group.finish();
}

criterion_group!(benches, bench_bilevel, bench_gamma, bench_depth, bench_weighted);
criterion_main!(benches);
