//! Micro-benchmarks of the core primitives every miner leans on: the
//! comparative order, containment/leftmost embedding, and Apriori-KMS.

use criterion::{criterion_group, criterion_main, Criterion};
use disc_algo::kms::apriori_kms;
use disc_core::{cmp_sequences, contains, Item, Itemset, Sequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_sequence(rng: &mut StdRng, txns: usize, items_per_txn: usize, alphabet: u32) -> Sequence {
    Sequence::new((0..txns).map(|_| {
        let mut items: Vec<Item> =
            (0..items_per_txn).map(|_| Item(rng.gen_range(0..alphabet))).collect();
        items.sort_unstable();
        items.dedup();
        Itemset::new(items).expect("non-empty")
    }))
}

fn bench_compare(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pairs: Vec<(Sequence, Sequence)> = (0..256)
        .map(|_| (random_sequence(&mut rng, 8, 3, 50), random_sequence(&mut rng, 8, 3, 50)))
        .collect();
    c.bench_function("cmp_sequences/8x3", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(cmp_sequences(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_contains(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let hay: Vec<Sequence> = (0..128).map(|_| random_sequence(&mut rng, 10, 3, 30)).collect();
    let pats: Vec<Sequence> = (0..16).map(|_| random_sequence(&mut rng, 3, 2, 30)).collect();
    c.bench_function("contains/10x3_vs_3x2", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for h in &hay {
                for p in &pats {
                    hits += usize::from(contains(black_box(h), black_box(p)));
                }
            }
            black_box(hits)
        })
    });
}

fn bench_kms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let members: Vec<Sequence> = (0..64).map(|_| random_sequence(&mut rng, 10, 3, 20)).collect();
    // A plausible 3-sorted list: the frequent-ish 3-subsequence prefixes.
    let mut list: Vec<Sequence> = (0..32).map(|_| random_sequence(&mut rng, 3, 1, 20)).collect();
    list.sort();
    list.dedup();
    c.bench_function("apriori_kms/64members_32prefixes", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for m in &members {
                found += usize::from(apriori_kms(black_box(m), black_box(&list)).is_some());
            }
            black_box(found)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_compare, bench_contains, bench_kms
}
criterion_main!(benches);
