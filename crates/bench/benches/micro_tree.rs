//! Micro-benchmarks of the locative AVL tree against `BTreeMap<K, Vec<V>>`:
//! the tree pays for order statistics (`select(δ)`), which the BTreeMap can
//! only answer by linear scanning — the operation DISC performs on every
//! iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use disc_tree::LocativeAvlTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::hint::black_box;

fn keys(n: usize, distinct: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..distinct)).collect()
}

fn bench_insert(c: &mut Criterion) {
    let ks = keys(10_000, 2_000, 1);
    c.bench_function("tree/insert_10k", |b| {
        b.iter(|| {
            let mut t: LocativeAvlTree<u32, u32> = LocativeAvlTree::new();
            for (i, &k) in ks.iter().enumerate() {
                t.insert(k, i as u32);
            }
            black_box(t.len())
        })
    });
    c.bench_function("btreemap/insert_10k", |b| {
        b.iter(|| {
            let mut t: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for (i, &k) in ks.iter().enumerate() {
                t.entry(k).or_default().push(i as u32);
            }
            black_box(t.len())
        })
    });
}

fn bench_select(c: &mut Criterion) {
    let ks = keys(10_000, 2_000, 2);
    let tree: LocativeAvlTree<u32, u32> =
        ks.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
    let map: BTreeMap<u32, Vec<u32>> = {
        let mut m: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (i, &k) in ks.iter().enumerate() {
            m.entry(k).or_default().push(i as u32);
        }
        m
    };
    c.bench_function("tree/select_rank_5000", |b| {
        b.iter(|| black_box(tree.select(black_box(5_000))))
    });
    c.bench_function("btreemap/select_rank_5000_by_scan", |b| {
        b.iter(|| {
            let mut rank = 5_000usize;
            for (k, vs) in &map {
                if rank < vs.len() {
                    return black_box(Some(*k));
                }
                rank -= vs.len();
            }
            black_box(None)
        })
    });
}

fn bench_take_min_drain(c: &mut Criterion) {
    let ks = keys(10_000, 2_000, 3);
    c.bench_function("tree/drain_by_take_min", |b| {
        b.iter(|| {
            let mut t: LocativeAvlTree<u32, u32> =
                ks.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
            let mut total = 0usize;
            while let Some((_, vs)) = t.take_min() {
                total += vs.len();
            }
            black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_insert, bench_select, bench_take_min_drain
}
criterion_main!(benches);
