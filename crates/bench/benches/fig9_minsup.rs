//! Criterion bench for **Figure 9**: mining runtime vs minimum support on
//! the dense slen = tlen = patlen = 8 workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_algo::DiscAll;
use disc_baselines::{PrefixSpan, PseudoPrefixSpan};
use disc_core::{MinSupport, SequentialMiner};
use disc_datagen::QuestConfig;

fn bench_fig9(c: &mut Criterion) {
    let db = QuestConfig::paper_fig9().with_ncust(1_000).with_seed(1).generate();
    let mut group = c.benchmark_group("fig9_minsup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for threshold in [0.04f64, 0.02, 0.01] {
        let miners: Vec<Box<dyn SequentialMiner>> = vec![
            Box::new(DiscAll::default()),
            Box::new(PrefixSpan::default()),
            Box::new(PseudoPrefixSpan::default()),
        ];
        for miner in miners {
            group.bench_with_input(BenchmarkId::new(miner.name(), threshold), &db, |b, db| {
                b.iter(|| miner.mine(db, MinSupport::Fraction(threshold)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
