//! Criterion bench for **Figure 8**: mining runtime vs database size
//! (Table 11 workload, minsup 0.0025) — DISC-all vs PrefixSpan vs Pseudo.
//!
//! Criterion sizes are kept small so `cargo bench` terminates quickly; the
//! `experiments` binary runs the paper-scale sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_algo::DiscAll;
use disc_baselines::{PrefixSpan, PseudoPrefixSpan};
use disc_bench::workloads::fig8_db;
use disc_core::{MinSupport, SequentialMiner};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_dbsize");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for ncust in [500usize, 1_000, 2_000] {
        let db = fig8_db(ncust, 1).generate();
        let minsup = MinSupport::Fraction(0.01); // δ ≥ 5 even at the smallest size
        let miners: Vec<Box<dyn SequentialMiner>> = vec![
            Box::new(DiscAll::default()),
            Box::new(PrefixSpan::default()),
            Box::new(PseudoPrefixSpan::default()),
        ];
        for miner in miners {
            group.bench_with_input(BenchmarkId::new(miner.name(), ncust), &db, |b, db| {
                b.iter(|| miner.mine(db, minsup))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
