//! Criterion bench for **Figure 10**: mining runtime vs θ (average
//! transactions per customer) — where Dynamic DISC-all overtakes the static
//! variant. (Support is higher than the paper's 0.005 because δ must stay
//! well above 2 on these criterion-sized databases — see the δ-explosion
//! note in the workloads module.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_algo::{DiscAll, DynamicDiscAll};
use disc_baselines::PseudoPrefixSpan;
use disc_core::{MinSupport, SequentialMiner};
use disc_datagen::QuestConfig;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_theta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for theta in [10.0f64, 25.0, 40.0] {
        let db = QuestConfig::paper_fig10(theta).with_ncust(500).with_seed(1).generate();
        let miners: Vec<Box<dyn SequentialMiner>> = vec![
            Box::new(DiscAll::default()),
            Box::new(DynamicDiscAll::default()),
            Box::new(PseudoPrefixSpan::default()),
        ];
        for miner in miners {
            group.bench_with_input(BenchmarkId::new(miner.name(), theta as u64), &db, |b, db| {
                b.iter(|| miner.mine(db, MinSupport::Fraction(0.04)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
