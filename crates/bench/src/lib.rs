//! # disc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! DISC paper's evaluation (Section 4):
//!
//! | artifact | harness entry |
//! |---|---|
//! | Figure 8 (runtime vs database size) | [`experiments::fig8`] |
//! | Figure 9 (runtime vs minimum support) | [`experiments::fig9`] |
//! | Table 12 (average NRR vs δ) | [`experiments::table12`] |
//! | Table 13 (Pseudo / DISC-all ratio) | [`experiments::table13`] |
//! | Table 14 (average NRR vs θ) | [`experiments::table14`] |
//! | Figure 10 (runtime vs θ) | [`experiments::fig10`] |
//!
//! Run them through the `experiments` binary:
//!
//! ```text
//! cargo run --release -p disc-bench --bin experiments -- all
//! cargo run --release -p disc-bench --bin experiments -- fig8 --full
//! ```
//!
//! Default workload sizes are scaled to finish on a laptop (the paper used
//! 50K–500K customers on 2003 hardware); `--full` restores the paper's
//! sizes. The absolute numbers are not comparable to the paper's — the
//! *shape* (who wins, growth trends, crossovers) is what EXPERIMENTS.md
//! tracks.

// `deny` rather than `forbid`: the tracking allocator in [`alloc_track`] is
// the one sanctioned exception (implementing `GlobalAlloc` is inherently
// unsafe), and it carries its own scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod alloc_track;
pub mod ckptbench;
pub mod experiments;
pub mod flatbench;
pub mod mmapbench;
pub mod report;
pub mod runner;
pub mod servebench;
pub mod simdbench;
pub mod storebench;
pub mod workloads;
