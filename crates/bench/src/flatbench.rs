//! The flat-representation benchmark: the workload pair behind the
//! committed `BENCH_flat.json` baseline and CI's bench-regression gate.
//!
//! Two fixed Figure 8 (Table 11, minsup 0.0025) workloads:
//!
//! | name | customers | role |
//! |---|---|---|
//! | `smoke` | 1 000 | CI regression gate (seconds-scale) |
//! | `medium` | 5 000 | the headline before/after speedup number |
//!
//! Each workload times sequential DISC-all (best of [`REPEATS`] runs — the
//! minimum is the standard noise filter for single-machine timings), and
//! `medium` additionally times `ParallelDiscAll` at four threads so the
//! parallel path's behaviour on top of the flat representation stays
//! visible in the trajectory.
//!
//! `--check <BENCH_flat.json>` compares the fresh smoke run against the
//! committed baseline and fails (exit code 1) only on a >
//! [`REGRESSION_TOLERANCE`]x wall-clock regression — generous on purpose,
//! because CI machines differ from the machine that recorded the baseline.

use crate::report::{persist, ToJson};
use crate::runner::{assert_agreement, measure, measure_with_threads, Measurement};
use crate::workloads::{fig8_db, WorkloadCache};
use disc_algo::{DiscAll, ParallelDiscAll};
use disc_core::{MinSupport, SequentialMiner};

/// Same fixed seed as the experiment sweeps (shared with `simdbench`).
pub(crate) const SEED: u64 = 20040330;
/// Minimum support shared by both workloads (the Figure 8 threshold).
pub(crate) const MINSUP: f64 = 0.0025;
/// Timed runs per measurement; the minimum is reported.
pub const REPEATS: usize = 3;
/// `--check` fails only when the fresh smoke run is more than this many
/// times slower than the committed baseline.
pub const REGRESSION_TOLERANCE: f64 = 2.0;

/// One flat-bench workload definition.
#[derive(Debug, Clone, Copy)]
pub struct FlatWorkload {
    /// Stable name used in the JSON report (`smoke` / `medium`).
    pub name: &'static str,
    /// Customer count for the Table 11 generator.
    pub ncust: usize,
    /// Whether the parallel miner is also timed on this workload.
    pub with_parallel: bool,
}

/// The workload grid. `smoke` must stay cheap — CI times it on every push.
pub fn workloads() -> [FlatWorkload; 2] {
    [
        FlatWorkload { name: "smoke", ncust: 1_000, with_parallel: false },
        FlatWorkload { name: "medium", ncust: 5_000, with_parallel: true },
    ]
}

/// Results for one workload: the sequential measurement and, when enabled,
/// the four-thread parallel one.
#[derive(Debug, Clone)]
pub struct FlatRun {
    /// The workload this run measured.
    pub workload: FlatWorkload,
    /// Best-of-[`REPEATS`] sequential DISC-all measurement.
    pub sequential: Measurement,
    /// Best-of-[`REPEATS`] `ParallelDiscAll` ×4 measurement, if enabled.
    pub parallel4: Option<Measurement>,
}

impl ToJson for FlatRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"ncust\":{},\"minsup\":{},\"sequential\":{},\"parallel4\":{}}}",
            self.workload.name.to_string().to_json(),
            self.workload.ncust.to_json(),
            MINSUP.to_json(),
            self.sequential.to_json(),
            self.parallel4.to_json()
        )
    }
}

/// Best-of-[`REPEATS`] noise filter shared with `simdbench`.
pub(crate) fn best_of<F: FnMut() -> Measurement>(mut run: F) -> Measurement {
    let mut best = run();
    for _ in 1..REPEATS {
        let m = run();
        if m.seconds < best.seconds {
            best = m;
        }
    }
    best
}

/// Runs one workload and prints its rows.
fn run_workload(cache: &WorkloadCache, w: FlatWorkload) -> FlatRun {
    let db = cache.get(&fig8_db(w.ncust, SEED));
    let minsup = MinSupport::Fraction(MINSUP);
    let mut reference = None;
    let sequential = best_of(|| {
        let (m, result) = measure(&DiscAll::default(), &db, minsup, w.ncust as f64);
        reference = Some(result);
        m
    });
    let reference = reference.expect("at least one sequential run");
    eprintln!(
        "    {:<8} seq       {:>8.3}s  {:>10.0} rows/s  peak {:>6.1} MiB  {} patterns",
        w.name,
        sequential.seconds,
        sequential.rows_per_sec,
        sequential.peak_alloc_bytes as f64 / (1 << 20) as f64,
        sequential.patterns
    );
    let parallel4 = w.with_parallel.then(|| {
        let miner = ParallelDiscAll::with_threads(4);
        let m = best_of(|| {
            let (m, result) = measure_with_threads(&miner, &db, minsup, w.ncust as f64, 4);
            assert_agreement(miner.name(), &result, &reference);
            m
        });
        eprintln!(
            "    {:<8} par ×4    {:>8.3}s  {:>10.0} rows/s  peak {:>6.1} MiB  {} patterns",
            w.name,
            m.seconds,
            m.rows_per_sec,
            m.peak_alloc_bytes as f64 / (1 << 20) as f64,
            m.patterns
        );
        m
    });
    FlatRun { workload: w, sequential, parallel4 }
}

/// Runs the flat benchmark (smoke only, or both workloads), persists the
/// report to `target/experiments/bench_flat.json`, and returns the runs.
pub fn run(smoke_only: bool) -> Vec<FlatRun> {
    println!("## Flat representation benchmark (Table 11, minsup {MINSUP})\n");
    let cache = WorkloadCache::new();
    let runs: Vec<FlatRun> = workloads()
        .into_iter()
        .filter(|w| !smoke_only || w.name == "smoke")
        .map(|w| run_workload(&cache, w))
        .collect();
    println!("| workload | customers | seq (s) | rows/s | peak MiB | par ×4 (s) |");
    println!("|---|---|---|---|---|---|");
    for r in &runs {
        println!(
            "| {} | {} | {:.3} | {:.0} | {:.1} | {} |",
            r.workload.name,
            r.workload.ncust,
            r.sequential.seconds,
            r.sequential.rows_per_sec,
            r.sequential.peak_alloc_bytes as f64 / (1 << 20) as f64,
            r.parallel4.as_ref().map_or("-".to_string(), |m| format!("{:.3}", m.seconds)),
        );
    }
    println!();
    let _ = persist("bench_flat", &runs);
    runs
}

/// Extracts `"<field>":<number>` from the named workload's object in a
/// `BENCH_flat.json`-shaped document. Scans the text directly — the offline
/// environment has no JSON parser, and the file format is produced by this
/// crate's own `ToJson`, so `"name":"<workload>"` anchors the object and
/// the first `"<field>":` after it belongs to that object's sequential
/// measurement.
pub fn extract_baseline(json: &str, workload: &str, field: &str) -> Option<f64> {
    let anchor = format!("\"name\":\"{workload}\"");
    let at = json.find(&anchor)? + anchor.len();
    let rest = &json[at..];
    let key = format!("\"{field}\":");
    let v = &rest[rest.find(&key)? + key.len()..];
    let end = v.find([',', '}', ']']).unwrap_or(v.len());
    v[..end].trim().parse().ok()
}

/// The `--check` gate: compares a fresh smoke run against the committed
/// baseline. Returns `Err` with a human-readable message on regression or
/// on an unreadable baseline.
pub fn check(baseline_path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let committed = extract_baseline(&text, "smoke", "seconds")
        .ok_or_else(|| format!("no smoke seconds in baseline {}", baseline_path.display()))?;
    let committed_patterns = extract_baseline(&text, "smoke", "patterns");
    let runs = run(true);
    let fresh = &runs[0].sequential;
    if let Some(expected) = committed_patterns {
        if (fresh.patterns as f64 - expected).abs() > 0.5 {
            return Err(format!(
                "smoke pattern count changed: baseline {expected}, fresh {} — the workload or \
                 miner semantics drifted, so the timing comparison is meaningless",
                fresh.patterns
            ));
        }
    }
    let ratio = fresh.seconds / committed.max(1e-9);
    println!(
        "bench-regression: smoke {:.3}s vs committed {:.3}s ({}x, tolerance {}x)",
        fresh.seconds,
        committed,
        crate::report::trim_float((ratio * 1000.0).round() / 1000.0),
        REGRESSION_TOLERANCE
    );
    if ratio > REGRESSION_TOLERANCE {
        return Err(format!(
            "smoke workload regressed: {:.3}s is {ratio:.2}x the committed {committed:.3}s \
             (tolerance {REGRESSION_TOLERANCE}x)",
            fresh.seconds
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"machine":"x","runs":[
        {"name":"smoke","ncust":1000,"minsup":0.0025,"sequential":{"miner":"DISC-all","param":1000,"seconds":0.123,"patterns":4242,"max_length":7,"threads":1,"rows_per_sec":8130.0,"peak_alloc_bytes":1048576},"parallel4":null},
        {"name":"medium","ncust":5000,"minsup":0.0025,"sequential":{"miner":"DISC-all","param":5000,"seconds":0.9,"patterns":54169,"max_length":10,"threads":1,"rows_per_sec":5555.0,"peak_alloc_bytes":2097152},"parallel4":null}]}"#;

    #[test]
    fn extracts_the_right_workload() {
        assert_eq!(extract_baseline(SAMPLE, "smoke", "seconds"), Some(0.123));
        assert_eq!(extract_baseline(SAMPLE, "medium", "seconds"), Some(0.9));
        assert_eq!(extract_baseline(SAMPLE, "smoke", "patterns"), Some(4242.0));
        assert_eq!(extract_baseline(SAMPLE, "absent", "seconds"), None);
        assert_eq!(extract_baseline(SAMPLE, "smoke", "absent_field"), None);
    }

    #[test]
    fn workload_grid_is_stable() {
        let ws = workloads();
        assert_eq!(ws[0].name, "smoke");
        assert!(!ws[0].with_parallel);
        assert_eq!(ws[1].name, "medium");
        assert!(ws[1].with_parallel);
        assert!(ws[0].ncust < ws[1].ncust);
    }

    #[test]
    fn flat_run_json_roundtrips_through_extractor() {
        let run = FlatRun {
            workload: workloads()[0],
            sequential: Measurement {
                miner: "DISC-all".into(),
                param: 1000.0,
                seconds: 0.25,
                patterns: 17,
                max_length: 4,
                threads: 1,
                rows_per_sec: 4000.0,
                peak_alloc_bytes: 4096,
                peak_rss_bytes: 0,
            },
            parallel4: None,
        };
        let json = vec![run].to_json();
        assert_eq!(extract_baseline(&json, "smoke", "seconds"), Some(0.25));
        assert_eq!(extract_baseline(&json, "smoke", "patterns"), Some(17.0));
    }
}
