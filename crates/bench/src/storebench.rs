//! The durable-store benchmark: what WAL-backed ingestion costs.
//!
//! Ingests the flat-bench smoke workload (Table 11 generator, 1 000
//! customers) into a fresh [`SequenceStore`] under each sync policy, then
//! times the recovery and compaction paths on the fully-synced store:
//!
//! | row | what is timed |
//! |---|---|
//! | `ingest-always` | append + fsync per record ([`SyncPolicy::Always`]) |
//! | `ingest-every-64` | fsync every 64th append |
//! | `ingest-never` | no fsync until the closing seal |
//! | `recover-wal` | reopen: full WAL segment replay |
//! | `compact` | fold every segment into a verified snapshot |
//! | `recover-snapshot` | reopen: snapshot load, no replay |
//!
//! The recovered view is mined and checked bit-identical to mining the
//! generator's database directly — the benchmark doubles as an end-to-end
//! ingest→recover→mine agreement gate.
//!
//! Like the checkpoint benchmark, this is **exempt from the
//! bench-regression gate**: fsync latency varies wildly across CI machines
//! and filesystems, so the numbers are informational (persisted to
//! `target/experiments/bench_store.json`) and never compared against a
//! committed baseline.

use crate::report::{persist, ToJson};
use crate::runner::assert_agreement;
use crate::workloads::{fig8_db, WorkloadCache};
use disc_algo::DiscAll;
use disc_core::{MinSupport, SequenceStore, SequentialMiner, StoreConfig, SyncPolicy};
use std::fs;
use std::path::Path;
use std::time::Instant;

/// Same fixed seed and threshold as the flat benchmark.
const SEED: u64 = 20040330;
/// Minimum support for the agreement check (the Figure 8 threshold).
const MINSUP: f64 = 0.0025;
/// Customers in the workload (the flat-bench `smoke` size).
const NCUST: usize = 1_000;
/// Small segments so compaction genuinely folds a run of them.
const SEGMENT_BYTES: u64 = 64 * 1024;

/// One timed store operation.
#[derive(Debug, Clone)]
pub struct StoreRun {
    /// Row name (see the module table).
    pub name: &'static str,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Rows ingested or recovered.
    pub rows: usize,
    /// Rows per second.
    pub rows_per_sec: f64,
    /// Bytes on disk in the store directory afterwards.
    pub bytes: u64,
    /// WAL segment files afterwards.
    pub segments: usize,
}

impl ToJson for StoreRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"seconds\":{},\"rows\":{},\"rows_per_sec\":{},\"bytes\":{},\"segments\":{}}}",
            self.name.to_string().to_json(),
            self.seconds.to_json(),
            self.rows.to_json(),
            self.rows_per_sec.to_json(),
            (self.bytes as usize).to_json(),
            self.segments.to_json(),
        )
    }
}

/// Total bytes and WAL segment count inside a store directory.
fn dir_usage(dir: &Path) -> (u64, usize) {
    let mut bytes = 0;
    let mut segments = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                bytes += meta.len();
            }
            if entry.path().extension().is_some_and(|x| x == "dscwl") {
                segments += 1;
            }
        }
    }
    (bytes, segments)
}

fn row(name: &'static str, seconds: f64, rows: usize, dir: &Path) -> StoreRun {
    let (bytes, segments) = dir_usage(dir);
    StoreRun { name, seconds, rows, rows_per_sec: rows as f64 / seconds.max(1e-9), bytes, segments }
}

/// Runs the store benchmark and persists the report to
/// `target/experiments/bench_store.json`.
pub fn run() -> Vec<StoreRun> {
    println!("## Durable store benchmark (Table 11 smoke, {NCUST} customers)\n");
    let cache = WorkloadCache::new();
    let db = cache.get(&fig8_db(NCUST, SEED));
    let root = std::env::temp_dir().join(format!("disc-store-bench-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);

    let mut runs = Vec::new();
    let policies = [
        ("ingest-always", SyncPolicy::Always),
        ("ingest-every-64", SyncPolicy::EveryN(64)),
        ("ingest-never", SyncPolicy::Never),
    ];
    for (name, sync) in policies {
        let dir = root.join(name);
        let cfg = StoreConfig { sync, segment_max_bytes: SEGMENT_BYTES, ..StoreConfig::default() };
        let start = Instant::now();
        let mut store = SequenceStore::open(&dir, cfg).expect("open fresh store");
        for r in db.rows() {
            store.append(r.cid, r.sequence.clone()).expect("append");
        }
        store.close().expect("close");
        runs.push(row(name, start.elapsed().as_secs_f64(), db.len(), &dir));
    }

    // Recovery and compaction are timed on the fully-synced store.
    let dir = root.join("ingest-always");
    let cfg = StoreConfig { segment_max_bytes: SEGMENT_BYTES, ..StoreConfig::default() };

    let start = Instant::now();
    let store = SequenceStore::open(&dir, cfg).expect("recover from WAL");
    let wal_recover = start.elapsed().as_secs_f64();
    assert_eq!(store.len(), db.len(), "WAL replay must restore every row");
    runs.push(row("recover-wal", wal_recover, store.len(), &dir));

    let mut store = store;
    let start = Instant::now();
    let report = store.compact().expect("compact");
    let compact_seconds = start.elapsed().as_secs_f64();
    store.close().expect("close");
    runs.push(row("compact", compact_seconds, report.rows, &dir));

    let start = Instant::now();
    let store = SequenceStore::open(&dir, cfg).expect("recover from snapshot");
    let snap_recover = start.elapsed().as_secs_f64();
    assert_eq!(store.recovery_report().snapshot_rows, db.len());
    runs.push(row("recover-snapshot", snap_recover, store.len(), &dir));

    // End-to-end agreement: mining the recovered view is bit-identical to
    // mining the generator's database directly.
    let minsup = MinSupport::Fraction(MINSUP);
    let reference = DiscAll::default().mine(&db, minsup);
    let got = DiscAll::default().mine(&store.view(), minsup);
    assert_agreement("store-recovered view", &got, &reference);
    println!(
        "mine-from-view agreement: {} patterns, fingerprint {:#018x}\n",
        got.len(),
        store.fingerprint()
    );
    drop(store);
    let _ = fs::remove_dir_all(&root);

    println!("| row | seconds | rows | rows/s | KiB on disk | segments |");
    println!("|---|---|---|---|---|---|");
    for r in &runs {
        println!(
            "| {} | {:.4} | {} | {:.0} | {:.1} | {} |",
            r.name,
            r.seconds,
            r.rows,
            r.rows_per_sec,
            r.bytes as f64 / 1024.0,
            r.segments,
        );
    }
    println!();
    let _ = persist("bench_store", &runs);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_run_json_has_the_throughput_fields() {
        let run = StoreRun {
            name: "ingest-always",
            seconds: 0.25,
            rows: 1000,
            rows_per_sec: 4000.0,
            bytes: 65536,
            segments: 3,
        };
        let json = run.to_json();
        assert!(json.contains("\"rows_per_sec\":4000"), "got {json}");
        assert!(json.contains("\"segments\":3"), "got {json}");
        assert!(json.contains("\"bytes\":65536"), "got {json}");
    }
}
