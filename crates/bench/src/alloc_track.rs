//! A tracking global allocator for the benchmark harness.
//!
//! Wraps the system allocator with two process-wide atomic counters — live
//! bytes and the high-water mark — so measurements can report peak
//! allocation per run. The offline build environment has no allocation
//! profiler crates, so the counter lives here; every target that links
//! `disc-bench` (the experiment runner, the Criterion benches, the crate's
//! tests) allocates through it.
//!
//! The counters use relaxed ordering: they are statistics, not
//! synchronization, and a few bytes of cross-thread skew in the peak is
//! irrelevant next to the megabytes the miners allocate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes currently allocated and not yet freed.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The system allocator instrumented with live/peak byte counters.
pub struct TrackingAllocator;

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

fn on_alloc(bytes: usize) {
    let live = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System` unchanged; the wrapper only
// updates counters and never touches the returned memory.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                on_dealloc(layout.size() - new_size);
            }
        }
        new_ptr
    }
}

/// Resets the peak to the current live-byte count. Call immediately before
/// the region of interest.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The high-water mark of live allocated bytes since the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_a_large_allocation() {
        reset_peak();
        let before = peak_bytes();
        let buf = vec![0u8; 1 << 20];
        let during = peak_bytes();
        drop(buf);
        assert!(
            during >= before + (1 << 20),
            "peak should rise by at least the 1 MiB allocation: before={before} during={during}"
        );
        // After the drop the peak stays at the high-water mark…
        assert!(peak_bytes() >= during);
        // …until a reset brings it back down to the live count.
        reset_peak();
        assert!(peak_bytes() < during);
    }
}
