//! The SIMD comparison-kernel benchmark: the workloads behind the committed
//! `BENCH_simd.json` baseline and CI's `simd-differential` matrix.
//!
//! Reuses the flat-representation workload pair (`smoke` / `medium`, Table
//! 11 at minsup 0.0025) but records **which kernel dispatch level the
//! process resolved** ([`disc_core::dispatch_level`]) alongside every
//! measurement, so a report is meaningful evidence: a scalar-build number
//! and an AVX2 number are labelled as such instead of silently mixed.
//!
//! The module backs two CI gates:
//!
//! * **`--check <BENCH_simd.json>`** — re-runs the smoke workload and fails
//!   on a > [`REGRESSION_TOLERANCE`]x wall-clock regression, or on *any*
//!   pattern-count / max-length drift (checked exactly: the mined result
//!   must be bit-identical at every dispatch level, so a count that moves
//!   under one build mode is a kernel bug, not noise).
//! * **`--dump-patterns <path>`** — mines the smoke workload once and
//!   writes the *full* sorted pattern set (one `pattern\tsupport` line per
//!   frequent sequence). The `simd-differential` job runs this under each
//!   dispatch level and diffs the files byte-for-byte — the strongest
//!   bit-identity check available without a second machine.

use crate::flatbench::{
    best_of, extract_baseline, workloads, FlatWorkload, MINSUP, REGRESSION_TOLERANCE, SEED,
};
use crate::report::{persist, ToJson};
use crate::runner::{measure, Measurement};
use crate::workloads::{fig8_db, WorkloadCache};
use disc_algo::DiscAll;
use disc_core::{dispatch_level, MinSupport};
use std::fmt::Write as _;
use std::path::Path;

/// Results for one workload at one kernel dispatch level.
#[derive(Debug, Clone)]
pub struct SimdRun {
    /// The workload this run measured (same grid as the flat bench).
    pub workload: FlatWorkload,
    /// Kernel dispatch level the process resolved (`scalar`/`sse2`/`avx2`).
    pub dispatch: &'static str,
    /// Best-of-[`crate::flatbench::REPEATS`] sequential DISC-all measurement.
    pub sequential: Measurement,
}

impl ToJson for SimdRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"ncust\":{},\"minsup\":{},\"dispatch\":{},\"sequential\":{}}}",
            self.workload.name.to_string().to_json(),
            self.workload.ncust.to_json(),
            MINSUP.to_json(),
            self.dispatch.to_string().to_json(),
            self.sequential.to_json()
        )
    }
}

/// Runs one workload (sequential only — the kernels are per-thread, so the
/// parallel axis belongs to the flat bench) and prints its row.
fn run_workload(cache: &WorkloadCache, w: FlatWorkload, dispatch: &'static str) -> SimdRun {
    let db = cache.get(&fig8_db(w.ncust, SEED));
    let sequential = best_of(|| {
        measure(&DiscAll::default(), &db, MinSupport::Fraction(MINSUP), w.ncust as f64).0
    });
    eprintln!(
        "    {:<8} {:<6} {:>8.3}s  {:>10.0} rows/s  {} patterns (max len {})",
        w.name,
        dispatch,
        sequential.seconds,
        sequential.rows_per_sec,
        sequential.patterns,
        sequential.max_length
    );
    SimdRun { workload: w, dispatch, sequential }
}

/// Runs the SIMD benchmark (smoke only, or both workloads), persists the
/// report to `target/experiments/bench_simd.json`, and returns the runs.
/// When a committed `BENCH_flat.json` is readable from the working
/// directory, also prints the speedup against its per-workload baseline —
/// the headline number the packed+SIMD work is accountable to.
pub fn run(smoke_only: bool) -> Vec<SimdRun> {
    let dispatch = dispatch_level().name();
    println!("## SIMD comparison-kernel benchmark (dispatch: {dispatch}, minsup {MINSUP})\n");
    let cache = WorkloadCache::new();
    let runs: Vec<SimdRun> = workloads()
        .into_iter()
        .filter(|w| !smoke_only || w.name == "smoke")
        .map(|w| run_workload(&cache, w, dispatch))
        .collect();
    println!("| workload | customers | dispatch | seq (s) | rows/s | patterns |");
    println!("|---|---|---|---|---|---|");
    for r in &runs {
        println!(
            "| {} | {} | {} | {:.3} | {:.0} | {} |",
            r.workload.name,
            r.workload.ncust,
            r.dispatch,
            r.sequential.seconds,
            r.sequential.rows_per_sec,
            r.sequential.patterns,
        );
    }
    println!();
    if let Ok(text) = std::fs::read_to_string("BENCH_flat.json") {
        for r in &runs {
            let base = extract_baseline(&text, r.workload.name, "seconds");
            let base_patterns = extract_baseline(&text, r.workload.name, "patterns");
            if let (Some(base), Some(base_patterns)) = (base, base_patterns) {
                let agree = (r.sequential.patterns as f64 - base_patterns).abs() < 0.5;
                println!(
                    "{}: {:.3}s vs flat baseline {:.3}s → {:.2}x speedup ({})",
                    r.workload.name,
                    r.sequential.seconds,
                    base,
                    base / r.sequential.seconds.max(1e-9),
                    if agree { "pattern counts agree" } else { "PATTERN COUNTS DIFFER" },
                );
            }
        }
        println!();
    }
    let _ = persist("bench_simd", &runs);
    runs
}

/// The `--check` gate: re-runs the smoke workload and compares against a
/// committed `BENCH_simd.json`. Pattern count and max length must match
/// **exactly** — they are dispatch-level invariants, so any drift means the
/// kernels (or the miner above them) broke bit-identity. Wall clock gets
/// the same loose [`REGRESSION_TOLERANCE`] as the flat bench.
pub fn check(baseline_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let committed = extract_baseline(&text, "smoke", "seconds")
        .ok_or_else(|| format!("no smoke seconds in baseline {}", baseline_path.display()))?;
    let committed_patterns = extract_baseline(&text, "smoke", "patterns")
        .ok_or_else(|| format!("no smoke patterns in baseline {}", baseline_path.display()))?;
    let committed_max_len = extract_baseline(&text, "smoke", "max_length");
    let runs = run(true);
    let fresh = &runs[0].sequential;
    if (fresh.patterns as f64 - committed_patterns).abs() > 0.5 {
        return Err(format!(
            "smoke pattern count broke bit-identity at dispatch level {}: baseline \
             {committed_patterns}, fresh {}",
            runs[0].dispatch, fresh.patterns
        ));
    }
    if let Some(expected) = committed_max_len {
        if (fresh.max_length as f64 - expected).abs() > 0.5 {
            return Err(format!(
                "smoke max pattern length broke bit-identity at dispatch level {}: baseline \
                 {expected}, fresh {}",
                runs[0].dispatch, fresh.max_length
            ));
        }
    }
    let ratio = fresh.seconds / committed.max(1e-9);
    println!(
        "simd-differential [{}]: smoke {:.3}s vs committed {:.3}s ({}x, tolerance {}x), {} patterns",
        runs[0].dispatch,
        fresh.seconds,
        committed,
        crate::report::trim_float((ratio * 1000.0).round() / 1000.0),
        REGRESSION_TOLERANCE,
        fresh.patterns
    );
    if ratio > REGRESSION_TOLERANCE {
        return Err(format!(
            "smoke workload regressed at dispatch level {}: {:.3}s is {ratio:.2}x the committed \
             {committed:.3}s (tolerance {REGRESSION_TOLERANCE}x)",
            runs[0].dispatch, fresh.seconds
        ));
    }
    Ok(())
}

/// Mines the smoke workload once at the process's dispatch level and writes
/// the full sorted pattern set to `path`, one `pattern\tsupport` line per
/// frequent sequence. `MiningResult` iterates its `BTreeMap` in pattern
/// order, so two files from bit-identical results are byte-identical — CI's
/// `simd-differential` job diffs the dumps from all three dispatch levels.
pub fn dump_patterns(path: &Path) -> std::io::Result<()> {
    let w = workloads()[0];
    let cache = WorkloadCache::new();
    let db = cache.get(&fig8_db(w.ncust, SEED));
    let (m, result) =
        measure(&DiscAll::default(), &db, MinSupport::Fraction(MINSUP), w.ncust as f64);
    let mut out = String::new();
    for (p, s) in result.iter() {
        writeln!(out, "{p}\t{s}").expect("string write");
    }
    std::fs::write(path, &out)?;
    eprintln!(
        "dumped {} patterns (dispatch {}, {:.3}s) to {}",
        m.patterns,
        dispatch_level().name(),
        m.seconds,
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(seconds: f64) -> SimdRun {
        SimdRun {
            workload: workloads()[0],
            dispatch: "scalar",
            sequential: Measurement {
                miner: "DISC-all".into(),
                param: 1000.0,
                seconds,
                patterns: 260_120,
                max_length: 17,
                threads: 1,
                rows_per_sec: 4000.0,
                peak_alloc_bytes: 4096,
                peak_rss_bytes: 0,
            },
        }
    }

    #[test]
    fn simd_run_json_roundtrips_through_extractor() {
        let json = vec![sample_run(0.25)].to_json();
        assert_eq!(extract_baseline(&json, "smoke", "seconds"), Some(0.25));
        assert_eq!(extract_baseline(&json, "smoke", "patterns"), Some(260_120.0));
        assert_eq!(extract_baseline(&json, "smoke", "max_length"), Some(17.0));
        assert!(json.contains("\"dispatch\":\"scalar\""));
    }

    #[test]
    fn report_records_a_known_dispatch_level() {
        // Whatever the build/CPU/env resolves, it must be one of the three
        // documented names — the differential CI job keys on these strings.
        let name = dispatch_level().name();
        assert!(["scalar", "sse2", "avx2"].contains(&name), "unexpected dispatch level {name}");
    }

    #[test]
    fn check_rejects_pattern_drift_in_baseline_shape() {
        // extract_baseline on a SimdRun report must see the fields check()
        // gates on; guard the JSON shape here so a field rename cannot
        // silently turn the CI gate into a no-op.
        let json = vec![sample_run(1.0)].to_json();
        for field in ["seconds", "patterns", "max_length"] {
            assert!(
                extract_baseline(&json, "smoke", field).is_some(),
                "field {field} missing from SimdRun JSON — the --check gate depends on it"
            );
        }
    }
}
