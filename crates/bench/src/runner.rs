//! Timing and measurement plumbing shared by the experiment runner and the
//! Criterion benches.

use disc_core::{
    CancelToken, MinSupport, MineGuard, MiningResult, ResourceBudget, SequenceDatabase,
    SequentialMiner,
};
use std::time::{Duration, Instant};

/// Deadline applied to every benchmark run: generous enough that no intended
/// workload hits it, but a runaway miner fails loudly instead of hanging the
/// whole experiment sweep.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(3600);

/// One timed mining run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Miner name.
    pub miner: String,
    /// The sweep parameter (customers, threshold, or θ — per experiment).
    pub param: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Number of frequent sequences found.
    pub patterns: usize,
    /// Length of the longest frequent sequence.
    pub max_length: usize,
}

/// Runs one miner once under [`DEFAULT_DEADLINE`] and records the
/// measurement. Panics if the run does not complete — a benchmark that
/// silently reported a partial result would corrupt the sweep.
pub fn measure(
    miner: &dyn SequentialMiner,
    db: &SequenceDatabase,
    min_support: MinSupport,
    param: f64,
) -> (Measurement, MiningResult) {
    let guard = MineGuard::new(
        CancelToken::new(),
        ResourceBudget::unlimited().with_deadline(DEFAULT_DEADLINE),
    );
    let start = Instant::now();
    let run = miner.mine_guarded(db, min_support, &guard);
    let seconds = start.elapsed().as_secs_f64();
    assert!(
        run.outcome.is_complete(),
        "{} aborted ({:?}) after {seconds:.1}s — raise DEFAULT_DEADLINE or shrink the workload",
        miner.name(),
        run.outcome,
    );
    let result = run.result;
    (
        Measurement {
            miner: miner.name().to_string(),
            param,
            seconds,
            patterns: result.len(),
            max_length: result.max_length(),
        },
        result,
    )
}

/// Asserts two results agree, loudly — experiments double as end-to-end
/// correctness checks.
pub fn assert_agreement(name: &str, got: &MiningResult, reference: &MiningResult) {
    let diff = got.diff(reference);
    assert!(
        diff.is_empty(),
        "{name} disagrees with the reference result ({} lines):\n{}",
        diff.len(),
        diff.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::BruteForce;

    #[test]
    fn measure_records_runtime_and_counts() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let (m, result) = measure(&BruteForce::default(), &db, MinSupport::Count(2), 2.0);
        assert_eq!(m.miner, "BruteForce");
        assert_eq!(m.patterns, 3);
        assert_eq!(m.max_length, 2);
        assert!(m.seconds >= 0.0);
        assert_eq!(result.len(), 3);
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn assert_agreement_panics_on_mismatch() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let full = BruteForce::default().mine(&db, MinSupport::Count(1));
        let partial = BruteForce::with_max_length(1).mine(&db, MinSupport::Count(1));
        assert_agreement("test", &partial, &full);
    }
}
