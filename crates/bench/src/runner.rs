//! Timing and measurement plumbing shared by the experiment runner and the
//! Criterion benches.

use disc_core::{
    CancelToken, DiscError, MinSupport, MineGuard, MiningResult, ResourceBudget, SequenceDatabase,
    SequentialMiner,
};
use std::time::{Duration, Instant};

/// Deadline applied to every benchmark run: generous enough that no intended
/// workload hits it, but a runaway miner fails loudly instead of hanging the
/// whole experiment sweep.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(3600);

/// The deadline for benchmark runs: [`DEFAULT_DEADLINE`] unless the
/// `DISC_BENCH_DEADLINE_SECS` environment variable overrides it. CI's
/// bench-smoke job sets a short override so a hung run fails the job in
/// seconds instead of an hour.
pub fn deadline() -> Duration {
    match try_deadline() {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`deadline`]: a malformed `DISC_BENCH_DEADLINE_SECS`
/// comes back as a typed [`DiscError::Config`] instead of a panic, so
/// harnesses with an error path can report it like any other bad option.
pub fn try_deadline() -> Result<Duration, DiscError> {
    deadline_from(std::env::var("DISC_BENCH_DEADLINE_SECS").ok().as_deref())
}

/// The pure half of [`try_deadline`]: parses an optional
/// `DISC_BENCH_DEADLINE_SECS` value, so tests can cover the override logic
/// without mutating process-global environment state.
fn deadline_from(override_secs: Option<&str>) -> Result<Duration, DiscError> {
    match override_secs {
        Some(v) => match v.trim().parse::<u64>() {
            Ok(secs) if secs > 0 => Ok(Duration::from_secs(secs)),
            _ => Err(DiscError::Config {
                option: "DISC_BENCH_DEADLINE_SECS".to_string(),
                reason: format!("must be a positive integer of seconds, got {v:?}"),
            }),
        },
        None => Ok(DEFAULT_DEADLINE),
    }
}

/// One timed mining run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Miner name.
    pub miner: String,
    /// The sweep parameter (customers, threshold, or θ — per experiment).
    pub param: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Number of frequent sequences found.
    pub patterns: usize,
    /// Length of the longest frequent sequence.
    pub max_length: usize,
    /// Worker threads the run used (1 = sequential).
    pub threads: usize,
    /// Throughput: database rows mined per second.
    pub rows_per_sec: f64,
    /// The run's heap growth: high-water mark of live bytes during the run
    /// minus live bytes at its start (from the harness's tracking
    /// allocator), so retained data from earlier repeats — cached workloads,
    /// the reference result — doesn't pollute the number. Representation
    /// wins show up here even when wall time is noisy.
    pub peak_alloc_bytes: usize,
    /// Peak resident set size (`VmHWM`) observed after the run, in bytes;
    /// 0 where `/proc/self/status` is unavailable. Unlike
    /// [`peak_alloc_bytes`](Measurement::peak_alloc_bytes) this counts
    /// *everything* resident — mapped file pages included — which is
    /// exactly what out-of-core runs need to watch. The harness resets the
    /// kernel watermark before each run ([`reset_peak_rss`]); where that
    /// reset is refused the value is a monotone upper bound across repeats.
    pub peak_rss_bytes: usize,
}

/// Peak resident set size in bytes: `VmHWM` from `/proc/self/status`,
/// or 0 where that file does not exist (non-Linux platforms).
pub fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    parse_vm_hwm(&status).unwrap_or(0)
}

/// The pure half of [`peak_rss_bytes`]: extracts `VmHWM` (kB) from a
/// `/proc/self/status` document.
fn parse_vm_hwm(status: &str) -> Option<usize> {
    let rest = status.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Resets the kernel's peak-RSS watermark (writes `5` to
/// `/proc/self/clear_refs`) so each run's `VmHWM` reflects that run alone.
/// Best-effort: sandboxes that refuse the write leave `VmHWM` monotone,
/// which only ever over-reports a later run's peak.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Runs one miner once under [`deadline`] and records the measurement.
/// Panics if the run does not complete — a benchmark that silently reported
/// a partial result would corrupt the sweep.
pub fn measure(
    miner: &dyn SequentialMiner,
    db: &SequenceDatabase,
    min_support: MinSupport,
    param: f64,
) -> (Measurement, MiningResult) {
    let guard =
        MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_deadline(deadline()));
    crate::alloc_track::reset_peak();
    reset_peak_rss();
    let live_at_start = crate::alloc_track::live_bytes();
    let start = Instant::now();
    let run = miner.mine_guarded(db, min_support, &guard);
    let seconds = start.elapsed().as_secs_f64();
    let peak_alloc_bytes = crate::alloc_track::peak_bytes().saturating_sub(live_at_start);
    let peak_rss_bytes = peak_rss_bytes();
    assert!(
        run.outcome.is_complete(),
        "{} aborted ({:?}) after {seconds:.1}s — raise the deadline or shrink the workload",
        miner.name(),
        run.outcome,
    );
    let result = run.result;
    (
        Measurement {
            miner: miner.name().to_string(),
            param,
            seconds,
            patterns: result.len(),
            max_length: result.max_length(),
            threads: 1,
            rows_per_sec: db.len() as f64 / seconds.max(1e-9),
            peak_alloc_bytes,
            peak_rss_bytes,
        },
        result,
    )
}

/// Like [`measure`], but records `threads` in the measurement instead of 1.
///
/// The miner itself decides how to use workers — pass a parallel-configured
/// miner (e.g. `ParallelDiscAll::with_threads(threads)`) whose guarded entry
/// point fans out internally. Going through [`SequentialMiner::mine_guarded`]
/// keeps the benchmark deadline in force *globally across workers*, so a
/// hung shard still fails the sweep loudly.
pub fn measure_with_threads(
    miner: &dyn SequentialMiner,
    db: &SequenceDatabase,
    min_support: MinSupport,
    param: f64,
    threads: usize,
) -> (Measurement, MiningResult) {
    let (mut measurement, result) = measure(miner, db, min_support, param);
    measurement.threads = threads;
    (measurement, result)
}

/// Asserts two results agree, loudly — experiments double as end-to-end
/// correctness checks.
pub fn assert_agreement(name: &str, got: &MiningResult, reference: &MiningResult) {
    let diff = got.diff(reference);
    assert!(
        diff.is_empty(),
        "{name} disagrees with the reference result ({} lines):\n{}",
        diff.len(),
        diff.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::BruteForce;

    #[test]
    fn measure_records_runtime_and_counts() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let (m, result) = measure(&BruteForce::default(), &db, MinSupport::Count(2), 2.0);
        assert_eq!(m.miner, "BruteForce");
        assert_eq!(m.patterns, 3);
        assert_eq!(m.max_length, 2);
        assert!(m.seconds >= 0.0);
        assert!(m.rows_per_sec > 0.0);
        assert!(m.peak_alloc_bytes > 0, "mining allocates, so the peak must be nonzero");
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn measure_with_threads_records_thread_count() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let (m, result) =
            measure_with_threads(&BruteForce::default(), &db, MinSupport::Count(2), 2.0, 4);
        assert_eq!(m.threads, 4);
        assert_eq!(m.patterns, result.len());
    }

    #[test]
    fn vm_hwm_parses_from_status_text() {
        let status = "Name:\ttest\nVmPeak:\t  999 kB\nVmHWM:\t  2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name:\ttest\n"), None);
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0, "a live process has resident pages");
        }
    }

    #[test]
    fn deadline_override_parses() {
        assert_eq!(deadline_from(Some("7200")).unwrap(), Duration::from_secs(7200));
        assert_eq!(deadline_from(Some(" 5 ")).unwrap(), Duration::from_secs(5));
        assert_eq!(deadline_from(None).unwrap(), DEFAULT_DEADLINE);
    }

    #[test]
    fn deadline_override_rejects_zero_with_typed_error() {
        let err = deadline_from(Some("0")).unwrap_err();
        assert!(matches!(err, DiscError::Config { .. }), "got {err:?}");
        assert!(err.to_string().contains("positive integer"), "got {err}");
    }

    #[test]
    fn deadline_override_rejects_garbage_with_typed_error() {
        let err = deadline_from(Some("soon")).unwrap_err();
        assert!(matches!(err, DiscError::Config { .. }), "got {err:?}");
        assert!(err.to_string().contains("DISC_BENCH_DEADLINE_SECS"), "got {err}");
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn assert_agreement_panics_on_mismatch() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let full = BruteForce::default().mine(&db, MinSupport::Count(1));
        let partial = BruteForce::with_max_length(1).mine(&db, MinSupport::Count(1));
        assert_agreement("test", &partial, &full);
    }
}
