//! Timing and measurement plumbing shared by the experiment runner and the
//! Criterion benches.

use disc_core::{MiningResult, MinSupport, SequenceDatabase, SequentialMiner};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timed mining run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Miner name.
    pub miner: String,
    /// The sweep parameter (customers, threshold, or θ — per experiment).
    pub param: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Number of frequent sequences found.
    pub patterns: usize,
    /// Length of the longest frequent sequence.
    pub max_length: usize,
}

/// Runs one miner once and records the measurement.
pub fn measure(
    miner: &dyn SequentialMiner,
    db: &SequenceDatabase,
    min_support: MinSupport,
    param: f64,
) -> (Measurement, MiningResult) {
    let start = Instant::now();
    let result = miner.mine(db, min_support);
    let seconds = start.elapsed().as_secs_f64();
    (
        Measurement {
            miner: miner.name().to_string(),
            param,
            seconds,
            patterns: result.len(),
            max_length: result.max_length(),
        },
        result,
    )
}

/// Asserts two results agree, loudly — experiments double as end-to-end
/// correctness checks.
pub fn assert_agreement(name: &str, got: &MiningResult, reference: &MiningResult) {
    let diff = got.diff(reference);
    assert!(
        diff.is_empty(),
        "{name} disagrees with the reference result ({} lines):\n{}",
        diff.len(),
        diff.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::BruteForce;

    #[test]
    fn measure_records_runtime_and_counts() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let (m, result) = measure(&BruteForce::default(), &db, MinSupport::Count(2), 2.0);
        assert_eq!(m.miner, "BruteForce");
        assert_eq!(m.patterns, 3);
        assert_eq!(m.max_length, 2);
        assert!(m.seconds >= 0.0);
        assert_eq!(result.len(), 3);
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn assert_agreement_panics_on_mismatch() {
        let db = SequenceDatabase::from_parsed(&["(a)(b)", "(a)(b)"]).unwrap();
        let full = BruteForce::default().mine(&db, MinSupport::Count(1));
        let partial = BruteForce::with_max_length(1).mine(&db, MinSupport::Count(1));
        assert_agreement("test", &partial, &full);
    }
}
